//! # cs-ecg-monitor
//!
//! A complete, from-scratch Rust reproduction of *"A Real-Time Compressed
//! Sensing-Based Personal Electrocardiogram Monitoring System"* (Kanoun,
//! Mamaghanian, Khaled, Atienza — DATE 2011): a computationally light,
//! integer-only CS encoder (the ShimmerTM mote side) and a real-time FISTA
//! decoder (the iPhone coordinator side), together with every substrate
//! the system needs — wavelet bases, sensing matrices, entropy coding,
//! a synthetic MIT-BIH-like ECG corpus, and embedded-platform models.
//!
//! This umbrella crate re-exports the workspace so applications can depend
//! on one name:
//!
//! * [`dsp`] — wavelets, FIR filtering, Q15 fixed point ([`cs_dsp`])
//! * [`sensing`] — Gaussian / Bernoulli / sparse-binary Φ ([`cs_sensing`])
//! * [`recovery`] — ISTA / FISTA / OMP solvers ([`cs_recovery`])
//! * [`codec`] — differencing + length-limited Huffman ([`cs_codec`])
//! * [`metrics`] — CR / PRD / SNR ([`cs_metrics`])
//! * [`ecg`] — synthetic ECG data substrate ([`cs_ecg_data`])
//! * [`system`] — the end-to-end encoder/decoder pipeline ([`cs_core`])
//! * [`platform`] — mote / coordinator / energy models ([`cs_platform`])
//! * [`telemetry`] — zero-dependency tracing, latency histograms and
//!   Prometheus / JSON-Lines exporters ([`cs_telemetry`])
//! * [`archive`] — durable segmented packet store with crash recovery
//!   and decode-on-read fleet replay ([`cs_archive`])
//! * [`clinical`] — streaming QRS detection, beat classification,
//!   per-patient alarms and closed-loop adaptive compression
//!   ([`cs_clinical`])
//!
//! ## Quickstart
//!
//! ```
//! use cs_ecg_monitor::prelude::*;
//!
//! // Synthesize 8 seconds of ECG at the mote's 256 Hz input rate.
//! let db = SyntheticDatabase::new(DatabaseConfig {
//!     num_records: 1,
//!     duration_s: 8.0,
//!     ..DatabaseConfig::default()
//! });
//! let record = db.record(0);
//! let at_256 = resample_360_to_256(&record.signal_mv(0));
//! let adc = record.adc();
//! let samples: Vec<i16> = at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();
//!
//! // Run the paper's system at CR 50 and check the reconstruction.
//! let config = SystemConfig::paper_default();
//! let report = train_and_evaluate::<f64>(&config, &samples, 2, SolverPolicy::default())?;
//! assert!(report.prd.mean() < 40.0);
//! # Ok::<(), cs_ecg_monitor::system::PipelineError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every figure and table of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use cs_archive as archive;
pub use cs_clinical as clinical;
pub use cs_codec as codec;
pub use cs_core as system;
pub use cs_dsp as dsp;
pub use cs_ecg_data as ecg;
pub use cs_metrics as metrics;
pub use cs_platform as platform;
pub use cs_recovery as recovery;
pub use cs_sensing as sensing;
pub use cs_telemetry as telemetry;

/// The most common imports for applications built on this system.
pub mod prelude {
    pub use cs_archive::{Archive, ArchiveConfig, ArchiveSink, ArchiveWriter, FsyncPolicy};
    pub use cs_clinical::{
        AlarmConfig, AlarmEngine, BeatClassifier, ClinicalConfig, ClinicalEngine, ClinicalEvent,
        StreamingQrsDetector, TruthScorer,
    };
    pub use cs_codec::Codebook;
    pub use cs_core::{
        evaluate_stream, packetize, run_fleet, run_fleet_observed, run_fleet_wire,
        run_fleet_wire_archived, run_streaming, run_streaming_observed, train_and_evaluate,
        train_codebook, uniform_codebook, AdaptiveDecoder, AdaptiveEncoder, ClinicalFeedback,
        Decoder, Encoder, FidelitySchedule, FidelityTier, FleetConfig, FleetStream, PacketOutcome,
        SolverPolicy, SystemConfig, TierController,
    };
    pub use cs_dsp::wavelet::{Dwt, Wavelet, WaveletFamily};
    pub use cs_ecg_data::{
        detect_r_peaks, resample_360_to_256, score_detections, AdcModel, BeatType,
        DatabaseConfig, EcgModel, EcgModelConfig, NoiseConfig, QrsDetectorConfig, Record,
        SyntheticDatabase,
    };
    pub use cs_metrics::{
        compression_ratio, output_snr, prd, try_prd, try_prd_masked, worker_imbalance,
        DiagnosticQuality, FleetStats, StreamStats,
    };
    pub use cs_platform::{
        analyze_fleet, analyze_solves, compare_lifetime, encode_cost, encoder_footprint,
        ArchiveCapacityModel, CoordinatorSpec, EnergyModel, FaultSpec, GilbertElliottParams,
        LossyLink, MoteSpec, SyncCadence,
    };
    pub use cs_recovery::{fista, ista, omp, KernelMode, ShrinkageConfig, SynthesisOperator};
    pub use cs_sensing::{measurements_for_cr, DenseSensing, Sensing, SparseBinarySensing};
    pub use cs_core::DwtThresholdCodec;
    pub use cs_telemetry::{
        Every, HealthState, MetricsServer, SloConfig, SolveTrace, Stage, TelemetryRegistry,
        TraceContext,
    };
}
