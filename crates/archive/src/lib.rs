//! # cs-archive — durable segmented store for encoded CS-ECG packets
//!
//! The paper's mote→phone pipeline is decode-and-forget; a monitoring
//! *service* must keep the signal. The cheap thing to keep is the
//! **compressed representation**: encoded wire frames are already CR
//! ≈ 50 %+ smaller than raw samples, and the supervised fleet decoder
//! ([`cs_core::run_fleet_wire`]) can re-derive samples, concealment and
//! fault accounting from them at any time. So this crate stores exactly
//! the bytes that crossed the wire and decodes on read.
//!
//! ## Shape
//!
//! * **Append-only segments** per `(patient, lane)` —
//!   `p<patient>/l<lane>/seg<n>.csa`, rotated at a configurable size
//!   (default 4 MiB). Every record is length-prefixed and guarded by the
//!   same CRC-16/CCITT-FALSE as the wire frame it contains.
//! * **Crash tolerance by construction**: a killed writer leaves at most
//!   one torn record at the tail of one segment per lane. `open` scans
//!   unsealed tails and truncates the torn record instead of erroring —
//!   pinned by a proptest that truncates an archive at *every* byte
//!   offset.
//! * **Sealed segments carry a footer** (min/max seq, record count,
//!   sparse seq→offset index) found in O(1) from the file tail, so
//!   reopening a cleanly closed archive scans nothing and
//!   [`Archive::replay_range`] seeks without walking every record.
//! * **Write-before-decode**: [`ArchiveSink`] plugs into
//!   [`cs_core::run_fleet_wire_archived`] ahead of frame validation, so
//!   even traffic the pipeline rejects is preserved byte-for-byte under
//!   the reserved [`QUARANTINE_LANE`].
//! * **Retention** is [`Archive::compact`] (keep the newest N segments);
//!   capacity planning lives in `cs_platform`'s `ArchiveCapacityModel`.
//!
//! ```no_run
//! use cs_archive::{Archive, ArchiveConfig, ArchiveWriter};
//!
//! let mut w = ArchiveWriter::create("/var/lib/cs-ecg", ArchiveConfig::default())?;
//! w.append(0, 0, 0, &[0xC5, 0x01 /* ... wire frame ... */])?;
//! w.finish()?;
//!
//! let (archive, recovery) = Archive::open("/var/lib/cs-ecg")?;
//! assert_eq!(recovery.torn_tails, 0);
//! for frame in archive.replay_range(0, 0, 0..u64::MAX)? {
//!     let frame = frame?;
//!     // feed frame.bytes back through the fleet decoder
//! }
//! # std::io::Result::Ok(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod reader;
pub mod segment;
pub mod sink;
pub mod writer;

pub use reader::{Archive, Replay, ReplayFrame, SegmentInfo};
pub use segment::{
    scan_segment, Footer, SegmentError, SegmentHeader, SegmentScan, FRAME_RECORD_OVERHEAD_BYTES,
    RECORD_OVERHEAD_BYTES, RECORD_PREFIX_BYTES, SEAL_MARKER_BYTES, SEGMENT_HEADER_BYTES,
};
pub use sink::ArchiveSink;
pub use writer::{
    ArchiveConfig, ArchiveWriter, FsyncPolicy, RecoveryStats, DEFAULT_INDEX_EVERY,
    DEFAULT_SEGMENT_BYTES,
};

/// Reserved lane for frames that failed to parse on arrival: the sink
/// archives their exact bytes here, sequenced by arrival order, so a
/// post-mortem can replay the damage the wire actually delivered.
/// (Defined by `cs_core` so wire producers and consumers agree on the
/// reservation; re-exported here for the archive-facing callers.)
pub use cs_core::QUARANTINE_LANE;
