//! The append path: per-patient/per-lane segment files with rotation,
//! sealing, fsync policy, and crash-resumable `open`.

use crate::layout::{lane_dir, segment_path, walk_lanes};
use crate::segment::{
    encode_frame_record, encode_record, encode_seal_marker, frame_record_len, scan_segment,
    Footer, SegmentHeader, TAG_FOOTER,
};
use cs_telemetry::{ArchiveOp, Stage, TelemetryRegistry};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Default segment rotation threshold: 4 MiB.
pub const DEFAULT_SEGMENT_BYTES: u32 = 4 << 20;
/// Default sparse-index cadence: one entry every 32 records.
pub const DEFAULT_INDEX_EVERY: u32 = 32;

/// When appended records reach the disk.
///
/// The trade-off is the usual one: `Always` bounds loss to the torn tail
/// of the in-flight record at the cost of one `fdatasync` per append;
/// `EveryN` amortizes that to one sync per `n` records and risks losing
/// up to `n − 1` synced-to-page-cache records **only on power loss** (a
/// killed process loses nothing extra — the page cache survives process
/// death); `Never` leaves scheduling entirely to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record.
    Always,
    /// `fdatasync` after every `n` records (clamped to ≥ 1), and always
    /// at seal.
    EveryN(u32),
    /// Only the implicit syncs at seal and close.
    Never,
}

impl FsyncPolicy {
    fn cadence(self) -> Option<u32> {
        match self {
            FsyncPolicy::Always => Some(1),
            FsyncPolicy::EveryN(n) => Some(n.max(1)),
            FsyncPolicy::Never => None,
        }
    }
}

/// Writer-side configuration.
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Rotation threshold: a segment is sealed once the next record
    /// would push it past this many bytes. A record larger than the
    /// threshold still gets written (in a segment of its own).
    pub segment_bytes: u32,
    /// Sparse-index cadence: one `(running max seq, offset)` entry every
    /// this many records.
    pub index_every: u32,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
    /// Telemetry sink for `cs_archive_total` counters and
    /// [`Stage::ArchiveAppend`] spans; pass
    /// [`TelemetryRegistry::disabled`] for zero overhead.
    pub telemetry: TelemetryRegistry,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            index_every: DEFAULT_INDEX_EVERY,
            fsync: FsyncPolicy::EveryN(64),
            telemetry: TelemetryRegistry::disabled(),
        }
    }
}

/// What `ArchiveWriter::open` / `Archive::open` found while recovering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Unsealed tail segments that needed a full scan.
    pub segments_scanned: usize,
    /// Segments whose tail held a torn (incomplete or corrupt) record.
    pub torn_tails: usize,
    /// Total bytes dropped as torn tails.
    pub torn_bytes: u64,
    /// Complete frame records found in scanned segments.
    pub frames_recovered: u64,
}

struct OpenSegment {
    file: File,
    bytes: u64,
    records: u64,
    min_seq: u64,
    max_seq: u64,
    index: Vec<(u64, u64)>,
    appends_since_sync: u32,
}

struct LaneWriter {
    dir: PathBuf,
    next_index: u64,
    current: Option<OpenSegment>,
}

/// Append-only writer over a directory tree of segment files.
///
/// One instance owns a whole archive root; appends fan out to
/// per-`(patient, lane)` segment sequences. Dropping the writer without
/// [`ArchiveWriter::finish`] leaves tail segments unsealed — exactly the
/// state a crash leaves — and `open` recovers from it.
pub struct ArchiveWriter {
    root: PathBuf,
    config: ArchiveConfig,
    lanes: std::collections::BTreeMap<(u32, u8), LaneWriter>,
    scratch: Vec<u8>,
}

impl ArchiveWriter {
    /// Creates (or reuses) the archive root for appending. Existing
    /// segments are left untouched until a lane they belong to sees an
    /// append — use [`ArchiveWriter::open`] to resume into existing
    /// lanes with recovery.
    pub fn create(root: impl Into<PathBuf>, config: ArchiveConfig) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ArchiveWriter {
            root,
            config,
            lanes: std::collections::BTreeMap::new(),
            scratch: Vec::new(),
        })
    }

    /// Opens an existing archive root for continued appending.
    ///
    /// For every lane, the highest-numbered segment is examined: a
    /// sealed segment stays immutable (appends rotate past it); an
    /// unsealed one — the signature of a crashed or killed writer — is
    /// recovery-scanned, **truncated to its last complete record**, and
    /// resumed in place.
    pub fn open(root: impl Into<PathBuf>, config: ArchiveConfig) -> io::Result<(Self, RecoveryStats)> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let mut writer = ArchiveWriter {
            root: root.clone(),
            config,
            lanes: std::collections::BTreeMap::new(),
            scratch: Vec::new(),
        };
        let mut stats = RecoveryStats::default();
        for (patient, lane, dir, segments) in walk_lanes(&root)? {
            let Some(&last_index) = segments.last() else {
                continue;
            };
            let path = segment_path(&dir, last_index);
            let buf = fs::read(&path)?;
            let scan = scan_segment(&buf).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            writer.config.telemetry.record_archive_op(ArchiveOp::Recover);
            stats.segments_scanned += 1;
            stats.frames_recovered += scan.frames.len() as u64;
            if scan.torn_bytes > 0 {
                writer.config.telemetry.record_archive_op(ArchiveOp::TornTail);
                stats.torn_tails += 1;
                stats.torn_bytes += scan.torn_bytes as u64;
            }
            let lane_writer = if scan.footer.is_some() {
                // Cleanly sealed: immutable; next append starts a fresh
                // segment.
                LaneWriter {
                    dir,
                    next_index: last_index + 1,
                    current: None,
                }
            } else {
                // Unsealed tail: truncate the torn bytes and resume.
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                file.set_len(scan.valid_len as u64)?;
                let mut file = file;
                file.seek(SeekFrom::End(0))?;
                let index_every = writer.config.index_every.max(1) as u64;
                let mut index = Vec::new();
                let mut running_max = 0u64;
                let mut min_seq = u64::MAX;
                let mut max_seq = 0u64;
                for (r, (seq, range)) in scan.frames.iter().enumerate() {
                    if r > 0 && (r as u64).is_multiple_of(index_every) {
                        let record_off = range.start - crate::segment::RECORD_PREFIX_BYTES - 8;
                        index.push((running_max, record_off as u64));
                    }
                    running_max = running_max.max(*seq);
                    min_seq = min_seq.min(*seq);
                    max_seq = max_seq.max(*seq);
                }
                LaneWriter {
                    dir,
                    next_index: last_index,
                    current: Some(OpenSegment {
                        file,
                        bytes: scan.valid_len as u64,
                        records: scan.frames.len() as u64,
                        min_seq,
                        max_seq,
                        index,
                        appends_since_sync: 0,
                    }),
                }
            };
            writer.lanes.insert((patient, lane), lane_writer);
        }
        Ok((writer, stats))
    }

    /// The archive root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Appends one wire frame for `(patient, lane)` under sequence
    /// number `seq`, rotating the segment when full.
    pub fn append(&mut self, patient: u32, lane: u8, seq: u64, frame: &[u8]) -> io::Result<()> {
        let _span = self.config.telemetry.span(Stage::ArchiveAppend);
        let config = self.config.clone();
        let root = self.root.clone();
        let writer = self
            .lanes
            .entry((patient, lane))
            .or_insert_with(|| LaneWriter {
                dir: lane_dir(&root, patient, lane),
                next_index: 0,
                current: None,
            });

        let record_len = frame_record_len(frame.len()) as u64;
        let needs_rotation = writer
            .current
            .as_ref()
            .is_some_and(|seg| seg.records > 0 && seg.bytes + record_len > config.segment_bytes as u64);
        if needs_rotation {
            Self::seal_lane(writer, &config, &mut self.scratch)?;
        }
        if writer.current.is_none() {
            fs::create_dir_all(&writer.dir)?;
            let path = segment_path(&writer.dir, writer.next_index);
            let mut file = File::create(&path)?;
            let header = SegmentHeader {
                patient,
                lane,
                base_seq: seq,
                capacity: config.segment_bytes,
            };
            file.write_all(&header.encode())?;
            writer.current = Some(OpenSegment {
                file,
                bytes: crate::segment::SEGMENT_HEADER_BYTES as u64,
                records: 0,
                min_seq: u64::MAX,
                max_seq: 0,
                index: Vec::new(),
                appends_since_sync: 0,
            });
        }
        let seg = writer.current.as_mut().expect("segment just ensured");

        let index_every = config.index_every.max(1) as u64;
        if seg.records > 0 && seg.records.is_multiple_of(index_every) {
            let running_max = seg.max_seq;
            seg.index.push((running_max, seg.bytes));
        }
        self.scratch.clear();
        encode_frame_record(seq, frame, &mut self.scratch);
        seg.file.write_all(&self.scratch)?;
        seg.bytes += self.scratch.len() as u64;
        seg.records += 1;
        seg.min_seq = seg.min_seq.min(seq);
        seg.max_seq = seg.max_seq.max(seq);
        config.telemetry.record_archive_op(ArchiveOp::Append);

        if let Some(cadence) = config.fsync.cadence() {
            seg.appends_since_sync += 1;
            if seg.appends_since_sync >= cadence {
                seg.file.sync_data()?;
                seg.appends_since_sync = 0;
            }
        }
        Ok(())
    }

    fn seal_lane(
        writer: &mut LaneWriter,
        config: &ArchiveConfig,
        scratch: &mut Vec<u8>,
    ) -> io::Result<()> {
        let Some(mut seg) = writer.current.take() else {
            return Ok(());
        };
        let footer = Footer {
            min_seq: seg.min_seq,
            max_seq: seg.max_seq,
            record_count: seg.records,
            index: std::mem::take(&mut seg.index),
        };
        scratch.clear();
        encode_record(TAG_FOOTER, &footer.encode(), scratch);
        let footer_record_len = scratch.len() as u32;
        scratch.extend_from_slice(&encode_seal_marker(footer_record_len));
        seg.file.write_all(scratch)?;
        // Sealing always syncs: the footer is the cheap insurance that
        // makes every earlier record in the segment durable and O(1) to
        // reopen.
        seg.file.sync_data()?;
        config.telemetry.record_archive_op(ArchiveOp::Seal);
        writer.next_index += 1;
        Ok(())
    }

    /// Forces buffered data for every lane to disk without sealing.
    pub fn sync(&mut self) -> io::Result<()> {
        for writer in self.lanes.values_mut() {
            if let Some(seg) = writer.current.as_mut() {
                seg.file.sync_data()?;
                seg.appends_since_sync = 0;
            }
        }
        Ok(())
    }

    /// Seals every open segment and consumes the writer. Archives closed
    /// this way reopen without any recovery scan.
    pub fn finish(mut self) -> io::Result<()> {
        let config = self.config.clone();
        for writer in self.lanes.values_mut() {
            Self::seal_lane(writer, &config, &mut self.scratch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::Archive;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cs-archive-writer-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn frame(i: u64) -> Vec<u8> {
        (0..40).map(|b| (b as u64 * 3 + i) as u8).collect()
    }

    #[test]
    fn rotation_seals_and_reopen_skips_scan() {
        let root = tmp_root("rotate");
        let config = ArchiveConfig {
            segment_bytes: 256,
            ..ArchiveConfig::default()
        };
        let mut w = ArchiveWriter::create(&root, config.clone()).unwrap();
        for seq in 0..20 {
            w.append(1, 0, seq, &frame(seq)).unwrap();
        }
        w.finish().unwrap();
        let (archive, stats) = Archive::open(&root).unwrap();
        assert_eq!(stats.segments_scanned, 0, "all segments sealed");
        let frames: Vec<_> = archive
            .replay_range(1, 0, 0..u64::MAX)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(frames.len(), 20);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, i as u64);
            assert_eq!(f.bytes, frame(i as u64));
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unsealed_reopen_resumes_without_loss() {
        let root = tmp_root("resume");
        let mut w = ArchiveWriter::create(&root, ArchiveConfig::default()).unwrap();
        for seq in 0..7 {
            w.append(3, 1, seq, &frame(seq)).unwrap();
        }
        drop(w); // simulate a crash: no finish, tail unsealed
        let (mut w, stats) = ArchiveWriter::open(&root, ArchiveConfig::default()).unwrap();
        assert_eq!(stats.segments_scanned, 1);
        assert_eq!(stats.torn_tails, 0);
        assert_eq!(stats.frames_recovered, 7);
        for seq in 7..12 {
            w.append(3, 1, seq, &frame(seq)).unwrap();
        }
        w.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        let frames: Vec<_> = archive
            .replay_range(3, 1, 0..u64::MAX)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(frames.len(), 12);
        assert!(frames.iter().enumerate().all(|(i, f)| f.seq == i as u64));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let root = tmp_root("torn");
        let mut w = ArchiveWriter::create(&root, ArchiveConfig::default()).unwrap();
        for seq in 0..5 {
            w.append(9, 0, seq, &frame(seq)).unwrap();
        }
        drop(w);
        // Tear the tail: append half a record's worth of garbage.
        let (_, _, dir, segments) = walk_lanes(&root).unwrap().pop().unwrap();
        let path = segment_path(&dir, *segments.last().unwrap());
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0xAB; 13]).unwrap();
        drop(file);
        let (mut w, stats) = ArchiveWriter::open(&root, ArchiveConfig::default()).unwrap();
        assert_eq!(stats.torn_tails, 1);
        assert_eq!(stats.torn_bytes, 13);
        assert_eq!(stats.frames_recovered, 5);
        w.append(9, 0, 5, &frame(5)).unwrap();
        w.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        let frames: Vec<_> = archive
            .replay_range(9, 0, 0..u64::MAX)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(frames.len(), 6);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fsync_policies_all_produce_readable_archives() {
        for (tag, policy) in [
            ("always", FsyncPolicy::Always),
            ("everyn", FsyncPolicy::EveryN(4)),
            ("never", FsyncPolicy::Never),
        ] {
            let root = tmp_root(&format!("fsync-{tag}"));
            let config = ArchiveConfig {
                fsync: policy,
                ..ArchiveConfig::default()
            };
            let mut w = ArchiveWriter::create(&root, config).unwrap();
            for seq in 0..10 {
                w.append(0, 0, seq, &frame(seq)).unwrap();
            }
            w.finish().unwrap();
            let (archive, _) = Archive::open(&root).unwrap();
            assert_eq!(
                archive
                    .replay_range(0, 0, 0..u64::MAX)
                    .unwrap()
                    .count(),
                10
            );
            fs::remove_dir_all(&root).unwrap();
        }
    }
}
