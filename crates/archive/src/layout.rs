//! Directory layout: `<root>/p<patient:08>/l<lane:03>/seg<index:06>.csa`.
//!
//! Zero-padded decimal components make lexicographic directory order
//! equal numeric order, so plain sorted listings walk patients, lanes,
//! and segments in replay order. Entries that don't match the naming
//! scheme are ignored rather than rejected — a stray editor backup in
//! the tree must not poison recovery.

use std::io;
use std::path::{Path, PathBuf};

/// Segment file extension.
pub const SEGMENT_EXT: &str = "csa";

/// `<root>/p<patient:08>`.
pub fn patient_dir(root: &Path, patient: u32) -> PathBuf {
    root.join(format!("p{patient:08}"))
}

/// `<root>/p<patient:08>/l<lane:03>`.
pub fn lane_dir(root: &Path, patient: u32, lane: u8) -> PathBuf {
    patient_dir(root, patient).join(format!("l{lane:03}"))
}

/// `<lane dir>/seg<index:06>.csa`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg{index:06}.{SEGMENT_EXT}"))
}

fn parse_numeric(name: &str, prefix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn numbered_entries(dir: &Path, prefix: &str, strip_ext: bool) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(mut name) = name.to_str() else {
            continue;
        };
        if strip_ext {
            let Some(stem) = name.strip_suffix(&format!(".{SEGMENT_EXT}")) else {
                continue;
            };
            name = stem;
        }
        if let Some(n) = parse_numeric(name, prefix) {
            out.push(n);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// One lane's on-disk location: `(patient, lane, lane dir, sorted
/// segment indices)`.
pub type LaneEntry = (u32, u8, PathBuf, Vec<u64>);

/// Lists every [`LaneEntry`] under `root`, in `(patient, lane)` order.
/// A missing root yields an empty listing.
pub fn walk_lanes(root: &Path) -> io::Result<Vec<LaneEntry>> {
    let mut out = Vec::new();
    if !root.exists() {
        return Ok(out);
    }
    for patient in numbered_entries(root, "p", false)? {
        let patient = patient as u32;
        let pdir = patient_dir(root, patient);
        for lane in numbered_entries(&pdir, "l", false)? {
            let lane = lane as u8;
            let dir = lane_dir(root, patient, lane);
            let segments = numbered_entries(&dir, "seg", true)?;
            out.push((patient, lane, dir, segments));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        let root = Path::new("/tmp/x");
        let p = lane_dir(root, 42, 255);
        assert!(p.ends_with("p00000042/l255"));
        assert!(segment_path(&p, 7).ends_with("seg000007.csa"));
        assert_eq!(parse_numeric("p00000042", "p"), Some(42));
        assert_eq!(parse_numeric("seg000107", "seg"), Some(107));
        assert_eq!(parse_numeric("pabc", "p"), None);
        assert_eq!(parse_numeric("p", "p"), None);
    }
}
