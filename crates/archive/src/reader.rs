//! The read path: recovery-tolerant `open`, seq-range replay iteration,
//! whole-stream merge for fleet replay, and retention compaction.

use crate::layout::{segment_path, walk_lanes};
use crate::segment::{
    parse_record, parse_sealed_footer, scan_segment, Footer, SEGMENT_HEADER_BYTES, TAG_FRAME,
};
use crate::writer::RecoveryStats;
use crate::QUARANTINE_LANE;
use cs_telemetry::{ArchiveOp, Stage, TelemetryRegistry};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// One frame yielded by a replay iterator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayFrame {
    /// Stored sequence number (the wire seq for parseable frames, an
    /// arrival counter for quarantine-lane frames).
    pub seq: u64,
    /// Lane the frame was archived under.
    pub lane: u8,
    /// The exact bytes that were appended — byte-for-byte, including any
    /// corruption the wire delivered.
    pub bytes: Vec<u8>,
}

/// Per-segment metadata surfaced by [`Archive::segments`].
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Segment file path.
    pub path: PathBuf,
    /// Monotone segment index within its lane.
    pub index: u64,
    /// Whether a valid footer + seal marker closed the segment.
    pub sealed: bool,
    /// Complete frame records in the valid prefix.
    pub records: u64,
    /// Smallest frame seq (meaningless when `records == 0`).
    pub min_seq: u64,
    /// Largest frame seq (meaningless when `records == 0`).
    pub max_seq: u64,
    /// Bytes in the valid prefix.
    pub valid_bytes: u64,
    footer: Option<Footer>,
}

/// Read-only view over an archive root.
///
/// `open` never fails on a torn tail: an unsealed segment (crashed
/// writer) is scanned and its incomplete trailing record is simply
/// excluded from what replay yields. The on-disk file is left untouched
/// — truncation is the *writer's* job on resume ([`crate::ArchiveWriter::open`]).
pub struct Archive {
    telemetry: TelemetryRegistry,
    lanes: BTreeMap<(u32, u8), Vec<SegmentInfo>>,
}

impl Archive {
    /// Opens an archive root with telemetry disabled.
    pub fn open(root: impl AsRef<Path>) -> io::Result<(Archive, RecoveryStats)> {
        Self::open_observed(root, TelemetryRegistry::disabled())
    }

    /// Opens an archive root, recording recovery/replay activity
    /// (`cs_archive_total`, [`Stage::ArchiveReplay`] spans) against
    /// `telemetry`.
    pub fn open_observed(
        root: impl AsRef<Path>,
        telemetry: TelemetryRegistry,
    ) -> io::Result<(Archive, RecoveryStats)> {
        let root = root.as_ref();
        let mut lanes = BTreeMap::new();
        let mut stats = RecoveryStats::default();
        for (patient, lane, dir, segments) in walk_lanes(root)? {
            let mut infos = Vec::with_capacity(segments.len());
            for index in segments {
                let path = segment_path(&dir, index);
                let buf = fs::read(&path)?;
                let info = if let Some((footer, footer_off)) = parse_sealed_footer(&buf) {
                    SegmentInfo {
                        path,
                        index,
                        sealed: true,
                        records: footer.record_count,
                        min_seq: footer.min_seq,
                        max_seq: footer.max_seq,
                        valid_bytes: footer_off as u64,
                        footer: Some(footer),
                    }
                } else {
                    let scan = scan_segment(&buf).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: {e}", path.display()),
                        )
                    })?;
                    telemetry.record_archive_op(ArchiveOp::Recover);
                    stats.segments_scanned += 1;
                    stats.frames_recovered += scan.frames.len() as u64;
                    if scan.torn_bytes > 0 {
                        telemetry.record_archive_op(ArchiveOp::TornTail);
                        stats.torn_tails += 1;
                        stats.torn_bytes += scan.torn_bytes as u64;
                    }
                    let min_seq = scan.frames.iter().map(|&(s, _)| s).min().unwrap_or(u64::MAX);
                    let max_seq = scan.frames.iter().map(|&(s, _)| s).max().unwrap_or(0);
                    SegmentInfo {
                        path,
                        index,
                        sealed: false,
                        records: scan.frames.len() as u64,
                        min_seq,
                        max_seq,
                        valid_bytes: scan.valid_len as u64,
                        footer: None,
                    }
                };
                infos.push(info);
            }
            lanes.insert((patient, lane), infos);
        }
        Ok((Archive { telemetry, lanes }, stats))
    }

    /// Patients present, ascending.
    pub fn patients(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.lanes.keys().map(|&(p, _)| p).collect();
        out.dedup();
        out
    }

    /// Lanes archived for `patient`, ascending (may include
    /// [`QUARANTINE_LANE`]).
    pub fn lanes_of(&self, patient: u32) -> Vec<u8> {
        self.lanes
            .keys()
            .filter(|&&(p, _)| p == patient)
            .map(|&(_, l)| l)
            .collect()
    }

    /// Segment metadata for one lane, in segment order.
    pub fn segments(&self, patient: u32, lane: u8) -> &[SegmentInfo] {
        self.lanes
            .get(&(patient, lane))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total complete frame records across the archive.
    pub fn total_records(&self) -> u64 {
        self.lanes
            .values()
            .flat_map(|infos| infos.iter().map(|i| i.records))
            .sum()
    }

    /// Replays frames for `(patient, lane)` whose stored sequence number
    /// lies in `range`, lazily loading one segment at a time. Sealed
    /// segments outside the range are skipped without being read, and
    /// the sparse footer index skips ahead of `range.start` within a
    /// segment.
    pub fn replay_range(&self, patient: u32, lane: u8, range: Range<u64>) -> io::Result<Replay> {
        let segments: Vec<SegmentInfo> = self
            .segments(patient, lane)
            .iter()
            .filter(|info| info.records > 0 && info.min_seq < range.end && info.max_seq >= range.start)
            .cloned()
            .collect();
        Ok(Replay {
            telemetry: self.telemetry.clone(),
            lane,
            segments,
            range,
            cursor: 0,
            buf: Vec::new(),
            off: 0,
            loaded: false,
        })
    }

    /// Reassembles one patient's full archived session as a datagram
    /// list in original encode order — ready to feed back through
    /// `run_fleet_wire` as `traffic[stream]`.
    ///
    /// Real lanes are merged by `(seq, lane)`: the encoder emits every
    /// lane's frame for window *n* before any frame of window *n + 1*,
    /// so frame-major/lane-minor order reproduces the live interleaving
    /// exactly. Quarantine-lane bytes (unparseable on arrival, archived
    /// for post-mortem) are appended at the end in arrival order: the
    /// ingest path re-rejects them wherever they sit, and keeping them
    /// out of the merge keeps the decodable prefix bit-for-bit stable.
    pub fn replay_stream(&self, patient: u32) -> io::Result<Vec<Vec<u8>>> {
        let mut merged: Vec<ReplayFrame> = Vec::new();
        let mut quarantined: Vec<ReplayFrame> = Vec::new();
        for lane in self.lanes_of(patient) {
            let target = if lane == QUARANTINE_LANE {
                &mut quarantined
            } else {
                &mut merged
            };
            for frame in self.replay_range(patient, lane, 0..u64::MAX)? {
                target.push(frame?);
            }
        }
        merged.sort_by_key(|f| (f.seq, f.lane));
        quarantined.sort_by_key(|f| f.seq);
        Ok(merged
            .into_iter()
            .chain(quarantined)
            .map(|f| f.bytes)
            .collect())
    }

    /// Retention: deletes the oldest segments of `(patient, lane)` until
    /// at most `keep_last_n` remain. Returns how many were removed.
    pub fn compact(&mut self, patient: u32, lane: u8, keep_last_n: usize) -> io::Result<usize> {
        let Some(infos) = self.lanes.get_mut(&(patient, lane)) else {
            return Ok(0);
        };
        let excess = infos.len().saturating_sub(keep_last_n);
        for info in infos.drain(..excess) {
            fs::remove_file(&info.path)?;
            self.telemetry.record_archive_op(ArchiveOp::Compact);
        }
        Ok(excess)
    }
}

/// Lazy frame iterator returned by [`Archive::replay_range`].
pub struct Replay {
    telemetry: TelemetryRegistry,
    lane: u8,
    segments: Vec<SegmentInfo>,
    range: Range<u64>,
    cursor: usize,
    buf: Vec<u8>,
    off: usize,
    loaded: bool,
}

impl Iterator for Replay {
    type Item = io::Result<ReplayFrame>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if !self.loaded {
                let info = self.segments.get(self.cursor)?;
                let _span = self.telemetry.span(Stage::ArchiveReplay);
                match fs::read(&info.path) {
                    Ok(buf) => self.buf = buf,
                    Err(e) => {
                        self.cursor = self.segments.len(); // poison: stop after error
                        return Some(Err(e));
                    }
                }
                self.off = info
                    .footer
                    .as_ref()
                    .map(|f| f.seek_offset(self.range.start) as usize)
                    .unwrap_or(SEGMENT_HEADER_BYTES);
                self.loaded = true;
            }
            let info = &self.segments[self.cursor];
            let valid_end = info.valid_bytes as usize;
            while self.off < valid_end {
                let Some(record) = parse_record(&self.buf, self.off) else {
                    break; // torn tail of an unsealed segment
                };
                self.off = record.end;
                if record.tag != TAG_FRAME || record.body.len() < 8 {
                    continue;
                }
                let seq = u64::from_le_bytes(record.body[0..8].try_into().unwrap());
                if self.range.contains(&seq) {
                    self.telemetry.record_archive_op(ArchiveOp::Replay);
                    return Some(Ok(ReplayFrame {
                        seq,
                        lane: self.lane,
                        bytes: record.body[8..].to_vec(),
                    }));
                }
            }
            self.cursor += 1;
            self.loaded = false;
            self.buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{ArchiveConfig, ArchiveWriter};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cs-archive-reader-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn frame(i: u64) -> Vec<u8> {
        (0..32).map(|b| (b as u64 ^ i) as u8).collect()
    }

    fn small_segments() -> ArchiveConfig {
        ArchiveConfig {
            segment_bytes: 200,
            index_every: 2,
            ..ArchiveConfig::default()
        }
    }

    #[test]
    fn replay_range_filters_and_spans_segments() {
        let root = tmp_root("range");
        let mut w = ArchiveWriter::create(&root, small_segments()).unwrap();
        for seq in 0..30 {
            w.append(1, 0, seq, &frame(seq)).unwrap();
        }
        w.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        assert!(archive.segments(1, 0).len() > 2, "rotation happened");
        let frames: Vec<_> = archive
            .replay_range(1, 0, 10..20)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(frames.len(), 10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.seq, 10 + i as u64);
            assert_eq!(f.bytes, frame(f.seq));
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn replay_stream_merges_lanes_in_encode_order() {
        let root = tmp_root("merge");
        let mut w = ArchiveWriter::create(&root, small_segments()).unwrap();
        // Interleave two lanes the way the encoder does: lane-minor.
        for seq in 0..8 {
            for lane in 0..2u8 {
                w.append(5, lane, seq, &frame(seq * 2 + lane as u64)).unwrap();
            }
        }
        // A quarantined blob arrives mid-session.
        w.append(5, QUARANTINE_LANE, 0, b"garbage-bytes").unwrap();
        w.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        let stream = archive.replay_stream(5).unwrap();
        assert_eq!(stream.len(), 17);
        for seq in 0..8u64 {
            for lane in 0..2u64 {
                assert_eq!(stream[(seq * 2 + lane) as usize], frame(seq * 2 + lane));
            }
        }
        assert_eq!(stream[16], b"garbage-bytes");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compact_drops_oldest_segments() {
        let root = tmp_root("compact");
        let mut w = ArchiveWriter::create(&root, small_segments()).unwrap();
        for seq in 0..30 {
            w.append(2, 0, seq, &frame(seq)).unwrap();
        }
        w.finish().unwrap();
        let (mut archive, _) = Archive::open(&root).unwrap();
        let before = archive.segments(2, 0).len();
        assert!(before >= 3);
        let removed = archive.compact(2, 0, 2).unwrap();
        assert_eq!(removed, before - 2);
        assert_eq!(archive.segments(2, 0).len(), 2);
        // Reopen from disk: the deleted segments are really gone and the
        // survivors replay.
        let (archive2, _) = Archive::open(&root).unwrap();
        assert_eq!(archive2.segments(2, 0).len(), 2);
        let frames: Vec<_> = archive2
            .replay_range(2, 0, 0..u64::MAX)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert!(!frames.is_empty());
        assert_eq!(frames.last().unwrap().seq, 29, "newest records survive");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_tolerates_missing_root() {
        let root = tmp_root("missing");
        let (archive, stats) = Archive::open(&root).unwrap();
        assert!(archive.patients().is_empty());
        assert_eq!(stats, RecoveryStats::default());
    }
}
