//! The bridge from the fleet engine to the store: a
//! [`cs_core::FrameSink`] implementation that routes each arrived frame
//! to its `(patient, lane)` segment sequence.

use crate::reader::Archive;
use crate::writer::{ArchiveConfig, ArchiveWriter, RecoveryStats};
use crate::QUARANTINE_LANE;
use cs_core::{parse_frame, FrameSink};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Write-before-decode sink for `run_fleet_wire_archived`.
///
/// Each frame is given a light parse to learn its lane and sequence
/// number for placement. Frames that don't parse — exactly the traffic
/// the ingest path will reject and quarantine — still get archived
/// byte-for-byte under [`QUARANTINE_LANE`], sequenced by a per-patient
/// arrival counter, so a post-mortem can replay the complete arrival
/// history including the damage. (Lane `0xFF` is reserved for this;
/// a parseable frame claiming it is archived there too.)
pub struct ArchiveSink {
    writer: ArchiveWriter,
    quarantine_seqs: HashMap<u32, u64>,
}

impl ArchiveSink {
    /// Creates a sink over a fresh (or existing-but-unscanned) root.
    pub fn create(root: impl Into<PathBuf>, config: ArchiveConfig) -> io::Result<Self> {
        Ok(ArchiveSink {
            writer: ArchiveWriter::create(root, config)?,
            quarantine_seqs: HashMap::new(),
        })
    }

    /// Reopens an existing root, recovering crashed tails (see
    /// [`ArchiveWriter::open`]) and resuming each patient's quarantine
    /// arrival counter past what is already stored.
    pub fn open(
        root: impl Into<PathBuf>,
        config: ArchiveConfig,
    ) -> io::Result<(Self, RecoveryStats)> {
        let root = root.into();
        let (writer, stats) = ArchiveWriter::open(&root, config)?;
        let mut quarantine_seqs = HashMap::new();
        let (archive, _) = Archive::open(&root)?;
        for patient in archive.patients() {
            let segments = archive.segments(patient, QUARANTINE_LANE);
            if let Some(max) = segments
                .iter()
                .filter(|s| s.records > 0)
                .map(|s| s.max_seq)
                .max()
            {
                quarantine_seqs.insert(patient, max + 1);
            }
        }
        Ok((
            ArchiveSink {
                writer,
                quarantine_seqs,
            },
            stats,
        ))
    }

    /// The archive root directory.
    pub fn root(&self) -> &Path {
        self.writer.root()
    }

    /// Seals every open segment; the archive reopens scan-free.
    pub fn finish(self) -> io::Result<()> {
        self.writer.finish()
    }

    /// Forces everything buffered to disk without sealing.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }
}

impl FrameSink for ArchiveSink {
    fn append_frame(&mut self, stream: usize, bytes: &[u8]) -> io::Result<()> {
        let patient = u32::try_from(stream).unwrap_or(u32::MAX);
        match parse_frame(bytes) {
            Ok((info, _)) if info.lane != QUARANTINE_LANE => {
                self.writer.append(patient, info.lane, info.index, bytes)
            }
            _ => {
                let seq = self.quarantine_seqs.entry(patient).or_insert(0);
                let s = *seq;
                *seq += 1;
                self.writer.append(patient, QUARANTINE_LANE, s, bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cs-archive-sink-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn unparseable_frames_land_in_quarantine_lane() {
        let root = tmp_root("quarantine");
        let mut sink = ArchiveSink::create(&root, ArchiveConfig::default()).unwrap();
        sink.append_frame(0, b"not a frame at all").unwrap();
        sink.append_frame(0, &[0xC5, 0x01, 0xFF]).unwrap(); // short
        sink.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        assert_eq!(archive.lanes_of(0), vec![QUARANTINE_LANE]);
        let frames: Vec<_> = archive
            .replay_range(0, QUARANTINE_LANE, 0..u64::MAX)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].bytes, b"not a frame at all");
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[1].seq, 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn quarantine_counter_resumes_on_reopen() {
        let root = tmp_root("resume");
        let mut sink = ArchiveSink::create(&root, ArchiveConfig::default()).unwrap();
        sink.append_frame(2, b"bad-one").unwrap();
        sink.finish().unwrap();
        let (mut sink, _) = ArchiveSink::open(&root, ArchiveConfig::default()).unwrap();
        sink.append_frame(2, b"bad-two").unwrap();
        sink.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        let frames: Vec<_> = archive
            .replay_range(2, QUARANTINE_LANE, 0..u64::MAX)
            .unwrap()
            .collect::<io::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].seq, 1, "counter resumed, not reset");
        assert_eq!(frames[1].bytes, b"bad-two");
        fs::remove_dir_all(&root).unwrap();
    }
}
