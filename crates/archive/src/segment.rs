//! The on-disk segment format.
//!
//! Everything in this module operates on in-memory byte buffers — file
//! I/O lives in [`crate::writer`] and [`crate::reader`] — so the format
//! round-trips and the torn-tail truncation property can be pinned by
//! proptests without touching a filesystem.
//!
//! ## Layout
//!
//! ```text
//! segment := header record* [footer-record seal-marker]
//! header  := magic "CSAR" | version u8 | patient u32 LE | lane u8
//!          | base_seq u64 LE | capacity u32 LE | crc16 LE | zero pad to 32
//! record  := tag u8 | body_len u32 LE | body | crc16 LE   (crc over tag..body)
//! frame body  := seq u64 LE | wire-frame bytes
//! footer body := min_seq u64 | max_seq u64 | record_count u64
//!              | index_len u32 | (max_seq_before u64, offset u64)*
//! seal-marker := footer_record_len u32 LE | magic "CSAF"
//! ```
//!
//! A sealed segment ends with the footer record and the 8-byte seal
//! marker, so `open` discovers the footer in O(1) from the file tail. A
//! segment without a valid seal marker is *unsealed* — either still being
//! written or orphaned by a crash — and gets a full recovery scan that
//! truncates the torn tail: the first byte position where a record fails
//! to parse ends the valid prefix, and everything after it is dropped.
//! The record CRC reuses CRC-16/CCITT-FALSE from [`cs_core::crc16`], the
//! same polynomial that guards the wire frame inside the body.

use cs_core::crc16;
use std::ops::Range;

/// First four segment bytes.
pub const SEGMENT_MAGIC: [u8; 4] = *b"CSAR";
/// Current segment format version.
pub const SEGMENT_VERSION: u8 = 1;
/// Fixed segment header size (fields + CRC, zero-padded).
pub const SEGMENT_HEADER_BYTES: usize = 32;
/// Per-record framing cost: tag (1) + body length (4) + CRC (2).
pub const RECORD_OVERHEAD_BYTES: usize = 7;
/// Bytes ahead of the body within a record: tag (1) + body length (4).
pub const RECORD_PREFIX_BYTES: usize = 5;
/// A frame record's body carries the sequence number ahead of the frame.
pub const FRAME_RECORD_OVERHEAD_BYTES: usize = RECORD_OVERHEAD_BYTES + 8;
/// Record tag: body is `seq u64 LE` + raw wire-frame bytes.
pub const TAG_FRAME: u8 = 0x01;
/// Record tag: body is an encoded [`Footer`].
pub const TAG_FOOTER: u8 = 0x03;
/// Trailing seal-marker size: footer record length (4) + magic (4).
pub const SEAL_MARKER_BYTES: usize = 8;
/// Last four bytes of a sealed segment.
pub const SEAL_MAGIC: [u8; 4] = *b"CSAF";

/// Fixed per-segment metadata, written once at offset 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Patient (stream) identifier.
    pub patient: u32,
    /// ECG lead lane, or [`crate::QUARANTINE_LANE`].
    pub lane: u8,
    /// Sequence number of the first frame appended to this segment.
    pub base_seq: u64,
    /// Configured rotation threshold in bytes, recorded for forensics.
    pub capacity: u32,
}

impl SegmentHeader {
    /// Serializes the header into its fixed 32-byte form.
    pub fn encode(&self) -> [u8; SEGMENT_HEADER_BYTES] {
        let mut out = [0u8; SEGMENT_HEADER_BYTES];
        out[0..4].copy_from_slice(&SEGMENT_MAGIC);
        out[4] = SEGMENT_VERSION;
        out[5..9].copy_from_slice(&self.patient.to_le_bytes());
        out[9] = self.lane;
        out[10..18].copy_from_slice(&self.base_seq.to_le_bytes());
        out[18..22].copy_from_slice(&self.capacity.to_le_bytes());
        let crc = crc16(&out[0..22]);
        out[22..24].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a header from the start of `buf`.
    ///
    /// Returns `None` on short input, bad magic, unknown version, or CRC
    /// mismatch — a segment whose header does not parse is unusable.
    pub fn parse(buf: &[u8]) -> Option<SegmentHeader> {
        if buf.len() < SEGMENT_HEADER_BYTES
            || buf[0..4] != SEGMENT_MAGIC
            || buf[4] != SEGMENT_VERSION
        {
            return None;
        }
        let stored = u16::from_le_bytes([buf[22], buf[23]]);
        if crc16(&buf[0..22]) != stored {
            return None;
        }
        Some(SegmentHeader {
            patient: u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]),
            lane: buf[9],
            base_seq: u64::from_le_bytes(buf[10..18].try_into().unwrap()),
            capacity: u32::from_le_bytes(buf[18..22].try_into().unwrap()),
        })
    }
}

/// Appends one record (`tag` + length-prefixed `body` + CRC) to `out`.
pub fn encode_record(tag: u8, body: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    let crc = crc16(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Appends one frame record (`seq` + raw wire-frame bytes) to `out`.
pub fn encode_frame_record(seq: u64, frame: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.push(TAG_FRAME);
    out.extend_from_slice(&((frame.len() + 8) as u32).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(frame);
    let crc = crc16(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// The encoded size of a frame record for a frame of `frame_len` bytes.
pub fn frame_record_len(frame_len: usize) -> usize {
    FRAME_RECORD_OVERHEAD_BYTES + frame_len
}

/// A parsed record: borrowed body plus the offset one past its CRC.
#[derive(Debug, Clone, Copy)]
pub struct Record<'a> {
    /// Record tag byte ([`TAG_FRAME`] or [`TAG_FOOTER`]).
    pub tag: u8,
    /// Length-prefixed body bytes.
    pub body: &'a [u8],
    /// Offset of the byte after this record's CRC.
    pub end: usize,
}

/// Parses the record starting at `off`, or `None` if the bytes there do
/// not form a complete CRC-valid record (the torn-tail condition).
pub fn parse_record(buf: &[u8], off: usize) -> Option<Record<'_>> {
    let rest = buf.len().checked_sub(off)?;
    if rest < RECORD_OVERHEAD_BYTES {
        return None;
    }
    let body_len =
        u32::from_le_bytes([buf[off + 1], buf[off + 2], buf[off + 3], buf[off + 4]]) as usize;
    let total = RECORD_OVERHEAD_BYTES + body_len;
    if rest < total {
        return None;
    }
    let end = off + total;
    let stored = u16::from_le_bytes([buf[end - 2], buf[end - 1]]);
    if crc16(&buf[off..end - 2]) != stored {
        return None;
    }
    Some(Record {
        tag: buf[off],
        body: &buf[off + RECORD_PREFIX_BYTES..end - 2],
        end,
    })
}

/// Sealed-segment summary: written as the final record so `open` never
/// scans a cleanly closed segment, and seeks skip ahead of the range
/// start without walking every record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footer {
    /// Smallest frame sequence number in the segment.
    pub min_seq: u64,
    /// Largest frame sequence number in the segment.
    pub max_seq: u64,
    /// Number of frame records.
    pub record_count: u64,
    /// Sparse seek index: `(max_seq_before, offset)` pairs, one every K
    /// records. `max_seq_before` is the running maximum of all sequence
    /// numbers *before* `offset`, so a seek may start at the last entry
    /// whose running max is below the range start even when frames
    /// arrived out of order.
    pub index: Vec<(u64, u64)>,
}

impl Footer {
    /// Serializes the footer body (exclusive of record framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.index.len() * 16);
        out.extend_from_slice(&self.min_seq.to_le_bytes());
        out.extend_from_slice(&self.max_seq.to_le_bytes());
        out.extend_from_slice(&self.record_count.to_le_bytes());
        out.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for &(max_seq_before, offset) in &self.index {
            out.extend_from_slice(&max_seq_before.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
        }
        out
    }

    /// Parses a footer body produced by [`Footer::encode`].
    pub fn parse(body: &[u8]) -> Option<Footer> {
        if body.len() < 28 {
            return None;
        }
        let index_len = u32::from_le_bytes(body[24..28].try_into().unwrap()) as usize;
        if body.len() != 28 + index_len * 16 {
            return None;
        }
        let mut index = Vec::with_capacity(index_len);
        for i in 0..index_len {
            let at = 28 + i * 16;
            index.push((
                u64::from_le_bytes(body[at..at + 8].try_into().unwrap()),
                u64::from_le_bytes(body[at + 8..at + 16].try_into().unwrap()),
            ));
        }
        Some(Footer {
            min_seq: u64::from_le_bytes(body[0..8].try_into().unwrap()),
            max_seq: u64::from_le_bytes(body[8..16].try_into().unwrap()),
            record_count: u64::from_le_bytes(body[16..24].try_into().unwrap()),
            index,
        })
    }

    /// The record offset a `replay_range` starting at `start_seq` may
    /// seek to: the last index entry whose running-max sequence is still
    /// below `start_seq` (every record before it is provably too early),
    /// or the first record when no entry qualifies.
    pub fn seek_offset(&self, start_seq: u64) -> u64 {
        self.index
            .iter()
            .take_while(|&&(max_before, _)| max_before < start_seq)
            .last()
            .map(|&(_, off)| off)
            .unwrap_or(SEGMENT_HEADER_BYTES as u64)
    }
}

/// Encodes the trailing 8-byte seal marker for a footer record of
/// `footer_record_len` total bytes (framing included).
pub fn encode_seal_marker(footer_record_len: u32) -> [u8; SEAL_MARKER_BYTES] {
    let mut out = [0u8; SEAL_MARKER_BYTES];
    out[0..4].copy_from_slice(&footer_record_len.to_le_bytes());
    out[4..8].copy_from_slice(&SEAL_MAGIC);
    out
}

/// Attempts the O(1) sealed-segment fast path: validates the trailing
/// seal marker and the footer record it points at. `None` means the
/// segment is unsealed (or the seal itself is torn) and needs a scan.
pub fn parse_sealed_footer(buf: &[u8]) -> Option<(Footer, usize)> {
    if buf.len() < SEGMENT_HEADER_BYTES + SEAL_MARKER_BYTES {
        return None;
    }
    let marker = &buf[buf.len() - SEAL_MARKER_BYTES..];
    if marker[4..8] != SEAL_MAGIC {
        return None;
    }
    let footer_len = u32::from_le_bytes(marker[0..4].try_into().unwrap()) as usize;
    let footer_off = buf
        .len()
        .checked_sub(SEAL_MARKER_BYTES + footer_len)
        .filter(|&o| o >= SEGMENT_HEADER_BYTES)?;
    let record = parse_record(buf, footer_off)?;
    if record.tag != TAG_FOOTER || record.end != buf.len() - SEAL_MARKER_BYTES {
        return None;
    }
    Footer::parse(record.body).map(|f| (f, footer_off))
}

/// Why a segment buffer could not be scanned at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// Shorter than the fixed header — nothing recoverable.
    TruncatedHeader,
    /// Header bytes present but magic/version/CRC invalid.
    BadHeader,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::TruncatedHeader => f.write_str("segment shorter than its fixed header"),
            SegmentError::BadHeader => f.write_str("segment header magic/version/CRC invalid"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// The result of scanning one segment buffer.
#[derive(Debug, Clone)]
pub struct SegmentScan {
    /// Validated fixed header.
    pub header: SegmentHeader,
    /// Every complete frame record, in append order: `(seq, frame byte
    /// range within the buffer)`.
    pub frames: Vec<(u64, Range<usize>)>,
    /// Present iff the segment is cleanly sealed (valid footer record
    /// *and* seal marker).
    pub footer: Option<Footer>,
    /// Byte length of the valid prefix. A recovering writer truncates
    /// the file to this length; equals the buffer length when nothing is
    /// torn.
    pub valid_len: usize,
    /// Bytes past `valid_len` dropped as a torn tail.
    pub torn_bytes: usize,
}

/// Scans a segment buffer, accepting the longest valid prefix.
///
/// Walks records from the header until the first position where no
/// complete CRC-valid record exists; that position ends the valid prefix
/// (the *torn-tail truncation* point). A footer record followed by a
/// complete seal marker marks the segment sealed; a footer with a torn
/// or missing marker is itself discarded as tail, keeping recovery
/// semantics uniform — the valid prefix always ends on a frame-record
/// boundary unless the seal completed.
pub fn scan_segment(buf: &[u8]) -> Result<SegmentScan, SegmentError> {
    if buf.len() < SEGMENT_HEADER_BYTES {
        return Err(SegmentError::TruncatedHeader);
    }
    let header = SegmentHeader::parse(buf).ok_or(SegmentError::BadHeader)?;
    let mut frames = Vec::new();
    let mut off = SEGMENT_HEADER_BYTES;
    let mut footer = None;
    let mut valid_len = off;
    while let Some(record) = parse_record(buf, off) {
        match record.tag {
            TAG_FRAME if record.body.len() >= 8 => {
                let seq = u64::from_le_bytes(record.body[0..8].try_into().unwrap());
                let body_start = off + RECORD_PREFIX_BYTES;
                frames.push((seq, body_start + 8..record.end - 2));
                off = record.end;
                valid_len = off;
            }
            TAG_FOOTER => {
                let marker_end = record.end + SEAL_MARKER_BYTES;
                let sealed = marker_end == buf.len()
                    && Footer::parse(record.body).is_some()
                    && buf[record.end..marker_end]
                        == encode_seal_marker((record.end - off) as u32);
                if sealed {
                    footer = Footer::parse(record.body);
                    valid_len = marker_end;
                }
                // Torn seal: the footer record is dropped with the tail.
                break;
            }
            // Unknown tag or malformed frame body: treat as torn.
            _ => break,
        }
    }
    Ok(SegmentScan {
        header,
        frames,
        footer,
        torn_bytes: buf.len() - valid_len,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + n) as u8).collect()
    }

    fn build_segment(seal: bool) -> Vec<u8> {
        let header = SegmentHeader {
            patient: 7,
            lane: 2,
            base_seq: 100,
            capacity: 4096,
        };
        let mut buf = header.encode().to_vec();
        let mut index = Vec::new();
        let mut running_max = 0u64;
        for (i, seq) in (100u64..108).enumerate() {
            if i > 0 && i % 4 == 0 {
                index.push((running_max, buf.len() as u64));
            }
            encode_frame_record(seq, &frame(16 + i), &mut buf);
            running_max = running_max.max(seq);
        }
        if seal {
            let footer = Footer {
                min_seq: 100,
                max_seq: 107,
                record_count: 8,
                index,
            };
            let start = buf.len();
            encode_record(TAG_FOOTER, &footer.encode(), &mut buf);
            let footer_record_len = (buf.len() - start) as u32;
            buf.extend_from_slice(&encode_seal_marker(footer_record_len));
        }
        buf
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let h = SegmentHeader {
            patient: 42,
            lane: 0xFF,
            base_seq: u64::MAX / 3,
            capacity: 4 << 20,
        };
        let enc = h.encode();
        assert_eq!(SegmentHeader::parse(&enc), Some(h));
        let mut bad = enc;
        bad[5] ^= 1; // patient byte — CRC must catch it
        assert_eq!(SegmentHeader::parse(&bad), None);
        assert_eq!(SegmentHeader::parse(&enc[..31]), None);
    }

    #[test]
    fn unsealed_scan_yields_all_frames() {
        let buf = build_segment(false);
        let scan = scan_segment(&buf).unwrap();
        assert_eq!(scan.frames.len(), 8);
        assert!(scan.footer.is_none());
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.torn_bytes, 0);
        for (i, (seq, range)) in scan.frames.iter().enumerate() {
            assert_eq!(*seq, 100 + i as u64);
            assert_eq!(&buf[range.clone()], &frame(16 + i)[..]);
        }
    }

    #[test]
    fn sealed_scan_and_fast_path_agree() {
        let buf = build_segment(true);
        let scan = scan_segment(&buf).unwrap();
        let footer = scan.footer.expect("sealed");
        assert_eq!(footer.record_count, 8);
        assert_eq!((footer.min_seq, footer.max_seq), (100, 107));
        assert_eq!(scan.valid_len, buf.len());
        let (fast, _) = parse_sealed_footer(&buf).expect("fast path");
        assert_eq!(fast, footer);
    }

    #[test]
    fn seek_offset_respects_running_max() {
        let buf = build_segment(true);
        let (footer, _) = parse_sealed_footer(&buf).unwrap();
        // Entry at record 4 has running max 103: start_seq 104 may skip there.
        let skip = footer.seek_offset(104);
        assert!(skip > SEGMENT_HEADER_BYTES as u64);
        let scan = scan_segment(&buf).unwrap();
        let record_start = (scan.frames[4].1.start - RECORD_PREFIX_BYTES - 8) as u64;
        assert_eq!(record_start, skip);
        // start_seq at or below min stays at the first record.
        assert_eq!(footer.seek_offset(100), SEGMENT_HEADER_BYTES as u64);
    }

    #[test]
    fn torn_tail_truncates_to_record_boundary() {
        let buf = build_segment(false);
        let scan_full = scan_segment(&buf).unwrap();
        let boundaries: Vec<usize> = std::iter::once(SEGMENT_HEADER_BYTES)
            .chain(scan_full.frames.iter().map(|(_, r)| r.end + 2))
            .collect();
        // Cut mid-record: the valid prefix must end at the last boundary.
        let cut = boundaries[3] + 5;
        let scan = scan_segment(&buf[..cut]).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.valid_len, boundaries[3]);
        assert_eq!(scan.torn_bytes, cut - boundaries[3]);
    }

    #[test]
    fn corrupt_byte_ends_prefix() {
        let mut buf = build_segment(false);
        let scan_full = scan_segment(&buf).unwrap();
        let third_start = scan_full.frames[2].1.start - 15;
        buf[third_start + 9] ^= 0x40; // flip a bit inside record 2's body
        let scan = scan_segment(&buf).unwrap();
        assert_eq!(scan.frames.len(), 2, "prefix stops before the corrupt record");
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn torn_seal_discards_footer() {
        let buf = build_segment(true);
        // Drop the final marker byte: the seal is torn, so the segment
        // must come back unsealed with all 8 frames intact.
        let scan = scan_segment(&buf[..buf.len() - 1]).unwrap();
        assert!(scan.footer.is_none());
        assert_eq!(scan.frames.len(), 8);
        assert!(parse_sealed_footer(&buf[..buf.len() - 1]).is_none());
    }
}
