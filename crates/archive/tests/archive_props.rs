//! Format-level properties of the segment store.
//!
//! Two families:
//!
//! 1. **Round-trip**: arbitrary payload bytes written through the real
//!    writer come back identical through the real reader, across
//!    rotation boundaries, fsync policies, and both sealed and unsealed
//!    (crash-shaped) closes.
//! 2. **Torn tail**: truncating a segment buffer at *every* possible
//!    byte offset (the disk-level analogue of the wire's
//!    every-single-bit-flip test) always yields exactly the complete
//!    prefix of records — never an error, never a partial record, never
//!    a lost complete one.

use cs_archive::{
    scan_segment, Archive, ArchiveConfig, ArchiveWriter, FsyncPolicy, SegmentError,
    FRAME_RECORD_OVERHEAD_BYTES, SEGMENT_HEADER_BYTES,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cs-archive-props-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds an in-memory segment buffer with the crate's own encoders.
fn build_segment(payloads: &[Vec<u8>]) -> Vec<u8> {
    let header = cs_archive::SegmentHeader {
        patient: 1,
        lane: 0,
        base_seq: 0,
        capacity: 1 << 20,
    };
    let mut buf = header.encode().to_vec();
    for (seq, payload) in payloads.iter().enumerate() {
        cs_archive::segment::encode_frame_record(seq as u64, payload, &mut buf);
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary payloads round-trip bit-for-bit through write →
    /// (optionally crash-shaped close) → open → replay, across segment
    /// rotations.
    #[test]
    fn arbitrary_payloads_round_trip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300),
            1..40,
        ),
        seal in any::<bool>(),
        segment_bytes in 128_u32..2048,
    ) {
        let root = tmp_root("roundtrip");
        let config = ArchiveConfig {
            segment_bytes,
            index_every: 4,
            fsync: FsyncPolicy::Never,
            ..ArchiveConfig::default()
        };
        let mut w = ArchiveWriter::create(&root, config).unwrap();
        for (seq, payload) in payloads.iter().enumerate() {
            w.append(1, 0, seq as u64, payload).unwrap();
        }
        if seal {
            w.finish().unwrap();
        } else {
            drop(w); // crash-shaped: unsealed tail
        }
        let (archive, stats) = Archive::open(&root).unwrap();
        prop_assert_eq!(stats.torn_bytes, 0, "clean close tears nothing");
        let frames: Vec<_> = archive
            .replay_range(1, 0, 0..u64::MAX)
            .unwrap()
            .collect::<std::io::Result<Vec<_>>>()
            .unwrap();
        prop_assert_eq!(frames.len(), payloads.len());
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(f.seq, i as u64);
            prop_assert_eq!(&f.bytes, &payloads[i]);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    /// The crash-recovery property, exhaustively: truncation at EVERY
    /// byte offset of a segment yields exactly the complete record
    /// prefix. Small records keep the offset count (and runtime) modest
    /// while still crossing every field boundary of every record.
    #[test]
    fn truncation_at_every_offset_yields_complete_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24),
            1..8,
        ),
    ) {
        let buf = build_segment(&payloads);
        // Record end offsets: boundary[i] = end of record i.
        let mut boundaries = Vec::with_capacity(payloads.len() + 1);
        let mut at = SEGMENT_HEADER_BYTES;
        boundaries.push(at);
        for p in &payloads {
            at += FRAME_RECORD_OVERHEAD_BYTES + p.len();
            boundaries.push(at);
        }
        prop_assert_eq!(at, buf.len());

        for cut in 0..=buf.len() {
            let scan = match scan_segment(&buf[..cut]) {
                Ok(scan) => scan,
                Err(e) => {
                    // Only a headerless stub may error.
                    prop_assert!(cut < SEGMENT_HEADER_BYTES, "cut {cut}: {e}");
                    prop_assert_eq!(e, SegmentError::TruncatedHeader);
                    continue;
                }
            };
            // Expected surviving records: those fully inside the cut.
            let complete = boundaries[1..].iter().filter(|&&b| b <= cut).count();
            prop_assert_eq!(
                scan.frames.len(),
                complete,
                "cut at {} of {}",
                cut,
                buf.len()
            );
            prop_assert_eq!(scan.valid_len, boundaries[complete]);
            prop_assert_eq!(scan.torn_bytes, cut - boundaries[complete]);
            for (i, (seq, range)) in scan.frames.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64);
                prop_assert_eq!(&buf[range.clone()], &payloads[i][..]);
            }
        }
    }

    /// Torn tails on disk: write through the real writer, truncate the
    /// real file at an arbitrary offset, and reopen — the writer resumes
    /// with exactly the complete prefix, and appending afterwards works.
    #[test]
    fn on_disk_truncation_recovers_and_resumes(
        npayloads in 1_usize..12,
        cut_back in 0_usize..200,
    ) {
        let root = tmp_root("disk-truncate");
        let mut w = ArchiveWriter::create(&root, ArchiveConfig {
            fsync: FsyncPolicy::Never,
            ..ArchiveConfig::default()
        }).unwrap();
        let payload = |i: u64| -> Vec<u8> { (0..50).map(|b| ((b as u64 * 31) ^ i) as u8).collect() };
        for seq in 0..npayloads as u64 {
            w.append(0, 0, seq, &payload(seq)).unwrap();
        }
        drop(w);
        // Truncate the single segment file somewhere behind its end.
        let seg = archive_file(&root);
        let len = std::fs::metadata(&seg).unwrap().len();
        let cut = len.saturating_sub(cut_back as u64).max(SEGMENT_HEADER_BYTES as u64);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let (mut w, stats) = ArchiveWriter::open(&root, ArchiveConfig::default()).unwrap();
        let record_len = FRAME_RECORD_OVERHEAD_BYTES as u64 + 50;
        let expect = ((cut - SEGMENT_HEADER_BYTES as u64) / record_len) as usize;
        prop_assert_eq!(stats.frames_recovered as usize, expect);
        // Resume appending after the survivors.
        w.append(0, 0, expect as u64, &payload(expect as u64)).unwrap();
        w.finish().unwrap();
        let (archive, _) = Archive::open(&root).unwrap();
        let frames: Vec<_> = archive
            .replay_range(0, 0, 0..u64::MAX)
            .unwrap()
            .collect::<std::io::Result<Vec<_>>>()
            .unwrap();
        prop_assert_eq!(frames.len(), expect + 1);
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(&f.bytes, &payload(i as u64));
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}

/// The single segment file a one-lane, non-rotated archive holds.
fn archive_file(root: &Path) -> PathBuf {
    root.join("p00000000").join("l000").join("seg000000.csa")
}
