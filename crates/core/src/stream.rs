//! Threaded producer–consumer streaming, mirroring the iPhone application
//! structure.
//!
//! The paper's coordinator app runs two threads (§IV-B1): one receives
//! Bluetooth data, decodes it and writes 2-second windows into a shared
//! buffer; the other drains the buffer for display. The buffer holds 6
//! seconds — 2 s being written, 2 s being read, 2 s of display latency.
//! [`run_streaming`] reproduces that structure with real threads and a
//! bounded channel whose capacity is that 6-second / 3-packet budget, and
//! reports whether the decoder kept up with real time.

use crate::config::SystemConfig;
use crate::decoder::{DecodedPacket, Decoder, SolverPolicy};
use crate::encoder::Encoder;
use crate::error::PipelineError;
use crate::packet::EncodedPacket;
use cs_dsp::Real;
use std::sync::Arc;
use std::time::Duration;

/// Capacity of the shared buffer in packets: 6 s of ECG at 2 s per packet.
pub const SHARED_BUFFER_PACKETS: usize = 3;

/// Outcome of a streaming run.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Packets that made it through the whole pipeline.
    pub packets_delivered: usize,
    /// Total wall-clock decode time across all packets.
    pub total_decode_time: Duration,
    /// Longest single-packet decode time (the real-time-critical number —
    /// it must stay under the packet period).
    pub max_decode_time: Duration,
    /// The packet period implied by the configuration (N / 256 Hz).
    pub packet_period: Duration,
    /// Whether every packet decoded within one packet period (the paper's
    /// definition of real-time operation).
    pub real_time: bool,
}

/// Runs encoder and decoder on separate threads connected by the bounded
/// shared buffer, pushing the given sample stream through.
///
/// The consumer applies `on_packet` to every decoded packet (the display
/// thread's role).
///
/// # Errors
///
/// Propagates construction errors; decode errors abort the consumer and
/// surface here.
pub fn run_streaming<T, F>(
    config: &SystemConfig,
    codebook: Arc<cs_codec::Codebook>,
    samples: &[i16],
    policy: SolverPolicy<T>,
    on_packet: F,
) -> Result<StreamingReport, PipelineError>
where
    T: Real,
    F: FnMut(&DecodedPacket<T>) + Send,
{
    run_streaming_observed(
        config,
        codebook,
        samples,
        policy,
        &cs_telemetry::TelemetryRegistry::disabled(),
        on_packet,
    )
}

/// [`run_streaming`] recording live telemetry: producer encode stages and
/// consumer decode stages land in `telemetry`'s histograms while the
/// stream runs. Pass [`TelemetryRegistry::disabled`] to get exactly
/// [`run_streaming`] (one atomic load per span).
///
/// [`TelemetryRegistry::disabled`]: cs_telemetry::TelemetryRegistry::disabled
///
/// # Errors
///
/// Same contract as [`run_streaming`].
pub fn run_streaming_observed<T, F>(
    config: &SystemConfig,
    codebook: Arc<cs_codec::Codebook>,
    samples: &[i16],
    policy: SolverPolicy<T>,
    telemetry: &cs_telemetry::TelemetryRegistry,
    mut on_packet: F,
) -> Result<StreamingReport, PipelineError>
where
    T: Real,
    F: FnMut(&DecodedPacket<T>) + Send,
{
    let mut encoder = Encoder::new(config, Arc::clone(&codebook))?;
    let mut decoder: Decoder<T> = Decoder::new(config, codebook, policy)?;
    encoder.set_telemetry(telemetry.clone());
    decoder.set_telemetry(telemetry.clone());
    let n = config.packet_len();
    let packet_period = Duration::from_secs_f64(n as f64 / 256.0);

    let (tx, rx) = crossbeam::channel::bounded::<EncodedPacket>(SHARED_BUFFER_PACKETS);

    let result: Result<StreamingReport, PipelineError> = std::thread::scope(|scope| {
        // Producer: the mote. Encodes packets and pushes them into the
        // shared buffer, blocking when the buffer is full (back-pressure —
        // in hardware this would be radio buffering).
        let producer = scope.spawn(move || -> Result<(), PipelineError> {
            for chunk in samples.chunks_exact(n) {
                let wire = encoder.encode_packet(chunk)?;
                if tx.send(wire).is_err() {
                    break; // consumer hung up after an error
                }
            }
            Ok(())
        });

        // Consumer: the coordinator. Decodes and "displays".
        let mut delivered = 0usize;
        let mut total = Duration::ZERO;
        let mut max = Duration::ZERO;
        let mut consumer_err = None;
        for wire in rx.iter() {
            match decoder.decode_packet(&wire) {
                Ok(decoded) => {
                    total += decoded.solve_time;
                    max = max.max(decoded.solve_time);
                    delivered += 1;
                    on_packet(&decoded);
                }
                Err(e) => {
                    consumer_err = Some(e);
                    break;
                }
            }
        }
        let producer_result = producer.join().expect("producer thread panicked");
        if let Some(e) = consumer_err {
            return Err(e);
        }
        producer_result?;
        Ok(StreamingReport {
            packets_delivered: delivered,
            total_decode_time: total,
            max_decode_time: max,
            packet_period,
            real_time: max <= packet_period,
        })
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::uniform_codebook;

    fn ecg_like(npackets: usize, n: usize) -> Vec<i16> {
        (0..npackets * n)
            .map(|i| {
                let t = (i % n) as f64 / n as f64;
                (700.0 * (-((t - 0.4) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
            })
            .collect()
    }

    #[test]
    fn streams_all_packets_through_threads() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(6, 512);
        let mut seen = Vec::new();
        let report = run_streaming::<f64, _>(
            &config,
            cb,
            &samples,
            SolverPolicy::default(),
            |p| seen.push(p.index),
        )
        .unwrap();
        assert_eq!(report.packets_delivered, 6);
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]); // in order
        assert!(report.max_decode_time >= Duration::ZERO);
        assert_eq!(report.packet_period, Duration::from_secs(2));
    }

    #[test]
    fn decoder_is_real_time_on_this_host() {
        // A release-mode claim tested loosely in debug: each 2 s packet
        // must decode in far less than 2 s even unoptimized.
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(3, 512);
        let report =
            run_streaming::<f32, _>(&config, cb, &samples, SolverPolicy::default(), |_| {})
                .unwrap();
        assert!(
            report.real_time,
            "max decode {:?} exceeded period {:?}",
            report.max_decode_time, report.packet_period
        );
    }
}
