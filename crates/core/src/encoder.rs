//! The mote-side encoder: sparse binary sensing → differencing → Huffman.
//!
//! This is the complete Fig. 1 (top) pipeline, and — deliberately — it
//! never touches a float: the CS stage is an integer gather-add, the
//! differencing is integer, and the entropy stage consumes integer
//! symbols. That is exactly what makes it viable on the FPU-less MSP430
//! (§IV-A) and is what the `cs-platform` cycle model prices.

use crate::config::SystemConfig;
use crate::error::PipelineError;
use crate::packet::{EncodedPacket, PacketKind};
use cs_codec::{value_to_symbol, BitWriter, Codebook, DiffConfig, DiffEncoder, DiffPacket};
use cs_sensing::SparseBinarySensing;
use cs_telemetry::{Stage, TelemetryRegistry};
use std::sync::Arc;

/// Bits used per raw measurement in reference packets.
const REFERENCE_VALUE_BITS: u8 = 16;

/// The CS-ECG encoder.
///
/// # Examples
///
/// ```
/// use cs_core::{Encoder, SystemConfig};
/// use cs_codec::Codebook;
/// use std::sync::Arc;
///
/// let config = SystemConfig::paper_default();
/// let codebook = Arc::new(Codebook::from_counts(&vec![1; 512], 512)?);
/// let mut encoder = Encoder::new(&config, codebook)?;
///
/// let samples = vec![0_i16; 512]; // one 2-second packet
/// let packet = encoder.encode_packet(&samples)?;
/// assert_eq!(packet.index, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    config: SystemConfig,
    phi: SparseBinarySensing,
    diff: DiffEncoder,
    codebook: Arc<Codebook>,
    next_index: u64,
    /// Where stage spans land; the shared disabled registry (one atomic
    /// load per span) unless the owner installs a live one.
    telemetry: TelemetryRegistry,
}

impl Encoder {
    /// Builds the encoder from the shared system configuration and an
    /// offline-trained codebook.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] if the codebook alphabet
    /// disagrees with the configuration or `d` is too large for raw
    /// 16-bit reference packets, and propagates sensing-matrix
    /// construction failures.
    pub fn new(config: &SystemConfig, codebook: Arc<Codebook>) -> Result<Self, PipelineError> {
        if codebook.alphabet_size() != config.alphabet() {
            return Err(PipelineError::InvalidConfig(format!(
                "codebook alphabet {} does not match configured {}",
                codebook.alphabet_size(),
                config.alphabet()
            )));
        }
        // Raw reference values are sent as 16 bits; with 11-bit samples the
        // unscaled sums need d ≤ 32 to be representable.
        if config.sparse_ones_per_column() > 32 {
            return Err(PipelineError::InvalidConfig(format!(
                "d = {} overflows 16-bit reference packets (max 32)",
                config.sparse_ones_per_column()
            )));
        }
        let phi = SparseBinarySensing::new(
            config.measurements(),
            config.packet_len(),
            config.sparse_ones_per_column(),
            config.seed(),
        )?;
        let diff = DiffEncoder::new(DiffConfig {
            vector_len: config.measurements(),
            reference_interval: config.reference_interval(),
            alphabet: config.alphabet(),
        });
        Ok(Encoder {
            config: config.clone(),
            phi,
            diff,
            codebook,
            next_index: 0,
            telemetry: TelemetryRegistry::disabled(),
        })
    }

    /// Installs a telemetry registry: subsequent encodes time each mote
    /// stage (sensing projection, differencing, entropy coding, packet
    /// assembly) into its histograms.
    pub fn set_telemetry(&mut self, telemetry: TelemetryRegistry) {
        self.telemetry = telemetry;
    }

    /// The registry this encoder records into.
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// The sensing matrix (shared with the decoder through the seed).
    pub fn sensing(&self) -> &SparseBinarySensing {
        &self.phi
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of packets encoded so far.
    pub fn packets_encoded(&self) -> u64 {
        self.next_index
    }

    /// Encodes one packet of signed, midscale-removed ADC samples.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::PacketLength`] if `samples` is not exactly
    /// one packet long, and propagates codec failures.
    pub fn encode_packet(&mut self, samples: &[i16]) -> Result<EncodedPacket, PipelineError> {
        if samples.len() != self.config.packet_len() {
            return Err(PipelineError::PacketLength {
                expected: self.config.packet_len(),
                actual: samples.len(),
            });
        }
        // Stage 1: linear CS measurement (integer gather-add, no multiply).
        let y = {
            let _span = self.telemetry.span(Stage::SensingProjection);
            self.phi.apply_unscaled_i32(samples)
        };

        // Stage 2: inter-packet redundancy removal.
        let diff_packet = {
            let _span = self.telemetry.span(Stage::DiffEncode);
            self.diff.encode(&y)?
        };

        // Stage 3: entropy coding.
        let entropy_span = self.telemetry.span(Stage::HuffmanEncode);
        let mut writer = BitWriter::new();
        let kind = match &diff_packet {
            DiffPacket::Reference(values) => {
                for &v in values {
                    debug_assert!(
                        (i16::MIN as i32..=i16::MAX as i32).contains(&v),
                        "reference value {v} outside 16 bits"
                    );
                    writer.write_bits((v as i16 as u16) as u32, REFERENCE_VALUE_BITS);
                }
                PacketKind::Reference
            }
            DiffPacket::Delta(block) => {
                // 4-bit adaptive gain, then the Huffman-coded symbols.
                writer.write_bits(block.shift as u32, 4);
                let alphabet = self.config.alphabet();
                let symbols: Vec<u16> = block
                    .values
                    .iter()
                    .map(|&d| value_to_symbol(d as i32, alphabet))
                    .collect::<Result<_, _>>()?;
                self.codebook.encode(&symbols, &mut writer)?;
                PacketKind::Delta
            }
        };

        drop(entropy_span);

        // Stage 4: wire assembly.
        let _span = self.telemetry.span(Stage::Packetize);
        let payload_bits = writer.bit_len();
        let packet = EncodedPacket {
            index: self.next_index,
            kind,
            payload: writer.finish(),
            payload_bits,
        };
        self.next_index += 1;
        Ok(packet)
    }

    /// Restarts the stream: the next packet becomes a reference and the
    /// sequence index resets.
    pub fn reset(&mut self) {
        self.diff.reset();
        self.next_index = 0;
    }

    /// Forces the next packet to be a reference **without** resetting the
    /// sequence index. This is the adaptive-fidelity hand-off primitive:
    /// when a tier switch re-routes a lead to a different encoder lane,
    /// the receiving lane must re-anchor its differencing (the decoder has
    /// no delta base at the new measurement size) while the wire sequence
    /// keeps climbing monotonically for reassembly dedup.
    pub fn force_reference(&mut self) {
        self.diff.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder_with_uniform_codebook(config: &SystemConfig) -> Encoder {
        let cb = Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap();
        Encoder::new(config, Arc::new(cb)).unwrap()
    }

    #[test]
    fn first_packet_is_reference() {
        let config = SystemConfig::paper_default();
        let mut enc = encoder_with_uniform_codebook(&config);
        let p = enc.encode_packet(&vec![0; 512]).unwrap();
        assert_eq!(p.kind, PacketKind::Reference);
        assert_eq!(p.payload_bits, 256 * 16);
        let p2 = enc.encode_packet(&vec![0; 512]).unwrap();
        assert_eq!(p2.kind, PacketKind::Delta);
        assert_eq!(p2.index, 1);
    }

    #[test]
    fn identical_packets_compress_tightly() {
        let config = SystemConfig::paper_default();
        let mut enc = encoder_with_uniform_codebook(&config);
        let samples: Vec<i16> = (0..512).map(|i| ((i * 13) % 2000) as i16 - 1000).collect();
        let _ = enc.encode_packet(&samples).unwrap();
        let delta = enc.encode_packet(&samples).unwrap();
        // All-zero deltas under a uniform codebook: 9 bits per symbol.
        assert_eq!(delta.kind, PacketKind::Delta);
        assert_eq!(delta.payload_bits, 4 + 256 * 9);
    }

    #[test]
    fn wrong_length_rejected() {
        let config = SystemConfig::paper_default();
        let mut enc = encoder_with_uniform_codebook(&config);
        assert!(matches!(
            enc.encode_packet(&[0; 100]),
            Err(PipelineError::PacketLength { expected: 512, actual: 100 })
        ));
    }

    #[test]
    fn codebook_alphabet_must_match() {
        let config = SystemConfig::paper_default();
        let cb = Codebook::from_counts(&vec![1; 256], 256).unwrap();
        assert!(Encoder::new(&config, Arc::new(cb)).is_err());
    }

    #[test]
    fn oversized_d_rejected() {
        let config = SystemConfig::builder()
            .sparse_ones_per_column(40)
            .build()
            .unwrap();
        let cb = Codebook::from_counts(&vec![1; 512], 512).unwrap();
        assert!(Encoder::new(&config, Arc::new(cb)).is_err());
    }

    #[test]
    fn reset_restarts_sequence() {
        let config = SystemConfig::paper_default();
        let mut enc = encoder_with_uniform_codebook(&config);
        let _ = enc.encode_packet(&vec![0; 512]).unwrap();
        enc.reset();
        let p = enc.encode_packet(&vec![0; 512]).unwrap();
        assert_eq!(p.index, 0);
        assert_eq!(p.kind, PacketKind::Reference);
    }

    #[test]
    fn reference_cadence_matches_config() {
        let config = SystemConfig::builder().reference_interval(3).build().unwrap();
        let mut enc = encoder_with_uniform_codebook(&config);
        let kinds: Vec<PacketKind> = (0..6)
            .map(|_| enc.encode_packet(&vec![0; 512]).unwrap().kind)
            .collect();
        assert_eq!(
            kinds,
            [
                PacketKind::Reference,
                PacketKind::Delta,
                PacketKind::Delta,
                PacketKind::Reference,
                PacketKind::Delta,
                PacketKind::Delta
            ]
        );
    }
}
