//! Closed-loop adaptive fidelity: clinical state steers encode config.
//!
//! The power story of compressed sensing is spending as few measurement
//! bits as possible — but the clinical story (the reason the monitor
//! exists) is not missing the arrhythmia. This module reconciles the two
//! the way "Energy Efficient Telemonitoring of Physiological Signals via
//! Compressed Sensing" suggests: run the mote at an aggressive
//! compression ratio while the rhythm is unremarkable, and drop to a
//! diagnostic-fidelity configuration (lower CR, differencing disabled so
//! every packet stands alone) the moment the analysis layer flags the
//! patient. A quiet holdoff later, the aggressive tier is restored.
//!
//! ## Wire self-description
//!
//! Changing CR mid-stream changes `M`, and the decoder must agree on `M`
//! before it can even entropy-decode a payload. Rather than widening the
//! wire format, the tier is self-describing: every tier switch starts
//! with a forced *reference* packet, reference payloads are exactly
//! `M × 16` bits, and the schedule guarantees the tiers' `M` values are
//! distinct — so the reference's size alone names the tier. Delta packets
//! then stick with the last announced tier (the diagnostic tier never
//! emits deltas; its reference interval is 1).
//!
//! Sequence numbers stay monotonic across switches — the encoder owns a
//! per-lead wire counter independent of the per-tier lanes — so
//! reassembly dedup and loss accounting keep working through a tier
//! change.

use crate::config::SystemConfig;
use crate::decoder::{DecodedPacket, Decoder, SolverPolicy};
use crate::encoder::Encoder;
use crate::error::PipelineError;
use crate::multichannel::ChannelPacket;
use crate::packet::PacketKind;
use cs_codec::Codebook;
use cs_dsp::Real;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Bits per raw measurement in reference packets (must match the
/// encoder's wire layout: a reference payload is `M × 16` bits).
const REFERENCE_VALUE_BITS: usize = 16;

/// A fidelity tier the adaptive loop can place a patient in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FidelityTier {
    /// Steady-state tier: aggressive CR, differencing enabled. The
    /// power-optimal configuration for an unremarkable rhythm.
    Routine,
    /// Escalated tier: lower CR for reconstruction headroom and
    /// differencing disabled (reference interval 1) so every packet is
    /// independently decodable while the rhythm is abnormal.
    Diagnostic,
}

impl FidelityTier {
    /// Number of tiers (array sizing).
    pub const COUNT: usize = 2;

    /// Every tier, routine first.
    pub const ALL: [FidelityTier; FidelityTier::COUNT] =
        [FidelityTier::Routine, FidelityTier::Diagnostic];

    /// Dense index into per-tier arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name for reports and exports.
    pub fn name(self) -> &'static str {
        match self {
            FidelityTier::Routine => "routine",
            FidelityTier::Diagnostic => "diagnostic",
        }
    }
}

impl std::fmt::Display for FidelityTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The pre-agreed pair of configurations both sides run. Like
/// [`SystemConfig`] itself, the schedule is shared out of band; only the
/// *current tier* travels on the wire (implicitly, via reference-packet
/// size).
#[derive(Debug, Clone)]
pub struct FidelitySchedule {
    configs: [SystemConfig; FidelityTier::COUNT],
}

impl FidelitySchedule {
    /// Derives the diagnostic tier from a routine configuration: same N,
    /// wavelet, seed, and alphabet, but `diagnostic_cr` percent
    /// compression and differencing disabled (reference interval 1).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] if the diagnostic CR is
    /// not *below* the routine CR, if the derived configuration is
    /// structurally invalid, or if the two tiers would share a
    /// measurement count (which would break wire self-description).
    pub fn new(routine: &SystemConfig, diagnostic_cr: f64) -> Result<Self, PipelineError> {
        if diagnostic_cr >= routine.compression_ratio() {
            return Err(PipelineError::InvalidConfig(format!(
                "diagnostic CR {diagnostic_cr} must be below routine CR {}",
                routine.compression_ratio()
            )));
        }
        let diagnostic = SystemConfig::builder()
            .packet_len(routine.packet_len())
            .compression_ratio(diagnostic_cr)
            .sparse_ones_per_column(routine.sparse_ones_per_column())
            .seed(routine.seed())
            .wavelet(routine.wavelet_family())
            .levels(routine.levels())
            .reference_interval(1)
            .alphabet(routine.alphabet())
            .sample_bits(routine.sample_bits())
            .build()?;
        if diagnostic.measurements() == routine.measurements() {
            return Err(PipelineError::InvalidConfig(format!(
                "tiers share M = {}; reference size cannot name the tier",
                routine.measurements()
            )));
        }
        Ok(FidelitySchedule {
            configs: [routine.clone(), diagnostic],
        })
    }

    /// The configuration a tier runs.
    pub fn config(&self, tier: FidelityTier) -> &SystemConfig {
        &self.configs[tier.index()]
    }

    /// Names the tier whose reference packets carry `m` measurements, if
    /// any — the receive-side half of wire self-description.
    pub fn tier_for_measurements(&self, m: usize) -> Option<FidelityTier> {
        FidelityTier::ALL
            .into_iter()
            .find(|&t| self.configs[t.index()].measurements() == m)
    }
}

/// Shared per-patient tier cells: the feedback plumbing between the
/// clinical analysis layer (writer) and the adaptive encoders (readers).
/// Cheap to clone; all clones observe the same cells.
#[derive(Debug, Clone)]
pub struct TierController {
    tiers: Arc<[AtomicUsize]>,
    escalations: Arc<AtomicU64>,
    restorations: Arc<AtomicU64>,
}

impl TierController {
    /// Builds a controller for `patients` streams, all starting Routine.
    pub fn new(patients: usize) -> Self {
        TierController {
            tiers: (0..patients).map(|_| AtomicUsize::new(0)).collect(),
            escalations: Arc::new(AtomicU64::new(0)),
            restorations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of streams the controller tracks.
    pub fn patients(&self) -> usize {
        self.tiers.len()
    }

    /// Sets a patient's tier; counts the transition if it changed.
    /// Out-of-range streams are ignored (a late feedback message for a
    /// departed patient must not panic the analysis thread).
    pub fn set_tier(&self, stream: usize, tier: FidelityTier) {
        let Some(cell) = self.tiers.get(stream) else {
            return;
        };
        let prev = cell.swap(tier.index(), Ordering::Relaxed);
        if prev != tier.index() {
            match tier {
                FidelityTier::Diagnostic => self.escalations.fetch_add(1, Ordering::Relaxed),
                FidelityTier::Routine => self.restorations.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    /// A patient's current tier (Routine for out-of-range streams).
    pub fn tier(&self, stream: usize) -> FidelityTier {
        match self.tiers.get(stream).map(|c| c.load(Ordering::Relaxed)) {
            Some(1) => FidelityTier::Diagnostic,
            _ => FidelityTier::Routine,
        }
    }

    /// Routine→Diagnostic transitions observed so far.
    pub fn escalations(&self) -> u64 {
        self.escalations.load(Ordering::Relaxed)
    }

    /// Diagnostic→Routine transitions observed so far.
    pub fn restorations(&self) -> u64 {
        self.restorations.load(Ordering::Relaxed)
    }
}

/// A tier-change notice from the clinical layer to the encode side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClinicalFeedback {
    /// Patient stream the notice applies to.
    pub stream: usize,
    /// The tier the patient should run from now on.
    pub tier: FidelityTier,
}

/// Mote-side adaptive encoder: per-lead, per-tier [`Encoder`] lanes
/// behind one per-lead monotonic wire sequence.
///
/// # Examples
///
/// ```
/// use cs_core::{uniform_codebook, AdaptiveEncoder, FidelitySchedule, FidelityTier, SystemConfig};
/// use std::sync::Arc;
///
/// let routine = SystemConfig::builder().compression_ratio(75.0).build()?;
/// let schedule = FidelitySchedule::new(&routine, 50.0)?;
/// let codebook = Arc::new(uniform_codebook(routine.alphabet())?);
/// let mut enc = AdaptiveEncoder::new(schedule, codebook, 1)?;
///
/// let quiet = vec![0_i16; 512];
/// let p0 = enc.encode_packet(0, &quiet)?;          // routine reference
/// enc.set_tier(FidelityTier::Diagnostic);           // clinical escalation
/// let p1 = enc.encode_packet(0, &quiet)?;          // diagnostic reference
/// assert!(p1.packet.payload_bits > p0.packet.payload_bits);
/// assert_eq!(p1.packet.index, 1);                   // sequence survives the switch
/// # Ok::<(), cs_core::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveEncoder {
    schedule: FidelitySchedule,
    /// `lanes[channel][tier]`.
    lanes: Vec<[Encoder; FidelityTier::COUNT]>,
    wire_seq: Vec<u64>,
    tier: FidelityTier,
    switches: u64,
}

impl AdaptiveEncoder {
    /// Builds `channels` leads, each with one encoder lane per tier, all
    /// sharing one codebook. Starts in [`FidelityTier::Routine`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for zero channels and
    /// propagates per-lane construction failures.
    pub fn new(
        schedule: FidelitySchedule,
        codebook: Arc<Codebook>,
        channels: usize,
    ) -> Result<Self, PipelineError> {
        if channels == 0 {
            return Err(PipelineError::InvalidConfig("zero channels".into()));
        }
        let mut lanes = Vec::with_capacity(channels);
        for _ in 0..channels {
            lanes.push([
                Encoder::new(schedule.config(FidelityTier::Routine), Arc::clone(&codebook))?,
                Encoder::new(
                    schedule.config(FidelityTier::Diagnostic),
                    Arc::clone(&codebook),
                )?,
            ]);
        }
        Ok(AdaptiveEncoder {
            schedule,
            lanes,
            wire_seq: vec![0; channels],
            tier: FidelityTier::Routine,
            switches: 0,
        })
    }

    /// The schedule both sides agreed on.
    pub fn schedule(&self) -> &FidelitySchedule {
        &self.schedule
    }

    /// Number of leads.
    pub fn channels(&self) -> usize {
        self.lanes.len()
    }

    /// The tier currently encoding.
    pub fn tier(&self) -> FidelityTier {
        self.tier
    }

    /// Tier switches performed so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Moves every lead to `tier`. On a change, the destination lanes are
    /// forced to re-anchor: their next packet is a reference, which both
    /// announces the new tier on the wire (by size) and gives the decoder
    /// a fresh delta base. A no-op when already in `tier`.
    pub fn set_tier(&mut self, tier: FidelityTier) {
        if tier == self.tier {
            return;
        }
        for lanes in &mut self.lanes {
            lanes[tier.index()].force_reference();
        }
        self.tier = tier;
        self.switches += 1;
    }

    /// Encodes one packet for `channel` at the current tier. The emitted
    /// packet's `index` is the lead's wire sequence (monotonic across
    /// tier switches), not the per-tier lane counter.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for an unknown channel
    /// and propagates encode failures.
    pub fn encode_packet(
        &mut self,
        channel: usize,
        samples: &[i16],
    ) -> Result<ChannelPacket, PipelineError> {
        let tier = self.tier;
        let lane = self
            .lanes
            .get_mut(channel)
            .ok_or_else(|| PipelineError::InvalidConfig(format!("unknown channel {channel}")))?;
        let mut packet = lane[tier.index()].encode_packet(samples)?;
        packet.index = self.wire_seq[channel];
        self.wire_seq[channel] += 1;
        Ok(ChannelPacket {
            channel: channel as u8,
            packet,
        })
    }
}

/// Coordinator-side adaptive decoder: per-lead, per-tier [`Decoder`]
/// lanes that follow tier switches announced by reference-packet size.
#[derive(Debug)]
pub struct AdaptiveDecoder<T: Real> {
    schedule: FidelitySchedule,
    /// `lanes[channel][tier]`.
    lanes: Vec<[Decoder<T>; FidelityTier::COUNT]>,
    current: Vec<FidelityTier>,
}

impl<T: Real> AdaptiveDecoder<T> {
    /// Builds `channels` leads, each with one decoder lane per tier.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for zero channels and
    /// propagates per-lane construction failures.
    pub fn new(
        schedule: FidelitySchedule,
        codebook: Arc<Codebook>,
        policy: SolverPolicy<T>,
        channels: usize,
    ) -> Result<Self, PipelineError> {
        if channels == 0 {
            return Err(PipelineError::InvalidConfig("zero channels".into()));
        }
        let mut lanes = Vec::with_capacity(channels);
        for _ in 0..channels {
            lanes.push([
                Decoder::new(
                    schedule.config(FidelityTier::Routine),
                    Arc::clone(&codebook),
                    policy,
                )?,
                Decoder::new(
                    schedule.config(FidelityTier::Diagnostic),
                    Arc::clone(&codebook),
                    policy,
                )?,
            ]);
        }
        Ok(AdaptiveDecoder {
            schedule,
            lanes,
            current: vec![FidelityTier::Routine; channels],
        })
    }

    /// The tier a lead's stream is currently in.
    pub fn tier(&self, channel: usize) -> FidelityTier {
        self.current.get(channel).copied().unwrap_or(FidelityTier::Routine)
    }

    /// Decodes one tagged packet, following tier announcements.
    ///
    /// A reference packet's payload size names its tier (`M × 16` bits,
    /// distinct per tier by schedule construction); an unrecognized size
    /// is rejected as malformed. Delta packets decode at the lead's
    /// current tier.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::MalformedPacket`] for unknown lanes or
    /// unrecognized reference sizes, and propagates decode failures.
    pub fn decode(
        &mut self,
        packet: &ChannelPacket,
    ) -> Result<(FidelityTier, DecodedPacket<T>), PipelineError> {
        let ch = packet.channel as usize;
        if ch >= self.lanes.len() {
            return Err(PipelineError::MalformedPacket(format!(
                "unknown channel {ch}"
            )));
        }
        if packet.packet.kind == PacketKind::Reference {
            let m = packet.packet.payload_bits / REFERENCE_VALUE_BITS;
            let tier = self.schedule.tier_for_measurements(m).ok_or_else(|| {
                PipelineError::MalformedPacket(format!(
                    "reference with {m} measurements matches no scheduled tier"
                ))
            })?;
            self.current[ch] = tier;
        }
        let tier = self.current[ch];
        let out = self.lanes[ch][tier.index()].decode_packet(&packet.packet)?;
        Ok((tier, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::uniform_codebook;
    use cs_metrics::prd;

    fn lead(phase: f64) -> Vec<i16> {
        (0..512)
            .map(|i| {
                let t = i as f64 / 512.0;
                (600.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp()) as i16
            })
            .collect()
    }

    fn schedule() -> FidelitySchedule {
        let routine = SystemConfig::builder()
            .compression_ratio(75.0)
            .build()
            .unwrap();
        FidelitySchedule::new(&routine, 50.0).unwrap()
    }

    fn setup(channels: usize) -> (AdaptiveEncoder, AdaptiveDecoder<f64>) {
        let sched = schedule();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        (
            AdaptiveEncoder::new(sched.clone(), Arc::clone(&cb), channels).unwrap(),
            AdaptiveDecoder::new(sched, cb, SolverPolicy::default(), channels).unwrap(),
        )
    }

    #[test]
    fn schedule_validates_tier_separation() {
        let routine = SystemConfig::paper_default(); // CR 50
        assert!(FidelitySchedule::new(&routine, 50.0).is_err());
        assert!(FidelitySchedule::new(&routine, 75.0).is_err());
        let sched = FidelitySchedule::new(&routine, 25.0).unwrap();
        assert_eq!(sched.config(FidelityTier::Diagnostic).reference_interval(), 1);
        assert_eq!(
            sched.tier_for_measurements(sched.config(FidelityTier::Routine).measurements()),
            Some(FidelityTier::Routine)
        );
        assert_eq!(
            sched.tier_for_measurements(sched.config(FidelityTier::Diagnostic).measurements()),
            Some(FidelityTier::Diagnostic)
        );
        assert_eq!(sched.tier_for_measurements(7), None);
    }

    #[test]
    fn tier_switch_round_trips_with_monotonic_sequence() {
        let (mut enc, mut dec) = setup(1);
        let x = lead(0.0);
        let truth: Vec<f64> = x.iter().map(|&v| v as f64).collect();

        let mut seqs = Vec::new();
        for step in 0..8 {
            match step {
                3 => enc.set_tier(FidelityTier::Diagnostic),
                6 => enc.set_tier(FidelityTier::Routine),
                _ => {}
            }
            let p = enc.encode_packet(0, &x).unwrap();
            seqs.push(p.packet.index);
            let (tier, out) = dec.decode(&p).unwrap();
            let want = if (3..6).contains(&step) {
                FidelityTier::Diagnostic
            } else {
                FidelityTier::Routine
            };
            assert_eq!(tier, want, "step {step}");
            assert!(prd(&truth, &out.samples) < 30.0, "step {step}");
        }
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>());
        assert_eq!(enc.switches(), 2);
    }

    #[test]
    fn diagnostic_tier_reconstructs_tighter() {
        let (mut enc, mut dec) = setup(1);
        let x = lead(0.0);
        let truth: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let (_, routine) = dec.decode(&enc.encode_packet(0, &x).unwrap()).unwrap();
        enc.set_tier(FidelityTier::Diagnostic);
        let (_, diagnostic) = dec.decode(&enc.encode_packet(0, &x).unwrap()).unwrap();
        assert!(
            prd(&truth, &diagnostic.samples) < prd(&truth, &routine.samples),
            "diagnostic {} vs routine {}",
            prd(&truth, &diagnostic.samples),
            prd(&truth, &routine.samples)
        );
    }

    #[test]
    fn returning_to_a_tier_reanchors_differencing() {
        let (mut enc, mut dec) = setup(2);
        let x = lead(0.0);
        // Build routine delta state on both leads, bounce to diagnostic
        // and back; the re-entered routine tier must lead with a
        // reference (decodable with no delta base).
        for _ in 0..2 {
            for ch in 0..2 {
                dec.decode(&enc.encode_packet(ch, &x).unwrap()).unwrap();
            }
        }
        enc.set_tier(FidelityTier::Diagnostic);
        for ch in 0..2 {
            dec.decode(&enc.encode_packet(ch, &x).unwrap()).unwrap();
        }
        enc.set_tier(FidelityTier::Routine);
        for ch in 0..2 {
            let p = enc.encode_packet(ch, &x).unwrap();
            assert_eq!(p.packet.kind, PacketKind::Reference, "lead {ch}");
            dec.decode(&p).unwrap();
        }
    }

    #[test]
    fn unscheduled_reference_size_rejected() {
        let (mut enc, mut dec) = setup(1);
        let mut p = enc.encode_packet(0, &lead(0.0)).unwrap();
        assert_eq!(p.packet.kind, PacketKind::Reference);
        p.packet.payload_bits -= 16; // one measurement short of any tier
        assert!(matches!(
            dec.decode(&p),
            Err(PipelineError::MalformedPacket(_))
        ));
    }

    #[test]
    fn controller_counts_transitions_and_ignores_strays() {
        let ctl = TierController::new(2);
        assert_eq!(ctl.tier(0), FidelityTier::Routine);
        ctl.set_tier(0, FidelityTier::Diagnostic);
        ctl.set_tier(0, FidelityTier::Diagnostic); // no-op
        ctl.set_tier(1, FidelityTier::Diagnostic);
        ctl.set_tier(0, FidelityTier::Routine);
        assert_eq!(ctl.tier(0), FidelityTier::Routine);
        assert_eq!(ctl.tier(1), FidelityTier::Diagnostic);
        assert_eq!(ctl.escalations(), 2);
        assert_eq!(ctl.restorations(), 1);
        // Out-of-range stream: ignored, not a panic.
        ctl.set_tier(9, FidelityTier::Diagnostic);
        assert_eq!(ctl.tier(9), FidelityTier::Routine);
        assert_eq!(ctl.escalations(), 2);
    }

    #[test]
    fn zero_channels_rejected() {
        let sched = schedule();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        assert!(AdaptiveEncoder::new(sched.clone(), Arc::clone(&cb), 0).is_err());
        assert!(
            AdaptiveDecoder::<f64>::new(sched, cb, SolverPolicy::default(), 0).is_err()
        );
    }
}
