//! Wire-format packets.
//!
//! The mote transmits one [`EncodedPacket`] per 2-second window over the
//! Bluetooth link. The frame is versioned and integrity-checked so that
//! corruption is detected at ingest — before the Huffman decoder ever
//! sees the bytes — while staying lean enough that every header byte is
//! still defensible against the energy model:
//!
//! ```text
//! offset  size  field
//!      0     1  magic (0xC5)
//!      1     1  version (0x01)
//!      2     1  lane (ECG lead tag; 0 for single-lead streams)
//!      3     1  kind ('R' = reference, 'D' = delta)
//!      4     4  sequence number, u32 LE
//!      8     3  payload bit count, u24 LE
//!     11     …  bit-packed payload (padded to a byte boundary)
//!   len-2     2  CRC-16/CCITT-FALSE over bytes[0..len-2], LE
//! ```
//!
//! The CRC covers the header *including* the lane byte, so a corrupted
//! lead tag cannot silently misroute a packet into the wrong decoder
//! lane. Parsing is allocation-free via [`parse_frame`]; the owning
//! [`EncodedPacket::from_bytes`] wraps it for callers that want a copy.

use crate::error::PipelineError;

/// Whether a packet carries a raw reference vector or Huffman-coded deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Raw 16-bit measurement vector (resynchronization point).
    Reference,
    /// Huffman-coded difference symbols.
    Delta,
}

/// One encoded CS-ECG packet as it leaves the mote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedPacket {
    /// Monotone sequence number assigned by the encoder.
    pub index: u64,
    /// Payload interpretation.
    pub kind: PacketKind,
    /// Bit-packed payload (padded to a byte boundary).
    pub payload: Vec<u8>,
    /// Exact number of meaningful payload bits (excludes padding).
    pub payload_bits: usize,
}

/// First frame byte, chosen to be asymmetric and unlikely in silence.
pub const FRAME_MAGIC: u8 = 0xC5;
/// Reserved lane for frames that failed to parse on arrival. No encoder
/// ever emits it: archival sinks and soak harnesses route unattributable
/// bytes here, sequenced by arrival order, so a post-mortem can replay
/// the damage the wire actually delivered.
pub const QUARANTINE_LANE: u8 = 0xFF;
/// Current frame format version.
pub const FRAME_VERSION: u8 = 0x01;
/// Framed header size in bytes:
/// magic (1) + version (1) + lane (1) + kind (1) + seq (4) + bit count (3).
pub const HEADER_BYTES: usize = 11;
/// Frame trailer: CRC-16/CCITT-FALSE, little-endian.
pub const TRAILER_BYTES: usize = 2;

/// Parsed frame header, borrowed view — see [`parse_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// ECG lead tag (0 for single-lead streams).
    pub lane: u8,
    /// Payload interpretation.
    pub kind: PacketKind,
    /// Per-stream sequence number.
    pub index: u64,
    /// Exact number of meaningful payload bits.
    pub payload_bits: usize,
}

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no xorout).
///
/// Bitwise and branch-light; at one ~1 kB frame per 2-second window the
/// table-free form is nowhere near the profile.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Validates and parses a frame without allocating.
///
/// Returns the header fields and a borrow of the payload bytes. Checks,
/// in order: minimum length, magic, version, CRC, kind byte, bit-count
/// consistency — so a corrupted frame is rejected by the checksum before
/// any field is interpreted.
///
/// # Errors
///
/// Returns [`PipelineError::MalformedPacket`] naming the first check that
/// failed.
pub fn parse_frame(bytes: &[u8]) -> Result<(FrameInfo, &[u8]), PipelineError> {
    if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
        return Err(PipelineError::MalformedPacket(format!(
            "{} bytes is shorter than the {}-byte minimum frame",
            bytes.len(),
            HEADER_BYTES + TRAILER_BYTES
        )));
    }
    if bytes[0] != FRAME_MAGIC {
        return Err(PipelineError::MalformedPacket(format!(
            "bad magic 0x{:02X}",
            bytes[0]
        )));
    }
    if bytes[1] != FRAME_VERSION {
        return Err(PipelineError::MalformedPacket(format!(
            "unsupported frame version {}",
            bytes[1]
        )));
    }
    let body = &bytes[..bytes.len() - TRAILER_BYTES];
    let expected = u16::from_le_bytes([bytes[bytes.len() - 2], bytes[bytes.len() - 1]]);
    let actual = crc16(body);
    if actual != expected {
        return Err(PipelineError::MalformedPacket(format!(
            "CRC mismatch: frame carries 0x{expected:04X}, computed 0x{actual:04X}"
        )));
    }
    let lane = bytes[2];
    let kind = match bytes[3] {
        0x52 => PacketKind::Reference,
        0x44 => PacketKind::Delta,
        k => {
            return Err(PipelineError::MalformedPacket(format!(
                "unknown kind byte 0x{k:02X}"
            )))
        }
    };
    let index = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as u64;
    let payload_bits = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], 0]) as usize;
    let payload = &bytes[HEADER_BYTES..bytes.len() - TRAILER_BYTES];
    if payload_bits > payload.len() * 8 {
        return Err(PipelineError::MalformedPacket(format!(
            "bit count {payload_bits} exceeds payload of {} bytes",
            payload.len()
        )));
    }
    Ok((
        FrameInfo {
            lane,
            kind,
            index,
            payload_bits,
        },
        payload,
    ))
}

impl EncodedPacket {
    /// Total framed size on the radio, header and CRC included.
    pub fn framed_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len() + TRAILER_BYTES
    }

    /// Serializes the frame with lane tag 0 (single-lead streams).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_tagged(0)
    }

    /// Serializes the frame with an explicit lane (ECG lead) tag.
    pub fn to_bytes_tagged(&self, lane: u8) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.framed_bytes());
        out.push(FRAME_MAGIC);
        out.push(FRAME_VERSION);
        out.push(lane);
        out.push(match self.kind {
            PacketKind::Reference => 0x52, // 'R'
            PacketKind::Delta => 0x44,     // 'D'
        });
        out.extend_from_slice(&(self.index as u32).to_le_bytes());
        let bits = self.payload_bits as u32;
        out.extend_from_slice(&bits.to_le_bytes()[..3]);
        out.extend_from_slice(&self.payload);
        let crc = crc16(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and copies a framed packet, discarding the lane tag.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::MalformedPacket`] on truncation, bad
    /// magic/version, CRC mismatch, an unknown kind byte, or an
    /// inconsistent bit count.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PipelineError> {
        let (info, payload) = parse_frame(bytes)?;
        Ok(EncodedPacket {
            index: info.index,
            kind: info.kind,
            payload: payload.to_vec(),
            payload_bits: info.payload_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EncodedPacket {
        EncodedPacket {
            index: 7,
            kind: PacketKind::Delta,
            payload: vec![0xDE, 0xAD, 0xBE],
            payload_bits: 21,
        }
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.framed_bytes());
        let q = EncodedPacket::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn reference_kind_round_trips() {
        let p = EncodedPacket {
            kind: PacketKind::Reference,
            ..sample()
        };
        assert_eq!(
            EncodedPacket::from_bytes(&p.to_bytes()).unwrap().kind,
            PacketKind::Reference
        );
    }

    #[test]
    fn lane_tag_round_trips_and_is_crc_covered() {
        let p = sample();
        let bytes = p.to_bytes_tagged(5);
        let (info, payload) = parse_frame(&bytes).unwrap();
        assert_eq!(info.lane, 5);
        assert_eq!(info.index, 7);
        assert_eq!(payload, &p.payload[..]);

        // Flipping the lane byte alone must fail the CRC, not misroute.
        let mut b = p.to_bytes_tagged(5);
        b[2] = 6;
        let err = parse_frame(&b).unwrap_err().to_string();
        assert!(err.contains("CRC"), "expected CRC rejection, got: {err}");
    }

    #[test]
    fn truncated_rejected() {
        assert!(EncodedPacket::from_bytes(&[FRAME_MAGIC, FRAME_VERSION, 0]).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = sample().to_bytes();
        b[0] = 0x00;
        assert!(EncodedPacket::from_bytes(&b).is_err());
    }

    #[test]
    fn future_version_rejected() {
        let mut b = sample().to_bytes();
        b[1] = 2;
        assert!(EncodedPacket::from_bytes(&b).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut b = sample().to_bytes();
        b[3] = 0xFF;
        // Re-seal so the kind check is reached, not masked by the CRC.
        let crc = crc16(&b[..b.len() - TRAILER_BYTES]);
        let n = b.len();
        b[n - 2..].copy_from_slice(&crc.to_le_bytes());
        let err = EncodedPacket::from_bytes(&b).unwrap_err().to_string();
        assert!(err.contains("kind"), "expected kind rejection, got: {err}");
    }

    #[test]
    fn inconsistent_bit_count_rejected() {
        let mut p = sample();
        p.payload_bits = 999;
        let b = p.to_bytes();
        assert!(EncodedPacket::from_bytes(&b).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let p = sample();
        let clean = p.to_bytes();
        for bit in 0..clean.len() * 8 {
            let mut b = clean.clone();
            b[bit / 8] ^= 1 << (bit % 8);
            assert!(
                EncodedPacket::from_bytes(&b).is_err(),
                "single-bit flip at bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn crc_matches_ccitt_false_check_value() {
        // The standard check input "123456789" → 0x29B1 for CRC-16/CCITT-FALSE.
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }
}
