//! Wire-format packets.
//!
//! The mote transmits one [`EncodedPacket`] per 2-second window over the
//! Bluetooth link. Framing is deliberately minimal — a kind byte, a 32-bit
//! sequence index and a 24-bit payload bit count — since every header byte
//! is airtime the energy model charges for.

use crate::error::PipelineError;

/// Whether a packet carries a raw reference vector or Huffman-coded deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Raw 16-bit measurement vector (resynchronization point).
    Reference,
    /// Huffman-coded difference symbols.
    Delta,
}

/// One encoded CS-ECG packet as it leaves the mote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedPacket {
    /// Monotone sequence number assigned by the encoder.
    pub index: u64,
    /// Payload interpretation.
    pub kind: PacketKind,
    /// Bit-packed payload (padded to a byte boundary).
    pub payload: Vec<u8>,
    /// Exact number of meaningful payload bits (excludes padding).
    pub payload_bits: usize,
}

/// Framed header size in bytes: kind (1) + index (4) + bit count (3).
pub const HEADER_BYTES: usize = 8;

impl EncodedPacket {
    /// Total framed size on the radio, header included.
    pub fn framed_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// Serializes header + payload for the link.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.framed_bytes());
        out.push(match self.kind {
            PacketKind::Reference => 0x52, // 'R'
            PacketKind::Delta => 0x44,     // 'D'
        });
        out.extend_from_slice(&(self.index as u32).to_le_bytes());
        let bits = self.payload_bits as u32;
        out.extend_from_slice(&bits.to_le_bytes()[..3]);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a framed packet.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::MalformedPacket`] on truncation, an unknown
    /// kind byte, or an inconsistent bit count.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PipelineError> {
        if bytes.len() < HEADER_BYTES {
            return Err(PipelineError::MalformedPacket(format!(
                "{} bytes is shorter than the {HEADER_BYTES}-byte header",
                bytes.len()
            )));
        }
        let kind = match bytes[0] {
            0x52 => PacketKind::Reference,
            0x44 => PacketKind::Delta,
            k => {
                return Err(PipelineError::MalformedPacket(format!(
                    "unknown kind byte 0x{k:02X}"
                )))
            }
        };
        let index = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as u64;
        let payload_bits =
            u32::from_le_bytes([bytes[5], bytes[6], bytes[7], 0]) as usize;
        let payload = bytes[HEADER_BYTES..].to_vec();
        if payload_bits > payload.len() * 8 {
            return Err(PipelineError::MalformedPacket(format!(
                "bit count {payload_bits} exceeds payload of {} bytes",
                payload.len()
            )));
        }
        Ok(EncodedPacket {
            index,
            kind,
            payload,
            payload_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EncodedPacket {
        EncodedPacket {
            index: 7,
            kind: PacketKind::Delta,
            payload: vec![0xDE, 0xAD, 0xBE],
            payload_bits: 21,
        }
    }

    #[test]
    fn round_trip() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.framed_bytes());
        let q = EncodedPacket::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn reference_kind_round_trips() {
        let p = EncodedPacket {
            kind: PacketKind::Reference,
            ..sample()
        };
        assert_eq!(EncodedPacket::from_bytes(&p.to_bytes()).unwrap().kind, PacketKind::Reference);
    }

    #[test]
    fn truncated_rejected() {
        assert!(EncodedPacket::from_bytes(&[0x52, 0, 0]).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut b = sample().to_bytes();
        b[0] = 0xFF;
        assert!(EncodedPacket::from_bytes(&b).is_err());
    }

    #[test]
    fn inconsistent_bit_count_rejected() {
        let mut p = sample();
        p.payload_bits = 999;
        let b = p.to_bytes();
        assert!(EncodedPacket::from_bytes(&b).is_err());
    }
}
