//! Pipeline-level error type.

use cs_codec::CodecError;
use cs_dsp::DspError;
use cs_sensing::SensingError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the end-to-end CS-ECG pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// A configuration combination was structurally invalid.
    InvalidConfig(String),
    /// A packet of samples had the wrong length.
    PacketLength {
        /// Configured packet length N.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// A received packet could not be parsed (framing corruption).
    MalformedPacket(String),
    /// An error bubbled up from the DSP substrate.
    Dsp(DspError),
    /// An error bubbled up from the sensing substrate.
    Sensing(SensingError),
    /// An error bubbled up from the entropy-coding substrate.
    Codec(CodecError),
    /// A fleet decode worker failed; the whole run is torn down.
    Fleet {
        /// Stream whose packet triggered the failure, if attributable.
        stream: Option<usize>,
        /// Human-readable cause (decode error text or "worker panicked").
        cause: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::PacketLength { expected, actual } => {
                write!(f, "packet has {actual} samples, configured for {expected}")
            }
            PipelineError::MalformedPacket(msg) => write!(f, "malformed packet: {msg}"),
            PipelineError::Dsp(e) => write!(f, "dsp: {e}"),
            PipelineError::Sensing(e) => write!(f, "sensing: {e}"),
            PipelineError::Codec(e) => write!(f, "codec: {e}"),
            PipelineError::Fleet { stream: Some(s), cause } => {
                write!(f, "fleet worker failed on stream {s}: {cause}")
            }
            PipelineError::Fleet { stream: None, cause } => {
                write!(f, "fleet worker failed: {cause}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Dsp(e) => Some(e),
            PipelineError::Sensing(e) => Some(e),
            PipelineError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for PipelineError {
    fn from(e: DspError) -> Self {
        PipelineError::Dsp(e)
    }
}

impl From<SensingError> for PipelineError {
    fn from(e: SensingError) -> Self {
        PipelineError::Sensing(e)
    }
}

impl From<CodecError> for PipelineError {
    fn from(e: CodecError) -> Self {
        PipelineError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = PipelineError::PacketLength {
            expected: 512,
            actual: 100,
        };
        assert!(e.to_string().contains("512"));
        assert!(e.source().is_none());

        let e: PipelineError = CodecError::InvalidCodeword.into();
        assert!(e.to_string().starts_with("codec:"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<PipelineError>();
    }
}
