//! Fleet-scale decoding: many patient streams fanned over a worker pool.
//!
//! [`run_streaming`](crate::stream::run_streaming) reproduces the paper's
//! single-patient coordinator (§IV-B1): one producer, one consumer, one
//! bounded 3-packet buffer. A monitoring *service* — a ward server or a
//! telehealth backend — decodes many such patients at once, each with the
//! clinical norm of several leads. [`run_fleet`] generalizes the streaming
//! pipeline to that setting:
//!
//! * **One producer thread per stream** plays the role of each patient's
//!   mote, encoding multi-lead frames into tagged
//!   [`ChannelPacket`]s.
//! * **M decode workers** each own a bounded input queue (the per-worker
//!   analogue of the paper's 3-packet shared buffer). Streams are assigned
//!   to workers by *stream affinity* (`worker = stream mod M`): a stream's
//!   differencing state and warm-start estimate are inherently sequential,
//!   so all of its packets must visit the same worker, in order.
//! * **A collector** on the calling thread reassembles results per stream
//!   by sequence number and emits them strictly in order, so downstream
//!   consumers observe exactly the per-patient order `run_streaming`
//!   would deliver.
//! * **Backpressure** is explicit: producers first `try_send`; a full
//!   queue counts one stall before the blocking send (radio buffering, in
//!   hardware terms).
//! * **Shutdown** is by channel-disconnect cascade. Any worker decode
//!   error (or a producer encode error) reaches the collector, which
//!   stops consuming; dropping the result channel wakes blocked workers,
//!   whose exits wake blocked producers. Worker panics are detected at
//!   join and surface as [`PipelineError::Fleet`].
//!
//! Two fleet-wide optimizations ride on this topology:
//!
//! * the power-iteration spectral setup (Lipschitz constant + deflation
//!   direction) is shared through a [`SpectralCache`], so only the first
//!   decoder of a configuration pays it;
//! * optional **warm starts** seed each packet's FISTA solve with the
//!   previous packet's coefficients (consecutive 2-second ECG windows are
//!   highly correlated), cutting iterations without moving the solution.
//!   With warm starts off the fleet is bit-exact with `run_streaming`.

use crate::config::SystemConfig;
use crate::decoder::{DecodeWorkspace, DecodedPacket, Decoder, SolverPolicy};
use crate::error::PipelineError;
use crate::multichannel::{ChannelPacket, MultiChannelEncoder};
use crate::stream::SHARED_BUFFER_PACKETS;
use cs_codec::Codebook;
use cs_dsp::Real;
use cs_recovery::SpectralCache;
use cs_telemetry::{Stage, TelemetryRegistry};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Decode workers. `0` means one per available CPU.
    pub workers: usize,
    /// Capacity of each worker's input queue, in packets. Defaults to the
    /// paper's 3-packet shared-buffer budget.
    pub channel_capacity: usize,
    /// Seed each FISTA solve with the previous packet's coefficients.
    /// `false` (the default) keeps per-stream output bit-exact with
    /// [`run_streaming`](crate::stream::run_streaming).
    pub warm_start: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 0,
            channel_capacity: SHARED_BUFFER_PACKETS,
            warm_start: false,
        }
    }
}

impl FleetConfig {
    /// The worker count actually used: `workers`, or the host parallelism
    /// when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// One patient's raw multi-lead input.
#[derive(Debug, Clone)]
pub struct FleetStream<'a> {
    /// One sample slice per lead; every lead yields
    /// `min(len) / packet_len` frames.
    pub leads: Vec<&'a [i16]>,
}

impl<'a> FleetStream<'a> {
    /// A single-lead stream.
    pub fn single(samples: &'a [i16]) -> Self {
        FleetStream { leads: vec![samples] }
    }
}

/// One decoded packet as delivered by the collector, in per-stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPacket<T: Real> {
    /// Which input stream this packet belongs to.
    pub stream: usize,
    /// Lead index within the stream.
    pub channel: u8,
    /// The reconstruction and its solver statistics.
    pub packet: DecodedPacket<T>,
}

/// Per-stream accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Packets delivered for this stream (all leads).
    pub packets: usize,
    /// Sum of solver wall-clock across the stream's packets.
    pub total_decode_time: Duration,
    /// Longest single solve.
    pub max_decode_time: Duration,
    /// Sum of FISTA iterations.
    pub total_iterations: u64,
    /// Packets whose solve was seeded from the previous estimate.
    pub warm_started: usize,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-stream accounting, indexed by stream.
    pub streams: Vec<StreamSummary>,
    /// Worker threads used.
    pub workers: usize,
    /// Packets decoded per worker (stream-affinity load picture).
    pub worker_packets: Vec<usize>,
    /// Total packets delivered across all streams.
    pub packets_decoded: usize,
    /// Times a producer found its worker's queue full and had to block.
    pub backpressure_stalls: u64,
    /// Distinct spectral configurations computed (cache misses).
    pub spectral_misses: u64,
    /// Decoder constructions served from the shared spectral cache.
    pub spectral_hits: u64,
    /// The packet period implied by the configuration (N / 256 Hz).
    pub packet_period: Duration,
    /// End-to-end wall-clock for the whole run.
    pub wall_time: Duration,
    /// Sum of solver wall-clock across all packets and streams.
    pub total_decode_time: Duration,
    /// Longest single solve anywhere in the fleet.
    pub max_decode_time: Duration,
}

impl FleetReport {
    /// Whether the fleet as a whole kept up with real time: the run
    /// finished within one packet period per *frame* (packets arrive
    /// concurrently across streams, so the budget is per frame, not per
    /// packet).
    pub fn real_time(&self) -> bool {
        let frames = self
            .streams
            .iter()
            .map(|s| s.packets)
            .max()
            .unwrap_or(0);
        self.wall_time <= self.packet_period * (frames as u32).max(1)
    }

    /// Mean FISTA iterations per packet across the fleet.
    pub fn mean_iterations(&self) -> f64 {
        if self.packets_decoded == 0 {
            return 0.0;
        }
        let total: u64 = self.streams.iter().map(|s| s.total_iterations).sum();
        total as f64 / self.packets_decoded as f64
    }
}

/// A unit of decode work: one tagged wire packet with its global
/// per-stream sequence number.
struct Job {
    stream: usize,
    seq: u64,
    packet: ChannelPacket,
}

/// What workers (and erroring producers) send the collector.
enum FleetMsg<T: Real> {
    Decoded {
        stream: usize,
        seq: u64,
        channel: u8,
        worker: usize,
        packet: DecodedPacket<T>,
    },
    Failed {
        stream: Option<usize>,
        cause: String,
    },
}

/// What each producer thread feeds from.
enum Feed<'a> {
    /// Raw leads, encoded on the producer thread (the mote's role).
    Raw(&'a FleetStream<'a>),
    /// Pre-encoded wire packets, replayed as-is. This path exists so
    /// tests can inject corrupt or reordered traffic.
    Encoded(&'a [ChannelPacket]),
}

/// Decodes many multi-lead streams concurrently over a worker pool.
///
/// `on_packet` observes every decoded packet grouped per stream in
/// arrival order (frame-major, lead-minor) — the same order
/// [`run_streaming`](crate::stream::run_streaming) delivers for each
/// stream individually.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidConfig`] for an empty fleet or a
/// stream with no leads, and [`PipelineError::Fleet`] when any worker
/// fails or panics; construction and decode errors propagate with their
/// stream attribution.
pub fn run_fleet<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    streams: &[FleetStream<'_>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if streams.iter().any(|s| s.leads.is_empty()) {
        return Err(PipelineError::InvalidConfig(
            "fleet stream with zero leads".into(),
        ));
    }
    let feeds: Vec<Feed<'_>> = streams.iter().map(Feed::Raw).collect();
    fleet_engine(
        config,
        codebook,
        feeds,
        policy,
        fleet,
        &TelemetryRegistry::disabled(),
        on_packet,
    )
}

/// [`run_fleet`] recording live telemetry: every producer encode stage,
/// worker decode stage, FISTA solve, and collector reassembly lands in
/// `telemetry`'s histograms while the fleet runs, per-worker packet
/// counts accumulate, and each solve journals a trace labelled with its
/// `(stream, channel, seq)`. Pass [`TelemetryRegistry::disabled`] to get
/// exactly [`run_fleet`] (one atomic load per span).
///
/// # Errors
///
/// Same contract as [`run_fleet`].
pub fn run_fleet_observed<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    streams: &[FleetStream<'_>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if streams.iter().any(|s| s.leads.is_empty()) {
        return Err(PipelineError::InvalidConfig(
            "fleet stream with zero leads".into(),
        ));
    }
    let feeds: Vec<Feed<'_>> = streams.iter().map(Feed::Raw).collect();
    fleet_engine(config, codebook, feeds, policy, fleet, telemetry, on_packet)
}

/// Like [`run_fleet`], but replays pre-encoded wire traffic instead of
/// encoding raw samples. Packets are delivered to the decoder in slice
/// order, so corrupting or dropping an element exercises the fleet's
/// error path deterministically.
///
/// # Errors
///
/// Same contract as [`run_fleet`].
pub fn run_fleet_encoded<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    streams: &[Vec<ChannelPacket>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    let feeds: Vec<Feed<'_>> = streams.iter().map(|s| Feed::Encoded(s)).collect();
    fleet_engine(
        config,
        codebook,
        feeds,
        policy,
        fleet,
        &TelemetryRegistry::disabled(),
        on_packet,
    )
}

fn fleet_engine<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    feeds: Vec<Feed<'_>>,
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    mut on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if feeds.is_empty() {
        return Err(PipelineError::InvalidConfig("empty fleet".into()));
    }
    if fleet.channel_capacity == 0 {
        return Err(PipelineError::InvalidConfig(
            "fleet channel capacity must be positive".into(),
        ));
    }
    let workers = fleet.effective_workers();
    let n = config.packet_len();
    let packet_period = Duration::from_secs_f64(n as f64 / 256.0);
    let nstreams = feeds.len();

    let cache: SpectralCache<T> = SpectralCache::new();
    let stalls = AtomicU64::new(0);

    // One bounded queue per worker: this is where backpressure lives.
    let (job_txs, job_rxs): (Vec<_>, Vec<_>) = (0..workers)
        .map(|_| crossbeam::channel::bounded::<Job>(fleet.channel_capacity))
        .unzip();
    // Results fan in; sized so the collector lagging one frame across the
    // whole fleet does not stall workers.
    let (res_tx, res_rx) =
        crossbeam::channel::bounded::<FleetMsg<T>>(fleet.channel_capacity * nstreams);

    let mut summaries = vec![StreamSummary::default(); nstreams];
    let mut worker_packets = vec![0usize; workers];
    let mut packets_decoded = 0usize;
    let mut total_decode = Duration::ZERO;
    let mut max_decode = Duration::ZERO;
    let mut failure: Option<PipelineError> = None;
    let started = Instant::now();

    let mut worker_panicked = false;
    std::thread::scope(|scope| {
        // --- Decode workers -------------------------------------------
        let mut worker_handles = Vec::with_capacity(workers);
        for (worker_id, jobs) in job_rxs.into_iter().enumerate() {
            let results = res_tx.clone();
            let codebook = Arc::clone(&codebook);
            let cache = &cache;
            let telemetry = telemetry.clone();
            worker_handles.push(scope.spawn(move || {
                let mut lanes: HashMap<(usize, u8), Decoder<T>> = HashMap::new();
                // One decode workspace per worker, shared by every lane
                // this worker serves: after the first packet, the steady
                // state decodes without heap allocation (the outgoing
                // DecodedPacket is the one per-packet allocation left —
                // it crosses the channel by ownership).
                let mut scratch = DecodeWorkspace::for_config(config);
                let mut sibling_buf: Vec<T> = Vec::new();
                for Job { stream, seq, packet } in jobs.iter() {
                    // Cross-lead warm start: sibling leads observe the
                    // same heart over the same window, so lead 0's
                    // solution for this frame is the best available seed
                    // for the other leads (stream affinity guarantees it
                    // was decoded just before). The decoder's safeguard
                    // still rejects it if it does not beat a cold start.
                    let sibling = fleet.warm_start
                        && packet.channel > 0
                        && lanes
                            .get(&(stream, 0))
                            .and_then(|d| d.last_estimate())
                            .map(|est| {
                                sibling_buf.clear();
                                sibling_buf.extend_from_slice(est);
                            })
                            .is_some();
                    let decoder = match lanes.entry((stream, packet.channel)) {
                        Entry::Occupied(e) => e.into_mut(),
                        Entry::Vacant(v) => {
                            match Decoder::with_cache(
                                config,
                                Arc::clone(&codebook),
                                policy,
                                cache,
                            ) {
                                Ok(mut d) => {
                                    d.set_warm_start(fleet.warm_start);
                                    d.set_telemetry(telemetry.clone());
                                    d.set_telemetry_labels(
                                        u32::try_from(stream).unwrap_or(u32::MAX),
                                        packet.channel,
                                    );
                                    v.insert(d)
                                }
                                Err(e) => {
                                    let _ = results.send(FleetMsg::Failed {
                                        stream: Some(stream),
                                        cause: e.to_string(),
                                    });
                                    return;
                                }
                            }
                        }
                    };
                    if sibling {
                        decoder.seed(&sibling_buf);
                    }
                    let mut decoded = DecodedPacket::default();
                    match decoder.decode_packet_with(&packet.packet, &mut scratch, &mut decoded) {
                        Ok(()) => {
                            telemetry.record_worker_packet(worker_id);
                            let msg = FleetMsg::Decoded {
                                stream,
                                seq,
                                channel: packet.channel,
                                worker: worker_id,
                                packet: decoded,
                            };
                            if results.send(msg).is_err() {
                                return; // collector hung up
                            }
                        }
                        Err(e) => {
                            let _ = results.send(FleetMsg::Failed {
                                stream: Some(stream),
                                cause: e.to_string(),
                            });
                            return;
                        }
                    }
                }
            }));
        }

        // --- Producers: one per stream --------------------------------
        for (stream, feed) in feeds.into_iter().enumerate() {
            let jobs = job_txs[stream % workers].clone();
            let results = res_tx.clone();
            let codebook = Arc::clone(&codebook);
            let stalls = &stalls;
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                let send = |seq: u64, packet: ChannelPacket| -> bool {
                    let mut job = Job { stream, seq, packet };
                    match jobs.try_send(job) {
                        Ok(()) => true,
                        Err(crossbeam::channel::TrySendError::Full(back)) => {
                            stalls.fetch_add(1, Ordering::Relaxed);
                            job = back;
                            jobs.send(job).is_ok()
                        }
                        Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
                    }
                };
                match feed {
                    Feed::Encoded(packets) => {
                        for (seq, packet) in packets.iter().enumerate() {
                            if !send(seq as u64, packet.clone()) {
                                return;
                            }
                        }
                    }
                    Feed::Raw(input) => {
                        let channels = input.leads.len();
                        let mut encoder =
                            match MultiChannelEncoder::new(config, codebook, channels) {
                                Ok(mut enc) => {
                                    enc.set_telemetry(telemetry.clone());
                                    enc
                                }
                                Err(e) => {
                                    let _ = results.send(FleetMsg::Failed {
                                        stream: Some(stream),
                                        cause: e.to_string(),
                                    });
                                    return;
                                }
                            };
                        let frames = input
                            .leads
                            .iter()
                            .map(|lead| lead.len() / n)
                            .min()
                            .unwrap_or(0);
                        for frame in 0..frames {
                            let window: Vec<&[i16]> = input
                                .leads
                                .iter()
                                .map(|lead| &lead[frame * n..(frame + 1) * n])
                                .collect();
                            let tagged = match encoder.encode_frame(&window) {
                                Ok(t) => t,
                                Err(e) => {
                                    let _ = results.send(FleetMsg::Failed {
                                        stream: Some(stream),
                                        cause: e.to_string(),
                                    });
                                    return;
                                }
                            };
                            for (ch, packet) in tagged.into_iter().enumerate() {
                                let seq = (frame * channels + ch) as u64;
                                if !send(seq, packet) {
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        }
        // The collector must see the channel close once workers and
        // producers finish.
        drop(res_tx);
        drop(job_txs);

        // --- Collector: per-stream in-order reassembly -----------------
        let mut pending: Vec<BTreeMap<u64, (u8, DecodedPacket<T>)>> =
            (0..nstreams).map(|_| BTreeMap::new()).collect();
        let mut next_seq = vec![0u64; nstreams];
        for msg in res_rx.iter() {
            match msg {
                FleetMsg::Decoded { stream, seq, channel, worker, packet } => {
                    let _span = telemetry.span(Stage::Reassembly);
                    worker_packets[worker] += 1;
                    pending[stream].insert(seq, (channel, packet));
                    while let Some((channel, packet)) =
                        pending[stream].remove(&next_seq[stream])
                    {
                        next_seq[stream] += 1;
                        let summary = &mut summaries[stream];
                        summary.packets += 1;
                        summary.total_decode_time += packet.solve_time;
                        summary.max_decode_time = summary.max_decode_time.max(packet.solve_time);
                        summary.total_iterations += packet.iterations as u64;
                        summary.warm_started += usize::from(packet.warm_started);
                        packets_decoded += 1;
                        total_decode += packet.solve_time;
                        max_decode = max_decode.max(packet.solve_time);
                        let delivered = FleetPacket { stream, channel, packet };
                        on_packet(&delivered);
                    }
                }
                FleetMsg::Failed { stream, cause } => {
                    failure = Some(PipelineError::Fleet { stream, cause });
                    break;
                }
            }
        }
        // Wake any worker blocked on a full result queue so the
        // disconnect cascade can finish before we join.
        drop(res_rx);
        for handle in worker_handles {
            if handle.join().is_err() {
                worker_panicked = true;
            }
        }
    });

    if worker_panicked {
        return Err(PipelineError::Fleet {
            stream: None,
            cause: "worker panicked".into(),
        });
    }
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(FleetReport {
        streams: summaries,
        workers,
        worker_packets,
        packets_decoded,
        backpressure_stalls: stalls.into_inner(),
        spectral_misses: cache.misses(),
        spectral_hits: cache.hits(),
        packet_period,
        wall_time: started.elapsed(),
        total_decode_time: total_decode,
        max_decode_time: max_decode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::uniform_codebook;

    fn ecg_like(npackets: usize, n: usize, phase: f64) -> Vec<i16> {
        (0..npackets * n)
            .map(|i| {
                let t = (i % n) as f64 / n as f64;
                (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin())
                    as i16
            })
            .collect()
    }

    #[test]
    fn empty_fleet_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let err = run_fleet::<f64, _>(
            &config,
            cb,
            &[],
            SolverPolicy::default(),
            &FleetConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfig(_)));
    }

    #[test]
    fn zero_lead_stream_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let streams = [FleetStream { leads: vec![] }];
        let err = run_fleet::<f64, _>(
            &config,
            cb,
            &streams,
            SolverPolicy::default(),
            &FleetConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfig(_)));
    }

    #[test]
    fn zero_capacity_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(1, 512, 0.0);
        let streams = [FleetStream::single(&samples)];
        let fleet = FleetConfig { channel_capacity: 0, ..FleetConfig::default() };
        let err = run_fleet::<f64, _>(
            &config,
            cb,
            &streams,
            SolverPolicy::default(),
            &fleet,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfig(_)));
    }

    #[test]
    fn effective_workers_defaults_to_host_parallelism() {
        let auto = FleetConfig::default();
        assert!(auto.effective_workers() >= 1);
        let fixed = FleetConfig { workers: 3, ..FleetConfig::default() };
        assert_eq!(fixed.effective_workers(), 3);
    }

    #[test]
    fn small_fleet_decodes_and_shares_spectral_setup() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let s0 = ecg_like(2, 512, 0.0);
        let s1 = ecg_like(2, 512, 0.05);
        let streams = [FleetStream::single(&s0), FleetStream::single(&s1)];
        let fleet = FleetConfig { workers: 2, ..FleetConfig::default() };
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let report = run_fleet::<f32, _>(
            &config,
            Arc::clone(&cb),
            &streams,
            SolverPolicy::default(),
            &fleet,
            |p| seen.push((p.stream, p.packet.index)),
        )
        .unwrap();
        assert_eq!(report.packets_decoded, 4);
        assert_eq!(report.streams[0].packets, 2);
        assert_eq!(report.streams[1].packets, 2);
        // Identical configurations must share one spectral computation.
        assert_eq!(report.spectral_misses, 1);
        assert_eq!(report.spectral_hits, 1);
        // Per-stream delivery is in order.
        for stream in 0..2 {
            let indices: Vec<u64> =
                seen.iter().filter(|(s, _)| *s == stream).map(|&(_, i)| i).collect();
            assert_eq!(indices, vec![0, 1]);
        }
    }
}
