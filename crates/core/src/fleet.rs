//! Fleet-scale decoding: many patient streams fanned over a worker pool.
//!
//! [`run_streaming`](crate::stream::run_streaming) reproduces the paper's
//! single-patient coordinator (§IV-B1): one producer, one consumer, one
//! bounded 3-packet buffer. A monitoring *service* — a ward server or a
//! telehealth backend — decodes many such patients at once, each with the
//! clinical norm of several leads. [`run_fleet`] generalizes the streaming
//! pipeline to that setting:
//!
//! * **One producer thread per stream** plays the role of each patient's
//!   mote, encoding multi-lead frames into tagged
//!   [`ChannelPacket`]s.
//! * **M decode workers** each own a bounded input queue (the per-worker
//!   analogue of the paper's 3-packet shared buffer). Streams are assigned
//!   to workers by *stream affinity* (`worker = stream mod M`): a stream's
//!   differencing state and warm-start estimate are inherently sequential,
//!   so all of its packets must visit the same worker, in order.
//! * **A collector** on the calling thread reassembles results per stream
//!   by sequence number and emits them strictly in order, so downstream
//!   consumers observe exactly the per-patient order `run_streaming`
//!   would deliver.
//! * **Backpressure** is explicit: producers first `try_send`; a full
//!   queue counts one stall before the blocking send (radio buffering, in
//!   hardware terms).
//! * **Shutdown** is by channel-disconnect cascade. Any worker decode
//!   error (or a producer encode error) reaches the collector, which
//!   stops consuming; dropping the result channel wakes blocked workers,
//!   whose exits wake blocked producers. Worker panics are detected at
//!   join and surface as [`PipelineError::Fleet`].
//!
//! Two fleet-wide optimizations ride on this topology:
//!
//! * the power-iteration spectral setup (Lipschitz constant + deflation
//!   direction) is shared through a [`SpectralCache`], so only the first
//!   decoder of a configuration pays it;
//! * optional **warm starts** seed each packet's FISTA solve with the
//!   previous packet's coefficients (consecutive 2-second ECG windows are
//!   highly correlated), cutting iterations without moving the solution.
//!   With warm starts off the fleet is bit-exact with `run_streaming`.

use crate::batch::{BatchDecodeWorkspace, BatchScheduler};
use crate::config::SystemConfig;
use crate::decoder::{DecodeWorkspace, DecodedPacket, Decoder, SolverPolicy};
use crate::error::PipelineError;
use crate::ingest::{
    ConcealmentReason, FaultCounters, FaultStats, PacketOutcome, PushReject, QuarantineRecord,
    QuarantineRing, Reassembler, SequencedEvent, DEFAULT_REORDER_WINDOW,
};
use crate::multichannel::{ChannelPacket, MultiChannelEncoder};
use crate::packet::{parse_frame, EncodedPacket};
use crate::stream::SHARED_BUFFER_PACKETS;
use cs_codec::{Codebook, CodecError};
use cs_dsp::Real;
use cs_recovery::SpectralCache;
use cs_telemetry::{FaultKind, Stage, TelemetryRegistry, TraceContext};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a batched worker holding a *partial* batch waits for
/// batchmates before solving what it has. Bounded per round (not per
/// slot), so it caps the extra latency any single window can see; it is
/// far below a window's real-time budget (2 s of signal at the paper's
/// geometry) and well under one solve, yet long enough for contending
/// producer threads to get scheduled and top the batch up.
const BATCH_LINGER: Duration = Duration::from_micros(2500);

/// Shape of the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Decode workers. `0` means one per available CPU.
    pub workers: usize,
    /// Capacity of each worker's input queue, in packets. Defaults to the
    /// paper's 3-packet shared-buffer budget.
    pub channel_capacity: usize,
    /// Seed each FISTA solve with the previous packet's coefficients.
    /// `false` (the default) keeps per-stream output bit-exact with
    /// [`run_streaming`](crate::stream::run_streaming).
    pub warm_start: bool,
    /// Reorder window per (stream, lane) for the wire-feed path: how many
    /// out-of-order frames to buffer before declaring the gap lost.
    pub reorder_window: usize,
    /// Per-solve FISTA iteration deadline for the wire-feed path. A solve
    /// that hits the budget is emitted best-effort (and counted as
    /// deadline-degraded) instead of stalling its lane. `None` leaves the
    /// solver policy's own cap in force.
    pub solve_budget: Option<usize>,
    /// Test hook: panic inside the decode of `(stream, wire seq)` once,
    /// to exercise the supervisor. `None` in production.
    pub chaos_panic: Option<(usize, u64)>,
    /// MMV batch width K: how many pairwise-distinct `(stream, lead)`
    /// lanes a worker may fuse into one K-wide batched FISTA sweep.
    /// `1` (the default; `0` behaves the same) decodes sequentially —
    /// exactly the pre-batching path. Above 1, each worker groups its
    /// backlog with a [`BatchScheduler`](crate::BatchScheduler) and
    /// solves up to K lanes per sweep; per-column convergence masks keep
    /// every lane's samples, iteration count, and residual bit-for-bit
    /// identical to the sequential decode, so with warm starts off the
    /// whole fleet output is bit-exact at any width. (With warm starts
    /// on, only the cross-lead sibling seeding heuristic shifts: a
    /// batched lead is seeded from lead 0's *previous* frame, since the
    /// current frame solves fused with it.)
    pub batch: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 0,
            channel_capacity: SHARED_BUFFER_PACKETS,
            warm_start: false,
            reorder_window: DEFAULT_REORDER_WINDOW,
            solve_budget: None,
            chaos_panic: None,
            batch: 1,
        }
    }
}

impl FleetConfig {
    /// The worker count actually used: `workers`, or the host parallelism
    /// when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// One patient's raw multi-lead input.
#[derive(Debug, Clone)]
pub struct FleetStream<'a> {
    /// One sample slice per lead; every lead yields
    /// `min(len) / packet_len` frames.
    pub leads: Vec<&'a [i16]>,
}

impl<'a> FleetStream<'a> {
    /// A single-lead stream.
    pub fn single(samples: &'a [i16]) -> Self {
        FleetStream { leads: vec![samples] }
    }
}

/// One decoded packet as delivered by the collector, in per-stream order.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPacket<T: Real> {
    /// Which input stream this packet belongs to.
    pub stream: usize,
    /// Lead index within the stream.
    pub channel: u8,
    /// How this window was produced. Always
    /// [`PacketOutcome::Decoded`] on the raw/encoded paths; the wire-feed
    /// path additionally emits concealed and quarantined windows.
    pub outcome: PacketOutcome,
    /// End-to-end latency from capture (packetize/arrival time at the
    /// producer) to in-order emission by the collector. `None` when the
    /// run's [`TelemetryRegistry`] is disabled — stamping is gated on the
    /// registry so the fast path stays a single relaxed load.
    pub e2e: Option<Duration>,
    /// The reconstruction and its solver statistics.
    pub packet: DecodedPacket<T>,
}

/// Per-stream accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Packets delivered for this stream (all leads).
    pub packets: usize,
    /// Sum of solver wall-clock across the stream's packets.
    pub total_decode_time: Duration,
    /// Longest single solve.
    pub max_decode_time: Duration,
    /// Sum of FISTA iterations.
    pub total_iterations: u64,
    /// Packets whose solve was seeded from the previous estimate.
    pub warm_started: usize,
}

/// Outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-stream accounting, indexed by stream.
    pub streams: Vec<StreamSummary>,
    /// Worker threads used.
    pub workers: usize,
    /// Packets decoded per worker (stream-affinity load picture).
    pub worker_packets: Vec<usize>,
    /// Total packets delivered across all streams.
    pub packets_decoded: usize,
    /// Times a producer found its worker's queue full and had to block.
    pub backpressure_stalls: u64,
    /// Distinct spectral configurations computed (cache misses).
    pub spectral_misses: u64,
    /// Decoder constructions served from the shared spectral cache.
    pub spectral_hits: u64,
    /// The packet period implied by the configuration (N / 256 Hz).
    pub packet_period: Duration,
    /// End-to-end wall-clock for the whole run.
    pub wall_time: Duration,
    /// Sum of solver wall-clock across all packets and streams.
    pub total_decode_time: Duration,
    /// Longest single solve anywhere in the fleet.
    pub max_decode_time: Duration,
    /// Ingest/supervision accounting. All zeros on the raw/encoded paths
    /// (they see no wire); populated by [`run_fleet_wire`].
    pub faults: FaultStats,
    /// Quarantined frames held for postmortem, oldest first (bounded;
    /// see [`QuarantineRing`]).
    pub quarantine: Vec<QuarantineRecord>,
}

impl FleetReport {
    /// Whether the fleet as a whole kept up with real time: the run
    /// finished within one packet period per *frame* (packets arrive
    /// concurrently across streams, so the budget is per frame, not per
    /// packet).
    pub fn real_time(&self) -> bool {
        let frames = self
            .streams
            .iter()
            .map(|s| s.packets)
            .max()
            .unwrap_or(0);
        self.wall_time <= self.packet_period * (frames as u32).max(1)
    }

    /// Mean FISTA iterations per packet across the fleet.
    pub fn mean_iterations(&self) -> f64 {
        if self.packets_decoded == 0 {
            return 0.0;
        }
        let total: u64 = self.streams.iter().map(|s| s.total_iterations).sum();
        total as f64 / self.packets_decoded as f64
    }
}

/// A unit of decode work: one tagged wire packet with its global
/// per-stream sequence number and capture timestamp (registry-monotonic
/// nanoseconds at packetize time; `0` when telemetry is disabled).
struct Job {
    stream: usize,
    seq: u64,
    captured_ns: u64,
    packet: ChannelPacket,
}

/// What workers (and erroring producers) send the collector. `captured_ns`
/// rides from the producer's stamp; `emitted_ns` is stamped when the
/// worker hands the window to the result channel, so the collector can
/// split reorder-buffer dwell from upstream time.
enum FleetMsg<T: Real> {
    Decoded {
        stream: usize,
        seq: u64,
        channel: u8,
        worker: usize,
        captured_ns: u64,
        emitted_ns: u64,
        packet: DecodedPacket<T>,
    },
    Failed {
        stream: Option<usize>,
        cause: String,
    },
}

/// What each producer thread feeds from.
enum Feed<'a> {
    /// Raw leads, encoded on the producer thread (the mote's role).
    Raw(&'a FleetStream<'a>),
    /// Pre-encoded wire packets, replayed as-is. This path exists so
    /// tests can inject corrupt or reordered traffic.
    Encoded(&'a [ChannelPacket]),
}

/// Decodes many multi-lead streams concurrently over a worker pool.
///
/// `on_packet` observes every decoded packet grouped per stream in
/// arrival order (frame-major, lead-minor) — the same order
/// [`run_streaming`](crate::stream::run_streaming) delivers for each
/// stream individually.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidConfig`] for an empty fleet or a
/// stream with no leads, and [`PipelineError::Fleet`] when any worker
/// fails or panics; construction and decode errors propagate with their
/// stream attribution.
pub fn run_fleet<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    streams: &[FleetStream<'_>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if streams.iter().any(|s| s.leads.is_empty()) {
        return Err(PipelineError::InvalidConfig(
            "fleet stream with zero leads".into(),
        ));
    }
    let feeds: Vec<Feed<'_>> = streams.iter().map(Feed::Raw).collect();
    fleet_engine(
        config,
        codebook,
        feeds,
        policy,
        fleet,
        &TelemetryRegistry::disabled(),
        on_packet,
    )
}

/// [`run_fleet`] recording live telemetry: every producer encode stage,
/// worker decode stage, FISTA solve, and collector reassembly lands in
/// `telemetry`'s histograms while the fleet runs, per-worker packet
/// counts accumulate, and each solve journals a trace labelled with its
/// `(stream, channel, seq)`. Pass [`TelemetryRegistry::disabled`] to get
/// exactly [`run_fleet`] (one atomic load per span).
///
/// # Errors
///
/// Same contract as [`run_fleet`].
pub fn run_fleet_observed<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    streams: &[FleetStream<'_>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if streams.iter().any(|s| s.leads.is_empty()) {
        return Err(PipelineError::InvalidConfig(
            "fleet stream with zero leads".into(),
        ));
    }
    let feeds: Vec<Feed<'_>> = streams.iter().map(Feed::Raw).collect();
    fleet_engine(config, codebook, feeds, policy, fleet, telemetry, on_packet)
}

/// Like [`run_fleet`], but replays pre-encoded wire traffic instead of
/// encoding raw samples. Packets are delivered to the decoder in slice
/// order, so corrupting or dropping an element exercises the fleet's
/// error path deterministically.
///
/// # Errors
///
/// Same contract as [`run_fleet`].
pub fn run_fleet_encoded<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    streams: &[Vec<ChannelPacket>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    let feeds: Vec<Feed<'_>> = streams.iter().map(|s| Feed::Encoded(s)).collect();
    fleet_engine(
        config,
        codebook,
        feeds,
        policy,
        fleet,
        &TelemetryRegistry::disabled(),
        on_packet,
    )
}

fn fleet_engine<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    feeds: Vec<Feed<'_>>,
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    mut on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if feeds.is_empty() {
        return Err(PipelineError::InvalidConfig("empty fleet".into()));
    }
    if fleet.channel_capacity == 0 {
        return Err(PipelineError::InvalidConfig(
            "fleet channel capacity must be positive".into(),
        ));
    }
    let workers = fleet.effective_workers();
    let n = config.packet_len();
    let packet_period = Duration::from_secs_f64(n as f64 / 256.0);
    let nstreams = feeds.len();

    let cache: SpectralCache<T> = SpectralCache::new();
    let stalls = AtomicU64::new(0);

    // One bounded queue per worker: this is where backpressure lives. A
    // batched worker's queue must hold a full batch (or the backpressure
    // itself caps occupancy below the solve width) plus the next wave
    // arriving while the current batch solves.
    let job_depth = fleet.channel_capacity.max(2 * fleet.batch);
    let (job_txs, job_rxs): (Vec<_>, Vec<_>) = (0..workers)
        .map(|_| crossbeam::channel::bounded::<Job>(job_depth))
        .unzip();
    // Results fan in; sized so the collector lagging one frame across the
    // whole fleet does not stall workers.
    let (res_tx, res_rx) =
        crossbeam::channel::bounded::<FleetMsg<T>>(fleet.channel_capacity * nstreams);

    let mut summaries = vec![StreamSummary::default(); nstreams];
    let mut worker_packets = vec![0usize; workers];
    let mut packets_decoded = 0usize;
    let mut total_decode = Duration::ZERO;
    let mut max_decode = Duration::ZERO;
    let mut failure: Option<PipelineError> = None;
    let started = Instant::now();

    let mut worker_panicked = false;
    std::thread::scope(|scope| {
        // --- Decode workers -------------------------------------------
        let mut worker_handles = Vec::with_capacity(workers);
        for (worker_id, jobs) in job_rxs.into_iter().enumerate() {
            let results = res_tx.clone();
            let codebook = Arc::clone(&codebook);
            let cache = &cache;
            let telemetry = telemetry.clone();
            let fleet = *fleet;
            worker_handles.push(scope.spawn(move || {
                if fleet.batch.max(1) > 1 {
                    return batched_fleet_worker(
                        worker_id, config, codebook, policy, &fleet, cache, telemetry, jobs,
                        results,
                    );
                }
                let mut lanes: HashMap<(usize, u8), Decoder<T>> = HashMap::new();
                // One decode workspace per worker, shared by every lane
                // this worker serves: after the first packet, the steady
                // state decodes without heap allocation (the outgoing
                // DecodedPacket is the one per-packet allocation left —
                // it crosses the channel by ownership).
                let mut scratch = DecodeWorkspace::for_config(config);
                let mut sibling_buf: Vec<T> = Vec::new();
                for Job { stream, seq, captured_ns, packet } in jobs.iter() {
                    // Queue wait: time from packetize to dequeue — pure
                    // queue pressure, as distinct from solver cost.
                    if telemetry.is_enabled() {
                        telemetry.record_stage_ns(
                            Stage::QueueWait,
                            telemetry.now_ns().saturating_sub(captured_ns),
                        );
                    }
                    // Cross-lead warm start: sibling leads observe the
                    // same heart over the same window, so lead 0's
                    // solution for this frame is the best available seed
                    // for the other leads (stream affinity guarantees it
                    // was decoded just before). The decoder's safeguard
                    // still rejects it if it does not beat a cold start.
                    let sibling = fleet.warm_start
                        && packet.channel > 0
                        && lanes
                            .get(&(stream, 0))
                            .and_then(|d| d.last_estimate())
                            .map(|est| {
                                sibling_buf.clear();
                                sibling_buf.extend_from_slice(est);
                            })
                            .is_some();
                    let decoder = match lanes.entry((stream, packet.channel)) {
                        Entry::Occupied(e) => e.into_mut(),
                        Entry::Vacant(v) => {
                            match Decoder::with_cache(
                                config,
                                Arc::clone(&codebook),
                                policy,
                                cache,
                            ) {
                                Ok(mut d) => {
                                    d.set_warm_start(fleet.warm_start);
                                    d.set_telemetry(telemetry.clone());
                                    d.set_telemetry_labels(
                                        u32::try_from(stream).unwrap_or(u32::MAX),
                                        packet.channel,
                                    );
                                    v.insert(d)
                                }
                                Err(e) => {
                                    let _ = results.send(FleetMsg::Failed {
                                        stream: Some(stream),
                                        cause: e.to_string(),
                                    });
                                    return;
                                }
                            }
                        }
                    };
                    if sibling {
                        decoder.seed(&sibling_buf);
                    }
                    let mut decoded = DecodedPacket::default();
                    match decoder.decode_packet_with(&packet.packet, &mut scratch, &mut decoded) {
                        Ok(()) => {
                            telemetry.record_worker_packet(worker_id);
                            let emitted_ns =
                                if telemetry.is_enabled() { telemetry.now_ns() } else { 0 };
                            let msg = FleetMsg::Decoded {
                                stream,
                                seq,
                                channel: packet.channel,
                                worker: worker_id,
                                captured_ns,
                                emitted_ns,
                                packet: decoded,
                            };
                            if results.send(msg).is_err() {
                                return; // collector hung up
                            }
                        }
                        Err(e) => {
                            let _ = results.send(FleetMsg::Failed {
                                stream: Some(stream),
                                cause: e.to_string(),
                            });
                            return;
                        }
                    }
                }
            }));
        }

        // --- Producers: one per stream --------------------------------
        for (stream, feed) in feeds.into_iter().enumerate() {
            let jobs = job_txs[stream % workers].clone();
            let results = res_tx.clone();
            let codebook = Arc::clone(&codebook);
            let stalls = &stalls;
            let telemetry = telemetry.clone();
            scope.spawn(move || {
                let send = |seq: u64, captured_ns: u64, packet: ChannelPacket| -> bool {
                    let mut job = Job { stream, seq, captured_ns, packet };
                    match jobs.try_send(job) {
                        Ok(()) => true,
                        Err(crossbeam::channel::TrySendError::Full(back)) => {
                            stalls.fetch_add(1, Ordering::Relaxed);
                            job = back;
                            jobs.send(job).is_ok()
                        }
                        Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
                    }
                };
                match feed {
                    Feed::Encoded(packets) => {
                        for (seq, packet) in packets.iter().enumerate() {
                            let captured_ns =
                                if telemetry.is_enabled() { telemetry.now_ns() } else { 0 };
                            if !send(seq as u64, captured_ns, packet.clone()) {
                                return;
                            }
                        }
                    }
                    Feed::Raw(input) => {
                        let channels = input.leads.len();
                        let mut encoder =
                            match MultiChannelEncoder::new(config, codebook, channels) {
                                Ok(mut enc) => {
                                    enc.set_telemetry(telemetry.clone());
                                    enc
                                }
                                Err(e) => {
                                    let _ = results.send(FleetMsg::Failed {
                                        stream: Some(stream),
                                        cause: e.to_string(),
                                    });
                                    return;
                                }
                            };
                        let frames = input
                            .leads
                            .iter()
                            .map(|lead| lead.len() / n)
                            .min()
                            .unwrap_or(0);
                        for frame in 0..frames {
                            // Packetize time: one stamp per frame, shared
                            // by its leads — they leave the mote together.
                            let captured_ns =
                                if telemetry.is_enabled() { telemetry.now_ns() } else { 0 };
                            let window: Vec<&[i16]> = input
                                .leads
                                .iter()
                                .map(|lead| &lead[frame * n..(frame + 1) * n])
                                .collect();
                            let tagged = match encoder.encode_frame(&window) {
                                Ok(t) => t,
                                Err(e) => {
                                    let _ = results.send(FleetMsg::Failed {
                                        stream: Some(stream),
                                        cause: e.to_string(),
                                    });
                                    return;
                                }
                            };
                            for (ch, packet) in tagged.into_iter().enumerate() {
                                let seq = (frame * channels + ch) as u64;
                                if !send(seq, captured_ns, packet) {
                                    return;
                                }
                            }
                        }
                    }
                }
            });
        }
        // The collector must see the channel close once workers and
        // producers finish.
        drop(res_tx);
        drop(job_txs);

        // --- Collector: per-stream in-order reassembly -----------------
        // Pending slot: (channel, packet, captured_ns, emitted_ns).
        type PendingSlot<T> = (u8, DecodedPacket<T>, u64, u64);
        let mut pending: Vec<BTreeMap<u64, PendingSlot<T>>> =
            (0..nstreams).map(|_| BTreeMap::new()).collect();
        let mut next_seq = vec![0u64; nstreams];
        for msg in res_rx.iter() {
            match msg {
                FleetMsg::Decoded {
                    stream,
                    seq,
                    channel,
                    worker,
                    captured_ns,
                    emitted_ns,
                    packet,
                } => {
                    let _span = telemetry.span(Stage::Reassembly);
                    worker_packets[worker] += 1;
                    pending[stream].insert(seq, (channel, packet, captured_ns, emitted_ns));
                    while let Some((channel, packet, captured_ns, emitted_ns)) =
                        pending[stream].remove(&next_seq[stream])
                    {
                        let seq = next_seq[stream];
                        next_seq[stream] += 1;
                        let summary = &mut summaries[stream];
                        summary.packets += 1;
                        summary.total_decode_time += packet.solve_time;
                        summary.max_decode_time = summary.max_decode_time.max(packet.solve_time);
                        summary.total_iterations += packet.iterations as u64;
                        summary.warm_started += usize::from(packet.warm_started);
                        packets_decoded += 1;
                        total_decode += packet.solve_time;
                        max_decode = max_decode.max(packet.solve_time);
                        // Emit-deliver dwell (worker send → in-order
                        // emission), then the end-to-end record that
                        // feeds per-patient histograms and the SLO engine.
                        let mut e2e = None;
                        if telemetry.is_enabled() {
                            telemetry.record_stage_ns(
                                Stage::EmitDeliver,
                                telemetry.now_ns().saturating_sub(emitted_ns),
                            );
                            e2e = telemetry
                                .record_emit(&TraceContext::new(
                                    u32::try_from(stream).unwrap_or(u32::MAX),
                                    channel,
                                    seq,
                                    captured_ns,
                                ))
                                .map(|rec| Duration::from_nanos(rec.e2e_ns));
                        }
                        let delivered = FleetPacket {
                            stream,
                            channel,
                            outcome: PacketOutcome::Decoded,
                            e2e,
                            packet,
                        };
                        on_packet(&delivered);
                    }
                }
                FleetMsg::Failed { stream, cause } => {
                    failure = Some(PipelineError::Fleet { stream, cause });
                    break;
                }
            }
        }
        // Wake any worker blocked on a full result queue so the
        // disconnect cascade can finish before we join.
        drop(res_rx);
        for handle in worker_handles {
            if handle.join().is_err() {
                worker_panicked = true;
            }
        }
    });

    if worker_panicked {
        return Err(PipelineError::Fleet {
            stream: None,
            cause: "worker panicked".into(),
        });
    }
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(FleetReport {
        streams: summaries,
        workers,
        worker_packets,
        packets_decoded,
        backpressure_stalls: stalls.into_inner(),
        spectral_misses: cache.misses(),
        spectral_hits: cache.hits(),
        packet_period,
        wall_time: started.elapsed(),
        total_decode_time: total_decode,
        max_decode_time: max_decode,
        faults: FaultStats::default(),
        quarantine: Vec::new(),
    })
}

/// The batched analogue of the sequential decode worker: drains the
/// worker's backlog through a [`BatchScheduler`], runs every staged
/// lane's scalar front half, fuses the solves into one K-wide MMV FISTA
/// sweep, and scatters the per-lane results back to the collector. A
/// partial backlog solves at partial occupancy rather than waiting — the
/// batch width rides the queue depth, so latency is never traded for
/// occupancy.
#[allow(clippy::too_many_arguments)]
fn batched_fleet_worker<T: Real>(
    worker_id: usize,
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    cache: &SpectralCache<T>,
    telemetry: TelemetryRegistry,
    jobs: crossbeam::channel::Receiver<Job>,
    results: crossbeam::channel::Sender<FleetMsg<T>>,
) {
    let width = fleet.batch.max(1);
    let mut lanes: HashMap<(usize, u8), Decoder<T>> = HashMap::new();
    let mut ws = BatchDecodeWorkspace::for_config(config, width);
    let mut sched: BatchScheduler<Job> = BatchScheduler::new(width);
    let mut batch: Vec<Job> = Vec::with_capacity(width);
    let mut staged: Vec<usize> = Vec::with_capacity(width);
    let mut sibling_buf: Vec<T> = Vec::new();
    // Queue wait is measured at receive time — the batch linger that
    // follows is accounted separately, so the two pressures (upstream
    // backlog vs. deliberate batching delay) stay distinguishable.
    let note_queue_wait = |job: &Job| {
        if telemetry.is_enabled() {
            telemetry.record_stage_ns(
                Stage::QueueWait,
                telemetry.now_ns().saturating_sub(job.captured_ns),
            );
        }
    };
    'rounds: loop {
        // Fill policy: block only when nothing at all is held (a lone
        // straggler stream still decodes, at occupancy 1, instead of
        // waiting forever for batchmates), but give a *partial* batch a
        // bounded linger before solving it. The linger matters most when
        // producers and workers contend for the same cores: producers
        // only get scheduled while the worker sleeps, so draining
        // immediately would lock the engine into low-occupancy rounds
        // that forfeit the MMV amortization. One deadline bounds the
        // whole round — a straggler pays at most BATCH_LINGER extra
        // latency, never per-slot.
        let mut linger_deadline: Option<Instant> = None;
        loop {
            // Full when `width` *distinct* lanes are assemblable (a lane's
            // second window can't ride with its first); the raw-count
            // bound caps held memory when one stream floods ahead.
            if sched.distinct_held(|j| (j.stream, j.packet.channel)) >= width
                || sched.held_len() >= 2 * width
            {
                break;
            }
            match jobs.try_recv() {
                Ok(job) => {
                    note_queue_wait(&job);
                    sched.push(job);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {
                    if sched.is_idle() {
                        match jobs.recv() {
                            Ok(job) => {
                                note_queue_wait(&job);
                                sched.push(job);
                            }
                            Err(_) => break 'rounds,
                        }
                    } else {
                        let deadline =
                            *linger_deadline.get_or_insert_with(|| Instant::now() + BATCH_LINGER);
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match jobs.recv_timeout(deadline - now) {
                            Ok(job) => {
                                note_queue_wait(&job);
                                sched.push(job);
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => break,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    if sched.is_idle() {
                        break 'rounds;
                    }
                    break;
                }
            }
        }
        // One linger record per round that actually lingered: how long
        // this partial batch deliberately waited for batchmates.
        if telemetry.is_enabled() {
            if let Some(deadline) = linger_deadline {
                let lingered = Instant::now().saturating_duration_since(deadline - BATCH_LINGER);
                telemetry.record_stage_ns(
                    Stage::BatchLinger,
                    u64::try_from(lingered.as_nanos()).unwrap_or(u64::MAX),
                );
            }
        }
        sched.drain_into(&mut batch, |j| (j.stream, j.packet.channel));
        if batch.is_empty() {
            break;
        }
        ws.begin();
        staged.clear();
        for job in &batch {
            // Cross-lead warm start, as in the sequential worker. The
            // fused solve means lead 0's estimate is the previous
            // frame's, not this frame's — one window staler, same heart.
            let sibling = fleet.warm_start
                && job.packet.channel > 0
                && lanes
                    .get(&(job.stream, 0))
                    .and_then(|d| d.last_estimate())
                    .map(|est| {
                        sibling_buf.clear();
                        sibling_buf.extend_from_slice(est);
                    })
                    .is_some();
            let decoder = match lanes.entry((job.stream, job.packet.channel)) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(v) => {
                    match Decoder::with_cache(config, Arc::clone(&codebook), policy, cache) {
                        Ok(mut d) => {
                            d.set_warm_start(fleet.warm_start);
                            d.set_telemetry(telemetry.clone());
                            d.set_telemetry_labels(
                                u32::try_from(job.stream).unwrap_or(u32::MAX),
                                job.packet.channel,
                            );
                            v.insert(d)
                        }
                        Err(e) => {
                            let _ = results.send(FleetMsg::Failed {
                                stream: Some(job.stream),
                                cause: e.to_string(),
                            });
                            return;
                        }
                    }
                }
            };
            if sibling {
                decoder.seed(&sibling_buf);
            }
            match decoder.begin_batch_lane(&job.packet.packet, &mut ws) {
                Ok(lane) => staged.push(lane),
                Err(e) => {
                    let _ = results.send(FleetMsg::Failed {
                        stream: Some(job.stream),
                        cause: e.to_string(),
                    });
                    return;
                }
            }
        }
        // Any staged lane's decoder can drive the fused solve — same
        // configuration means a bit-identical operator.
        let key = (batch[0].stream, batch[0].packet.channel);
        lanes.get(&key).expect("lane staged").solve_batch(&mut ws);
        for (job, &lane) in batch.iter().zip(&staged) {
            let decoder = lanes
                .get_mut(&(job.stream, job.packet.channel))
                .expect("lane staged");
            let mut decoded = DecodedPacket::default();
            decoder.finish_batch_lane(lane, job.packet.packet.index, &mut ws, &mut decoded);
            telemetry.record_worker_packet(worker_id);
            let emitted_ns = if telemetry.is_enabled() { telemetry.now_ns() } else { 0 };
            let msg = FleetMsg::Decoded {
                stream: job.stream,
                seq: job.seq,
                channel: job.packet.channel,
                worker: worker_id,
                captured_ns: job.captured_ns,
                emitted_ns,
                packet: decoded,
            };
            if results.send(msg).is_err() {
                return; // collector hung up
            }
        }
    }
}

/// A unit of wire-feed work: one frame exactly as it came off the link,
/// stamped with its arrival time (registry-monotonic nanoseconds; `0`
/// when telemetry is disabled).
struct WireJob {
    stream: usize,
    captured_ns: u64,
    bytes: Vec<u8>,
}

/// What wire-feed workers send the collector. Unlike [`FleetMsg`], every
/// window reaches the collector as an `Emit` — faults are absorbed into
/// outcomes, not run-ending failures. `Failed` remains only for
/// construction errors (bad configuration), which no amount of
/// concealment can paper over.
enum WireMsg<T: Real> {
    Emit {
        stream: usize,
        /// Dense per-stream emission sequence assigned by the worker (wire
        /// sequence numbers have gaps where frames were lost).
        emit_seq: u64,
        channel: u8,
        worker: usize,
        /// Arrival stamp of the frame this window came from; concealed
        /// windows carry the stamp of the arrival that exposed the gap.
        captured_ns: u64,
        /// When the worker handed this window to the result channel.
        emitted_ns: u64,
        outcome: PacketOutcome,
        packet: DecodedPacket<T>,
    },
    Failed {
        stream: Option<usize>,
        cause: String,
    },
}

/// Per-worker state for the supervised wire-feed path. Streams keep
/// worker affinity, so every structure here is only ever touched by its
/// owning worker thread; the cross-thread surfaces are the shared
/// [`FaultCounters`] (atomics) and the quarantine ring (mutex, cold
/// path).
struct WireWorker<'e, T: Real> {
    worker_id: usize,
    config: &'e SystemConfig,
    codebook: Arc<Codebook>,
    policy: SolverPolicy<T>,
    fleet: FleetConfig,
    cache: &'e SpectralCache<T>,
    telemetry: TelemetryRegistry,
    counters: &'e FaultCounters,
    quarantine: &'e Mutex<QuarantineRing>,
    chaos_fired: &'e AtomicBool,
    lanes: HashMap<(usize, u8), Decoder<T>>,
    /// Reassembler payload carries the frame's arrival stamp alongside
    /// the packet, so capture time survives reordering.
    seqs: HashMap<(usize, u8), Reassembler<(EncodedPacket, u64)>>,
    emit_seq: HashMap<usize, u64>,
    scratch: DecodeWorkspace<T>,
    results: crossbeam::channel::Sender<WireMsg<T>>,
    /// K-wide solve buffers for the batched mode (`fleet.batch > 1`).
    batch: BatchDecodeWorkspace<T>,
    /// Lanes staged into the current batch, in stage order.
    staged: Vec<(usize, u8)>,
    /// Emissions deferred until the current batch flushes, in worker
    /// order — decoded windows and concealment placeholders interleave
    /// here exactly as the sequential worker would have emitted them.
    pending: Vec<PendingEmit>,
}

/// One deferred emission from a batched wire worker.
#[derive(Debug, Clone, Copy)]
struct PendingEmit {
    stream: usize,
    channel: u8,
    captured_ns: u64,
    kind: PendingKind,
}

/// What a deferred emission resolves to at flush time.
#[derive(Debug, Clone, Copy)]
enum PendingKind {
    /// A staged lane to finish: synthesize from the fused solve and emit
    /// a decoded window.
    Finish { lane: usize, index: u64 },
    /// A concealment placeholder (loss/desync/quarantine). The lane's
    /// DPCM/warm state was already adjusted when the event arrived; only
    /// the emission waits, so it keeps its slot in the stream's order.
    Conceal { seq: u64, outcome: PacketOutcome },
}

impl<T: Real> WireWorker<'_, T> {
    /// Lanes currently staged for the next batched solve. The worker
    /// loop's linger policy keys off this: a non-empty partial batch is
    /// worth waiting (briefly) to top up.
    fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Validates one arrived frame and advances its lane. Returns `false`
    /// when the collector hung up (shutdown).
    fn ingest(&mut self, stream: usize, bytes: &[u8], captured_ns: u64) -> bool {
        self.counters.add_frame();
        // Queue wait: producer stamp → worker dequeue, before any
        // validation work is charged to this frame.
        if self.telemetry.is_enabled() {
            self.telemetry.record_stage_ns(
                Stage::QueueWait,
                self.telemetry.now_ns().saturating_sub(captured_ns),
            );
        }
        let parsed = {
            let _span = self.telemetry.span(Stage::IngestValidate);
            parse_frame(bytes)
        };
        let (info, payload) = match parsed {
            Ok(p) => p,
            Err(e) => {
                self.counters.add_frame_reject();
                self.telemetry.record_fault(FaultKind::FrameRejected);
                self.quarantine.lock().expect("quarantine lock").push(QuarantineRecord {
                    stream,
                    channel: None,
                    seq: None,
                    bytes: bytes.to_vec(),
                    cause: e.to_string(),
                });
                return true;
            }
        };
        let packet = EncodedPacket {
            index: info.index,
            kind: info.kind,
            payload: payload.to_vec(),
            payload_bits: info.payload_bits,
        };
        let lane = self
            .seqs
            .entry((stream, info.lane))
            .or_insert_with(|| Reassembler::new(self.fleet.reorder_window));
        let mut events = Vec::new();
        if let Err(reject) = lane.push(info.index, (packet, captured_ns), &mut events) {
            match reject {
                PushReject::Duplicate => {
                    self.counters.add_duplicate();
                    self.telemetry.record_fault(FaultKind::Duplicate);
                }
                PushReject::Late => {
                    self.counters.add_late();
                    self.telemetry.record_fault(FaultKind::Late);
                }
            }
            return true;
        }
        self.handle_events(stream, info.lane, events, captured_ns)
    }

    /// Emits every sequenced event for one lane. `fallback_captured` is
    /// the stamp attributed to events with no frame of their own (a loss
    /// is discovered by a later arrival — or by `flush` at end of input —
    /// so the concealment inherits that trigger's capture time).
    fn handle_events(
        &mut self,
        stream: usize,
        channel: u8,
        events: Vec<SequencedEvent<(EncodedPacket, u64)>>,
        fallback_captured: u64,
    ) -> bool {
        let batched = self.fleet.batch.max(1) > 1;
        for event in events {
            let alive = match event {
                SequencedEvent::Deliver(seq, (packet, captured_ns)) => {
                    if batched {
                        self.stage_supervised(stream, channel, seq, packet, captured_ns)
                    } else {
                        self.decode_supervised(stream, channel, seq, packet, captured_ns)
                    }
                }
                SequencedEvent::Lost(seq) => {
                    self.counters.add_concealed_loss();
                    self.telemetry.record_fault(FaultKind::ConcealedLoss);
                    if batched {
                        // A real loss desynchronizes the DPCM loop *now*
                        // (later delivers in this batch must see it); the
                        // placeholder emission waits its turn in the
                        // batch's ordered pending list.
                        if let Some(d) = self.lanes.get_mut(&(stream, channel)) {
                            d.desynchronize();
                        }
                        self.pending.push(PendingEmit {
                            stream,
                            channel,
                            captured_ns: fallback_captured,
                            kind: PendingKind::Conceal {
                                seq,
                                outcome: ConcealmentReason::Loss.into(),
                            },
                        });
                        true
                    } else {
                        self.conceal_slot(
                            stream,
                            channel,
                            seq,
                            ConcealmentReason::Loss.into(),
                            fallback_captured,
                        )
                    }
                }
                SequencedEvent::Resync { .. } => {
                    self.counters.add_resync();
                    self.telemetry.record_fault(FaultKind::Resync);
                    if let Some(d) = self.lanes.get_mut(&(stream, channel)) {
                        d.desynchronize();
                    }
                    true
                }
            };
            if !alive {
                return false;
            }
        }
        true
    }

    /// Batched analogue of [`WireWorker::decode_supervised`]: runs the
    /// lane's scalar front half under panic supervision and stages its
    /// solve into the current batch; the fused K-wide solve and every
    /// emission happen at the next [`WireWorker::flush_batch`]. A panic
    /// restarts the worker's decoders exactly as in the sequential path —
    /// but lanes already staged keep their solve blocks (staging copied
    /// everything they need out of the decoder), so one poisoned lane
    /// never takes its batchmates down with it.
    fn stage_supervised(
        &mut self,
        stream: usize,
        channel: u8,
        wire_seq: u64,
        packet: EncodedPacket,
        captured_ns: u64,
    ) -> bool {
        // One window per lane per batch: a lane's second window depends
        // on its first, so it flushes the batch and leads the next one.
        if self.staged.contains(&(stream, channel)) && !self.flush_batch() {
            return false;
        }
        if self.lane(stream, channel).is_err() {
            return false; // construction failure already reported
        }
        let chaos = self.fleet.chaos_panic == Some((stream, wire_seq))
            && !self.chaos_fired.swap(true, Ordering::Relaxed);
        let attempt = {
            let decoder = self.lanes.get_mut(&(stream, channel)).expect("lane exists");
            let batch = &mut self.batch;
            catch_unwind(AssertUnwindSafe(|| {
                if chaos {
                    panic!("chaos: injected decode panic");
                }
                decoder.begin_batch_lane(&packet, batch)
            }))
        };
        match attempt {
            Ok(Ok(lane)) => {
                self.counters.add_decoded();
                self.telemetry.record_worker_packet(self.worker_id);
                self.staged.push((stream, channel));
                self.pending.push(PendingEmit {
                    stream,
                    channel,
                    captured_ns,
                    kind: PendingKind::Finish { lane, index: wire_seq },
                });
                if self.staged.len() >= self.fleet.batch.max(1) {
                    self.flush_batch()
                } else {
                    true
                }
            }
            Ok(Err(PipelineError::Codec(CodecError::MissingReference))) => {
                self.counters.add_concealed_desync();
                self.telemetry.record_fault(FaultKind::ConcealedDesync);
                self.pending.push(PendingEmit {
                    stream,
                    channel,
                    captured_ns,
                    kind: PendingKind::Conceal {
                        seq: wire_seq,
                        outcome: ConcealmentReason::Desync.into(),
                    },
                });
                true
            }
            Ok(Err(e)) => {
                self.counters.add_quarantined();
                self.telemetry.record_fault(FaultKind::Quarantined);
                self.quarantine.lock().expect("quarantine lock").push(QuarantineRecord {
                    stream,
                    channel: Some(channel),
                    seq: Some(wire_seq),
                    bytes: packet.to_bytes_tagged(channel),
                    cause: e.to_string(),
                });
                if let Some(d) = self.lanes.get_mut(&(stream, channel)) {
                    d.desynchronize();
                }
                self.pending.push(PendingEmit {
                    stream,
                    channel,
                    captured_ns,
                    kind: PendingKind::Conceal {
                        seq: wire_seq,
                        outcome: PacketOutcome::Quarantined,
                    },
                });
                true
            }
            Err(panic) => {
                // Supervisor, batched flavor: quarantine the offender and
                // restart the worker's decoders and scalar scratch. The
                // batchmates' staged measurement/seed blocks live in the
                // solve workspace and survive untouched; their finishes
                // rebuild lane decoders lazily, so they still emit
                // decoded windows from this very batch.
                let cause = panic_message(&panic);
                self.counters.add_worker_restart();
                self.telemetry.record_fault(FaultKind::WorkerRestart);
                self.counters.add_quarantined();
                self.telemetry.record_fault(FaultKind::Quarantined);
                self.quarantine.lock().expect("quarantine lock").push(QuarantineRecord {
                    stream,
                    channel: Some(channel),
                    seq: Some(wire_seq),
                    bytes: packet.to_bytes_tagged(channel),
                    cause: format!("panic: {cause}"),
                });
                self.lanes.clear();
                self.scratch = DecodeWorkspace::for_config(self.config);
                self.batch.replace_scalar(self.config);
                self.pending.push(PendingEmit {
                    stream,
                    channel,
                    captured_ns,
                    kind: PendingKind::Conceal {
                        seq: wire_seq,
                        outcome: PacketOutcome::Quarantined,
                    },
                });
                true
            }
        }
    }

    /// Solves the staged lanes (if any) with one fused sweep, then
    /// replays the pending emissions in worker order. Returns `false`
    /// when the collector hung up.
    fn flush_batch(&mut self) -> bool {
        if !self.staged.is_empty() {
            let (stream, channel) = self.staged[0];
            // Rebuilds the driver lane if a mid-batch restart cleared it;
            // a fresh decoder of the same configuration is bit-identical.
            if self.lane(stream, channel).is_err() {
                return false;
            }
            let decoder = self.lanes.get(&(stream, channel)).expect("lane exists");
            decoder.solve_batch(&mut self.batch);
        }
        let mut i = 0;
        while i < self.pending.len() {
            let PendingEmit { stream, channel, captured_ns, kind } = self.pending[i];
            i += 1;
            let alive = match kind {
                PendingKind::Finish { lane, index } => {
                    if self.lane(stream, channel).is_err() {
                        return false;
                    }
                    let mut out = DecodedPacket::default();
                    {
                        let decoder =
                            self.lanes.get_mut(&(stream, channel)).expect("lane exists");
                        decoder.finish_batch_lane(lane, index, &mut self.batch, &mut out);
                    }
                    if let Some(budget) = self.fleet.solve_budget {
                        if !out.converged && out.iterations >= budget {
                            self.counters.add_deadline_degraded();
                            self.telemetry.record_fault(FaultKind::DeadlineDegraded);
                        }
                    }
                    self.emit(stream, channel, PacketOutcome::Decoded, captured_ns, out)
                }
                PendingKind::Conceal { seq, outcome } => {
                    self.conceal_slot(stream, channel, seq, outcome, captured_ns)
                }
            };
            if !alive {
                self.pending.clear();
                self.staged.clear();
                self.batch.begin();
                return false;
            }
        }
        self.pending.clear();
        self.staged.clear();
        self.batch.begin();
        true
    }

    /// Decodes one in-order packet under panic supervision.
    fn decode_supervised(
        &mut self,
        stream: usize,
        channel: u8,
        wire_seq: u64,
        packet: EncodedPacket,
        captured_ns: u64,
    ) -> bool {
        if self.lane(stream, channel).is_err() {
            return false; // construction failure already reported
        }
        let chaos = self.fleet.chaos_panic == Some((stream, wire_seq))
            && !self.chaos_fired.swap(true, Ordering::Relaxed);
        let mut decoded = DecodedPacket::default();
        let attempt = {
            let decoder = self.lanes.get_mut(&(stream, channel)).expect("lane exists");
            let scratch = &mut self.scratch;
            catch_unwind(AssertUnwindSafe(|| {
                if chaos {
                    panic!("chaos: injected decode panic");
                }
                decoder.decode_packet_with(&packet, scratch, &mut decoded)
            }))
        };
        match attempt {
            Ok(Ok(())) => {
                self.counters.add_decoded();
                self.telemetry.record_worker_packet(self.worker_id);
                if let Some(budget) = self.fleet.solve_budget {
                    if !decoded.converged && decoded.iterations >= budget {
                        self.counters.add_deadline_degraded();
                        self.telemetry.record_fault(FaultKind::DeadlineDegraded);
                    }
                }
                self.emit(stream, channel, PacketOutcome::Decoded, captured_ns, decoded)
            }
            Ok(Err(PipelineError::Codec(CodecError::MissingReference))) => {
                // The lane is desynchronized (an upstream loss ate its
                // reference); the frame itself is healthy. Conceal until
                // the next reference resynchronizes the DPCM loop.
                self.counters.add_concealed_desync();
                self.telemetry.record_fault(FaultKind::ConcealedDesync);
                self.conceal_slot(
                    stream,
                    channel,
                    wire_seq,
                    ConcealmentReason::Desync.into(),
                    captured_ns,
                )
            }
            Ok(Err(e)) => {
                // The frame passed the CRC but poisoned its decoder — a
                // truncation the bit count happened to cover, or a CRC
                // collision. Quarantine the bytes, desync the lane, and
                // emit a flagged placeholder to keep emission contiguous.
                self.counters.add_quarantined();
                self.telemetry.record_fault(FaultKind::Quarantined);
                self.quarantine.lock().expect("quarantine lock").push(QuarantineRecord {
                    stream,
                    channel: Some(channel),
                    seq: Some(wire_seq),
                    bytes: packet.to_bytes_tagged(channel),
                    cause: e.to_string(),
                });
                if let Some(d) = self.lanes.get_mut(&(stream, channel)) {
                    d.desynchronize();
                }
                self.conceal_slot(stream, channel, wire_seq, PacketOutcome::Quarantined, captured_ns)
            }
            Err(panic) => {
                // Supervisor: quarantine the offender, then restart the
                // worker — every lane decoder and the shared workspace are
                // replaced, since a panic mid-decode can leave either in a
                // torn state. Streams on this worker rebuild lazily and
                // conceal until their next reference packet.
                let cause = panic_message(&panic);
                self.counters.add_worker_restart();
                self.telemetry.record_fault(FaultKind::WorkerRestart);
                self.counters.add_quarantined();
                self.telemetry.record_fault(FaultKind::Quarantined);
                self.quarantine.lock().expect("quarantine lock").push(QuarantineRecord {
                    stream,
                    channel: Some(channel),
                    seq: Some(wire_seq),
                    bytes: packet.to_bytes_tagged(channel),
                    cause: format!("panic: {cause}"),
                });
                self.lanes.clear();
                self.scratch = DecodeWorkspace::for_config(self.config);
                self.conceal_slot(stream, channel, wire_seq, PacketOutcome::Quarantined, captured_ns)
            }
        }
    }

    /// Emits a concealed placeholder window for one sequence slot.
    fn conceal_slot(
        &mut self,
        stream: usize,
        channel: u8,
        wire_seq: u64,
        outcome: PacketOutcome,
        captured_ns: u64,
    ) -> bool {
        if self.lane(stream, channel).is_err() {
            return false;
        }
        let mut out = DecodedPacket::default();
        {
            let decoder = self.lanes.get_mut(&(stream, channel)).expect("lane exists");
            if matches!(outcome, PacketOutcome::Concealed(ConcealmentReason::Loss)) {
                // A real loss always desynchronizes the DPCM loop.
                decoder.desynchronize();
            }
            decoder.conceal_packet_with(wire_seq, &mut self.scratch, &mut out);
        }
        self.emit(stream, channel, outcome, captured_ns, out)
    }

    /// Ensures the lane decoder exists; reports construction errors.
    fn lane(&mut self, stream: usize, channel: u8) -> Result<(), ()> {
        if let Entry::Vacant(v) = self.lanes.entry((stream, channel)) {
            match Decoder::with_cache(self.config, Arc::clone(&self.codebook), self.policy, self.cache)
            {
                Ok(mut d) => {
                    d.set_warm_start(self.fleet.warm_start);
                    d.set_concealment(true);
                    d.set_telemetry(self.telemetry.clone());
                    d.set_telemetry_labels(u32::try_from(stream).unwrap_or(u32::MAX), channel);
                    v.insert(d);
                }
                Err(e) => {
                    let _ = self.results.send(WireMsg::Failed {
                        stream: Some(stream),
                        cause: e.to_string(),
                    });
                    return Err(());
                }
            }
        }
        Ok(())
    }

    /// Sends one window to the collector under the stream's dense
    /// emission sequence. Returns `false` when the collector hung up.
    fn emit(
        &mut self,
        stream: usize,
        channel: u8,
        outcome: PacketOutcome,
        captured_ns: u64,
        packet: DecodedPacket<T>,
    ) -> bool {
        let seq = self.emit_seq.entry(stream).or_insert(0);
        let emit_seq = *seq;
        *seq += 1;
        let emitted_ns = if self.telemetry.is_enabled() { self.telemetry.now_ns() } else { 0 };
        self.results
            .send(WireMsg::Emit {
                stream,
                emit_seq,
                channel,
                worker: self.worker_id,
                captured_ns,
                emitted_ns,
                outcome,
                packet,
            })
            .is_ok()
    }

    /// End of input: emits everything still buffered, concealing interior
    /// gaps. Tail losses (frames after the last arrival) are undetectable
    /// without an end-of-stream marker and stay unemitted.
    fn flush(&mut self) -> bool {
        // End-of-input concealments have no triggering arrival; their
        // capture time is "now" (zero queue blame, honest e2e).
        let fallback = if self.telemetry.is_enabled() { self.telemetry.now_ns() } else { 0 };
        let keys: Vec<(usize, u8)> = self.seqs.keys().copied().collect();
        for (stream, channel) in keys {
            let mut events = Vec::new();
            if let Some(lane) = self.seqs.get_mut(&(stream, channel)) {
                lane.flush(&mut events);
            }
            if !self.handle_events(stream, channel, events, fallback) {
                return false;
            }
        }
        true
    }
}

impl From<ConcealmentReason> for PacketOutcome {
    fn from(reason: ConcealmentReason) -> Self {
        PacketOutcome::Concealed(reason)
    }
}

/// Renders a panic payload for the quarantine record.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

/// A durable destination for wire frames, fed *before* decode.
///
/// `run_fleet_wire_archived` calls [`FrameSink::append_frame`] with every
/// arrived frame — exactly the bytes the link delivered, including frames
/// the ingest path will go on to reject — so the archive preserves
/// quarantinable traffic for post-mortem. An append error fails the run
/// loudly ([`PipelineError::Fleet`]): silently dropping durability is
/// worse than stopping.
///
/// Implemented by `cs_archive::ArchiveSink`; kept as a trait here so
/// `cs-core` does not depend on the storage crate.
pub trait FrameSink: Send {
    /// Persists one arrived frame for `stream`. Called in each stream's
    /// arrival order (streams interleave arbitrarily).
    fn append_frame(&mut self, stream: usize, bytes: &[u8]) -> std::io::Result<()>;
}

/// One raw frame addressed to a fleet stream, exactly as a transport
/// delivered it — the unit of work a streaming frame source hands
/// [`run_fleet_wire_stream`]. The slice-based [`run_fleet_wire`] adapts
/// its materialized traffic into the same type internally.
#[derive(Debug, Clone)]
pub struct WireFrame {
    /// Dense fleet stream index. A socket ingest layer maps patient ids
    /// to dense slots; per-stream collector state grows with the highest
    /// index seen.
    pub stream: usize,
    /// The frame bytes as they came off the link, damage included.
    pub bytes: Vec<u8>,
}

/// Decodes wire traffic delivered by a streaming frame source — a
/// channel of [`WireFrame`]s in transport arrival order — across the
/// fleet, surviving corruption, loss, duplication, reordering and worker
/// panics.
///
/// This is the socket-facing form of [`run_fleet_wire`]: the engine
/// consumes frames as they arrive instead of materialized per-stream
/// slices, so a TCP ingest layer can feed long-lived sessions without
/// buffering them whole. Frames for one stream must be sent in that
/// stream's arrival order (interleaving across streams is arbitrary).
/// The run ends — flushing every staged reassembly tail — when all
/// senders for `source` have been dropped, so a graceful drain is
/// "stop feeding, drop the sender, join the engine".
///
/// # Errors
///
/// Returns [`PipelineError::InvalidConfig`] for zero channel capacity,
/// and [`PipelineError::Fleet`] only for construction failures — wire
/// damage never fails the run.
pub fn run_fleet_wire_stream<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    source: crossbeam::channel::Receiver<WireFrame>,
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    wire_engine_stream(config, codebook, source, 0, policy, fleet, telemetry, None, on_packet)
}

/// [`run_fleet_wire_stream`] with a durable archive sink on the ingest
/// path: every arrived frame is appended **before** any worker interprets
/// a byte of it (write-before-decode), matching
/// [`run_fleet_wire_archived`].
///
/// # Errors
///
/// Same contract as [`run_fleet_wire_stream`], plus
/// [`PipelineError::Fleet`] when the sink reports an I/O failure.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_wire_stream_archived<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    source: crossbeam::channel::Receiver<WireFrame>,
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    sink: &Mutex<dyn FrameSink>,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    wire_engine_stream(
        config,
        codebook,
        source,
        0,
        policy,
        fleet,
        telemetry,
        Some(sink),
        on_packet,
    )
}

/// Decodes wire traffic — frames exactly as a lossy link delivered them —
/// across the fleet, surviving corruption, loss, duplication, reordering
/// and worker panics.
///
/// `traffic[stream]` is that stream's arrival sequence of raw frames
/// (see [`crate::parse_frame`] for the format). Unlike
/// [`run_fleet_encoded`], a damaged frame does not end the run: every
/// window that can be attributed to a (stream, lane, sequence) slot is
/// emitted exactly once with a [`PacketOutcome`] explaining how it was
/// produced, and per-stream emission order is preserved. Unattributable
/// frames (framing/CRC rejects) are counted in
/// [`FleetReport::faults`] and quarantined.
///
/// # Errors
///
/// Returns [`PipelineError::InvalidConfig`] for an empty fleet or zero
/// channel capacity, and [`PipelineError::Fleet`] only for construction
/// failures — wire damage never fails the run.
pub fn run_fleet_wire<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    traffic: &[Vec<Vec<u8>>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    wire_engine(config, codebook, traffic, policy, fleet, telemetry, None, on_packet)
}

/// [`run_fleet_wire`] with a durable archive sink on the ingest path.
///
/// Every arrived frame is appended to `sink` **before** it is handed to
/// a decode worker (write-before-decode), so even frames the supervised
/// pipeline rejects, conceals, or quarantines are preserved byte-for-byte
/// and the archived session replays through `run_fleet_wire` to the same
/// decoded output.
///
/// # Errors
///
/// Same contract as [`run_fleet_wire`], plus [`PipelineError::Fleet`]
/// when the sink reports an I/O failure.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_wire_archived<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    traffic: &[Vec<Vec<u8>>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    sink: &Mutex<dyn FrameSink>,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    wire_engine(config, codebook, traffic, policy, fleet, telemetry, Some(sink), on_packet)
}

#[allow(clippy::too_many_arguments)]
fn wire_engine<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    traffic: &[Vec<Vec<u8>>],
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    sink: Option<&Mutex<dyn FrameSink>>,
    on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if traffic.is_empty() {
        return Err(PipelineError::InvalidConfig("empty fleet".into()));
    }
    if fleet.channel_capacity == 0 {
        return Err(PipelineError::InvalidConfig(
            "fleet channel capacity must be positive".into(),
        ));
    }
    let nstreams = traffic.len();
    // The slice path is a thin adapter over the streaming engine: one
    // producer thread per stream replays that stream's arrival order
    // into the shared feed, so per-stream order is preserved while
    // streams interleave arbitrarily — exactly what a live transport
    // delivers.
    let (feed_tx, feed_rx) =
        crossbeam::channel::bounded::<WireFrame>(fleet.channel_capacity * nstreams);
    let mut engine = None;
    std::thread::scope(|scope| {
        for (stream, frames) in traffic.iter().enumerate() {
            let feed = feed_tx.clone();
            scope.spawn(move || {
                for bytes in frames {
                    if feed.send(WireFrame { stream, bytes: bytes.clone() }).is_err() {
                        return; // engine hung up (failure path)
                    }
                }
            });
        }
        drop(feed_tx);
        engine = Some(wire_engine_stream(
            config, codebook, feed_rx, nstreams, policy, fleet, telemetry, sink, on_packet,
        ));
    });
    engine.expect("streaming engine ran")
}

/// The supervised wire-decode engine over a streaming frame source.
///
/// `min_streams` pre-sizes the per-stream collector state (and the
/// report's `streams` vector); indices at or above it grow the state on
/// first sight, so a socket transport can introduce patients mid-run.
#[allow(clippy::too_many_arguments)]
fn wire_engine_stream<T, F>(
    config: &SystemConfig,
    codebook: Arc<Codebook>,
    source: crossbeam::channel::Receiver<WireFrame>,
    min_streams: usize,
    policy: SolverPolicy<T>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
    sink: Option<&Mutex<dyn FrameSink>>,
    mut on_packet: F,
) -> Result<FleetReport, PipelineError>
where
    T: Real,
    F: FnMut(&FleetPacket<T>) + Send,
{
    if fleet.channel_capacity == 0 {
        return Err(PipelineError::InvalidConfig(
            "fleet channel capacity must be positive".into(),
        ));
    }
    let workers = fleet.effective_workers();
    let n = config.packet_len();
    let packet_period = Duration::from_secs_f64(n as f64 / 256.0);

    // Enforce the per-solve deadline by capping FISTA's iteration budget;
    // the solver then degrades to its best iterate instead of stalling.
    let mut policy = policy;
    if let Some(budget) = fleet.solve_budget {
        policy.max_iterations = policy.max_iterations.min(budget.max(1));
    }

    let cache: SpectralCache<T> = SpectralCache::new();
    let stalls = AtomicU64::new(0);
    let counters = FaultCounters::default();
    let quarantine = Mutex::new(QuarantineRing::default());
    let chaos_fired = AtomicBool::new(false);

    // As in the raw engine: a batched worker's queue must hold a full
    // batch plus the wave arriving while the current batch solves.
    let job_depth = fleet.channel_capacity.max(2 * fleet.batch);
    let (job_txs, job_rxs): (Vec<_>, Vec<_>) = (0..workers)
        .map(|_| crossbeam::channel::bounded::<WireJob>(job_depth))
        .unzip();
    // Result buffering scales with the expected fleet width; a source
    // that never announced one (min_streams == 0) gets a worker-scaled
    // floor instead.
    let res_capacity = fleet.channel_capacity * min_streams.max(workers).max(1);
    let (res_tx, res_rx) = crossbeam::channel::bounded::<WireMsg<T>>(res_capacity);

    let mut summaries = vec![StreamSummary::default(); min_streams];
    let mut worker_packets = vec![0usize; workers];
    let mut packets_decoded = 0usize;
    let mut total_decode = Duration::ZERO;
    let mut max_decode = Duration::ZERO;
    let mut failure: Option<PipelineError> = None;
    let started = Instant::now();

    let mut worker_panicked = false;
    std::thread::scope(|scope| {
        // --- Supervised decode workers ---------------------------------
        let mut worker_handles = Vec::with_capacity(workers);
        for (worker_id, jobs) in job_rxs.into_iter().enumerate() {
            let results = res_tx.clone();
            let codebook = Arc::clone(&codebook);
            let mut worker = WireWorker {
                worker_id,
                config,
                codebook,
                policy,
                fleet: *fleet,
                cache: &cache,
                telemetry: telemetry.clone(),
                counters: &counters,
                quarantine: &quarantine,
                chaos_fired: &chaos_fired,
                lanes: HashMap::new(),
                seqs: HashMap::new(),
                emit_seq: HashMap::new(),
                scratch: DecodeWorkspace::for_config(config),
                batch: BatchDecodeWorkspace::for_config(config, fleet.batch.max(1)),
                staged: Vec::with_capacity(fleet.batch.max(1)),
                pending: Vec::with_capacity(2 * fleet.batch.max(1)),
                results,
            };
            let batched = fleet.batch.max(1) > 1;
            worker_handles.push(scope.spawn(move || {
                if batched {
                    // Backlog-driven batching: drain whatever is queued;
                    // when the queue runs dry with frames staged, linger
                    // briefly (bounded, one deadline per partial batch)
                    // so contending producers can top the batch up, then
                    // flush. Latency floor = one linger, not a full batch.
                    let mut linger_deadline: Option<Instant> = None;
                    loop {
                        match jobs.try_recv() {
                            Ok(WireJob { stream, captured_ns, bytes }) => {
                                if !worker.ingest(stream, &bytes, captured_ns) {
                                    return;
                                }
                                if worker.staged_len() == 0 {
                                    // Ingest auto-flushed a full batch (or
                                    // staged nothing): the next partial
                                    // batch gets a fresh linger budget.
                                    linger_deadline = None;
                                }
                            }
                            Err(crossbeam::channel::TryRecvError::Empty) => {
                                if worker.staged_len() > 0 {
                                    let deadline = *linger_deadline
                                        .get_or_insert_with(|| Instant::now() + BATCH_LINGER);
                                    let now = Instant::now();
                                    if now < deadline {
                                        if let Ok(WireJob { stream, captured_ns, bytes }) =
                                            jobs.recv_timeout(deadline - now)
                                        {
                                            if !worker.ingest(stream, &bytes, captured_ns) {
                                                return;
                                            }
                                            if worker.staged_len() == 0 {
                                                linger_deadline = None;
                                            }
                                            continue;
                                        }
                                    }
                                }
                                // The partial batch is done waiting: record
                                // how long it deliberately lingered before
                                // solving below occupancy.
                                if worker.telemetry.is_enabled() {
                                    if let Some(deadline) = linger_deadline {
                                        let lingered = Instant::now()
                                            .saturating_duration_since(deadline - BATCH_LINGER);
                                        worker.telemetry.record_stage_ns(
                                            Stage::BatchLinger,
                                            u64::try_from(lingered.as_nanos()).unwrap_or(u64::MAX),
                                        );
                                    }
                                }
                                linger_deadline = None;
                                if !worker.flush_batch() {
                                    return;
                                }
                                match jobs.recv() {
                                    Ok(WireJob { stream, captured_ns, bytes }) => {
                                        if !worker.ingest(stream, &bytes, captured_ns) {
                                            return;
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                            Err(crossbeam::channel::TryRecvError::Disconnected) => break,
                        }
                    }
                    if !worker.flush_batch() {
                        return;
                    }
                    worker.flush(); // reassembler tails stage through the batched path
                    worker.flush_batch();
                } else {
                    for WireJob { stream, captured_ns, bytes } in jobs.iter() {
                        if !worker.ingest(stream, &bytes, captured_ns) {
                            return;
                        }
                    }
                    worker.flush();
                }
            }));
        }

        // --- Dispatcher: drain the frame source onto worker queues -----
        {
            let results = res_tx.clone();
            let stalls = &stalls;
            let telemetry = telemetry.clone();
            // The dispatcher owns the job senders: when the source closes
            // (every feed sender dropped) it returns, the queues
            // disconnect, and the workers flush their reassembly tails.
            scope.spawn(move || {
                for WireFrame { stream, bytes } in source.iter() {
                    // Write-before-decode: the frame reaches durable
                    // storage before any worker interprets a byte of it,
                    // so even traffic the pipeline will reject survives
                    // for post-mortem replay.
                    if let Some(sink) = sink {
                        let appended = sink
                            .lock()
                            .expect("archive sink lock")
                            .append_frame(stream, &bytes);
                        if let Err(e) = appended {
                            let _ = results.send(WireMsg::Failed {
                                stream: Some(stream),
                                cause: format!("archive sink: {e}"),
                            });
                            return;
                        }
                    }
                    // Arrival stamp: the wire path's "capture" is the
                    // moment the frame came off the link.
                    let captured_ns =
                        if telemetry.is_enabled() { telemetry.now_ns() } else { 0 };
                    // Stream affinity: one worker owns a stream's lanes
                    // for the whole run, so reassembly state never moves.
                    let jobs = &job_txs[stream % workers];
                    let mut job = WireJob { stream, captured_ns, bytes };
                    match jobs.try_send(job) {
                        Ok(()) => continue,
                        Err(crossbeam::channel::TrySendError::Full(back)) => {
                            stalls.fetch_add(1, Ordering::Relaxed);
                            job = back;
                            if jobs.send(job).is_err() {
                                return;
                            }
                        }
                        Err(crossbeam::channel::TrySendError::Disconnected(_)) => return,
                    }
                }
            });
        }
        drop(res_tx);

        // --- Collector: per-stream in-order emission --------------------
        type Slot<T> = (u8, PacketOutcome, DecodedPacket<T>, u64, u64);
        let mut pending: Vec<BTreeMap<u64, Slot<T>>> =
            (0..min_streams).map(|_| BTreeMap::new()).collect();
        let mut next_seq = vec![0u64; min_streams];
        for msg in res_rx.iter() {
            match msg {
                WireMsg::Emit {
                    stream,
                    emit_seq,
                    channel,
                    worker,
                    captured_ns,
                    emitted_ns,
                    outcome,
                    packet,
                } => {
                    let _span = telemetry.span(Stage::Reassembly);
                    worker_packets[worker] += 1;
                    // A streaming source can introduce streams mid-run;
                    // collector state grows on first sight.
                    if stream >= pending.len() {
                        pending.resize_with(stream + 1, BTreeMap::new);
                        next_seq.resize(stream + 1, 0);
                        summaries.resize_with(stream + 1, StreamSummary::default);
                    }
                    pending[stream]
                        .insert(emit_seq, (channel, outcome, packet, captured_ns, emitted_ns));
                    while let Some((channel, outcome, packet, captured_ns, emitted_ns)) =
                        pending[stream].remove(&next_seq[stream])
                    {
                        let seq = next_seq[stream];
                        next_seq[stream] += 1;
                        let summary = &mut summaries[stream];
                        summary.packets += 1;
                        summary.total_decode_time += packet.solve_time;
                        summary.max_decode_time = summary.max_decode_time.max(packet.solve_time);
                        summary.total_iterations += packet.iterations as u64;
                        summary.warm_started += usize::from(packet.warm_started);
                        packets_decoded += 1;
                        total_decode += packet.solve_time;
                        max_decode = max_decode.max(packet.solve_time);
                        let mut e2e = None;
                        if telemetry.is_enabled() {
                            telemetry.record_stage_ns(
                                Stage::EmitDeliver,
                                telemetry.now_ns().saturating_sub(emitted_ns),
                            );
                            e2e = telemetry
                                .record_emit(&TraceContext::new(
                                    u32::try_from(stream).unwrap_or(u32::MAX),
                                    channel,
                                    seq,
                                    captured_ns,
                                ))
                                .map(|rec| Duration::from_nanos(rec.e2e_ns));
                        }
                        let delivered = FleetPacket { stream, channel, outcome, e2e, packet };
                        on_packet(&delivered);
                    }
                }
                WireMsg::Failed { stream, cause } => {
                    failure = Some(PipelineError::Fleet { stream, cause });
                    break;
                }
            }
        }
        drop(res_rx);
        for handle in worker_handles {
            if handle.join().is_err() {
                worker_panicked = true;
            }
        }
    });

    if worker_panicked {
        return Err(PipelineError::Fleet {
            stream: None,
            cause: "worker panicked outside supervision".into(),
        });
    }
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(FleetReport {
        streams: summaries,
        workers,
        worker_packets,
        packets_decoded,
        backpressure_stalls: stalls.into_inner(),
        spectral_misses: cache.misses(),
        spectral_hits: cache.hits(),
        packet_period,
        wall_time: started.elapsed(),
        total_decode_time: total_decode,
        max_decode_time: max_decode,
        faults: counters.snapshot(),
        quarantine: quarantine
            .into_inner()
            .expect("quarantine lock")
            .into_records(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::uniform_codebook;

    fn ecg_like(npackets: usize, n: usize, phase: f64) -> Vec<i16> {
        (0..npackets * n)
            .map(|i| {
                let t = (i % n) as f64 / n as f64;
                (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin())
                    as i16
            })
            .collect()
    }

    #[test]
    fn empty_fleet_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let err = run_fleet::<f64, _>(
            &config,
            cb,
            &[],
            SolverPolicy::default(),
            &FleetConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfig(_)));
    }

    #[test]
    fn zero_lead_stream_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let streams = [FleetStream { leads: vec![] }];
        let err = run_fleet::<f64, _>(
            &config,
            cb,
            &streams,
            SolverPolicy::default(),
            &FleetConfig::default(),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfig(_)));
    }

    #[test]
    fn zero_capacity_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(1, 512, 0.0);
        let streams = [FleetStream::single(&samples)];
        let fleet = FleetConfig { channel_capacity: 0, ..FleetConfig::default() };
        let err = run_fleet::<f64, _>(
            &config,
            cb,
            &streams,
            SolverPolicy::default(),
            &fleet,
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::InvalidConfig(_)));
    }

    #[test]
    fn effective_workers_defaults_to_host_parallelism() {
        let auto = FleetConfig::default();
        assert!(auto.effective_workers() >= 1);
        let fixed = FleetConfig { workers: 3, ..FleetConfig::default() };
        assert_eq!(fixed.effective_workers(), 3);
    }

    #[test]
    fn small_fleet_decodes_and_shares_spectral_setup() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let s0 = ecg_like(2, 512, 0.0);
        let s1 = ecg_like(2, 512, 0.05);
        let streams = [FleetStream::single(&s0), FleetStream::single(&s1)];
        let fleet = FleetConfig { workers: 2, ..FleetConfig::default() };
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let report = run_fleet::<f32, _>(
            &config,
            Arc::clone(&cb),
            &streams,
            SolverPolicy::default(),
            &fleet,
            |p| seen.push((p.stream, p.packet.index)),
        )
        .unwrap();
        assert_eq!(report.packets_decoded, 4);
        assert_eq!(report.streams[0].packets, 2);
        assert_eq!(report.streams[1].packets, 2);
        // Identical configurations must share one spectral computation.
        assert_eq!(report.spectral_misses, 1);
        assert_eq!(report.spectral_hits, 1);
        // Per-stream delivery is in order.
        for stream in 0..2 {
            let indices: Vec<u64> =
                seen.iter().filter(|(s, _)| *s == stream).map(|&(_, i)| i).collect();
            assert_eq!(indices, vec![0, 1]);
        }
    }

    /// Encodes one single-lead stream into wire frames.
    fn wire_frames(config: &SystemConfig, samples: &[i16]) -> Vec<Vec<u8>> {
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let mut enc = MultiChannelEncoder::new(config, cb, 1).unwrap();
        let n = config.packet_len();
        (0..samples.len() / n)
            .map(|f| {
                let frame = enc.encode_frame(&[&samples[f * n..(f + 1) * n]]).unwrap();
                frame[0].to_bytes()
            })
            .collect()
    }

    #[test]
    fn clean_wire_traffic_all_decodes() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(3, 512, 0.0);
        let traffic = vec![wire_frames(&config, &samples)];
        let fleet = FleetConfig { workers: 1, ..FleetConfig::default() };
        let mut outcomes = Vec::new();
        let report = run_fleet_wire::<f32, _>(
            &config,
            cb,
            &traffic,
            SolverPolicy::default(),
            &fleet,
            &TelemetryRegistry::disabled(),
            |p| outcomes.push(p.outcome),
        )
        .unwrap();
        assert_eq!(report.packets_decoded, 3);
        assert!(outcomes.iter().all(|&o| o == PacketOutcome::Decoded));
        assert_eq!(report.faults.frames, 3);
        assert_eq!(report.faults.decoded, 3);
        assert_eq!(report.faults.delivered(), 3);
        assert_eq!(report.faults.frame_rejects, 0);
        assert!(report.quarantine.is_empty());
    }

    #[test]
    fn dropped_frame_is_concealed_not_fatal() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(4, 512, 0.0);
        let mut frames = wire_frames(&config, &samples);
        frames.remove(1); // lose the second window
        let traffic = vec![frames];
        let fleet = FleetConfig { workers: 1, ..FleetConfig::default() };
        let mut seen = Vec::new();
        let report = run_fleet_wire::<f32, _>(
            &config,
            cb,
            &traffic,
            SolverPolicy::default(),
            &fleet,
            &TelemetryRegistry::disabled(),
            |p| seen.push((p.packet.index, p.outcome, p.packet.concealed)),
        )
        .unwrap();
        // All four slots are emitted, in wire order, with the gap flagged.
        assert_eq!(seen.len(), 4);
        assert_eq!(
            seen.iter().map(|&(i, _, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(seen[1].1, PacketOutcome::Concealed(ConcealmentReason::Loss));
        assert!(seen[1].2, "concealed samples must be flagged");
        assert_eq!(report.faults.concealed_loss, 1);
        // The post-loss deltas conceal until the next reference packet;
        // at the paper's reference interval all remaining windows in this
        // short run are deltas, so they ride out as desync concealments.
        assert_eq!(
            report.faults.delivered(),
            report.faults.decoded + report.faults.concealed()
        );
    }

    #[test]
    fn corrupt_frame_is_rejected_at_ingest() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(2, 512, 0.0);
        let mut frames = wire_frames(&config, &samples);
        let mid = frames[1].len() / 2;
        frames[1][mid] ^= 0xFF; // burst damage in the payload
        let traffic = vec![frames];
        let fleet = FleetConfig { workers: 1, ..FleetConfig::default() };
        let report = run_fleet_wire::<f32, _>(
            &config,
            cb,
            &traffic,
            SolverPolicy::default(),
            &fleet,
            &TelemetryRegistry::disabled(),
            |_| {},
        )
        .unwrap();
        assert_eq!(report.faults.frame_rejects, 1);
        assert_eq!(report.quarantine.len(), 1);
        assert!(report.quarantine[0].cause.contains("CRC"));
        // The rejected frame's slot is a tail gap (undetectable), so only
        // the first window is emitted.
        assert_eq!(report.faults.decoded, 1);
    }

    #[test]
    fn streaming_source_matches_slice_path() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let s0 = ecg_like(3, 512, 0.0);
        let s1 = ecg_like(3, 512, 0.05);
        let traffic = vec![wire_frames(&config, &s0), wire_frames(&config, &s1)];
        let fleet = FleetConfig { workers: 2, ..FleetConfig::default() };

        let mut slice_seen: Vec<(usize, u64)> = Vec::new();
        run_fleet_wire::<f32, _>(
            &config,
            Arc::clone(&cb),
            &traffic,
            SolverPolicy::default(),
            &fleet,
            &TelemetryRegistry::disabled(),
            |p| slice_seen.push((p.stream, p.packet.index)),
        )
        .unwrap();

        // Stream 1 only starts sending after stream 0 finishes: the
        // engine must grow collector state for a stream it has never
        // seen, mid-run, without a fleet-width announcement.
        let (tx, rx) = crossbeam::channel::bounded::<WireFrame>(4);
        let mut stream_seen: Vec<(usize, u64)> = Vec::new();
        let report = std::thread::scope(|scope| {
            let frames = &traffic;
            scope.spawn(move || {
                for (stream, stream_frames) in frames.iter().enumerate() {
                    for bytes in stream_frames {
                        tx.send(WireFrame { stream, bytes: bytes.clone() }).unwrap();
                    }
                }
            });
            run_fleet_wire_stream::<f32, _>(
                &config,
                Arc::clone(&cb),
                rx,
                SolverPolicy::default(),
                &fleet,
                &TelemetryRegistry::disabled(),
                |p| stream_seen.push((p.stream, p.packet.index)),
            )
        })
        .unwrap();

        assert_eq!(report.packets_decoded, 6);
        assert_eq!(report.streams.len(), 2);
        assert_eq!(report.faults.frames, 6);
        assert_eq!(report.faults.decoded, 6);
        for stream in 0..2 {
            let order = |seen: &[(usize, u64)]| {
                seen.iter().filter(|(s, _)| *s == stream).map(|&(_, i)| i).collect::<Vec<_>>()
            };
            assert_eq!(order(&stream_seen), order(&slice_seen), "stream {stream}");
        }
    }

    #[test]
    fn injected_panic_is_supervised() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        let samples = ecg_like(3, 512, 0.0);
        let traffic = vec![wire_frames(&config, &samples)];
        let fleet = FleetConfig {
            workers: 1,
            chaos_panic: Some((0, 1)),
            ..FleetConfig::default()
        };
        let mut outcomes = Vec::new();
        let report = run_fleet_wire::<f32, _>(
            &config,
            cb,
            &traffic,
            SolverPolicy::default(),
            &fleet,
            &TelemetryRegistry::disabled(),
            |p| outcomes.push(p.outcome),
        )
        .unwrap();
        assert_eq!(report.faults.worker_restarts, 1);
        assert_eq!(report.faults.quarantined, 1);
        assert_eq!(outcomes.len(), 3, "every slot still emitted");
        assert_eq!(outcomes[1], PacketOutcome::Quarantined);
        assert_eq!(report.quarantine.len(), 1);
        assert!(report.quarantine[0].cause.contains("panic"));
        assert_eq!(report.quarantine[0].seq, Some(1));
    }
}
