//! MMV batching for fleet decode: grouping same-config lanes into K-wide
//! solves.
//!
//! The fleet's decode cost is dominated by FISTA's operator applications,
//! and for the paper's sparse binary Φ those are memory-bound: each
//! iteration walks the CSR/CSC support structure once per lane. When a
//! worker's backlog holds windows from several *distinct* lanes of the
//! same configuration — different patients, or different leads of one
//! patient — the multiple-measurement-vector (MMV) solver
//! (`cs_recovery::fista_warm_batch_ws`) walks that structure **once per
//! batch**, streaming K right-hand sides through it. Per-column
//! convergence masks let each lane keep its own iteration count, so the
//! batched results are bit-for-bit the sequential ones.
//!
//! Two pieces live here:
//!
//! * [`BatchScheduler`] — groups a worker's arrivals into batches of up
//!   to K jobs with pairwise-distinct lane keys, preserving per-lane
//!   arrival order. Same-patient leads arrive back-to-back (the producer
//!   emits a frame's channels consecutively), so greedy arrival-order
//!   grouping naturally batches a patient's leads together before
//!   filling the remaining width from the shard's other streams.
//! * [`BatchDecodeWorkspace`] — the per-worker buffer set for the
//!   batched decode path: one scalar [`DecodeWorkspace`] shared by every
//!   lane's front half (entropy decode, redundancy reinsertion, λ, warm
//!   safeguard) plus the K-wide solve workspace and per-lane solver
//!   configurations. After one full batch has warmed the buffers, a
//!   steady-state batch round performs zero heap allocations
//!   (`crates/core/tests/zero_alloc_batch.rs` pins this with a counting
//!   allocator).

use crate::config::SystemConfig;
use crate::decoder::DecodeWorkspace;
use cs_dsp::Real;
use cs_recovery::{BatchWorkspace, ShrinkageConfig};
use std::collections::VecDeque;

/// Groups decode jobs into batches of pairwise-distinct lanes.
///
/// Jobs are held in arrival order; [`BatchScheduler::drain_into`] moves a
/// prefix of them into the caller's batch, stopping at the batch width or
/// at the first job whose lane the batch already contains (the
/// *duplicate-lane flush*: a lane's second window depends on its first
/// through the DPCM and warm-start state, so it must wait for the next
/// batch). Per-lane order is therefore preserved exactly — a lane's jobs
/// leave the scheduler in the order they entered.
#[derive(Debug)]
pub struct BatchScheduler<J> {
    width: usize,
    held: VecDeque<J>,
}

impl<J> BatchScheduler<J> {
    /// A scheduler targeting batches of `width` lanes (`0` behaves as 1).
    pub fn new(width: usize) -> Self {
        BatchScheduler {
            width: width.max(1),
            held: VecDeque::new(),
        }
    }

    /// The target batch width K.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether no jobs are waiting.
    pub fn is_idle(&self) -> bool {
        self.held.is_empty()
    }

    /// Jobs waiting to be batched.
    pub fn held_len(&self) -> usize {
        self.held.len()
    }

    /// Distinct lane keys currently held — the widest batch
    /// [`drain_into`](BatchScheduler::drain_into) could assemble right
    /// now. A fill loop should key off this, not [`held_len`]
    /// (BatchScheduler::held_len): two windows of one lane can never
    /// share a batch, so raw job count overstates the assemblable width
    /// whenever a stream runs ahead of its batchmates.
    pub fn distinct_held<K: PartialEq>(&self, mut lane_of: impl FnMut(&J) -> K) -> usize {
        let mut distinct = 0;
        for (i, job) in self.held.iter().enumerate() {
            let key = lane_of(job);
            if !self.held.iter().take(i).any(|seen| lane_of(seen) == key) {
                distinct += 1;
            }
        }
        distinct
    }

    /// Queues one arrival behind everything already held.
    pub fn push(&mut self, job: J) {
        self.held.push_back(job);
    }

    /// Moves the next batch into `batch` (cleared first): up to
    /// [`width`](BatchScheduler::width) held jobs in arrival order,
    /// *skipping over* any job whose lane key is already in the batch.
    /// Skipped jobs stay held, still in arrival order, and lead a later
    /// batch. Only per-lane FIFO matters for correctness (a lane's next
    /// window needs its previous window's DPCM state and warm seed);
    /// halting the whole batch at the first duplicate would fragment
    /// occupancy whenever one stream runs ahead of its batchmates —
    /// precisely the interleaving a bursty producer wave produces.
    pub fn drain_into<K: PartialEq>(&mut self, batch: &mut Vec<J>, mut lane_of: impl FnMut(&J) -> K) {
        batch.clear();
        let mut i = 0;
        while i < self.held.len() && batch.len() < self.width {
            let key = lane_of(&self.held[i]);
            if batch.iter().any(|staged| lane_of(staged) == key) {
                i += 1; // this lane is already staged: hold its next window
            } else {
                batch.push(self.held.remove(i).expect("index in range"));
            }
        }
    }
}

/// Per-worker buffers for the batched decode path.
///
/// One of these serves all of a worker's lanes across all of its batches,
/// the batched analogue of the per-worker [`DecodeWorkspace`]: the scalar
/// scratch is shared by every lane's front half (each stage overwrites it
/// completely), while the solve workspace holds all K lanes' measurement
/// and coefficient blocks side by side. Between batches the caller resets
/// it with [`BatchDecodeWorkspace::begin`]; buffers keep their capacity,
/// so the steady state allocates nothing.
#[derive(Debug)]
pub struct BatchDecodeWorkspace<T: Real> {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Scalar front-half scratch (entropy decode through warm safeguard),
    /// reused by every lane staged into the batch.
    pub(crate) scalar: DecodeWorkspace<T>,
    /// The K-wide MMV solve buffers.
    pub(crate) solve: BatchWorkspace<T>,
    /// One solver configuration per staged lane (λ is data-adaptive, so
    /// it differs per lane even under one policy).
    pub(crate) configs: Vec<ShrinkageConfig<T>>,
    /// Whether each staged lane's solve was seeded from a warm estimate.
    pub(crate) warm_started: Vec<bool>,
    /// Lane-major per-coefficient ℓ1 weights for the support-prior batch
    /// path (`lane·n .. (lane+1)·n`); empty unless the policy's prior
    /// mode stages weights.
    pub(crate) lane_weights: Vec<T>,
    /// Whether each staged lane's weights came from its support prior
    /// (vs the static fallback) — decides the telemetry mode label.
    pub(crate) prior_used: Vec<bool>,
}

impl<T: Real> BatchDecodeWorkspace<T> {
    /// A workspace pre-sized for `config`'s geometry and `width` lanes,
    /// ready for the first [`Decoder::begin_batch_lane`] call.
    ///
    /// [`Decoder::begin_batch_lane`]: crate::Decoder::begin_batch_lane
    pub fn for_config(config: &SystemConfig, width: usize) -> Self {
        let width = width.max(1);
        let (m, n) = (config.measurements(), config.packet_len());
        BatchDecodeWorkspace {
            rows: m,
            cols: n,
            scalar: DecodeWorkspace::for_config(config),
            solve: BatchWorkspace::with_dims(m, n, width),
            configs: Vec::with_capacity(width),
            warm_started: Vec::with_capacity(width),
            lane_weights: Vec::with_capacity(width * n),
            prior_used: Vec::with_capacity(width),
        }
    }

    /// Starts a new empty batch, keeping every buffer's capacity.
    pub fn begin(&mut self) {
        self.solve.begin(self.rows, self.cols);
        self.configs.clear();
        self.warm_started.clear();
        self.lane_weights.clear();
        self.prior_used.clear();
    }

    /// Lanes staged into the current batch so far.
    pub fn lanes(&self) -> usize {
        self.solve.lanes()
    }

    /// Replaces the scalar scratch after a supervised panic: a panic
    /// mid-stage can leave the front-half buffers torn, but the solve
    /// blocks of lanes already staged are complete and stay valid, so
    /// only the scalar half is rebuilt.
    pub(crate) fn replace_scalar(&mut self, config: &SystemConfig) {
        self.scalar = DecodeWorkspace::for_config(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Job(usize, u64); // (lane, seq)

    #[test]
    fn groups_distinct_lanes_up_to_width() {
        let mut sched = BatchScheduler::new(4);
        for lane in 0..6 {
            sched.push(Job(lane, 0));
        }
        let mut batch = Vec::new();
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.iter().map(|j| j.0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch.iter().map(|j| j.0).collect::<Vec<_>>(), vec![4, 5]);
        assert!(sched.is_idle());
    }

    #[test]
    fn duplicate_lane_waits_without_fragmenting_the_batch() {
        let mut sched = BatchScheduler::new(8);
        sched.push(Job(0, 0));
        sched.push(Job(0, 1)); // lane 0 again: must wait for the next batch
        sched.push(Job(1, 0));
        sched.push(Job(2, 0));
        let mut batch = Vec::new();
        sched.drain_into(&mut batch, |j| j.0);
        // The duplicate is skipped over, not allowed to halt the batch:
        // every distinct lane held solves together.
        assert_eq!(batch, vec![Job(0, 0), Job(1, 0), Job(2, 0)]);
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch, vec![Job(0, 1)]);
        assert!(sched.is_idle());
    }

    #[test]
    fn per_lane_order_survives_skipping() {
        let mut sched = BatchScheduler::new(2);
        sched.push(Job(0, 0));
        sched.push(Job(0, 1));
        sched.push(Job(0, 2));
        sched.push(Job(1, 0));
        let mut batch = Vec::new();
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch, vec![Job(0, 0), Job(1, 0)]);
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch, vec![Job(0, 1)]);
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch, vec![Job(0, 2)]);
    }

    #[test]
    fn zero_width_behaves_as_sequential() {
        let mut sched = BatchScheduler::new(0);
        assert_eq!(sched.width(), 1);
        sched.push(Job(0, 0));
        sched.push(Job(1, 0));
        let mut batch = Vec::new();
        sched.drain_into(&mut batch, |j| j.0);
        assert_eq!(batch.len(), 1);
        assert_eq!(sched.held_len(), 1);
    }

    #[test]
    fn drain_on_empty_scheduler_yields_empty_batch() {
        let mut sched: BatchScheduler<Job> = BatchScheduler::new(4);
        let mut batch = vec![Job(9, 9)];
        sched.drain_into(&mut batch, |j| j.0);
        assert!(batch.is_empty());
    }
}
