//! Gap-aware ingest: reassembly, outcome accounting and quarantine.
//!
//! Between the lossy link and the decode workers sits a small amount of
//! per-lane state that turns an unordered, gappy, duplicated wire feed
//! into the contiguous in-order packet sequence the closed-loop DPCM
//! decoder requires:
//!
//! * [`Reassembler`] — a per-(stream, lane) sequencer with a bounded
//!   reorder window. It buffers early arrivals, drops duplicates and
//!   late stragglers, and *declares* losses when the window overflows so
//!   the pipeline can conceal the gap instead of stalling forever.
//! * [`PacketOutcome`] — how each emitted window was produced (decoded,
//!   concealed, quarantined), so PRD accounting downstream can separate
//!   true reconstruction error from concealment.
//! * [`QuarantineRing`] — a bounded ring of offending frames kept for
//!   postmortem; old offenders are evicted, never the pipeline stalled.
//! * [`FaultStats`] / [`FaultCounters`] — the exact bookkeeping the
//!   chaos tests assert over: every frame pushed at ingest is counted in
//!   precisely one terminal bucket.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default reorder window: how many out-of-order frames a lane buffers
/// before declaring the missing sequence numbers lost.
pub const DEFAULT_REORDER_WINDOW: usize = 8;

/// Largest gap the reassembler will conceal packet-by-packet; beyond
/// this it resynchronizes (jumps its cursor) instead of emitting an
/// unbounded run of concealed windows.
pub const MAX_LOSS_BURST: u64 = 32;

/// How each emitted window was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketOutcome {
    /// Decoded normally from received bytes.
    Decoded,
    /// Samples re-synthesized from the previous window's coefficients.
    Concealed(ConcealmentReason),
    /// The frame poisoned its decoder (error or panic); the emitted
    /// samples are concealment placeholders and the offending bytes were
    /// quarantined for postmortem.
    Quarantined,
}

/// Why a window was concealed rather than decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcealmentReason {
    /// The frame never arrived (declared lost by the reorder window).
    Loss,
    /// The frame arrived but the DPCM loop had lost synchronization
    /// (e.g. a delta packet after a concealed reference).
    Desync,
}

impl PacketOutcome {
    /// `true` for both concealment variants and quarantine placeholders —
    /// i.e. the emitted samples are synthetic, not decoded from the wire.
    pub fn is_synthetic(self) -> bool {
        !matches!(self, PacketOutcome::Decoded)
    }
}

/// Event stream out of the [`Reassembler`], in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequencedEvent<P> {
    /// The next in-order item.
    Deliver(u64, P),
    /// Sequence number declared lost; conceal this slot.
    Lost(u64),
    /// A gap larger than [`MAX_LOSS_BURST`]: the cursor jumped from
    /// `from` to `to` without per-slot concealment. The DPCM loop must
    /// desynchronize.
    Resync {
        /// First missing sequence number.
        from: u64,
        /// Sequence number emission resumes at.
        to: u64,
    },
}

/// Why [`Reassembler::push`] refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushReject {
    /// Same sequence number already buffered or already emitted recently
    /// enough to still be in the window.
    Duplicate,
    /// Arrived after its slot was already emitted (decoded or concealed).
    Late,
}

/// Per-lane sequencer with a bounded reorder window.
///
/// Sequence numbers are expected to start at 0 and be dense on the
/// sender side; the wire may drop, duplicate and reorder them.
#[derive(Debug)]
pub struct Reassembler<P> {
    next: u64,
    window: usize,
    pending: BTreeMap<u64, P>,
}

impl<P> Reassembler<P> {
    /// Creates a sequencer expecting sequence 0 first. A zero window is
    /// clamped to 1 (pure in-order mode: any gap is an immediate loss).
    pub fn new(window: usize) -> Self {
        Reassembler {
            next: 0,
            window: window.max(1),
            pending: BTreeMap::new(),
        }
    }

    /// Sequence number the lane will emit next.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Number of frames buffered out of order.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Offers one arrived frame; appends emission events to `out`.
    ///
    /// Returns `Err` for frames that will never be emitted (duplicates
    /// and late stragglers); the caller counts them. `Ok(())` means the
    /// frame was either delivered immediately or buffered.
    pub fn push(
        &mut self,
        seq: u64,
        item: P,
        out: &mut Vec<SequencedEvent<P>>,
    ) -> Result<(), PushReject> {
        if seq < self.next {
            return Err(PushReject::Late);
        }
        if self.pending.contains_key(&seq) {
            return Err(PushReject::Duplicate);
        }
        self.pending.insert(seq, item);
        self.drain(out);
        Ok(())
    }

    /// Emits everything still buffered, concealing interior gaps, and
    /// leaves the lane empty. Call at end of stream.
    pub fn flush(&mut self, out: &mut Vec<SequencedEvent<P>>) {
        while let Some((&front, _)) = self.pending.iter().next() {
            self.advance_to(front, out);
            let (seq, item) = self.pending.pop_first().expect("front exists");
            debug_assert_eq!(seq, self.next);
            out.push(SequencedEvent::Deliver(seq, item));
            self.next += 1;
        }
    }

    /// Delivers every in-order frame, then forces losses while the
    /// buffer exceeds the reorder window.
    fn drain(&mut self, out: &mut Vec<SequencedEvent<P>>) {
        loop {
            match self.pending.keys().next().copied() {
                Some(front) if front == self.next => {
                    let (seq, item) = self.pending.pop_first().expect("front exists");
                    out.push(SequencedEvent::Deliver(seq, item));
                    self.next += 1;
                }
                Some(front) if self.pending.len() > self.window => {
                    self.advance_to(front, out);
                }
                _ => break,
            }
        }
    }

    /// Moves the cursor up to `target`, emitting `Lost` per missing slot
    /// or a single `Resync` if the gap exceeds [`MAX_LOSS_BURST`].
    fn advance_to(&mut self, target: u64, out: &mut Vec<SequencedEvent<P>>) {
        debug_assert!(target >= self.next);
        let gap = target - self.next;
        if gap > MAX_LOSS_BURST {
            out.push(SequencedEvent::Resync {
                from: self.next,
                to: target,
            });
            self.next = target;
        } else {
            while self.next < target {
                out.push(SequencedEvent::Lost(self.next));
                self.next += 1;
            }
        }
    }
}

/// One quarantined frame, kept for postmortem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Fleet stream index.
    pub stream: usize,
    /// Lane (lead) tag, when the frame parsed far enough to know it.
    pub channel: Option<u8>,
    /// Wire sequence number, when known.
    pub seq: Option<u64>,
    /// The offending frame bytes as received.
    pub bytes: Vec<u8>,
    /// Human-readable cause (decode error or panic payload).
    pub cause: String,
}

/// Bounded ring of [`QuarantineRecord`]s: oldest offenders are evicted
/// so a pathological link cannot grow memory without bound.
#[derive(Debug)]
pub struct QuarantineRing {
    records: Vec<QuarantineRecord>,
    capacity: usize,
    evicted: u64,
}

/// Default quarantine capacity.
pub const DEFAULT_QUARANTINE_CAPACITY: usize = 32;

impl QuarantineRing {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        QuarantineRing {
            records: Vec::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Adds a record, evicting the oldest if full.
    pub fn push(&mut self, record: QuarantineRecord) {
        if self.records.len() == self.capacity {
            self.records.remove(0);
            self.evicted += 1;
        }
        self.records.push(record);
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> &[QuarantineRecord] {
        &self.records
    }

    /// How many records were evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Consumes the ring, returning held records oldest first.
    pub fn into_records(self) -> Vec<QuarantineRecord> {
        self.records
    }
}

impl Default for QuarantineRing {
    fn default() -> Self {
        QuarantineRing::new(DEFAULT_QUARANTINE_CAPACITY)
    }
}

/// Snapshot of ingest/supervision accounting for one fleet run.
///
/// Two identities hold after a run (and the chaos tests assert them):
///
/// ```text
/// frames == frame_rejects + duplicates + late
///           + decoded + concealed_desync + quarantined
/// emitted windows == decoded + concealed_loss + concealed_desync + quarantined
/// ```
///
/// (`concealed_loss` windows never correspond to an arrived frame, which
/// is why it appears only in the second identity.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered at ingest (arrived over the wire).
    pub frames: u64,
    /// Frames rejected before reassembly (framing/CRC failures); these
    /// carry no trustworthy stream/seq identity.
    pub frame_rejects: u64,
    /// Frames dropped as duplicates of a buffered sequence number.
    pub duplicates: u64,
    /// Frames that arrived after their slot was already emitted.
    pub late: u64,
    /// Gap bursts larger than [`MAX_LOSS_BURST`] handled by cursor jump.
    pub resyncs: u64,
    /// Windows decoded normally.
    pub decoded: u64,
    /// Windows concealed because the frame never arrived.
    pub concealed_loss: u64,
    /// Windows concealed because the DPCM loop was desynchronized.
    pub concealed_desync: u64,
    /// Windows whose frame was quarantined (decode error or panic).
    pub quarantined: u64,
    /// Workers restarted with a fresh workspace after a panic.
    pub worker_restarts: u64,
    /// Solves stopped at the iteration budget without converging.
    pub deadline_degraded: u64,
}

impl FaultStats {
    /// Total concealed windows (loss + desync).
    pub fn concealed(&self) -> u64 {
        self.concealed_loss + self.concealed_desync
    }

    /// Total emitted windows: `decoded + concealed + quarantined`.
    pub fn delivered(&self) -> u64 {
        self.decoded + self.concealed() + self.quarantined
    }
}

/// Shared atomic counters behind [`FaultStats`]; workers increment,
/// the report snapshots.
#[derive(Debug, Default)]
pub struct FaultCounters {
    frames: AtomicU64,
    frame_rejects: AtomicU64,
    duplicates: AtomicU64,
    late: AtomicU64,
    resyncs: AtomicU64,
    decoded: AtomicU64,
    concealed_loss: AtomicU64,
    concealed_desync: AtomicU64,
    quarantined: AtomicU64,
    worker_restarts: AtomicU64,
    deadline_degraded: AtomicU64,
}

macro_rules! bump {
    ($($field:ident => $method:ident),* $(,)?) => {
        $(
            #[doc = concat!("Increments `", stringify!($field), "`.")]
            pub fn $method(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

impl FaultCounters {
    bump! {
        frames => add_frame,
        frame_rejects => add_frame_reject,
        duplicates => add_duplicate,
        late => add_late,
        resyncs => add_resync,
        decoded => add_decoded,
        concealed_loss => add_concealed_loss,
        concealed_desync => add_concealed_desync,
        quarantined => add_quarantined,
        worker_restarts => add_worker_restart,
        deadline_degraded => add_deadline_degraded,
    }

    /// Reads every counter into an owned snapshot.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            frames: self.frames.load(Ordering::Relaxed),
            frame_rejects: self.frame_rejects.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            late: self.late.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            decoded: self.decoded.load(Ordering::Relaxed),
            concealed_loss: self.concealed_loss.load(Ordering::Relaxed),
            concealed_desync: self.concealed_desync.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            deadline_degraded: self.deadline_degraded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliveries(events: &[SequencedEvent<u64>]) -> Vec<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                SequencedEvent::Deliver(s, _) => Some(*s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_passthrough() {
        let mut r = Reassembler::new(4);
        let mut out = Vec::new();
        for seq in 0..5 {
            r.push(seq, seq, &mut out).unwrap();
        }
        assert_eq!(deliveries(&out), vec![0, 1, 2, 3, 4]);
        assert_eq!(out.len(), 5, "no loss/resync events");
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn reorder_within_window_is_healed() {
        let mut r = Reassembler::new(4);
        let mut out = Vec::new();
        for seq in [1, 0, 3, 2] {
            r.push(seq, seq, &mut out).unwrap();
        }
        assert_eq!(deliveries(&out), vec![0, 1, 2, 3]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn window_overflow_declares_loss() {
        let mut r = Reassembler::new(2);
        let mut out = Vec::new();
        // seq 0 never arrives; 1..=3 overflow the 2-frame window.
        r.push(1, 1, &mut out).unwrap();
        r.push(2, 2, &mut out).unwrap();
        assert!(out.is_empty(), "still within window");
        r.push(3, 3, &mut out).unwrap();
        assert_eq!(
            out,
            vec![
                SequencedEvent::Lost(0),
                SequencedEvent::Deliver(1, 1),
                SequencedEvent::Deliver(2, 2),
                SequencedEvent::Deliver(3, 3),
            ]
        );
    }

    #[test]
    fn duplicates_and_late_frames_rejected() {
        let mut r = Reassembler::new(4);
        let mut out = Vec::new();
        r.push(0, 0, &mut out).unwrap();
        r.push(2, 2, &mut out).unwrap();
        assert_eq!(r.push(2, 2, &mut out), Err(PushReject::Duplicate));
        assert_eq!(r.push(0, 0, &mut out), Err(PushReject::Late));
        r.push(1, 1, &mut out).unwrap();
        assert_eq!(deliveries(&out), vec![0, 1, 2]);
    }

    #[test]
    fn flush_conceals_interior_gaps_only() {
        let mut r = Reassembler::new(8);
        let mut out = Vec::new();
        r.push(0, 0, &mut out).unwrap();
        r.push(2, 2, &mut out).unwrap();
        r.push(5, 5, &mut out).unwrap();
        r.flush(&mut out);
        assert_eq!(
            out,
            vec![
                SequencedEvent::Deliver(0, 0),
                SequencedEvent::Lost(1),
                SequencedEvent::Deliver(2, 2),
                SequencedEvent::Lost(3),
                SequencedEvent::Lost(4),
                SequencedEvent::Deliver(5, 5),
            ]
        );
        assert_eq!(r.next_seq(), 6, "tail losses are NOT declared by flush");
    }

    #[test]
    fn huge_gap_resyncs_instead_of_flooding() {
        let mut r = Reassembler::new(1);
        let mut out = Vec::new();
        let far = MAX_LOSS_BURST + 100;
        r.push(far, far, &mut out).unwrap();
        r.push(far + 1, far + 1, &mut out).unwrap();
        assert_eq!(
            out,
            vec![
                SequencedEvent::Resync { from: 0, to: far },
                SequencedEvent::Deliver(far, far),
                SequencedEvent::Deliver(far + 1, far + 1),
            ]
        );
    }

    #[test]
    fn quarantine_ring_bounds_memory() {
        let mut ring = QuarantineRing::new(2);
        for i in 0..5_u64 {
            ring.push(QuarantineRecord {
                stream: i as usize,
                channel: None,
                seq: Some(i),
                bytes: vec![],
                cause: "test".into(),
            });
        }
        assert_eq!(ring.records().len(), 2);
        assert_eq!(ring.evicted(), 3);
        assert_eq!(ring.records()[0].stream, 3, "oldest evicted first");
    }

    #[test]
    fn fault_counters_snapshot() {
        let c = FaultCounters::default();
        c.add_frame();
        c.add_frame();
        c.add_decoded();
        c.add_concealed_loss();
        c.add_quarantined();
        let s = c.snapshot();
        assert_eq!(s.frames, 2);
        assert_eq!(s.delivered(), 3);
        assert_eq!(s.concealed(), 1);
    }
}
