//! System-wide configuration of the CS-ECG pipeline.

use crate::error::PipelineError;
use cs_dsp::wavelet::{Wavelet, WaveletFamily};
use cs_sensing::measurements_for_cr;

/// Everything the encoder and decoder must agree on. Both sides are
/// constructed from the *same* `SystemConfig`, mirroring how the mote and
/// the coordinator share a seed and parameter set out of band.
///
/// Build one with [`SystemConfig::builder`] or take the paper's defaults
/// via [`SystemConfig::paper_default`].
///
/// # Examples
///
/// ```
/// use cs_core::SystemConfig;
///
/// let config = SystemConfig::builder()
///     .compression_ratio(50.0)
///     .sparse_ones_per_column(12)
///     .build()?;
/// assert_eq!(config.packet_len(), 512);
/// assert_eq!(config.measurements(), 256);
/// # Ok::<(), cs_core::PipelineError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    packet_len: usize,
    compression_ratio: f64,
    sparse_d: usize,
    seed: u64,
    wavelet: WaveletFamily,
    levels: usize,
    reference_interval: usize,
    alphabet: usize,
    sample_bits: u8,
}

impl SystemConfig {
    /// The configuration the paper's demo system runs: 2-second packets of
    /// 512 samples at 256 Hz, sparse binary sensing with `d = 12`, a db4
    /// wavelet at depth 5, CR 50 %, and the 512-symbol / 16-bit Huffman
    /// stage.
    pub fn paper_default() -> Self {
        SystemConfig::builder()
            .build()
            .expect("paper defaults are valid")
    }

    /// Starts a builder pre-loaded with the paper's defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Samples per packet, N (512 ⇔ 2 s at 256 Hz).
    pub fn packet_len(&self) -> usize {
        self.packet_len
    }

    /// Compression ratio of the linear CS stage in percent.
    pub fn compression_ratio(&self) -> f64 {
        self.compression_ratio
    }

    /// Measurements per packet, `M = round(N·(1 − CR/100))`.
    pub fn measurements(&self) -> usize {
        measurements_for_cr(self.packet_len, self.compression_ratio)
    }

    /// Ones per column of the sparse binary Φ.
    pub fn sparse_ones_per_column(&self) -> usize {
        self.sparse_d
    }

    /// Shared seed Φ expands from on both sides.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sparsifying wavelet family.
    pub fn wavelet_family(&self) -> WaveletFamily {
        self.wavelet
    }

    /// Wavelet decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Packets between differencing reference (resync) packets.
    pub fn reference_interval(&self) -> usize {
        self.reference_interval
    }

    /// Difference-symbol alphabet size (512 in the paper).
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Bits per original ECG sample (11 for MIT-BIH); the numerator of the
    /// end-to-end compression-ratio accounting.
    pub fn sample_bits(&self) -> u8 {
        self.sample_bits
    }

    /// Bits the original (uncompressed) packet occupies.
    pub fn original_packet_bits(&self) -> u64 {
        self.packet_len as u64 * self.sample_bits as u64
    }
}

/// Builder for [`SystemConfig`] (defaults = the paper's system).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    packet_len: usize,
    compression_ratio: f64,
    sparse_d: usize,
    seed: u64,
    wavelet: WaveletFamily,
    levels: usize,
    reference_interval: usize,
    alphabet: usize,
    sample_bits: u8,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            packet_len: 512,
            compression_ratio: 50.0,
            sparse_d: 12,
            seed: 0x00EC_6C50,
            wavelet: WaveletFamily::Daubechies(4),
            levels: 5,
            reference_interval: 16,
            alphabet: 512,
            sample_bits: 11,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the packet length N (must be divisible by `2^levels`).
    pub fn packet_len(mut self, n: usize) -> Self {
        self.packet_len = n;
        self
    }

    /// Sets the linear-stage compression ratio in percent, `[0, 100)`.
    pub fn compression_ratio(mut self, cr: f64) -> Self {
        self.compression_ratio = cr;
        self
    }

    /// Sets the sparse-binary column weight `d`.
    pub fn sparse_ones_per_column(mut self, d: usize) -> Self {
        self.sparse_d = d;
        self
    }

    /// Sets the shared sensing seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the wavelet family.
    pub fn wavelet(mut self, family: WaveletFamily) -> Self {
        self.wavelet = family;
        self
    }

    /// Sets the decomposition depth.
    pub fn levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the differencing resynchronization interval.
    pub fn reference_interval(mut self, packets: usize) -> Self {
        self.reference_interval = packets;
        self
    }

    /// Sets the difference alphabet size (must be even).
    pub fn alphabet(mut self, size: usize) -> Self {
        self.alphabet = size;
        self
    }

    /// Sets the original bits per sample used in CR accounting.
    pub fn sample_bits(mut self, bits: u8) -> Self {
        self.sample_bits = bits;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for any structurally
    /// invalid combination (bad CR range, `d` exceeding M, packet length
    /// not supporting the wavelet depth, odd alphabet, …).
    pub fn build(self) -> Result<SystemConfig, PipelineError> {
        if !(0.0..100.0).contains(&self.compression_ratio) {
            return Err(PipelineError::InvalidConfig(format!(
                "compression ratio {} must be in [0, 100)",
                self.compression_ratio
            )));
        }
        if self.packet_len == 0 {
            return Err(PipelineError::InvalidConfig("zero packet length".into()));
        }
        let m = measurements_for_cr(self.packet_len, self.compression_ratio);
        if self.sparse_d == 0 || self.sparse_d > m {
            return Err(PipelineError::InvalidConfig(format!(
                "sparse column weight {} must be in 1..={m}",
                self.sparse_d
            )));
        }
        if self.alphabet < 2 || !self.alphabet.is_multiple_of(2) || self.alphabet > 65536 {
            return Err(PipelineError::InvalidConfig(format!(
                "alphabet {} must be even and in 2..=65536",
                self.alphabet
            )));
        }
        if self.reference_interval == 0 {
            return Err(PipelineError::InvalidConfig(
                "zero reference interval".into(),
            ));
        }
        if !(2..=16).contains(&self.sample_bits) {
            return Err(PipelineError::InvalidConfig(format!(
                "sample bits {} out of range 2..=16",
                self.sample_bits
            )));
        }
        // Validate the wavelet/levels pair by constructing the filter bank.
        let wavelet = Wavelet::new(self.wavelet)?;
        if self.levels == 0 || self.levels > wavelet.max_level(self.packet_len) {
            return Err(PipelineError::InvalidConfig(format!(
                "{} levels unsupported for N={} with {}",
                self.levels,
                self.packet_len,
                self.wavelet.name()
            )));
        }
        Ok(SystemConfig {
            packet_len: self.packet_len,
            compression_ratio: self.compression_ratio,
            sparse_d: self.sparse_d,
            seed: self.seed,
            wavelet: self.wavelet,
            levels: self.levels,
            reference_interval: self.reference_interval,
            alphabet: self.alphabet,
            sample_bits: self.sample_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.packet_len(), 512);
        assert_eq!(c.measurements(), 256);
        assert_eq!(c.sparse_ones_per_column(), 12);
        assert_eq!(c.alphabet(), 512);
        assert_eq!(c.levels(), 5);
        assert_eq!(c.original_packet_bits(), 512 * 11);
        assert_eq!(c.wavelet_family(), WaveletFamily::Daubechies(4));
    }

    #[test]
    fn builder_overrides() {
        let c = SystemConfig::builder()
            .compression_ratio(75.0)
            .packet_len(256)
            .levels(4)
            .sparse_ones_per_column(8)
            .build()
            .unwrap();
        assert_eq!(c.measurements(), 64);
        assert_eq!(c.packet_len(), 256);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SystemConfig::builder().compression_ratio(100.0).build().is_err());
        assert!(SystemConfig::builder().compression_ratio(-1.0).build().is_err());
        // d larger than M at CR 90 (M = 51).
        assert!(SystemConfig::builder()
            .compression_ratio(90.0)
            .sparse_ones_per_column(52)
            .build()
            .is_err());
        assert!(SystemConfig::builder().alphabet(511).build().is_err());
        assert!(SystemConfig::builder().levels(12).build().is_err());
        assert!(SystemConfig::builder().reference_interval(0).build().is_err());
        assert!(SystemConfig::builder().packet_len(500).levels(5).build().is_err());
        assert!(SystemConfig::builder().sample_bits(1).build().is_err());
    }

    #[test]
    fn cr_to_measurement_mapping() {
        for (cr, m) in [(30.0, 358), (50.0, 256), (70.0, 154), (90.0, 51)] {
            let c = SystemConfig::builder()
                .compression_ratio(cr)
                .sparse_ones_per_column(12)
                .build()
                .unwrap();
            assert_eq!(c.measurements(), m, "CR {cr}");
        }
    }
}
