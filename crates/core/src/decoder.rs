//! The coordinator-side decoder: Huffman → redundancy reinsertion → FISTA.
//!
//! This is Fig. 1 (bottom): codes are decoded with the shared codebook,
//! the differencing state reinserts the removed redundancy, and FISTA
//! solves Eq. (3) over the matrix-free `Φ·Ψᵀ` operator to estimate the
//! wavelet coefficients, which the inverse transform turns back into ECG
//! samples. The decoder is generic over `f32`/`f64`, which is how Fig. 6's
//! precision comparison is produced from a single implementation.

use crate::batch::BatchDecodeWorkspace;
use crate::config::SystemConfig;
use crate::error::PipelineError;
use crate::packet::{EncodedPacket, PacketKind};
use cs_codec::{symbol_to_value, BitReader, Codebook, DiffConfig, DiffDecoder};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_dsp::Real;
use cs_recovery::{
    fista_prior_batch_ws_observed, fista_prior_warm_ws_observed, fista_warm_batch_ws_observed,
    lambda_max_with, lipschitz_constant, top_singular_pair, BatchPenalty, DeflatedOperator,
    FistaWorkspace, KernelMode, LinearOperator, ProxSpec, ShrinkageConfig, SpectralCache,
    SpectralEstimate, SynthesisOperator,
};
use cs_sensing::SparseBinarySensing;
use cs_telemetry::{SolveTrace, SolverMode, Stage, TelemetryRegistry};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

/// Which prior, if any, drives the solver's proximal step.
///
/// Priors change the per-packet optimization problem, trading a little
/// model risk (a stale prior can bias a window) for iteration count. All
/// prior modes also enable the O'Donoghue–Candès adaptive restart, which
/// keeps FISTA's convergence guarantee intact under the changed penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorMode {
    /// Plain Eq. (3) — bit-exact with the pre-prior decoder.
    #[default]
    None,
    /// Support-weighted ℓ1: each window's estimated support (the
    /// magnitude-thresholded coefficients of the *previous* solution)
    /// pays a reduced weight, off-support coefficients full weight
    /// (Polanía et al., arXiv:1405.4201). Safeguards: weights never reach
    /// zero ([`SolverPolicy::support_floor`]), the prior is only applied
    /// when the β-safeguarded warm seed was accepted (a morphology break
    /// rejects the seed *and* the prior together), and every
    /// [`SolverPolicy::support_refresh`]-th window solves unweighted to
    /// re-estimate the support from scratch.
    Support,
    /// Block-sparse group-ℓ1 over wavelet-tree groups: detail subbands
    /// shrink in blocks of [`SolverPolicy::block_size`], the coarse
    /// approximation band coefficient-wise (Zhang et al.,
    /// arXiv:1309.7843 motivate block structure for telemonitored
    /// physiological signals).
    Block,
}

/// How the decoder chooses FISTA's parameters per packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverPolicy<T: Real> {
    /// λ as a fraction of the per-packet `λ_max` (data-adaptive
    /// regularization).
    pub lambda_relative: T,
    /// Relative-change stopping tolerance.
    pub tolerance: T,
    /// Hard iteration cap — the real-time budget (800 unoptimized, 2000
    /// optimized in the paper).
    pub max_iterations: usize,
    /// Kernel implementation for the inner loops.
    pub kernel: KernelMode,
    /// Residual-based stopping relative to `‖y‖₂` (the paper's Eq. 2
    /// criterion); `ZERO` disables. Fig. 7 uses this rule.
    pub residual_tolerance: T,
    /// Rank-one spectral deflation factor `c` applied to the top
    /// measurement-space direction of `ΦΨᵀ` (see
    /// [`cs_recovery::DeflatedOperator`]); `1.0` disables. Sparse binary
    /// sensing needs this to reach Gaussian-parity convergence (Fig. 2).
    pub deflation_factor: T,
    /// Whether the ℓ1 penalty also shrinks the coarse approximation
    /// subband (`true`, the default, is the paper's plain Eq. 3). Setting
    /// `false` exempts that non-sparse band from shrinkage — a common
    /// CS-ECG refinement, measurably neutral on this corpus because the
    /// data-adaptive λ and the spectral deflation already absorb the
    /// baseline bias (see the `probe` history in EXPERIMENTS.md).
    pub penalize_approximation: bool,
    /// Which prior drives the proximal step (default [`PriorMode::None`],
    /// bit-exact with the pre-prior decoder).
    pub prior: PriorMode,
    /// Support membership cut for [`PriorMode::Support`]: coefficient `i`
    /// is on-support when `|αᵢ| ≥ support_threshold · max|α|` of the
    /// previous window's solution.
    pub support_threshold: T,
    /// ℓ1 weight paid by on-support coefficients (off-support pay 1).
    /// Strictly positive — a zero floor would let a stale support lock
    /// coefficients on forever.
    pub support_floor: T,
    /// Solve unweighted every this-many weighted windows, re-estimating
    /// the support from an unbiased solution.
    pub support_refresh: usize,
    /// Detail-subband group width for [`PriorMode::Block`] (the coarse
    /// approximation band always shrinks coefficient-wise).
    pub block_size: usize,
}

impl<T: Real> Default for SolverPolicy<T> {
    fn default() -> Self {
        SolverPolicy {
            lambda_relative: T::from_f64(0.002),
            tolerance: T::from_f64(5e-5),
            max_iterations: 2000,
            kernel: KernelMode::Unrolled4,
            residual_tolerance: T::ZERO,
            deflation_factor: T::from_f64(0.15),
            penalize_approximation: true,
            prior: PriorMode::None,
            support_threshold: T::from_f64(0.05),
            support_floor: T::from_f64(0.25),
            support_refresh: 16,
            block_size: 4,
        }
    }
}

impl<T: Real> SolverPolicy<T> {
    /// The default policy with the support-weighted prior enabled — the
    /// fleet's fast path.
    pub fn support_prior() -> Self {
        SolverPolicy {
            prior: PriorMode::Support,
            ..SolverPolicy::default()
        }
    }

    /// The default policy with the block-sparse wavelet-tree prior
    /// enabled.
    pub fn block_prior() -> Self {
        SolverPolicy {
            prior: PriorMode::Block,
            ..SolverPolicy::default()
        }
    }
}

/// Per-lane support prior: the ℓ1 weight vector estimated from the
/// previous window's solution, plus the refresh bookkeeping.
#[derive(Debug, Clone, Default)]
struct SupportPrior<T: Real> {
    /// Per-coefficient weights (support → floor, rest → 1, multiplied by
    /// the decoder's static subband weights). Valid only while `ready`.
    weights: Vec<T>,
    /// Weighted solves since the last unweighted refresh.
    since_refresh: usize,
    /// Whether `weights` reflect a decoded window.
    ready: bool,
}

impl<T: Real> SupportPrior<T> {
    /// Re-estimates the weights from a freshly decoded solution.
    /// Steady-state allocation-free: the weight buffer keeps its
    /// capacity.
    fn refresh_from(&mut self, solution: &[T], threshold: T, floor: T, static_weights: &[T]) {
        let max = solution.iter().fold(T::ZERO, |m, &v| m.max(v.abs()));
        if max == T::ZERO {
            // An all-zero window carries no support information.
            self.ready = false;
            return;
        }
        let cut = threshold * max;
        self.weights.clear();
        self.weights.extend(solution.iter().enumerate().map(|(i, &v)| {
            let stat = static_weights.get(i).copied().unwrap_or(T::ONE);
            if v.abs() >= cut {
                stat * floor
            } else {
                stat
            }
        }));
        self.ready = true;
    }

    /// Drops the prior — the stream no longer continues from the window
    /// it was estimated on.
    fn reset(&mut self) {
        self.ready = false;
        self.since_refresh = 0;
    }
}

/// Builds the block-prior group partition over the wavelet tree: the
/// coarse approximation band (the first `n >> levels` coefficients, not
/// sparse) gets singleton groups — bit-exact with the plain soft
/// threshold there — and every detail subband is chunked into groups of
/// `block` (a trailing partial chunk when the band width is not a
/// multiple).
fn wavelet_tree_groups(n: usize, levels: usize, block: usize) -> Vec<usize> {
    let approx = n >> levels;
    let mut sizes = vec![1; approx];
    let mut band = approx;
    for _ in 0..levels {
        let mut rem = band;
        while rem > 0 {
            let g = rem.min(block);
            sizes.push(g);
            rem -= g;
        }
        band *= 2;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), n);
    sizes
}

/// One reconstructed packet plus its solver statistics (the quantities
/// Fig. 7 plots).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPacket<T: Real> {
    /// Sequence index copied from the wire packet.
    pub index: u64,
    /// Reconstructed signed ADC samples (midscale-removed counts).
    pub samples: Vec<T>,
    /// FISTA iterations spent.
    pub iterations: usize,
    /// Whether the tolerance fired before the iteration cap.
    pub converged: bool,
    /// Wall-clock time in the solver.
    pub solve_time: Duration,
    /// Whether FISTA was seeded with the previous packet's solution
    /// (see [`Decoder::set_warm_start`]).
    pub warm_started: bool,
    /// Final solver residual norm `‖Aα − y‖₂` (measurement-space fit).
    pub residual_norm: T,
    /// Whether `samples` were re-synthesized from a previous window
    /// instead of decoded from wire bytes (see
    /// [`Decoder::conceal_packet_with`]). Concealed samples must be
    /// excluded from PRD accounting — they measure the concealment
    /// heuristic, not the reconstruction.
    pub concealed: bool,
}

impl<T: Real> Default for DecodedPacket<T> {
    /// An empty packet shell for use with
    /// [`Decoder::decode_packet_with`], which fills every field
    /// (reusing `samples`' storage).
    fn default() -> Self {
        DecodedPacket {
            index: 0,
            samples: Vec::new(),
            iterations: 0,
            converged: false,
            solve_time: Duration::ZERO,
            warm_started: false,
            residual_norm: T::ZERO,
            concealed: false,
        }
    }
}

/// Reusable buffers for the whole packet→signal decode path.
///
/// One workspace serves any number of consecutive
/// [`Decoder::decode_packet_with`] calls — across packets *and* across
/// decoders of the same geometry (the fleet engine keeps one per worker,
/// shared by all of the worker's stream lanes). After the first packet has
/// warmed the buffers, a decode performs **zero heap allocations**; the
/// `tests/zero_alloc.rs` suite asserts this with a counting allocator.
#[derive(Debug, Clone, Default)]
pub struct DecodeWorkspace<T: Real> {
    /// Huffman symbol buffer (delta packets).
    symbols: Vec<u16>,
    /// Dequantized delta values.
    delta: Vec<i16>,
    /// Reference payload values.
    refvals: Vec<i32>,
    /// Scaled measurement vector `y`.
    y: Vec<T>,
    /// Deflated measurements `P·y`.
    yd: Vec<T>,
    /// `A·w` for the warm-start safeguard.
    aw: Vec<T>,
    /// The β-rescaled warm-start seed.
    seed: Vec<T>,
    /// λ_max gradient buffer, doubling as the synthesis scratch.
    grad: Vec<T>,
    /// The FISTA solve buffers + operator workspace.
    solve: FistaWorkspace<T>,
}

impl<T: Real> DecodeWorkspace<T> {
    /// An empty workspace; buffers grow on the first decoded packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `config`'s geometry, so even the first
    /// packet decodes without growing the buffers.
    pub fn for_config(config: &SystemConfig) -> Self {
        let (m, n) = (config.measurements(), config.packet_len());
        DecodeWorkspace {
            symbols: Vec::with_capacity(m),
            delta: Vec::with_capacity(m),
            refvals: Vec::with_capacity(m),
            y: Vec::with_capacity(m),
            yd: vec![T::ZERO; m],
            aw: vec![T::ZERO; m],
            seed: Vec::with_capacity(n),
            grad: vec![T::ZERO; n],
            solve: FistaWorkspace::with_dims(m, n),
        }
    }
}

/// The CS-ECG decoder.
///
/// # Examples
///
/// ```
/// use cs_codec::Codebook;
/// use cs_core::{Decoder, Encoder, SolverPolicy, SystemConfig};
/// use std::sync::Arc;
///
/// let config = SystemConfig::paper_default();
/// let codebook = Arc::new(Codebook::from_counts(&vec![1; 512], 512)?);
/// let mut encoder = Encoder::new(&config, Arc::clone(&codebook))?;
/// let mut decoder: Decoder<f64> = Decoder::new(&config, codebook, SolverPolicy::default())?;
///
/// let samples: Vec<i16> = (0..512).map(|i| (200.0 * (i as f64 * 0.1).sin()) as i16).collect();
/// let wire = encoder.encode_packet(&samples)?;
/// let decoded = decoder.decode_packet(&wire)?;
/// assert_eq!(decoded.samples.len(), 512);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Decoder<T: Real> {
    config: SystemConfig,
    phi: SparseBinarySensing,
    dwt: Dwt<T>,
    diff: DiffDecoder,
    codebook: Arc<Codebook>,
    /// Precomputed `L` of the (deflated) operator, fixed for a stream.
    lipschitz: T,
    /// Top measurement-space singular direction of `ΦΨᵀ` (empty when
    /// deflation is disabled).
    deflation_u: Vec<T>,
    /// Per-coefficient ℓ1 weights (empty ⇒ unweighted).
    penalty_weights: Vec<T>,
    /// Support prior estimated from the previous window (only maintained
    /// under [`PriorMode::Support`]).
    prior: SupportPrior<T>,
    /// Wavelet-tree group partition (empty unless [`PriorMode::Block`]).
    groups: Vec<usize>,
    policy: SolverPolicy<T>,
    /// Previous packet's coefficient estimate, kept when warm starts are
    /// enabled. Consecutive 2-second ECG packets are highly correlated, so
    /// seeding FISTA here cuts iterations without moving the fixed point.
    warm: Option<Vec<T>>,
    warm_start: bool,
    /// Last successfully decoded coefficient estimate, retained for loss
    /// concealment. Unlike `warm`, this survives a desync — it *is* the
    /// last good window, which is exactly what a concealed gap should
    /// replay.
    conceal: Option<Vec<T>>,
    concealment: bool,
    /// Lazily created workspace backing [`Decoder::decode_packet`]; stays
    /// `None` when the owner supplies its own (the fleet's per-worker
    /// workspace) via [`Decoder::decode_packet_with`].
    scratch: Option<Box<DecodeWorkspace<T>>>,
    /// Where stage spans and solve traces land; the shared disabled
    /// registry (one atomic load per span) unless the owner installs a
    /// live one via [`Decoder::set_telemetry`].
    telemetry: TelemetryRegistry,
    /// `(stream, channel)` labels stamped onto journal traces.
    telemetry_labels: (u32, u8),
}

impl<T: Real> Decoder<T> {
    /// Builds the decoder from the shared configuration and codebook.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] on a codebook/alphabet
    /// mismatch and propagates substrate construction failures.
    pub fn new(
        config: &SystemConfig,
        codebook: Arc<Codebook>,
        policy: SolverPolicy<T>,
    ) -> Result<Self, PipelineError> {
        Self::build(config, codebook, policy, None)
    }

    /// Like [`Decoder::new`], but shares the power-iteration results (the
    /// Lipschitz constant and deflation direction) through `cache`. A fleet
    /// of decoders over identical configurations pays the spectral setup
    /// once instead of once per stream; the results are bit-identical to
    /// the uncached path.
    ///
    /// # Errors
    ///
    /// Same contract as [`Decoder::new`].
    pub fn with_cache(
        config: &SystemConfig,
        codebook: Arc<Codebook>,
        policy: SolverPolicy<T>,
        cache: &SpectralCache<T>,
    ) -> Result<Self, PipelineError> {
        Self::build(config, codebook, policy, Some(cache))
    }

    /// The cache key for this decoder's spectral estimate: a hash of every
    /// input the power iteration depends on (sensing shape and seed,
    /// wavelet plan, deflation factor).
    pub fn spectral_key(config: &SystemConfig, policy: &SolverPolicy<T>) -> u64 {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        config.measurements().hash(&mut hasher);
        config.packet_len().hash(&mut hasher);
        config.sparse_ones_per_column().hash(&mut hasher);
        config.seed().hash(&mut hasher);
        format!("{:?}", config.wavelet_family()).hash(&mut hasher);
        config.levels().hash(&mut hasher);
        policy.deflation_factor.to_f64().to_bits().hash(&mut hasher);
        hasher.finish()
    }

    fn build(
        config: &SystemConfig,
        codebook: Arc<Codebook>,
        policy: SolverPolicy<T>,
        cache: Option<&SpectralCache<T>>,
    ) -> Result<Self, PipelineError> {
        if codebook.alphabet_size() != config.alphabet() {
            return Err(PipelineError::InvalidConfig(format!(
                "codebook alphabet {} does not match configured {}",
                codebook.alphabet_size(),
                config.alphabet()
            )));
        }
        match policy.prior {
            PriorMode::None => {}
            PriorMode::Support => {
                let thr = policy.support_threshold.to_f64();
                let floor = policy.support_floor.to_f64();
                if !(0.0..1.0).contains(&thr) {
                    return Err(PipelineError::InvalidConfig(format!(
                        "support_threshold {thr} outside [0, 1)"
                    )));
                }
                if !(floor > 0.0 && floor <= 1.0) {
                    return Err(PipelineError::InvalidConfig(format!(
                        "support_floor {floor} outside (0, 1]"
                    )));
                }
                if policy.support_refresh == 0 {
                    return Err(PipelineError::InvalidConfig(
                        "support_refresh must be at least 1".into(),
                    ));
                }
            }
            PriorMode::Block => {
                if policy.block_size == 0 {
                    return Err(PipelineError::InvalidConfig(
                        "block_size must be at least 1".into(),
                    ));
                }
                if !policy.penalize_approximation {
                    // The group prox has no per-coefficient zero weights,
                    // so the subband exemption cannot compose with it.
                    return Err(PipelineError::InvalidConfig(
                        "block prior requires penalize_approximation".into(),
                    ));
                }
            }
        }
        let phi = SparseBinarySensing::new(
            config.measurements(),
            config.packet_len(),
            config.sparse_ones_per_column(),
            config.seed(),
        )?;
        let wavelet = Wavelet::new(config.wavelet_family())?;
        let dwt = Dwt::new(&wavelet, config.packet_len(), config.levels())?;
        let spectral = |phi: &SparseBinarySensing, dwt: &Dwt<T>| {
            let op = SynthesisOperator::new(phi, dwt);
            if policy.deflation_factor < T::ONE {
                let (sigma, u) = top_singular_pair(&op, 120);
                let u = if sigma == T::ZERO { Vec::new() } else { u };
                let deflated =
                    DeflatedOperator::with_direction(&op, u.clone(), policy.deflation_factor);
                SpectralEstimate {
                    lipschitz: lipschitz_constant(&deflated, 120),
                    deflation_u: u,
                }
            } else {
                SpectralEstimate {
                    lipschitz: lipschitz_constant(&op, 80),
                    deflation_u: Vec::new(),
                }
            }
        };
        let (lipschitz, deflation_u) = match cache {
            Some(cache) => {
                let key = Self::spectral_key(config, &policy);
                let estimate = cache.get_or_compute(key, || spectral(&phi, &dwt));
                (estimate.lipschitz, estimate.deflation_u.clone())
            }
            None => {
                let estimate = spectral(&phi, &dwt);
                (estimate.lipschitz, estimate.deflation_u)
            }
        };
        let diff = DiffDecoder::new(DiffConfig {
            vector_len: config.measurements(),
            reference_interval: config.reference_interval(),
            alphabet: config.alphabet(),
        });
        let penalty_weights = if policy.penalize_approximation {
            Vec::new()
        } else {
            // Exempt the coarse approximation subband from shrinkage.
            let coarsest = config.packet_len() >> config.levels();
            (0..config.packet_len())
                .map(|i| if i < coarsest { T::ZERO } else { T::ONE })
                .collect()
        };
        let groups = if policy.prior == PriorMode::Block {
            wavelet_tree_groups(config.packet_len(), config.levels(), policy.block_size)
        } else {
            Vec::new()
        };
        Ok(Decoder {
            config: config.clone(),
            phi,
            dwt,
            diff,
            codebook,
            lipschitz,
            deflation_u,
            penalty_weights,
            prior: SupportPrior::default(),
            groups,
            policy,
            warm: None,
            warm_start: false,
            conceal: None,
            concealment: false,
            scratch: None,
            telemetry: TelemetryRegistry::disabled(),
            telemetry_labels: (0, 0),
        })
    }

    /// Installs a telemetry registry: subsequent decodes time each stage
    /// into its histograms and journal their solve traces. Decoders start
    /// on the shared disabled registry, where instrumentation costs one
    /// atomic load per stage.
    pub fn set_telemetry(&mut self, telemetry: TelemetryRegistry) {
        self.telemetry = telemetry;
    }

    /// Sets the `(stream, channel)` labels stamped onto this decoder's
    /// journal traces — the fleet engine identifies each lane this way.
    pub fn set_telemetry_labels(&mut self, stream: u32, channel: u8) {
        self.telemetry_labels = (stream, channel);
    }

    /// The registry this decoder records into.
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// Enables or disables warm-starting FISTA from the previous packet's
    /// coefficient estimate. Off by default, and bit-exact with the cold
    /// path while off. Disabling also drops any retained estimate.
    pub fn set_warm_start(&mut self, enabled: bool) {
        self.warm_start = enabled;
        if !enabled {
            self.warm = None;
        }
    }

    /// Whether warm starts are enabled.
    pub fn warm_start_enabled(&self) -> bool {
        self.warm_start
    }

    /// Enables or disables loss concealment. While enabled, each decode
    /// retains a copy of its coefficient estimate so
    /// [`Decoder::conceal_packet_with`] can re-synthesize a lost window.
    /// Off by default; disabling drops the retained window.
    pub fn set_concealment(&mut self, enabled: bool) {
        self.concealment = enabled;
        if !enabled {
            self.conceal = None;
        }
    }

    /// Whether loss concealment is enabled.
    pub fn concealment_enabled(&self) -> bool {
        self.concealment
    }

    /// The retained coefficient estimate, if any (present only while warm
    /// starts are enabled and at least one packet has decoded since the
    /// last desync).
    pub fn last_estimate(&self) -> Option<&[T]> {
        self.warm.as_deref()
    }

    /// Replaces the warm-start seed with an external estimate — e.g. the
    /// same frame's solution from a sibling lead, which observes the same
    /// heart over the same window. No-op while warm starts are disabled;
    /// the safeguard in [`Decoder::decode_packet`] still applies.
    ///
    /// # Panics
    ///
    /// Panics if the estimate's length is not the packet length.
    pub fn seed(&mut self, estimate: &[T]) {
        assert_eq!(
            estimate.len(),
            self.config.packet_len(),
            "warm-start seed length mismatch"
        );
        if self.warm_start {
            // Reuse the retained vector's storage when shapes line up.
            match &mut self.warm {
                Some(w) if w.len() == estimate.len() => w.copy_from_slice(estimate),
                w => *w = Some(estimate.to_vec()),
            }
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The solver policy in use.
    pub fn policy(&self) -> &SolverPolicy<T> {
        &self.policy
    }

    /// The precomputed Lipschitz constant `2‖ΦΨᵀ‖²`.
    pub fn lipschitz(&self) -> T {
        self.lipschitz
    }

    /// Decodes one wire packet into reconstructed ECG samples.
    ///
    /// Equivalent to [`Decoder::decode_packet_with`] over a
    /// decoder-owned workspace (created on the first call, reused after),
    /// returning a freshly shaped [`DecodedPacket`].
    ///
    /// # Errors
    ///
    /// Propagates codec errors (truncated payloads, delta-before-reference
    /// after a desync, …).
    pub fn decode_packet(
        &mut self,
        packet: &EncodedPacket,
    ) -> Result<DecodedPacket<T>, PipelineError> {
        let mut ws = self
            .scratch
            .take()
            .unwrap_or_else(|| Box::new(DecodeWorkspace::for_config(&self.config)));
        let mut out = DecodedPacket::default();
        let result = self.decode_packet_with(packet, &mut ws, &mut out);
        self.scratch = Some(ws);
        result.map(|()| out)
    }

    /// Decodes one wire packet, drawing every transient buffer from `ws`
    /// and writing the reconstruction into `out` (whose `samples` storage
    /// is reused). Once `ws` has decoded one packet of this geometry, a
    /// call performs zero heap allocations — the fleet engine relies on
    /// this with one workspace per worker.
    ///
    /// # Errors
    ///
    /// Same contract as [`Decoder::decode_packet`]; on error `out` is
    /// untouched.
    pub fn decode_packet_with(
        &mut self,
        packet: &EncodedPacket,
        ws: &mut DecodeWorkspace<T>,
        out: &mut DecodedPacket<T>,
    ) -> Result<(), PipelineError> {
        let n = self.config.packet_len();
        let (cfg, warm_started) = self.prepare_solve(packet, ws)?;
        let op = SynthesisOperator::new(&self.phi, &self.dwt);
        let deflated = DeflatedOperator::with_direction_borrowed(
            &op,
            &self.deflation_u,
            self.policy.deflation_factor,
        );
        let warm = if warm_started { Some(ws.seed.as_slice()) } else { None };
        let (prox, mode) = self.select_prox(warm_started);
        let restart = self.policy.prior != PriorMode::None;
        let result = fista_prior_warm_ws_observed(
            &deflated,
            &ws.yd,
            &cfg,
            Some(self.lipschitz),
            prox,
            restart,
            warm,
            &mut ws.solve,
            &self.telemetry,
        );
        self.telemetry.record_solver_iterations(mode, result.iterations);
        if self.policy.prior == PriorMode::Support {
            self.prior.since_refresh = if mode == SolverMode::Weighted {
                self.prior.since_refresh + 1
            } else {
                0
            };
            self.prior.refresh_from(
                &result.solution,
                self.policy.support_threshold,
                self.policy.support_floor,
                &self.penalty_weights,
            );
        }
        let (stream, channel) = self.telemetry_labels;
        self.telemetry.record_solve(SolveTrace {
            stream,
            channel,
            seq: packet.index,
            iterations: u32::try_from(result.iterations).unwrap_or(u32::MAX),
            residual: result.residual_norm.to_f64(),
            solve_ns: u64::try_from(result.elapsed.as_nanos()).unwrap_or(u64::MAX),
            warm_started,
            converged: result.converged,
        });
        {
            let _span = self.telemetry.span(Stage::WaveletSynthesis);
            out.samples.clear();
            out.samples.resize(n, T::ZERO);
            self.dwt.synthesize_scratch(&result.solution, &mut out.samples, &mut ws.grad);
        }
        out.index = packet.index;
        out.iterations = result.iterations;
        out.converged = result.converged;
        out.solve_time = result.elapsed;
        out.warm_started = warm_started;
        out.residual_norm = result.residual_norm;
        out.concealed = false;

        // Retain the estimate for loss concealment. Copied, not moved:
        // the solution vector continues into the warm-start ping-pong
        // below. One allocation on the first retained window, then
        // steady-state free.
        if self.concealment {
            match &mut self.conceal {
                Some(c) if c.len() == result.solution.len() => {
                    c.copy_from_slice(&result.solution)
                }
                c => *c = Some(result.solution.clone()),
            }
        }

        // Ping-pong the solution vectors: the new estimate replaces the
        // warm seed and the retired seed's storage returns to the solver
        // pool — a closed loop with no allocation.
        if self.warm_start {
            match self.warm.replace(result.solution) {
                Some(old) => ws.solve.recycle_solution(old),
                // First packet of a warm stream: the cycle needs two
                // solution buffers in flight (one retained as the seed,
                // one in the pool), so mint the second now — the last
                // setup-time allocation.
                None => ws.solve.recycle_solution(vec![T::ZERO; n]),
            }
        } else {
            ws.solve.recycle_solution(result.solution);
        }
        Ok(())
    }

    /// Picks the proximal operator (and its telemetry mode label) for one
    /// solve. The support prior only applies when the β-safeguarded warm
    /// seed was accepted — a rejected seed means the windows decorrelated,
    /// exactly when the previous support would mislead — and is suspended
    /// on the periodic unweighted refresh tick.
    fn select_prox(&self, warm_started: bool) -> (ProxSpec<'_, T>, SolverMode) {
        match self.policy.prior {
            PriorMode::Block => (ProxSpec::Group(&self.groups), SolverMode::Block),
            PriorMode::Support
                if warm_started
                    && self.prior.ready
                    && self.prior.since_refresh < self.policy.support_refresh =>
            {
                (ProxSpec::WeightedL1(&self.prior.weights), SolverMode::Weighted)
            }
            _ => {
                let mode = if warm_started { SolverMode::Warm } else { SolverMode::Cold };
                if self.penalty_weights.is_empty() {
                    (ProxSpec::L1, mode)
                } else {
                    (ProxSpec::WeightedL1(&self.penalty_weights), mode)
                }
            }
        }
    }

    /// The per-lane front half of a decode — everything before the
    /// solver: entropy decode, redundancy reinsertion, measurement
    /// scaling and deflation, the data-adaptive λ, and the safeguarded
    /// warm seed. On success `ws.yd` holds the deflated measurements,
    /// `ws.seed` the β-rescaled warm seed when the returned flag is set,
    /// and the returned config is ready for the solver. Shared verbatim
    /// by the sequential and batched paths, which is what keeps them
    /// bit-identical up to the solve.
    fn prepare_solve(
        &mut self,
        packet: &EncodedPacket,
        ws: &mut DecodeWorkspace<T>,
    ) -> Result<(ShrinkageConfig<T>, bool), PipelineError> {
        let m = self.config.measurements();
        let n = self.config.packet_len();

        // Stages 1–2: entropy decode and redundancy reinsertion. The
        // diff decoder's state vector is the measurement vector; borrow
        // it in place and scale by the 1/√d the mote never applied.
        let mut reader = BitReader::new(&packet.payload);
        let y_int: &[i32] = match packet.kind {
            PacketKind::Reference => {
                {
                    let _span = self.telemetry.span(Stage::HuffmanDecode);
                    ws.refvals.clear();
                    for _ in 0..m {
                        let raw = reader.read_bits(16)?;
                        ws.refvals.push(raw as u16 as i16 as i32);
                    }
                }
                let _span = self.telemetry.span(Stage::DiffDecode);
                self.diff.decode_reference(&ws.refvals)?
            }
            PacketKind::Delta => {
                let shift = {
                    let _span = self.telemetry.span(Stage::HuffmanDecode);
                    let shift = reader.read_bits(4)? as u8;
                    self.codebook.decode_into(&mut reader, m, &mut ws.symbols)?;
                    let alphabet = self.config.alphabet();
                    ws.delta.clear();
                    for &s in &ws.symbols {
                        ws.delta.push(symbol_to_value(s, alphabet)? as i16);
                    }
                    shift
                };
                let _span = self.telemetry.span(Stage::DiffDecode);
                self.diff.decode_delta(shift, &ws.delta)?
            }
        };
        let scale = T::from_f64(self.phi.nonzero_value());
        ws.y.clear();
        ws.y.extend(y_int.iter().map(|&v| T::from_f64(v as f64) * scale));

        // Stage 3: FISTA reconstruction over the matrix-free operator,
        // spectrally deflated so sparse binary sensing converges at
        // Gaussian parity. The direction is borrowed — never cloned per
        // packet.
        let op = SynthesisOperator::new(&self.phi, &self.dwt);
        let deflated = DeflatedOperator::with_direction_borrowed(
            &op,
            &self.deflation_u,
            self.policy.deflation_factor,
        );
        ws.yd.resize(m, T::ZERO);
        deflated.transform_measurements_into(&ws.y, &mut ws.yd);
        ws.grad.resize(n, T::ZERO);
        let lam = self.policy.lambda_relative
            * lambda_max_with(&deflated, &ws.yd, &mut ws.grad, ws.solve.operator_workspace());
        let cfg = ShrinkageConfig {
            lambda: lam,
            max_iterations: self.policy.max_iterations,
            tolerance: self.policy.tolerance,
            residual_tolerance: self.policy.residual_tolerance,
            kernel: self.policy.kernel,
            record_objective: false,
        };
        // Safeguarded, amplitude-fitted warm start. Consecutive windows
        // are correlated in waveform but wavelet coefficients are not
        // shift-invariant, so the raw previous estimate can be a *worse*
        // seed than zero. Two defenses (one operator application total,
        // about one FISTA iteration):
        //  1. rescale the seed by β = ⟨Aw, y⟩ / ‖Aw‖², the least-squares
        //     amplitude fit in measurement space — a decorrelated window
        //     drives β (and the seed) toward the cold start;
        //  2. use the result only if its Eq. (3) objective beats the
        //     cold start's ‖y‖².
        let mut warm_started = false;
        if self.warm_start {
            if let Some(w) = self.warm.as_deref() {
                ws.aw.resize(m, T::ZERO);
                deflated.apply_into_ws(w, &mut ws.aw, ws.solve.operator_workspace());
                let mut aw_y = T::ZERO;
                let mut aw_aw = T::ZERO;
                for (&a, &y) in ws.aw.iter().zip(&ws.yd) {
                    aw_y += a * y;
                    aw_aw += a * a;
                }
                if aw_aw != T::ZERO {
                    let beta = aw_y / aw_aw;
                    // ‖βAw − y‖² = ‖y‖² − β²‖Aw‖² at the least-squares β.
                    let cold_objective = ws.yd.iter().fold(T::ZERO, |acc, &y| acc + y * y);
                    let residual = cold_objective - beta * beta * aw_aw;
                    let mut l1 = T::ZERO;
                    for (i, &wi) in w.iter().enumerate() {
                        let weight = self.penalty_weights.get(i).copied().unwrap_or(T::ONE);
                        l1 += weight * (beta * wi).abs();
                    }
                    if residual + lam * l1 < T::from_f64(0.5) * cold_objective {
                        ws.seed.clear();
                        ws.seed.extend(w.iter().map(|&wi| beta * wi));
                        warm_started = true;
                    }
                }
            }
        }
        Ok((cfg, warm_started))
    }

    /// Stages one wire packet into a batched solve: runs the scalar front
    /// half (entropy decode through the warm safeguard) for this lane and
    /// appends its measurements, warm seed, and solver configuration to
    /// `batch`. Returns the lane index to hand back to
    /// [`Decoder::finish_batch_lane`] once [`Decoder::solve_batch`] has
    /// run. Lanes staged into one batch must be pairwise-distinct
    /// `(stream, lead)` decoders of identical configuration — the fleet's
    /// [`BatchScheduler`](crate::BatchScheduler) guarantees both.
    ///
    /// # Errors
    ///
    /// Same contract as [`Decoder::decode_packet_with`]; on error nothing
    /// is staged.
    pub fn begin_batch_lane(
        &mut self,
        packet: &EncodedPacket,
        batch: &mut BatchDecodeWorkspace<T>,
    ) -> Result<usize, PipelineError> {
        let (cfg, warm_started) = self.prepare_solve(packet, &mut batch.scalar)?;
        let warm = if warm_started { Some(batch.scalar.seed.as_slice()) } else { None };
        let lane = batch.solve.stage_lane(&batch.scalar.yd, warm);
        batch.configs.push(cfg);
        batch.warm_started.push(warm_started);
        // Under the support prior every lane stages a weight vector (the
        // batch penalty is uniform per-lane weighted; an all-ones or
        // static fallback is bit-identical to the lane's unweighted
        // solve), and remembers whether its prior actually drove it.
        if self.policy.prior == PriorMode::Support {
            let (prox, mode) = self.select_prox(warm_started);
            let used_prior = mode == SolverMode::Weighted;
            match prox {
                ProxSpec::WeightedL1(w) => batch.lane_weights.extend_from_slice(w),
                _ => {
                    let n = self.config.packet_len();
                    batch.lane_weights.extend(std::iter::repeat_n(T::ONE, n));
                }
            }
            batch.prior_used.push(used_prior);
        } else {
            batch.prior_used.push(false);
        }
        Ok(lane)
    }

    /// Solves every lane staged in `batch` with one K-wide MMV FISTA
    /// sweep over this decoder's operator. Any staged lane's decoder may
    /// issue the call — decoders of one configuration share bit-identical
    /// operators, Lipschitz constants, and penalty weights by
    /// construction. Per-column convergence masks freeze each lane at its
    /// own stopping point, so every lane's solution, iteration count, and
    /// residual are bit-for-bit what its sequential solve would produce.
    pub fn solve_batch(&self, batch: &mut BatchDecodeWorkspace<T>) {
        let op = SynthesisOperator::new(&self.phi, &self.dwt);
        let deflated = DeflatedOperator::with_direction_borrowed(
            &op,
            &self.deflation_u,
            self.policy.deflation_factor,
        );
        match self.policy.prior {
            PriorMode::None => {
                let weights = if self.penalty_weights.is_empty() {
                    None
                } else {
                    Some(self.penalty_weights.as_slice())
                };
                fista_warm_batch_ws_observed(
                    &deflated,
                    &batch.configs,
                    weights,
                    Some(self.lipschitz),
                    &mut batch.solve,
                    &self.telemetry,
                );
            }
            PriorMode::Support => fista_prior_batch_ws_observed(
                &deflated,
                &batch.configs,
                BatchPenalty::PerLane(&batch.lane_weights),
                true,
                Some(self.lipschitz),
                &mut batch.solve,
                &self.telemetry,
            ),
            PriorMode::Block => fista_prior_batch_ws_observed(
                &deflated,
                &batch.configs,
                BatchPenalty::Group(&self.groups),
                true,
                Some(self.lipschitz),
                &mut batch.solve,
                &self.telemetry,
            ),
        }
    }

    /// The per-lane back half of a batched decode: journals the solve
    /// trace, synthesizes the samples into `out`, and retains the lane's
    /// estimate for concealment and warm starts. `lane` is the index
    /// [`Decoder::begin_batch_lane`] returned and `index` the wire
    /// sequence number. Per-lane `solve_time` is the batch's wall clock
    /// divided by its occupancy — an attribution convention, since the
    /// lanes genuinely ran fused.
    pub fn finish_batch_lane(
        &mut self,
        lane: usize,
        index: u64,
        batch: &mut BatchDecodeWorkspace<T>,
        out: &mut DecodedPacket<T>,
    ) {
        let n = self.config.packet_len();
        let occupancy = u32::try_from(batch.solve.lanes().max(1)).unwrap_or(u32::MAX);
        let share = batch.solve.elapsed() / occupancy;
        let warm_started = batch.warm_started[lane];
        let iterations = batch.solve.iterations(lane);
        let converged = batch.solve.converged(lane);
        let residual_norm = batch.solve.residual_norm(lane);
        let mode = match self.policy.prior {
            PriorMode::Block => SolverMode::Block,
            PriorMode::Support if batch.prior_used[lane] => SolverMode::Weighted,
            _ if warm_started => SolverMode::Warm,
            _ => SolverMode::Cold,
        };
        self.telemetry.record_solver_iterations(mode, iterations);
        if self.policy.prior == PriorMode::Support {
            self.prior.since_refresh = if mode == SolverMode::Weighted {
                self.prior.since_refresh + 1
            } else {
                0
            };
            self.prior.refresh_from(
                batch.solve.solution(lane),
                self.policy.support_threshold,
                self.policy.support_floor,
                &self.penalty_weights,
            );
        }
        let (stream, channel) = self.telemetry_labels;
        self.telemetry.record_solve(SolveTrace {
            stream,
            channel,
            seq: index,
            iterations: u32::try_from(iterations).unwrap_or(u32::MAX),
            residual: residual_norm.to_f64(),
            solve_ns: u64::try_from(share.as_nanos()).unwrap_or(u64::MAX),
            warm_started,
            converged,
        });
        {
            let _span = self.telemetry.span(Stage::WaveletSynthesis);
            out.samples.clear();
            out.samples.resize(n, T::ZERO);
            self.dwt.synthesize_scratch(
                batch.solve.solution(lane),
                &mut out.samples,
                &mut batch.scalar.grad,
            );
        }
        out.index = index;
        out.iterations = iterations;
        out.converged = converged;
        out.solve_time = share;
        out.warm_started = warm_started;
        out.residual_norm = residual_norm;
        out.concealed = false;

        // The batch workspace owns the solution block, so retention
        // copies out of it instead of the sequential path's ping-pong of
        // owned vectors. One allocation per lane on its first retained
        // window, then steady-state free.
        let solution = batch.solve.solution(lane);
        if self.concealment {
            match &mut self.conceal {
                Some(c) if c.len() == solution.len() => c.copy_from_slice(solution),
                c => *c = Some(solution.to_vec()),
            }
        }
        if self.warm_start {
            match &mut self.warm {
                Some(w) if w.len() == solution.len() => w.copy_from_slice(solution),
                w => *w = Some(solution.to_vec()),
            }
        }
    }

    /// Signals packet loss: decoding resumes at the next reference packet.
    /// Also drops the warm-start state — the retained estimate belongs to
    /// a packet the stream no longer continues from. The concealment
    /// window is deliberately kept: it *is* the last good window, which
    /// is exactly what a concealed gap should replay.
    pub fn desynchronize(&mut self) {
        self.diff.desynchronize();
        self.warm = None;
        // The support prior was estimated on a window the stream no
        // longer continues from.
        self.prior.reset();
    }

    /// Re-synthesizes a lost window from the last retained coefficient
    /// estimate, writing the result into `out` with `out.concealed` set.
    ///
    /// Returns `true` when a retained window was replayed, `false` when
    /// no history existed (stream head or concealment disabled) and the
    /// samples were zero-filled instead. Either way `out` is a fully
    /// formed packet so downstream accounting stays uniform. Does **not**
    /// touch the DPCM state — the caller decides whether the loss also
    /// desynchronizes the lane (it does for real losses; call
    /// [`Decoder::desynchronize`] first).
    ///
    /// Steady-state (after one decode of this geometry) this performs
    /// zero heap allocations, like the decode path itself.
    pub fn conceal_packet_with(
        &mut self,
        index: u64,
        ws: &mut DecodeWorkspace<T>,
        out: &mut DecodedPacket<T>,
    ) -> bool {
        let n = self.config.packet_len();
        let _span = self.telemetry.span(Stage::Concealment);
        out.samples.clear();
        out.samples.resize(n, T::ZERO);
        let replayed = match self.conceal.as_deref() {
            Some(coeffs) => {
                ws.grad.resize(n, T::ZERO);
                self.dwt.synthesize_scratch(coeffs, &mut out.samples, &mut ws.grad);
                true
            }
            None => false,
        };
        out.index = index;
        out.iterations = 0;
        out.converged = false;
        out.solve_time = Duration::ZERO;
        out.warm_started = false;
        out.residual_norm = T::ZERO;
        out.concealed = true;
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;

    fn pair(config: &SystemConfig) -> (Encoder, Decoder<f64>) {
        let cb = Arc::new(
            Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap(),
        );
        (
            Encoder::new(config, Arc::clone(&cb)).unwrap(),
            Decoder::new(config, cb, SolverPolicy::default()).unwrap(),
        )
    }

    fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp()
                    + (-((t - 0.8 + phase) * 40.0).powi(2)).exp();
                (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
            })
            .collect()
    }

    #[test]
    fn round_trip_reconstructs_reference_packet() {
        let config = SystemConfig::paper_default();
        let (mut enc, mut dec) = pair(&config);
        let x = synthetic_packet(512, 0.0);
        let wire = enc.encode_packet(&x).unwrap();
        let out = dec.decode_packet(&wire).unwrap();
        let num: f64 = x
            .iter()
            .zip(&out.samples)
            .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
            .sum();
        let den: f64 = x.iter().map(|&a| (a as f64) * (a as f64)).sum();
        let prd = (num / den).sqrt() * 100.0;
        assert!(prd < 25.0, "PRD {prd} too high for CR 50");
        assert!(out.iterations > 0);
    }

    #[test]
    fn delta_packets_decode_after_reference() {
        let config = SystemConfig::paper_default();
        let (mut enc, mut dec) = pair(&config);
        let a = synthetic_packet(512, 0.0);
        let b = synthetic_packet(512, 0.002); // slightly shifted beat
        let w1 = enc.encode_packet(&a).unwrap();
        let w2 = enc.encode_packet(&b).unwrap();
        assert_eq!(w2.kind, PacketKind::Delta);
        let _ = dec.decode_packet(&w1).unwrap();
        let out = dec.decode_packet(&w2).unwrap();
        assert_eq!(out.index, 1);
        assert_eq!(out.samples.len(), 512);
    }

    #[test]
    fn desync_rejects_delta_until_reference() {
        let config = SystemConfig::builder().reference_interval(4).build().unwrap();
        let (mut enc, mut dec) = pair(&config);
        let x = synthetic_packet(512, 0.0);
        let w1 = enc.encode_packet(&x).unwrap();
        let w2 = enc.encode_packet(&x).unwrap();
        let _ = dec.decode_packet(&w1).unwrap();
        dec.desynchronize();
        assert!(dec.decode_packet(&w2).is_err());
    }

    #[test]
    fn f32_decoder_matches_f64_closely() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(Codebook::from_counts(&vec![1; 512], 512).unwrap());
        let mut enc = Encoder::new(&config, Arc::clone(&cb)).unwrap();
        let mut d64: Decoder<f64> =
            Decoder::new(&config, Arc::clone(&cb), SolverPolicy::default()).unwrap();
        let mut d32: Decoder<f32> =
            Decoder::new(&config, cb, SolverPolicy::default()).unwrap();
        let x = synthetic_packet(512, 0.0);
        let wire = enc.encode_packet(&x).unwrap();
        let o64 = d64.decode_packet(&wire).unwrap();
        let o32 = d32.decode_packet(&wire).unwrap();
        // The two precisions agree to well under an LSB on average.
        let mean_abs: f64 = o64
            .samples
            .iter()
            .zip(&o32.samples)
            .map(|(&a, &b)| (a - b as f64).abs())
            .sum::<f64>()
            / 512.0;
        assert!(mean_abs < 2.0, "precision gap {mean_abs} counts");
    }

    #[test]
    fn weighted_policy_decodes_comparably() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(Codebook::from_counts(&vec![1; 512], 512).unwrap());
        let mut enc = Encoder::new(&config, Arc::clone(&cb)).unwrap();
        let mut plain: Decoder<f64> =
            Decoder::new(&config, Arc::clone(&cb), SolverPolicy::default()).unwrap();
        let weighted_policy = SolverPolicy {
            penalize_approximation: false,
            ..SolverPolicy::default()
        };
        let mut weighted: Decoder<f64> = Decoder::new(&config, cb, weighted_policy).unwrap();

        let x = synthetic_packet(512, 0.0);
        let wire = enc.encode_packet(&x).unwrap();
        let a = plain.decode_packet(&wire).unwrap();
        let b = weighted.decode_packet(&wire).unwrap();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let prd = |r: &[f64]| {
            let num: f64 = xf.iter().zip(r).map(|(u, v)| (u - v) * (u - v)).sum();
            (num / xf.iter().map(|u| u * u).sum::<f64>()).sqrt() * 100.0
        };
        // Both policies must produce clinically comparable output.
        assert!((prd(&a.samples) - prd(&b.samples)).abs() < 5.0);
    }

    /// Streams `count` windows of a slowly drifting beat through both
    /// decoders and returns (total iterations, worst PRD) per decoder.
    fn stream_windows(
        enc: &mut Encoder,
        decoders: &mut [&mut Decoder<f64>],
        count: usize,
    ) -> Vec<(usize, f64)> {
        let mut totals = vec![(0usize, 0f64); decoders.len()];
        for w in 0..count {
            let x = synthetic_packet(512, w as f64 * 0.003);
            let wire = enc.encode_packet(&x).unwrap();
            let den: f64 = x.iter().map(|&a| (a as f64) * (a as f64)).sum();
            for (slot, dec) in decoders.iter_mut().enumerate() {
                let out = dec.decode_packet(&wire).unwrap();
                let num: f64 = x
                    .iter()
                    .zip(&out.samples)
                    .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                    .sum();
                let prd = (num / den).sqrt() * 100.0;
                totals[slot].0 += out.iterations;
                totals[slot].1 = totals[slot].1.max(prd);
            }
        }
        totals
    }

    #[test]
    fn support_prior_policy_matches_plain_quality() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(Codebook::from_counts(&vec![1; 512], 512).unwrap());
        let mut enc = Encoder::new(&config, Arc::clone(&cb)).unwrap();
        let mut plain: Decoder<f64> =
            Decoder::new(&config, Arc::clone(&cb), SolverPolicy::default()).unwrap();
        let mut prior: Decoder<f64> =
            Decoder::new(&config, cb, SolverPolicy::support_prior()).unwrap();
        plain.set_warm_start(true);
        prior.set_warm_start(true);
        prior.set_telemetry(TelemetryRegistry::new());

        let totals = stream_windows(&mut enc, &mut [&mut plain, &mut prior], 6);
        let (plain_iters, plain_prd) = totals[0];
        let (prior_iters, prior_prd) = totals[1];
        assert!(prior_prd < plain_prd + 3.0, "prior PRD {prior_prd} vs plain {plain_prd}");
        // The prior path must not cost materially more iterations than
        // the warm baseline (the ≥20 % win is pinned in release by the
        // solver_priors suite; debug builds only sanity-check direction).
        assert!(
            prior_iters <= plain_iters + plain_iters / 10,
            "prior {prior_iters} iterations vs plain {plain_iters}"
        );
        // Weighted solves actually happened and were labelled as such.
        let snap = prior.telemetry().snapshot();
        let weighted = snap
            .solver_iterations
            .iter()
            .find(|(m, _)| *m == SolverMode::Weighted)
            .map(|(_, h)| h.count())
            .unwrap();
        assert!(weighted > 0, "no weighted-mode solves recorded");
    }

    #[test]
    fn block_prior_policy_matches_plain_quality() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(Codebook::from_counts(&vec![1; 512], 512).unwrap());
        let mut enc = Encoder::new(&config, Arc::clone(&cb)).unwrap();
        let mut plain: Decoder<f64> =
            Decoder::new(&config, Arc::clone(&cb), SolverPolicy::default()).unwrap();
        let mut block: Decoder<f64> =
            Decoder::new(&config, cb, SolverPolicy::block_prior()).unwrap();
        plain.set_warm_start(true);
        block.set_warm_start(true);

        let totals = stream_windows(&mut enc, &mut [&mut plain, &mut block], 4);
        let (_, plain_prd) = totals[0];
        let (_, block_prd) = totals[1];
        assert!(block_prd < plain_prd + 5.0, "block PRD {block_prd} vs plain {plain_prd}");
    }

    #[test]
    fn desynchronize_drops_the_support_prior() {
        let config = SystemConfig::builder().reference_interval(2).build().unwrap();
        let cb = Arc::new(
            Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap(),
        );
        let mut enc = Encoder::new(&config, Arc::clone(&cb)).unwrap();
        let mut dec: Decoder<f64> =
            Decoder::new(&config, cb, SolverPolicy::support_prior()).unwrap();
        dec.set_warm_start(true);
        let x = synthetic_packet(512, 0.0);
        let _ = dec.decode_packet(&enc.encode_packet(&x).unwrap()).unwrap();
        assert!(dec.prior.ready);
        dec.desynchronize();
        assert!(!dec.prior.ready);
        assert_eq!(dec.prior.since_refresh, 0);
    }

    #[test]
    fn prior_policy_validation_rejects_bad_parameters() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(Codebook::from_counts(&vec![1; 512], 512).unwrap());
        let bad = [
            SolverPolicy {
                support_threshold: 1.5,
                ..SolverPolicy::support_prior()
            },
            SolverPolicy {
                support_floor: 0.0,
                ..SolverPolicy::support_prior()
            },
            SolverPolicy {
                support_refresh: 0,
                ..SolverPolicy::support_prior()
            },
            SolverPolicy {
                block_size: 0,
                ..SolverPolicy::block_prior()
            },
            SolverPolicy {
                penalize_approximation: false,
                ..SolverPolicy::block_prior()
            },
        ];
        for policy in bad {
            let dec: Result<Decoder<f64>, _> = Decoder::new(&config, Arc::clone(&cb), policy);
            assert!(dec.is_err(), "policy {policy:?} should be rejected");
        }
    }

    #[test]
    fn wavelet_tree_groups_tile_the_vector() {
        let sizes = wavelet_tree_groups(512, 5, 4);
        assert_eq!(sizes.iter().sum::<usize>(), 512);
        // Approximation band: 512 >> 5 = 16 singletons.
        assert!(sizes[..16].iter().all(|&s| s == 1));
        assert!(sizes[16..].iter().all(|&s| s == 4));
    }

    #[test]
    fn lipschitz_is_precomputed_and_positive() {
        let config = SystemConfig::paper_default();
        let (_, dec) = pair(&config);
        assert!(dec.lipschitz() > 0.0);
    }

    #[test]
    fn concealment_replays_last_window() {
        let config = SystemConfig::paper_default();
        let (mut enc, mut dec) = pair(&config);
        dec.set_concealment(true);
        let x = synthetic_packet(512, 0.0);
        let wire = enc.encode_packet(&x).unwrap();
        let decoded = dec.decode_packet(&wire).unwrap();
        assert!(!decoded.concealed);

        // A lost packet: desync the DPCM loop, then conceal the slot.
        dec.desynchronize();
        let mut ws = DecodeWorkspace::for_config(&config);
        let mut out = DecodedPacket::default();
        assert!(dec.conceal_packet_with(1, &mut ws, &mut out));
        assert!(out.concealed);
        assert_eq!(out.index, 1);
        assert_eq!(out.samples.len(), 512);
        // The replayed window is the previous reconstruction, not silence.
        let diff: f64 = decoded
            .samples
            .iter()
            .zip(&out.samples)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff < 1e-9, "concealed window should replay the last good one");
    }

    #[test]
    fn concealment_without_history_zero_fills() {
        let config = SystemConfig::paper_default();
        let (_, mut dec) = pair(&config);
        dec.set_concealment(true);
        let mut ws = DecodeWorkspace::for_config(&config);
        let mut out = DecodedPacket::default();
        assert!(!dec.conceal_packet_with(0, &mut ws, &mut out));
        assert!(out.concealed);
        assert!(out.samples.iter().all(|&s| s == 0.0));
    }
}
