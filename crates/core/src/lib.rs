//! # cs-core — the real-time compressed-sensing ECG pipeline
//!
//! This crate assembles the paper's complete system (Fig. 1):
//!
//! ```text
//!  mote (integer only)                    coordinator (f32/f64)
//!  ┌────────────┐ ┌────────────┐ ┌───────┐   ┌────────┐ ┌──────────┐ ┌───────┐
//!  │ sparse     │→│ redundancy │→│Huffman│ ⇒ │Huffman │→│ packet   │→│ FISTA │
//!  │ binary CS  │ │ removal    │ │encode │   │decode  │ │ reconst. │ │ + Ψᵀ  │
//!  └────────────┘ └────────────┘ └───────┘   └────────┘ └──────────┘ └───────┘
//! ```
//!
//! * [`SystemConfig`] — everything both sides must agree on (N, CR, d,
//!   wavelet, seed, alphabet), with the paper's demo system as default.
//! * [`Encoder`] — the mote side; never touches a float.
//! * [`Decoder`] — the coordinator side, generic over `f32`/`f64`.
//! * [`train_codebook`] — the offline Huffman training step.
//! * [`evaluate_stream`] / [`train_and_evaluate`] — round-trip evaluation
//!   returning per-packet CR/PRD/SNR and solver statistics.
//! * [`run_streaming`] — the two-thread producer–consumer structure of the
//!   iPhone app, with the 6-second shared buffer.
//! * [`run_fleet`] — the multi-patient generalization: N multi-lead
//!   streams fanned over M decode workers with per-stream in-order
//!   delivery, shared spectral setup and optional warm-started FISTA.
//! * `*_observed` variants ([`evaluate_stream_observed`],
//!   [`run_streaming_observed`], [`run_fleet_observed`]) — the same
//!   pipelines recording per-stage latency histograms, worker counters
//!   and solve traces into a `cs_telemetry::TelemetryRegistry`.
//!
//! ## Quickstart
//!
//! ```
//! use cs_core::{train_and_evaluate, SolverPolicy, SystemConfig};
//!
//! // A synthetic spiky packet stream standing in for real ECG.
//! let samples: Vec<i16> = (0..512 * 4)
//!     .map(|i| {
//!         let t = (i % 512) as f64 / 512.0;
//!         (800.0 * (-((t - 0.5) * 30.0).powi(2)).exp()) as i16
//!     })
//!     .collect();
//!
//! let config = SystemConfig::paper_default(); // CR 50 %, d = 12, db4
//! let report = train_and_evaluate::<f64>(&config, &samples, 2, SolverPolicy::default())?;
//! assert_eq!(report.packets.len(), 4);
//! assert!(report.cr.mean() > 0.0);
//! # Ok::<(), cs_core::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod baseline;
mod batch;
mod codebook;
mod config;
mod decoder;
mod encoder;
mod error;
mod fleet;
mod ingest;
mod multichannel;
mod packet;
mod pipeline;
mod stream;

pub use adaptive::{
    AdaptiveDecoder, AdaptiveEncoder, ClinicalFeedback, FidelitySchedule, FidelityTier,
    TierController,
};
pub use baseline::{BaselinePacket, DwtThresholdCodec};
pub use batch::{BatchDecodeWorkspace, BatchScheduler};
pub use codebook::{train_codebook, uniform_codebook};
pub use config::{SystemConfig, SystemConfigBuilder};
pub use decoder::{DecodeWorkspace, DecodedPacket, Decoder, PriorMode, SolverPolicy};
pub use encoder::Encoder;
pub use error::PipelineError;
pub use fleet::{
    run_fleet, run_fleet_encoded, run_fleet_observed, run_fleet_wire, run_fleet_wire_archived,
    run_fleet_wire_stream, run_fleet_wire_stream_archived, FleetConfig, FleetPacket, FleetReport,
    FleetStream, FrameSink, StreamSummary, WireFrame,
};
pub use ingest::{
    ConcealmentReason, FaultCounters, FaultStats, PacketOutcome, PushReject, QuarantineRecord,
    QuarantineRing, Reassembler, SequencedEvent, DEFAULT_QUARANTINE_CAPACITY,
    DEFAULT_REORDER_WINDOW, MAX_LOSS_BURST,
};
pub use multichannel::{ChannelPacket, MultiChannelDecoder, MultiChannelEncoder};
pub use packet::{
    crc16, parse_frame, EncodedPacket, FrameInfo, PacketKind, FRAME_MAGIC, FRAME_VERSION,
    HEADER_BYTES, QUARANTINE_LANE, TRAILER_BYTES,
};
pub use pipeline::{
    evaluate_stream, evaluate_stream_observed, packetize, train_and_evaluate, PacketReport,
    StreamReport,
};
pub use stream::{run_streaming, run_streaming_observed, StreamingReport, SHARED_BUFFER_PACKETS};
