//! The classical transform-coding baseline: DWT + top-K thresholding.
//!
//! Before compressed sensing, the standard ECG compressor was wavelet
//! transform coding (the paper's ref. [5] and the companion TBME work):
//! transform the packet, keep the K largest coefficients, code their
//! positions and quantized values. Its compression quality is the
//! benchmark CS trades against — transform coding reaches lower PRD at a
//! given CR, but the *encoder* must run a full DWT, a top-K selection and
//! value coding on the mote, whereas the CS encoder is a gather-add. The
//! `baseline_dwt` bench binary quantifies both sides of that trade using
//! this codec and the platform cycle model.

use crate::config::SystemConfig;
use crate::error::PipelineError;
use cs_codec::{BitReader, BitWriter};
use cs_dsp::wavelet::{Dwt, Wavelet};

/// Bits used to code each kept coefficient's quantized value.
const VALUE_BITS: u8 = 12;
/// Bits used for the per-packet quantizer scale.
const SCALE_BITS: u8 = 16;

/// A DWT top-K threshold compressor for fixed-length packets.
///
/// # Examples
///
/// ```
/// use cs_core::{DwtThresholdCodec, SystemConfig};
///
/// let config = SystemConfig::paper_default();
/// let codec = DwtThresholdCodec::new(&config)?;
/// let samples: Vec<i16> = (0..512)
///     .map(|i| (500.0 * (-(((i as f64 / 512.0) - 0.5) * 25.0).powi(2)).exp()) as i16)
///     .collect();
/// let packet = codec.encode(&samples, 50.0)?;
/// let recon = codec.decode(&packet)?;
/// assert_eq!(recon.len(), 512);
/// # Ok::<(), cs_core::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DwtThresholdCodec {
    dwt: Dwt<f64>,
    n: usize,
    position_bits: u8,
    original_bits: u64,
}

/// One compressed packet of the baseline codec.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePacket {
    /// Number of kept coefficients.
    pub kept: usize,
    /// Bit-exact payload size (header + positions + values).
    pub payload_bits: usize,
    /// Packed payload.
    pub payload: Vec<u8>,
}

impl DwtThresholdCodec {
    /// Builds the baseline codec over the same wavelet/packet geometry as
    /// the CS system, so comparisons are apples-to-apples.
    ///
    /// # Errors
    ///
    /// Propagates wavelet-plan construction failures.
    pub fn new(config: &SystemConfig) -> Result<Self, PipelineError> {
        let wavelet = Wavelet::new(config.wavelet_family())?;
        let dwt = Dwt::new(&wavelet, config.packet_len(), config.levels())?;
        let n = config.packet_len();
        let position_bits = (usize::BITS - (n - 1).leading_zeros()) as u8;
        Ok(DwtThresholdCodec {
            dwt,
            n,
            position_bits,
            original_bits: config.original_packet_bits(),
        })
    }

    /// Bits each kept coefficient costs on the wire.
    pub fn bits_per_coefficient(&self) -> u64 {
        self.position_bits as u64 + VALUE_BITS as u64
    }

    /// The number of coefficients that fits a target compression ratio.
    ///
    /// # Panics
    ///
    /// Panics if `cr_percent` is not in `[0, 100)`.
    pub fn coefficients_for_cr(&self, cr_percent: f64) -> usize {
        assert!(
            (0.0..100.0).contains(&cr_percent),
            "coefficients_for_cr: CR out of range"
        );
        let budget =
            (self.original_bits as f64 * (1.0 - cr_percent / 100.0)) - SCALE_BITS as f64;
        let k = (budget / self.bits_per_coefficient() as f64).floor() as usize;
        k.clamp(1, self.n)
    }

    /// Compresses one packet at a target CR.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::PacketLength`] on a wrong-size packet.
    pub fn encode(&self, samples: &[i16], cr_percent: f64) -> Result<BaselinePacket, PipelineError> {
        if samples.len() != self.n {
            return Err(PipelineError::PacketLength {
                expected: self.n,
                actual: samples.len(),
            });
        }
        let x: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        let coeffs = self.dwt.analyze(&x);
        let k = self.coefficients_for_cr(cr_percent);

        // Top-K selection by magnitude.
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by(|&a, &b| {
            coeffs[b]
                .abs()
                .partial_cmp(&coeffs[a].abs())
                .expect("coefficients are finite")
        });
        let mut kept: Vec<usize> = order[..k].to_vec();
        kept.sort_unstable();

        // Uniform quantizer over the kept range.
        let peak = kept
            .iter()
            .map(|&i| coeffs[i].abs())
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        let half_levels = (1u32 << (VALUE_BITS - 1)) - 1; // symmetric
        // Scale transmitted as a 16-bit exponent-less fixed value: peak in
        // units of 1/4 ADC count, saturating.
        let scale_code = (peak * 4.0).round().clamp(1.0, 65535.0) as u32;
        let tx_peak = scale_code as f64 / 4.0;

        let mut w = BitWriter::new();
        w.write_bits(scale_code, SCALE_BITS);
        for &i in &kept {
            w.write_bits(i as u32, self.position_bits);
            let q = (coeffs[i] / tx_peak * half_levels as f64)
                .round()
                .clamp(-(half_levels as f64), half_levels as f64) as i32;
            // Offset binary.
            w.write_bits((q + half_levels as i32) as u32, VALUE_BITS);
        }
        let payload_bits = w.bit_len();
        Ok(BaselinePacket {
            kept: k,
            payload_bits,
            payload: w.finish(),
        })
    }

    /// Reconstructs a packet (samples in signed ADC counts).
    ///
    /// # Errors
    ///
    /// Propagates bitstream truncation errors.
    pub fn decode(&self, packet: &BaselinePacket) -> Result<Vec<f64>, PipelineError> {
        let mut r = BitReader::new(&packet.payload);
        let scale_code = r.read_bits(SCALE_BITS).map_err(PipelineError::from)?;
        let tx_peak = scale_code as f64 / 4.0;
        let half_levels = (1u32 << (VALUE_BITS - 1)) - 1;
        let mut coeffs = vec![0.0_f64; self.n];
        for _ in 0..packet.kept {
            let pos = r.read_bits(self.position_bits).map_err(PipelineError::from)? as usize;
            if pos >= self.n {
                return Err(PipelineError::MalformedPacket(format!(
                    "coefficient position {pos} out of range"
                )));
            }
            let q = r.read_bits(VALUE_BITS).map_err(PipelineError::from)? as i32
                - half_levels as i32;
            coeffs[pos] = q as f64 / half_levels as f64 * tx_peak;
        }
        Ok(self.dwt.synthesize(&coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_metrics::prd;

    fn spiky_packet() -> Vec<i16> {
        (0..512)
            .map(|i| {
                let t = i as f64 / 512.0;
                (700.0 * (-((t - 0.3) * 28.0).powi(2)).exp()
                    + 700.0 * (-((t - 0.75) * 28.0).powi(2)).exp()
                    + 40.0 * (t * 9.0).sin()) as i16
            })
            .collect()
    }

    fn codec() -> DwtThresholdCodec {
        DwtThresholdCodec::new(&SystemConfig::paper_default()).unwrap()
    }

    #[test]
    fn budget_accounting_matches_cr() {
        let c = codec();
        for cr in [30.0, 50.0, 70.0, 90.0] {
            let packet = c.encode(&spiky_packet(), cr).unwrap();
            let actual_cr = 100.0 * (1.0 - packet.payload_bits as f64 / (512.0 * 11.0));
            assert!(
                actual_cr >= cr - 1.0,
                "CR target {cr} but achieved {actual_cr}"
            );
        }
    }

    #[test]
    fn quality_beats_heavy_compression_intuition() {
        let c = codec();
        let x = spiky_packet();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let p50 = c.decode(&c.encode(&x, 50.0).unwrap()).unwrap();
        let p90 = c.decode(&c.encode(&x, 90.0).unwrap()).unwrap();
        let prd50 = prd(&xf, &p50);
        let prd90 = prd(&xf, &p90);
        assert!(prd50 < 2.0, "transform coding at CR 50 should be ~transparent: {prd50}");
        assert!(prd90 > prd50, "quality must degrade with CR");
    }

    #[test]
    fn transform_coding_beats_cs_on_quality() {
        // The known result this baseline exists to demonstrate: at equal
        // CR, adaptive transform coding reaches lower PRD than (non-
        // adaptive) compressed sensing — CS pays quality for encoder
        // simplicity.
        use crate::decoder::{Decoder, SolverPolicy};
        use crate::encoder::Encoder;
        use crate::codebook::uniform_codebook;
        use std::sync::Arc;

        let config = SystemConfig::paper_default();
        let x = spiky_packet();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();

        let c = codec();
        let baseline_recon = c.decode(&c.encode(&x, 50.0).unwrap()).unwrap();
        let baseline_prd = prd(&xf, &baseline_recon);

        let cb = Arc::new(uniform_codebook(512).unwrap());
        let mut enc = Encoder::new(&config, Arc::clone(&cb)).unwrap();
        let mut dec: Decoder<f64> = Decoder::new(&config, cb, SolverPolicy::default()).unwrap();
        let wire = enc.encode_packet(&x).unwrap();
        let cs_recon = dec.decode_packet(&wire).unwrap();
        let cs_prd = prd(&xf, &cs_recon.samples);

        assert!(
            baseline_prd < cs_prd,
            "transform coding ({baseline_prd}) should beat CS ({cs_prd}) on quality"
        );
    }

    #[test]
    fn wrong_length_rejected() {
        let c = codec();
        assert!(c.encode(&[0; 100], 50.0).is_err());
    }

    #[test]
    fn malformed_payload_rejected() {
        let c = codec();
        let mut p = c.encode(&spiky_packet(), 50.0).unwrap();
        p.payload.truncate(2);
        assert!(c.decode(&p).is_err());
    }

    #[test]
    fn zero_signal_round_trips() {
        let c = codec();
        let p = c.encode(&vec![0; 512], 60.0).unwrap();
        let recon = c.decode(&p).unwrap();
        assert!(recon.iter().all(|&v| v.abs() < 0.5));
    }
}
