//! Offline codebook training.
//!
//! The paper's Huffman codebook is "offline-generated" (§IV-A2): the
//! difference-symbol statistics are gathered over a training corpus once,
//! and the resulting 1.5 kB table is flashed onto the mote. This module is
//! that offline step — it runs the *actual* encoder front end (sensing +
//! differencing) over training packets and trains the length-limited code
//! on the observed symbol histogram.

use crate::config::SystemConfig;
use crate::error::PipelineError;
use cs_codec::{value_to_symbol, Codebook, DiffConfig, DiffEncoder, DiffPacket};
use cs_sensing::SparseBinarySensing;

/// Trains a codebook by pushing training packets through the encoder's
/// sensing + differencing stages and histogramming the delta symbols.
///
/// Packets that are not exactly `config.packet_len()` long are skipped
/// (trailing partial packets of a record). Zero-count symbols are smoothed
/// inside the codebook builder so the code stays complete.
///
/// # Errors
///
/// Propagates sensing/codec construction failures.
///
/// # Examples
///
/// ```
/// use cs_core::{train_codebook, SystemConfig};
///
/// let config = SystemConfig::paper_default();
/// let packets = (0..8).map(|p| {
///     (0..512).map(|i| (300.0 * ((i + p * 7) as f64 * 0.05).sin()) as i16).collect()
/// });
/// let codebook = train_codebook(&config, packets)?;
/// assert_eq!(codebook.alphabet_size(), 512);
/// assert_eq!(codebook.mote_storage_bytes(), 1536); // the paper's 1.5 kB
/// # Ok::<(), cs_core::PipelineError>(())
/// ```
pub fn train_codebook<I>(config: &SystemConfig, packets: I) -> Result<Codebook, PipelineError>
where
    I: IntoIterator<Item = Vec<i16>>,
{
    let phi = SparseBinarySensing::new(
        config.measurements(),
        config.packet_len(),
        config.sparse_ones_per_column(),
        config.seed(),
    )?;
    let mut diff = DiffEncoder::new(DiffConfig {
        vector_len: config.measurements(),
        reference_interval: config.reference_interval(),
        alphabet: config.alphabet(),
    });
    let mut counts = vec![0u64; config.alphabet()];
    for packet in packets {
        if packet.len() != config.packet_len() {
            continue;
        }
        let y = phi.apply_unscaled_i32(&packet);
        if let DiffPacket::Delta(block) = diff.encode(&y)? {
            for &d in &block.values {
                counts[value_to_symbol(d as i32, config.alphabet())? as usize] += 1;
            }
        }
    }
    Ok(Codebook::from_counts(&counts, config.alphabet())?)
}

/// The fallback codebook when no training data is available: uniform
/// lengths over the whole alphabet (`log₂(alphabet)` bits per symbol, 9
/// for the paper's 512).
///
/// # Errors
///
/// Returns [`PipelineError::InvalidConfig`] if the alphabet is not a power
/// of two (only then is a uniform complete code possible).
pub fn uniform_codebook(alphabet: usize) -> Result<Codebook, PipelineError> {
    if !alphabet.is_power_of_two() || alphabet < 2 {
        return Err(PipelineError::InvalidConfig(format!(
            "uniform codebook needs a power-of-two alphabet, got {alphabet}"
        )));
    }
    Ok(Codebook::from_counts(&vec![1; alphabet], alphabet)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecg_like_packets(count: usize) -> Vec<Vec<i16>> {
        (0..count)
            .map(|p| {
                (0..512)
                    .map(|i| {
                        let t = i as f64 / 512.0;
                        let beat = (-((t - 0.4) * 30.0 + p as f64 * 0.01).powi(2)).exp();
                        (800.0 * beat + 40.0 * (t * 9.0).sin()) as i16
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn trained_codebook_beats_uniform_on_training_stats() {
        let config = SystemConfig::paper_default();
        let packets = ecg_like_packets(32);
        let trained = train_codebook(&config, packets.clone()).unwrap();
        let uniform = uniform_codebook(512).unwrap();

        // Re-derive the histogram and compare expected lengths.
        let phi = SparseBinarySensing::new(
            config.measurements(),
            config.packet_len(),
            config.sparse_ones_per_column(),
            config.seed(),
        )
        .unwrap();
        let mut diff = DiffEncoder::new(DiffConfig {
            vector_len: config.measurements(),
            reference_interval: config.reference_interval(),
            alphabet: 512,
        });
        let mut counts = vec![0u64; 512];
        for p in &packets {
            let y = phi.apply_unscaled_i32(p);
            if let DiffPacket::Delta(block) = diff.encode(&y).unwrap() {
                for &d in &block.values {
                    counts[value_to_symbol(d as i32, 512).unwrap() as usize] += 1;
                }
            }
        }
        let lt = trained.expected_length_bits(&counts);
        let lu = uniform.expected_length_bits(&counts);
        assert!(lt < lu, "trained {lt} bits !< uniform {lu} bits");
        assert!(lt < 8.0, "ECG deltas should code below 8 bits, got {lt}");
    }

    #[test]
    fn short_packets_skipped() {
        let config = SystemConfig::paper_default();
        let packets = vec![vec![0_i16; 100], vec![0_i16; 512], vec![0_i16; 512]];
        let cb = train_codebook(&config, packets).unwrap();
        assert_eq!(cb.alphabet_size(), 512);
    }

    #[test]
    fn uniform_rejects_non_power_of_two() {
        assert!(uniform_codebook(500).is_err());
        assert!(uniform_codebook(512).is_ok());
    }
}
