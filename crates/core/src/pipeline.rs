//! End-to-end round-trip evaluation.
//!
//! The figure harness needs one operation over and over: push a record
//! through encoder + decoder and collect, per packet, the compression
//! ratio, PRD/SNR and solver statistics. [`evaluate_stream`] is that
//! operation, and [`packetize`] is the 2-second windowing that feeds it.

use crate::codebook::train_codebook;
use crate::config::SystemConfig;
use crate::decoder::{Decoder, SolverPolicy};
use crate::encoder::Encoder;
use crate::error::PipelineError;
use cs_dsp::Real;
use cs_metrics::{compression_ratio, prd, snr_from_prd, Summary};
use std::sync::Arc;
use std::time::Duration;

/// Splits a sample stream into whole packets of length `n`, dropping any
/// trailing partial packet (as the real system would buffer it for later).
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// let samples: Vec<i16> = (0..1100).map(|i| i as i16).collect();
/// let packets: Vec<&[i16]> = cs_core::packetize(&samples, 512).collect();
/// assert_eq!(packets.len(), 2);
/// assert_eq!(packets[1][0], 512);
/// ```
pub fn packetize(samples: &[i16], n: usize) -> impl Iterator<Item = &[i16]> {
    assert!(n > 0, "packetize: zero packet length");
    samples.chunks_exact(n)
}

/// Per-packet round-trip measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketReport {
    /// Sequence index.
    pub index: u64,
    /// End-to-end compression ratio of this packet in percent (original
    /// `N × sample_bits` vs coded payload bits).
    pub cr_percent: f64,
    /// Percentage RMS difference of the reconstruction.
    pub prd: f64,
    /// Output SNR in dB.
    pub snr_db: f64,
    /// FISTA iterations spent.
    pub iterations: usize,
    /// Wall-clock solver time.
    pub solve_time: Duration,
    /// Coded payload bits (header excluded, matching the paper's CR
    /// definition).
    pub payload_bits: usize,
}

/// Aggregate of a whole stream (one record/channel).
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Per-packet details in order.
    pub packets: Vec<PacketReport>,
    /// Summary of per-packet CR.
    pub cr: Summary,
    /// Summary of per-packet PRD.
    pub prd: Summary,
    /// Summary of per-packet output SNR.
    pub snr_db: Summary,
    /// Summary of per-packet iteration counts.
    pub iterations: Summary,
    /// Summary of per-packet solve times in seconds.
    pub solve_seconds: Summary,
}

impl StreamReport {
    fn from_packets(packets: Vec<PacketReport>) -> Self {
        let cr = packets.iter().map(|p| p.cr_percent).collect();
        let prd = packets.iter().map(|p| p.prd).collect();
        let snr_db = packets.iter().map(|p| p.snr_db).collect();
        let iterations = packets.iter().map(|p| p.iterations as f64).collect();
        let solve_seconds = packets.iter().map(|p| p.solve_time.as_secs_f64()).collect();
        StreamReport {
            packets,
            cr,
            prd,
            snr_db,
            iterations,
            solve_seconds,
        }
    }
}

/// Runs the full encoder → wire → decoder loop over a sample stream at
/// precision `T`, reporting per-packet and aggregate metrics.
///
/// Packets whose original energy is zero (flat-line input) are skipped in
/// the PRD statistics but still counted for CR.
///
/// # Errors
///
/// Propagates construction and decode failures.
pub fn evaluate_stream<T: Real>(
    config: &SystemConfig,
    codebook: Arc<cs_codec::Codebook>,
    samples: &[i16],
    policy: SolverPolicy<T>,
) -> Result<StreamReport, PipelineError> {
    evaluate_stream_observed(
        config,
        codebook,
        samples,
        policy,
        &cs_telemetry::TelemetryRegistry::disabled(),
    )
}

/// [`evaluate_stream`] recording live telemetry: every encode and decode
/// stage of the round trip lands in `telemetry`'s histograms. Pass
/// [`TelemetryRegistry::disabled`] to get exactly [`evaluate_stream`]
/// (one atomic load per span).
///
/// [`TelemetryRegistry::disabled`]: cs_telemetry::TelemetryRegistry::disabled
///
/// # Errors
///
/// Same contract as [`evaluate_stream`].
pub fn evaluate_stream_observed<T: Real>(
    config: &SystemConfig,
    codebook: Arc<cs_codec::Codebook>,
    samples: &[i16],
    policy: SolverPolicy<T>,
    telemetry: &cs_telemetry::TelemetryRegistry,
) -> Result<StreamReport, PipelineError> {
    let mut encoder = Encoder::new(config, Arc::clone(&codebook))?;
    let mut decoder: Decoder<T> = Decoder::new(config, codebook, policy)?;
    encoder.set_telemetry(telemetry.clone());
    decoder.set_telemetry(telemetry.clone());
    let original_bits = config.original_packet_bits();

    let mut reports = Vec::new();
    for packet in packetize(samples, config.packet_len()) {
        let wire = encoder.encode_packet(packet)?;
        let decoded = decoder.decode_packet(&wire)?;

        let x: Vec<f64> = packet.iter().map(|&v| v as f64).collect();
        let xhat: Vec<f64> = decoded.samples.iter().map(|&v| v.to_f64()).collect();
        let energy: f64 = x.iter().map(|v| v * v).sum();
        let (p, s) = if energy > 0.0 {
            let p = prd(&x, &xhat);
            (p, snr_from_prd(p))
        } else {
            (0.0, f64::INFINITY)
        };
        reports.push(PacketReport {
            index: wire.index,
            cr_percent: compression_ratio(original_bits, wire.payload_bits as u64),
            prd: p,
            snr_db: s,
            iterations: decoded.iterations,
            solve_time: decoded.solve_time,
            payload_bits: wire.payload_bits,
        });
    }
    Ok(StreamReport::from_packets(reports))
}

/// Convenience wrapper: trains a codebook on the first `training_packets`
/// packets of the stream, then evaluates the whole stream with it — the
/// typical workflow of the figure binaries.
///
/// # Errors
///
/// Propagates construction and decode failures.
pub fn train_and_evaluate<T: Real>(
    config: &SystemConfig,
    samples: &[i16],
    training_packets: usize,
    policy: SolverPolicy<T>,
) -> Result<StreamReport, PipelineError> {
    let training = packetize(samples, config.packet_len())
        .take(training_packets)
        .map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(config, training)?);
    evaluate_stream(config, codebook, samples, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_ecg_data::{DatabaseConfig, SyntheticDatabase};

    fn record_samples(seconds: f64) -> Vec<i16> {
        let db = SyntheticDatabase::new(DatabaseConfig {
            num_records: 1,
            duration_s: seconds,
            ..DatabaseConfig::default()
        });
        let record = db.record(0);
        let mv = record.signal_mv(0);
        let at256 = cs_ecg_data::resample_360_to_256(&mv);
        let adc = record.adc();
        at256
            .iter()
            .map(|&v| adc.to_signed(adc.quantize(v)))
            .collect()
    }

    #[test]
    fn round_trip_on_synthetic_ecg_cr50() {
        let config = SystemConfig::paper_default();
        let samples = record_samples(20.0);
        let report =
            train_and_evaluate::<f64>(&config, &samples, 4, SolverPolicy::default()).unwrap();
        assert!(report.packets.len() >= 9);
        // CR 50 linear stage + entropy coding: average end-to-end CR must
        // exceed the linear stage alone on delta packets.
        assert!(
            report.cr.mean() > 40.0,
            "mean CR {} too low",
            report.cr.mean()
        );
        // Reconstruction is clinically plausible at CR 50.
        assert!(
            report.prd.mean() < 35.0,
            "mean PRD {} too high",
            report.prd.mean()
        );
        assert!(report.iterations.mean() > 0.0);
    }

    #[test]
    fn packetize_drops_partial_tail() {
        let s = vec![0_i16; 1000];
        assert_eq!(packetize(&s, 512).count(), 1);
        assert_eq!(packetize(&s, 500).count(), 2);
    }

    #[test]
    fn higher_cr_means_fewer_bits_and_worse_prd() {
        let samples = record_samples(16.0);
        let run = |cr: f64| {
            let config = SystemConfig::builder()
                .compression_ratio(cr)
                .build()
                .unwrap();
            train_and_evaluate::<f64>(&config, &samples, 3, SolverPolicy::default()).unwrap()
        };
        let lo = run(40.0);
        let hi = run(80.0);
        assert!(hi.cr.mean() > lo.cr.mean() + 20.0);
        assert!(
            hi.prd.mean() > lo.prd.mean(),
            "PRD at CR80 ({}) should exceed CR40 ({})",
            hi.prd.mean(),
            lo.prd.mean()
        );
    }

    #[test]
    fn f32_policy_works_end_to_end() {
        let config = SystemConfig::paper_default();
        let samples = record_samples(8.0);
        let report =
            train_and_evaluate::<f32>(&config, &samples, 2, SolverPolicy::default()).unwrap();
        assert!(!report.packets.is_empty());
        assert!(report.prd.mean() < 40.0);
    }
}
