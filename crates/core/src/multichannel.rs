//! Multi-lead operation.
//!
//! MIT-BIH records are two-channel and a 3-lead Holter is the clinical
//! norm (§I), so a practical monitor compresses several leads at once.
//! Each lead gets its own differencing state and sequence numbering, but
//! all leads share the sensing matrix, wavelet plan and codebook (the
//! leads observe the same heart, so one trained codebook serves all).
//! Wire packets gain a one-byte lane tag.

use crate::config::SystemConfig;
use crate::decoder::{DecodedPacket, Decoder, SolverPolicy};
use crate::encoder::Encoder;
use crate::error::PipelineError;
use crate::packet::EncodedPacket;
use cs_codec::Codebook;
use cs_dsp::Real;
use std::sync::Arc;

/// A wire packet tagged with its lead index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelPacket {
    /// Lead index (0-based).
    pub channel: u8,
    /// The underlying CS-ECG packet.
    pub packet: EncodedPacket,
}

impl ChannelPacket {
    /// Serializes with the lead index in the frame's lane byte (which the
    /// frame CRC covers, so a corrupted tag cannot misroute the packet).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.packet.to_bytes_tagged(self.channel)
    }

    /// Parses a tagged packet.
    ///
    /// # Errors
    ///
    /// Propagates framing errors from [`crate::parse_frame`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PipelineError> {
        let (info, payload) = crate::packet::parse_frame(bytes)?;
        Ok(ChannelPacket {
            channel: info.lane,
            packet: EncodedPacket {
                index: info.index,
                kind: info.kind,
                payload: payload.to_vec(),
                payload_bits: info.payload_bits,
            },
        })
    }
}

/// Encoder for a fixed number of leads.
///
/// # Examples
///
/// ```
/// use cs_core::{uniform_codebook, MultiChannelEncoder, SystemConfig};
/// use std::sync::Arc;
///
/// let config = SystemConfig::paper_default();
/// let codebook = Arc::new(uniform_codebook(512)?);
/// let mut encoder = MultiChannelEncoder::new(&config, codebook, 2)?;
/// let lead0 = vec![0_i16; 512];
/// let lead1 = vec![0_i16; 512];
/// let packets = encoder.encode_frame(&[&lead0, &lead1])?;
/// assert_eq!(packets.len(), 2);
/// assert_eq!(packets[1].channel, 1);
/// # Ok::<(), cs_core::PipelineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelEncoder {
    lanes: Vec<Encoder>,
}

impl MultiChannelEncoder {
    /// Builds `channels` independent encoder lanes sharing one codebook.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for zero channels and
    /// propagates per-lane construction failures.
    pub fn new(
        config: &SystemConfig,
        codebook: Arc<Codebook>,
        channels: usize,
    ) -> Result<Self, PipelineError> {
        if channels == 0 {
            return Err(PipelineError::InvalidConfig("zero channels".into()));
        }
        let lanes = (0..channels)
            .map(|_| Encoder::new(config, Arc::clone(&codebook)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiChannelEncoder { lanes })
    }

    /// Number of leads.
    pub fn channels(&self) -> usize {
        self.lanes.len()
    }

    /// Installs a telemetry registry on every lane (see
    /// [`Encoder::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: cs_telemetry::TelemetryRegistry) {
        for lane in &mut self.lanes {
            lane.set_telemetry(telemetry.clone());
        }
    }

    /// Encodes one synchronized frame (one packet per lead).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] if the frame does not have
    /// one slice per lead, and propagates per-lane encode failures.
    pub fn encode_frame(&mut self, frame: &[&[i16]]) -> Result<Vec<ChannelPacket>, PipelineError> {
        if frame.len() != self.lanes.len() {
            return Err(PipelineError::InvalidConfig(format!(
                "frame has {} leads, encoder has {}",
                frame.len(),
                self.lanes.len()
            )));
        }
        frame
            .iter()
            .zip(self.lanes.iter_mut())
            .enumerate()
            .map(|(ch, (samples, lane))| {
                Ok(ChannelPacket {
                    channel: ch as u8,
                    packet: lane.encode_packet(samples)?,
                })
            })
            .collect()
    }
}

/// Decoder for a fixed number of leads.
#[derive(Debug)]
pub struct MultiChannelDecoder<T: Real> {
    lanes: Vec<Decoder<T>>,
}

impl<T: Real> MultiChannelDecoder<T> {
    /// Builds `channels` decoder lanes sharing one codebook and policy.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for zero channels and
    /// propagates per-lane construction failures.
    pub fn new(
        config: &SystemConfig,
        codebook: Arc<Codebook>,
        policy: SolverPolicy<T>,
        channels: usize,
    ) -> Result<Self, PipelineError> {
        if channels == 0 {
            return Err(PipelineError::InvalidConfig("zero channels".into()));
        }
        let lanes = (0..channels)
            .map(|_| Decoder::new(config, Arc::clone(&codebook), policy))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiChannelDecoder { lanes })
    }

    /// Decodes a tagged packet, returning the lead index with the result.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::MalformedPacket`] for an unknown lane and
    /// propagates decode failures.
    pub fn decode(
        &mut self,
        packet: &ChannelPacket,
    ) -> Result<(usize, DecodedPacket<T>), PipelineError> {
        let ch = packet.channel as usize;
        let lane = self.lanes.get_mut(ch).ok_or_else(|| {
            PipelineError::MalformedPacket(format!("unknown channel {ch}"))
        })?;
        Ok((ch, lane.decode_packet(&packet.packet)?))
    }

    /// Signals loss on one lead only.
    ///
    /// # Panics
    ///
    /// Panics if the channel is out of range.
    pub fn desynchronize_channel(&mut self, channel: usize) {
        self.lanes[channel].desynchronize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::uniform_codebook;
    use cs_metrics::prd;

    fn lead(phase: f64) -> Vec<i16> {
        (0..512)
            .map(|i| {
                let t = i as f64 / 512.0;
                (600.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp()) as i16
            })
            .collect()
    }

    fn setup(channels: usize) -> (MultiChannelEncoder, MultiChannelDecoder<f64>) {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        (
            MultiChannelEncoder::new(&config, Arc::clone(&cb), channels).unwrap(),
            MultiChannelDecoder::new(&config, cb, SolverPolicy::default(), channels).unwrap(),
        )
    }

    #[test]
    fn two_leads_round_trip_independently() {
        let (mut enc, mut dec) = setup(2);
        let l0 = lead(0.0);
        let l1 = lead(0.1);
        let packets = enc.encode_frame(&[&l0, &l1]).unwrap();
        for p in &packets {
            let (ch, out) = dec.decode(p).unwrap();
            let truth = if ch == 0 { &l0 } else { &l1 };
            let x: Vec<f64> = truth.iter().map(|&v| v as f64).collect();
            assert!(prd(&x, &out.samples) < 25.0, "lead {ch}");
        }
    }

    #[test]
    fn wire_round_trip_with_lane_tag() {
        let (mut enc, _) = setup(3);
        let l = lead(0.0);
        let packets = enc.encode_frame(&[&l, &l, &l]).unwrap();
        for p in &packets {
            let parsed = ChannelPacket::from_bytes(&p.to_bytes()).unwrap();
            assert_eq!(&parsed, p);
        }
    }

    #[test]
    fn per_lead_loss_is_isolated() {
        let (mut enc, mut dec) = setup(2);
        let l = lead(0.0);
        let f1 = enc.encode_frame(&[&l, &l]).unwrap();
        for p in &f1 {
            dec.decode(p).unwrap();
        }
        dec.desynchronize_channel(0);
        let f2 = enc.encode_frame(&[&l, &l]).unwrap();
        assert!(dec.decode(&f2[0]).is_err(), "lead 0 must reject its delta");
        assert!(dec.decode(&f2[1]).is_ok(), "lead 1 unaffected");
    }

    #[test]
    fn frame_shape_validated() {
        let (mut enc, mut dec) = setup(2);
        let l = lead(0.0);
        assert!(enc.encode_frame(&[&l]).is_err());
        let packets = enc.encode_frame(&[&l, &l]).unwrap();
        let mut rogue = packets[0].clone();
        rogue.channel = 9;
        assert!(dec.decode(&rogue).is_err());
    }

    #[test]
    fn zero_channels_rejected() {
        let config = SystemConfig::paper_default();
        let cb = Arc::new(uniform_codebook(512).unwrap());
        assert!(MultiChannelEncoder::new(&config, Arc::clone(&cb), 0).is_err());
        assert!(
            MultiChannelDecoder::<f64>::new(&config, cb, SolverPolicy::default(), 0).is_err()
        );
    }
}
