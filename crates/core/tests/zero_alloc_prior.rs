//! Steady-state **prior-driven** decode must be allocation-free.
//!
//! The prior analogue of `zero_alloc.rs`: a counting global allocator
//! wraps the system allocator; after the first packet has warmed a
//! worker's [`DecodeWorkspace`] — including the support prior's weight
//! buffer and the group-prox norm scratch — every further
//! `decode_packet_with` under [`SolverPolicy::support_prior`] and
//! [`SolverPolicy::block_prior`] must perform **zero** heap allocations.
//! The support prior re-estimates its weight vector after *every*
//! window, so this pins that `refresh_from` reuses its buffer rather
//! than rebuilding it.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no concurrent test can pollute the allocation counter.

use cs_codec::Codebook;
use cs_core::{DecodeWorkspace, DecodedPacket, Decoder, Encoder, SolverPolicy, SystemConfig};
use cs_telemetry::TelemetryRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocations (not deallocations: retiring a buffer is benign,
/// taking a fresh one is the defect being guarded against).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp()
                + (-((t - 0.8 + phase) * 40.0).powi(2)).exp();
            (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
        })
        .collect()
}

#[test]
fn steady_state_prior_decode_allocates_nothing() {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(
        Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap(),
    );
    let registry = TelemetryRegistry::new();

    // One decoder per prior mode, both warm-started so the support
    // decoder actually takes the weighted path from packet 1 on (the
    // prior is only consulted once a warm seed is accepted).
    let mut decoders: Vec<Decoder<f32>> =
        [SolverPolicy::support_prior(), SolverPolicy::block_prior()]
            .into_iter()
            .map(|policy| {
                let mut d = Decoder::new(&config, Arc::clone(&codebook), policy).unwrap();
                d.set_warm_start(true);
                d.set_telemetry(registry.clone());
                d
            })
            .collect();

    // Pre-encode one stream per decoder (each decoder owns its DPCM
    // chain) so the measured loop is nothing but decode.
    let wires: Vec<Vec<_>> = (0..decoders.len())
        .map(|lane| {
            let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
            (0..6)
                .map(|k| {
                    let phase = k as f64 * 0.002 + lane as f64 * 0.0007;
                    encoder.encode_packet(&synthetic_packet(512, phase)).unwrap()
                })
                .collect()
        })
        .collect();

    let mut ws = DecodeWorkspace::for_config(&config);
    let mut out = DecodedPacket::default();

    for (decoder, stream) in decoders.iter_mut().zip(&wires) {
        // Packet 0 warms every buffer: the solve workspace, the group
        // norm scratch, and the support prior's weight vector
        // (allocations allowed here only).
        decoder.decode_packet_with(&stream[0], &mut ws, &mut out).unwrap();

        for wire in &stream[1..] {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            decoder.decode_packet_with(wire, &mut ws, &mut out).unwrap();
            let after = ALLOCATIONS.load(Ordering::Relaxed);
            assert_eq!(
                after - before,
                0,
                "steady-state {:?} decode of packet {} allocated {} times",
                decoder.policy().prior,
                out.index,
                after - before
            );
            assert_eq!(out.samples.len(), 512);
            assert!(out.warm_started, "steady state must be warm-started");
        }
    }

    // The weighted path really ran: the support decoder recorded
    // weighted-mode solves into the live registry.
    let snap = registry.snapshot();
    let weighted = snap
        .solver_iterations
        .iter()
        .find(|(m, _)| m.name() == "weighted")
        .map(|(_, h)| h.count())
        .unwrap();
    assert!(weighted > 0, "support decoder never took the weighted path");
    let block = snap
        .solver_iterations
        .iter()
        .find(|(m, _)| m.name() == "block")
        .map(|(_, h)| h.count())
        .unwrap();
    assert!(block > 0, "block decoder never took the group path");
}
