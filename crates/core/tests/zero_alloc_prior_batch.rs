//! Steady-state **batched prior-driven** decode must be allocation-free.
//!
//! The prior analogue of `zero_alloc_batch.rs`: K support-prior lanes
//! fused into one MMV solve with per-lane ℓ1 weight vectors. After one
//! full batch round has warmed the per-worker [`BatchDecodeWorkspace`] —
//! including the lane-major weight staging buffer and every lane's
//! support-prior weights — each further round (staging, the K-wide
//! per-lane-weighted solve, prior re-estimation per lane) must perform
//! **zero** heap allocations.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no concurrent test can pollute the allocation counter.

use cs_codec::Codebook;
use cs_core::{
    BatchDecodeWorkspace, BatchScheduler, DecodedPacket, Decoder, Encoder, SolverPolicy,
    SystemConfig,
};
use cs_telemetry::TelemetryRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocations (not deallocations: retiring a buffer is benign,
/// taking a fresh one is the defect being guarded against).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp()
                + (-((t - 0.8 + phase) * 40.0).powi(2)).exp();
            (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
        })
        .collect()
}

#[test]
fn steady_state_batched_prior_decode_allocates_nothing() {
    const K: usize = 4;
    const ROUNDS: usize = 6;

    let config = SystemConfig::paper_default();
    let codebook = Arc::new(
        Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap(),
    );
    let registry = TelemetryRegistry::new();

    let mut decoders: Vec<Decoder<f32>> = (0..K)
        .map(|lane| {
            let mut d =
                Decoder::new(&config, Arc::clone(&codebook), SolverPolicy::support_prior())
                    .unwrap();
            d.set_warm_start(true);
            d.set_telemetry(registry.clone());
            d.set_telemetry_labels(0, lane as u8);
            d
        })
        .collect();

    let wires: Vec<Vec<_>> = (0..K)
        .map(|lane| {
            let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
            (0..ROUNDS)
                .map(|k| {
                    let phase = k as f64 * 0.002 + lane as f64 * 0.0007;
                    encoder.encode_packet(&synthetic_packet(512, phase)).unwrap()
                })
                .collect()
        })
        .collect();

    let mut sched: BatchScheduler<(usize, usize)> = BatchScheduler::new(K);
    let mut ws = BatchDecodeWorkspace::for_config(&config, K);
    let mut batch: Vec<(usize, usize)> = Vec::with_capacity(K);
    let mut staged: Vec<usize> = Vec::with_capacity(K);
    let mut outs: Vec<DecodedPacket<f32>> = (0..K).map(|_| DecodedPacket::default()).collect();

    for round in 0..ROUNDS {
        let before = ALLOCATIONS.load(Ordering::Relaxed);

        for lane in 0..K {
            sched.push((lane, round));
        }
        sched.drain_into(&mut batch, |job| job.0);
        assert_eq!(batch.len(), K);

        ws.begin();
        staged.clear();
        for &(lane, window) in &batch {
            let slot = decoders[lane].begin_batch_lane(&wires[lane][window], &mut ws).unwrap();
            staged.push(slot);
        }
        decoders[batch[0].0].solve_batch(&mut ws);
        for (&(lane, window), &slot) in batch.iter().zip(&staged) {
            decoders[lane].finish_batch_lane(slot, window as u64, &mut ws, &mut outs[lane]);
        }

        let after = ALLOCATIONS.load(Ordering::Relaxed);
        // Round 0 warms the buffers (including each lane's prior weight
        // vector and the lane-major staging buffer); round 1 is the
        // first where every lane goes through the weighted path.
        if round > 1 {
            assert_eq!(
                after - before,
                0,
                "steady-state prior batch round {} allocated {} times",
                round,
                after - before
            );
        }
        for out in &outs {
            assert_eq!(out.samples.len(), 512);
        }
    }

    // The batched weighted path really ran.
    let snap = registry.snapshot();
    let weighted = snap
        .solver_iterations
        .iter()
        .find(|(m, _)| m.name() == "weighted")
        .map(|(_, h)| h.count())
        .unwrap();
    assert!(
        weighted >= ((ROUNDS - 1) * K) as u64,
        "batched lanes never took the weighted path ({weighted} weighted solves)"
    );
}
