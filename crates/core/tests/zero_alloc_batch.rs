//! Steady-state **batched** decode must be allocation-free — with a
//! live telemetry registry tracing every lane.
//!
//! The batched analogue of `zero_alloc.rs`: a counting global allocator
//! wraps the system allocator; after one full batch round has warmed the
//! per-worker [`BatchDecodeWorkspace`] (and the scheduler's backlog ring),
//! every further round — scheduler grouping, staging each lane's front
//! half, the fused K-wide solve, and scattering the results back into
//! reused output packets — must perform **zero** heap allocations.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no concurrent test can pollute the allocation counter.

use cs_codec::Codebook;
use cs_core::{
    BatchDecodeWorkspace, BatchScheduler, DecodedPacket, Decoder, Encoder, SolverPolicy,
    SystemConfig,
};
use cs_telemetry::{TelemetryRegistry, TraceContext};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocations (not deallocations: retiring a buffer is benign,
/// taking a fresh one is the defect being guarded against).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp()
                + (-((t - 0.8 + phase) * 40.0).powi(2)).exp();
            (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
        })
        .collect()
}

#[test]
fn steady_state_batched_decode_allocates_nothing() {
    const K: usize = 4;
    const ROUNDS: usize = 6;

    let config = SystemConfig::paper_default();
    let codebook = Arc::new(
        Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap(),
    );

    // K independent lanes (think: four leads across two patients), each
    // with its own DPCM + warm-start state, all sharing one configuration
    // so the scheduler may fuse them into a single MMV solve. Every lane
    // records into one live registry — the traced batched steady state
    // must hold the zero-allocation guarantee too.
    let registry = TelemetryRegistry::new();
    let mut decoders: Vec<Decoder<f32>> = (0..K)
        .map(|lane| {
            let mut d =
                Decoder::new(&config, Arc::clone(&codebook), SolverPolicy::default()).unwrap();
            d.set_warm_start(true);
            d.set_concealment(true);
            d.set_telemetry(registry.clone());
            d.set_telemetry_labels(0, lane as u8);
            d
        })
        .collect();

    // Pre-encode every lane's stream (reference packet first, then
    // deltas) so the measured loop is nothing but batching + decode.
    let wires: Vec<Vec<_>> = (0..K)
        .map(|lane| {
            let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
            (0..ROUNDS)
                .map(|k| {
                    let phase = k as f64 * 0.002 + lane as f64 * 0.0007;
                    encoder.encode_packet(&synthetic_packet(512, phase)).unwrap()
                })
                .collect()
        })
        .collect();

    let mut sched: BatchScheduler<(usize, usize)> = BatchScheduler::new(K);
    let mut ws = BatchDecodeWorkspace::for_config(&config, K);
    let mut batch: Vec<(usize, usize)> = Vec::with_capacity(K);
    let mut staged: Vec<usize> = Vec::with_capacity(K);
    let mut outs: Vec<DecodedPacket<f32>> = (0..K).map(|_| DecodedPacket::default()).collect();

    for round in 0..ROUNDS {
        let before = ALLOCATIONS.load(Ordering::Relaxed);

        // Scheduler grouping: one window per lane this round, fused into
        // a single full-width batch.
        let captured = registry.now_ns();
        for lane in 0..K {
            sched.push((lane, round));
        }
        sched.drain_into(&mut batch, |job| job.0);
        assert_eq!(batch.len(), K);

        ws.begin();
        staged.clear();
        for &(lane, window) in &batch {
            let slot = decoders[lane].begin_batch_lane(&wires[lane][window], &mut ws).unwrap();
            staged.push(slot);
        }
        decoders[batch[0].0].solve_batch(&mut ws);
        for (&(lane, window), &slot) in batch.iter().zip(&staged) {
            decoders[lane].finish_batch_lane(slot, window as u64, &mut ws, &mut outs[lane]);
            // Collector-side emit accounting: e2e histogram + SLO burn
            // windows, fixed-size atomics on the traced path.
            registry
                .record_emit(&TraceContext::new(0, lane as u8, window as u64, captured))
                .expect("live registry records emissions");
        }

        let after = ALLOCATIONS.load(Ordering::Relaxed);
        if round > 0 {
            assert_eq!(
                after - before,
                0,
                "steady-state batch round {} allocated {} times",
                round,
                after - before
            );
        }
        for out in &outs {
            assert_eq!(out.samples.len(), 512);
            assert!(!out.concealed);
        }
    }

    // The registry really was live across every round (guards against
    // silently regressing to the disabled-registry fast path).
    assert_eq!(registry.journal().pushed(), (ROUNDS * K) as u64);
    assert_eq!(registry.e2e(0).snapshot().count(), (ROUNDS * K) as u64);
}
