//! Steady-state decode must be allocation-free — **with tracing on**.
//!
//! A counting global allocator wraps the system allocator; after the first
//! packet has warmed a worker's [`DecodeWorkspace`], every further
//! `decode_packet_with` into a reused output must perform **zero** heap
//! allocations — the acceptance criterion of the workspace migration.
//!
//! The decoder runs against a **live** telemetry registry and the
//! measured loop also exercises the end-to-end trace path (capture
//! stamp → [`TelemetryRegistry::record_emit`] into the SLO engine), so
//! the guarantee covers observed production decodes, not just the
//! disabled-registry fast path: stage spans, the solve-trace journal
//! ring, the e2e histograms and the burn windows are all fixed-size
//! atomics after construction.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no concurrent test can pollute the allocation counter.

use cs_codec::Codebook;
use cs_core::{
    parse_frame, DecodeWorkspace, DecodedPacket, Decoder, Encoder, SolverPolicy, SystemConfig,
};
use cs_telemetry::{TelemetryRegistry, TraceContext};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocations (not deallocations: retiring a buffer is benign,
/// taking a fresh one is the defect being guarded against).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp()
                + (-((t - 0.8 + phase) * 40.0).powi(2)).exp();
            (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
        })
        .collect()
}

#[test]
fn steady_state_decode_allocates_nothing() {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(
        Codebook::from_counts(&vec![1; config.alphabet()], config.alphabet()).unwrap(),
    );
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).unwrap();
    let mut decoder: Decoder<f32> =
        Decoder::new(&config, codebook, SolverPolicy::default()).unwrap();
    decoder.set_warm_start(true);
    decoder.set_concealment(true);

    // Trace the steady state: a live registry (journal ring preallocated
    // at construction) observing every stage span and solve trace.
    let registry = TelemetryRegistry::new();
    decoder.set_telemetry(registry.clone());

    // Pre-encode the whole stream (reference packet first, then deltas)
    // and pre-serialize the wire frames, so the measurement loop below
    // runs nothing but frame validation + decode.
    let wires: Vec<_> = (0..6)
        .map(|k| encoder.encode_packet(&synthetic_packet(512, k as f64 * 0.002)).unwrap())
        .collect();
    let frames: Vec<Vec<u8>> = wires.iter().map(|w| w.to_bytes()).collect();

    let mut ws = DecodeWorkspace::for_config(&config);
    let mut out = DecodedPacket::default();

    // Packet 0 warms every buffer, including the concealment retention
    // copy (allocations allowed here).
    decoder.decode_packet_with(&wires[0], &mut ws, &mut out).unwrap();

    for (wire, bytes) in wires[1..].iter().zip(&frames[1..]) {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        // Frame validation (magic/version/CRC/kind) borrows the payload —
        // it must not allocate either.
        let (info, _) = parse_frame(bytes).unwrap();
        assert_eq!(info.index, wire.index);
        // The full trace context rides the packet: capture stamp at
        // "packetize", emit accounting (e2e histogram + SLO burn
        // windows) after the decode — all fixed-size atomics.
        let captured = registry.now_ns();
        decoder.decode_packet_with(wire, &mut ws, &mut out).unwrap();
        registry
            .record_emit(&TraceContext::new(0, 0, out.index, captured))
            .expect("live registry records emissions");
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state decode of packet {} allocated {} times",
            out.index,
            after - before
        );
        assert_eq!(out.samples.len(), 512);
        assert!(!out.concealed);
    }

    // The concealment path replays the retained window through the
    // synthesis operator; after one warming call it must be alloc-free
    // too (a concealed slot happens mid-stream, where an allocation
    // would stall the very lane that is already degraded).
    assert!(decoder.conceal_packet_with(97, &mut ws, &mut out));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let replayed = decoder.conceal_packet_with(98, &mut ws, &mut out);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(replayed, "history exists, so concealment must replay it");
    assert_eq!(after - before, 0, "concealment allocated {} times", after - before);
    assert_eq!(out.samples.len(), 512);
    assert!(out.concealed);

    // The registry really was live: every decode journaled a solve trace
    // and every measured packet fed the SLO engine — this test must not
    // silently regress to the disabled-registry fast path.
    assert_eq!(registry.journal().pushed(), 6, "one solve trace per decode");
    assert_eq!(registry.e2e(0).snapshot().count(), 5, "one e2e sample per measured packet");
    assert_eq!(registry.slo_snapshot().patients.len(), 1);
}
