//! Operator-norm estimation by power iteration.
//!
//! FISTA with constant step size needs `L = L(∇f)`, the Lipschitz constant
//! of the gradient of `f(α) = ‖Aα − y‖²`, which is `2‖A‖²` — twice the
//! largest eigenvalue of `AᴴA`. The decoder estimates it once per sensing
//! configuration with a few power-iteration sweeps (each sweep is one
//! apply + one adjoint, the same cost as a FISTA iteration).

use crate::operator::LinearOperator;
use cs_dsp::{l2_norm, Real};

/// Estimates the spectral norm `‖A‖₂` of an operator.
///
/// Runs up to `max_sweeps` power iterations on `AᴴA`, stopping early when
/// the Rayleigh quotient stabilizes to a relative `1e-6`.
///
/// # Panics
///
/// Panics if `max_sweeps` is zero.
///
/// # Examples
///
/// ```
/// use cs_recovery::{operator_norm, DenseOperator, KernelMode, LinearOperator};
///
/// // diag(3, 1): spectral norm 3.
/// let op = DenseOperator::from_row_major(2, 2, vec![3.0, 0.0, 0.0, 1.0], KernelMode::Scalar);
/// let norm: f64 = operator_norm(&op, 50);
/// assert!((norm - 3.0).abs() < 1e-4);
/// ```
pub fn operator_norm<T: Real, A: LinearOperator<T>>(op: &A, max_sweeps: usize) -> T {
    assert!(max_sweeps > 0, "operator_norm: need at least one sweep");
    let n = op.cols();
    // Deterministic quasi-random start vector with energy in every entry.
    let mut v: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5))
        .collect();
    let norm_v = l2_norm(&v);
    if norm_v == T::ZERO {
        return T::ZERO;
    }
    for x in &mut v {
        *x /= norm_v;
    }

    let mut mid = vec![T::ZERO; op.rows()];
    let mut w = vec![T::ZERO; n];
    let mut prev_sigma = T::ZERO;
    for _ in 0..max_sweeps {
        op.apply_into(&v, &mut mid);
        op.adjoint_into(&mid, &mut w);
        let sigma_sq = l2_norm(&w); // ‖AᴴAv‖ with ‖v‖=1 → σ² estimate
        if sigma_sq == T::ZERO {
            return T::ZERO;
        }
        for (vi, &wi) in v.iter_mut().zip(&w) {
            *vi = wi / sigma_sq;
        }
        let sigma = sigma_sq.sqrt();
        if (sigma - prev_sigma).abs() <= T::from_f64(1e-6) * sigma.max(T::ONE) {
            return sigma;
        }
        prev_sigma = sigma;
    }
    prev_sigma
}

/// Estimates the operator's top singular value together with its *left*
/// singular vector (the measurement-space direction), via power iteration
/// on `AAᴴ`. Used by [`crate::DeflatedOperator`] to locate the direction
/// to deflate.
///
/// Returns `(σ₁, u)` with `‖u‖ = 1`, or `(0, zeros)` for a zero operator.
///
/// # Panics
///
/// Panics if `max_sweeps` is zero.
pub fn top_singular_pair<T: Real, A: LinearOperator<T>>(
    op: &A,
    max_sweeps: usize,
) -> (T, Vec<T>) {
    assert!(max_sweeps > 0, "top_singular_pair: need at least one sweep");
    let (m, n) = (op.rows(), op.cols());
    let mut v: Vec<T> = (0..n)
        .map(|i| T::from_f64(((i as f64 * 7.13).cos() * 917.331).fract() + 0.1))
        .collect();
    let nv = l2_norm(&v);
    if nv == T::ZERO {
        return (T::ZERO, vec![T::ZERO; m]);
    }
    for x in &mut v {
        *x /= nv;
    }
    let mut u = vec![T::ZERO; m];
    let mut sigma = T::ZERO;
    for _ in 0..max_sweeps {
        op.apply_into(&v, &mut u);
        let nu = l2_norm(&u);
        if nu == T::ZERO {
            return (T::ZERO, vec![T::ZERO; m]);
        }
        for x in &mut u {
            *x /= nu;
        }
        op.adjoint_into(&u, &mut v);
        let prev = sigma;
        sigma = l2_norm(&v);
        if sigma == T::ZERO {
            return (T::ZERO, vec![T::ZERO; m]);
        }
        for x in &mut v {
            *x /= sigma;
        }
        if (sigma - prev).abs() <= T::from_f64(1e-7) * sigma.max(T::ONE) {
            break;
        }
    }
    (sigma, u)
}

/// The FISTA step constant for `f(α) = ‖Aα − y‖²`: `L = 2‖A‖²`, padded by
/// 2 % so a slightly under-converged power iteration cannot produce a step
/// size that breaks the majorization.
pub fn lipschitz_constant<T: Real, A: LinearOperator<T>>(op: &A, max_sweeps: usize) -> T {
    let sigma = operator_norm(op, max_sweeps);
    T::TWO * sigma * sigma * T::from_f64(1.02)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;

    #[test]
    fn norm_of_scaled_identity() {
        let n = 8;
        let mut data = vec![0.0_f64; n * n];
        for i in 0..n {
            data[i * n + i] = 2.5;
        }
        let op = DenseOperator::from_row_major(n, n, data, KernelMode::Unrolled4);
        assert!((operator_norm(&op, 100) - 2.5).abs() < 1e-5);
        assert!((lipschitz_constant(&op, 100) - 2.0 * 6.25 * 1.02).abs() < 1e-3);
    }

    #[test]
    fn norm_of_rank_one() {
        // A = u vᵀ with ‖u‖=√(1+4)=√5, ‖v‖=√(9+16)=5 → ‖A‖ = √5·5.
        let u = [1.0, 2.0];
        let v = [3.0, 4.0];
        let data: Vec<f64> = u.iter().flat_map(|&a| v.iter().map(move |&b| a * b)).collect();
        let op = DenseOperator::from_row_major(2, 2, data, KernelMode::Scalar);
        let expect = (5.0_f64).sqrt() * 5.0;
        assert!((operator_norm(&op, 200) - expect).abs() < 1e-4);
    }

    #[test]
    fn zero_operator_has_zero_norm() {
        let op = DenseOperator::from_row_major(3, 3, vec![0.0_f64; 9], KernelMode::Scalar);
        assert_eq!(operator_norm(&op, 10), 0.0);
    }

    #[test]
    fn f32_estimation_works() {
        let op = DenseOperator::from_row_major(
            2,
            2,
            vec![1.0_f32, 0.0, 0.0, 4.0],
            KernelMode::Unrolled4,
        );
        let norm = operator_norm(&op, 100);
        assert!((norm - 4.0).abs() < 1e-3);
    }
}
