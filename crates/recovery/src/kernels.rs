//! Scalar and unrolled compute kernels.
//!
//! §IV-B2 of the paper is devoted to making the FISTA inner loops fast on
//! the iPhone's Cortex-A8: NEON `vmlaq_f32` multiply-accumulates over
//! 4-float vectors, loop unrolling/peeling for leftovers (Fig. 3), and an
//! if-conversion that replaces the sign branch of the soft-threshold with
//! arithmetic on comparison masks (Fig. 4). This module is the portable
//! equivalent: every kernel exists in a **scalar** form (the paper's
//! original code, branches included) and an **unrolled, branch-free** form
//! structured in 4-lane blocks with independent accumulators so the
//! compiler's autovectorizer emits SIMD exactly where NEON intrinsics were
//! used on the A8 (deliberately via plain multiply-adds, not `mul_add`:
//! on hosts without guaranteed FMA hardware the latter lowers to a libm
//! call and destroys performance). The `kernel_speedup` bench reproduces
//! the paper's optimized-vs-unoptimized comparison from these two paths.

use cs_dsp::Real;

/// Which kernel implementation a solver should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Straightforward loops with data-dependent branches — the baseline
    /// the paper measured before optimization.
    Scalar,
    /// 4-lane unrolled, branch-free loops with peeled leftovers — the
    /// paper's NEON-style optimized path (default).
    #[default]
    Unrolled4,
}

/// Dot product `Σ aᵢ·bᵢ`.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// use cs_recovery::{dot, KernelMode};
/// let a = [1.0_f32, 2.0, 3.0, 4.0, 5.0];
/// let b = [5.0_f32, 4.0, 3.0, 2.0, 1.0];
/// assert_eq!(dot(&a, &b, KernelMode::Scalar), dot(&a, &b, KernelMode::Unrolled4));
/// ```
pub fn dot<T: Real>(a: &[T], b: &[T], mode: KernelMode) -> T {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match mode {
        KernelMode::Scalar => {
            let mut acc = T::ZERO;
            for (&x, &y) in a.iter().zip(b) {
                acc += x * y;
            }
            acc
        }
        KernelMode::Unrolled4 => {
            // `chunks_exact` gives the compiler fixed-size, bounds-check-
            // free 4-lane blocks — the Rust idiom for the paper's NEON
            // vectors — with independent accumulators to break the FP
            // dependency chain.
            let mut acc = [T::ZERO; 4];
            let ca = a.chunks_exact(4);
            let cb = b.chunks_exact(4);
            let (ra, rb) = (ca.remainder(), cb.remainder());
            for (x, y) in ca.zip(cb) {
                acc[0] += x[0] * y[0];
                acc[1] += x[1] * y[1];
                acc[2] += x[2] * y[2];
                acc[3] += x[3] * y[3];
            }
            // Peeled leftovers (Fig. 3's lane-by-lane tail).
            let mut tail = T::ZERO;
            for (&x, &y) in ra.iter().zip(rb) {
                tail += x * y;
            }
            (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
        }
    }
}

/// In-place `y ← y + alpha·x` (the multiply-accumulate the paper shows as
/// its single-loop example).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy<T: Real>(alpha: T, x: &[T], y: &mut [T], mode: KernelMode) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match mode {
        KernelMode::Scalar => {
            for (yi, &xi) in y.iter_mut().zip(x) {
                *yi += alpha * xi;
            }
        }
        KernelMode::Unrolled4 => {
            let cx = x.chunks_exact(4);
            let rx = cx.remainder();
            let mut cy = y.chunks_exact_mut(4);
            for (xs, ys) in cx.zip(&mut cy) {
                ys[0] += alpha * xs[0];
                ys[1] += alpha * xs[1];
                ys[2] += alpha * xs[2];
                ys[3] += alpha * xs[3];
            }
            for (&xi, yi) in rx.iter().zip(cy.into_remainder()) {
                *yi += alpha * xi;
            }
        }
    }
}

/// Soft thresholding `out[i] = sign(u[i]) · max(|u[i]| − t, 0)` — the prox
/// operator of `λ‖·‖₁` and the kernel the paper if-converts (Fig. 4).
///
/// The scalar path is written exactly like the paper's original code (an
/// `if/else if/else` on the sign); the unrolled path is branch-free,
/// multiplying by the comparison result instead.
///
/// # Panics
///
/// Panics if the slices differ in length or `t` is negative.
pub fn soft_threshold<T: Real>(u: &[T], t: T, out: &mut [T], mode: KernelMode) {
    assert_eq!(u.len(), out.len(), "soft_threshold: length mismatch");
    assert!(t >= T::ZERO, "soft_threshold: negative threshold");
    match mode {
        KernelMode::Scalar => {
            for (o, &ui) in out.iter_mut().zip(u) {
                let mag = ui.abs() - t;
                let mag = if mag > T::ZERO { mag } else { T::ZERO };
                if ui > T::ZERO {
                    *o = mag;
                } else if ui < T::ZERO {
                    *o = -mag;
                } else {
                    *o = T::ZERO;
                }
            }
        }
        KernelMode::Unrolled4 => {
            let cu = u.chunks_exact(4);
            let ru = cu.remainder();
            let mut co = out.chunks_exact_mut(4);
            for (us, os) in cu.zip(&mut co) {
                os[0] = soft_one_branchless(us[0], t);
                os[1] = soft_one_branchless(us[1], t);
                os[2] = soft_one_branchless(us[2], t);
                os[3] = soft_one_branchless(us[3], t);
            }
            for (&ui, oi) in ru.iter().zip(co.into_remainder()) {
                *oi = soft_one_branchless(ui, t);
            }
        }
    }
}

/// Branch-free single-element soft threshold (if-conversion): the shrunk
/// magnitude is clamped via `max`, the sign restored via `copysign` — no
/// data-dependent branch, mirroring the mask arithmetic of Fig. 4.
#[inline]
fn soft_one_branchless<T: Real>(u: T, t: T) -> T {
    (u.abs() - t).max(T::ZERO).copysign(u)
}


/// Weighted soft thresholding: `out[i] = sign(u[i]) · max(|u[i]| − t·w[i], 0)`,
/// the prox of the weighted norm `λ·Σ wᵢ|αᵢ|`. Setting `w = 0` on a
/// subband exempts it from shrinkage — the standard CS-ECG refinement for
/// the coarse approximation band, whose coefficients are large and *not*
/// sparse, so an unweighted ℓ1 penalty biases the baseline.
///
/// # Panics
///
/// Panics if slice lengths differ, `t` is negative, or any weight is
/// negative.
pub fn soft_threshold_weighted<T: Real>(
    u: &[T],
    t: T,
    weights: &[T],
    out: &mut [T],
    mode: KernelMode,
) {
    assert_eq!(u.len(), out.len(), "soft_threshold_weighted: length mismatch");
    assert_eq!(u.len(), weights.len(), "soft_threshold_weighted: weight length mismatch");
    assert!(t >= T::ZERO, "soft_threshold_weighted: negative threshold");
    debug_assert!(weights.iter().all(|&w| w >= T::ZERO));
    match mode {
        KernelMode::Scalar => {
            for ((o, &ui), &wi) in out.iter_mut().zip(u).zip(weights) {
                let mag = ui.abs() - t * wi;
                let mag = if mag > T::ZERO { mag } else { T::ZERO };
                if ui > T::ZERO {
                    *o = mag;
                } else if ui < T::ZERO {
                    *o = -mag;
                } else {
                    *o = T::ZERO;
                }
            }
        }
        KernelMode::Unrolled4 => {
            let cu = u.chunks_exact(4);
            let cw = weights.chunks_exact(4);
            let (ru, rw) = (cu.remainder(), cw.remainder());
            let mut co = out.chunks_exact_mut(4);
            for ((us, ws), os) in cu.zip(cw).zip(&mut co) {
                os[0] = soft_one_branchless(us[0], t * ws[0]);
                os[1] = soft_one_branchless(us[1], t * ws[1]);
                os[2] = soft_one_branchless(us[2], t * ws[2]);
                os[3] = soft_one_branchless(us[3], t * ws[3]);
            }
            for ((&ui, &wi), oi) in ru.iter().zip(rw).zip(co.into_remainder()) {
                *oi = soft_one_branchless(ui, t * wi);
            }
        }
    }
}

/// Group (block) soft thresholding — the prox operator of the group-ℓ1
/// penalty `λ·Σ_g √|g|·‖α_g‖₂` over a contiguous partition of the
/// coefficient vector:
///
/// ```text
///   out_g = u_g · max(1 − t·√|g| / ‖u_g‖₂, 0)
/// ```
///
/// `sizes` gives the group lengths in order; they must tile `u` exactly.
/// The two-pass shape (all group norms into `norms`, then the scaling
/// sweep) keeps the hot loop free of the sqrt/divide and lets the solver
/// reuse one per-group scratch buffer across iterations.
///
/// Size-1 groups are special-cased through the same branch-free scalar
/// soft threshold as [`soft_threshold`] (for `|g| = 1` the group prox
/// *is* the scalar prox), so an all-singleton partition is bit-identical
/// to the plain ℓ1 kernel — the contract the solver's equivalence tests
/// pin down.
///
/// # Panics
///
/// Panics if `t` is negative, `u` and `out` differ in length, `norms` is
/// shorter than `sizes`, any group is empty, or the sizes don't sum to
/// `u.len()`.
pub fn group_soft_threshold<T: Real>(
    u: &[T],
    t: T,
    sizes: &[usize],
    norms: &mut [T],
    out: &mut [T],
    mode: KernelMode,
) {
    assert_eq!(u.len(), out.len(), "group_soft_threshold: length mismatch");
    assert!(t >= T::ZERO, "group_soft_threshold: negative threshold");
    assert!(
        norms.len() >= sizes.len(),
        "group_soft_threshold: norm scratch shorter than group count"
    );
    assert_eq!(
        sizes.iter().sum::<usize>(),
        u.len(),
        "group_soft_threshold: group sizes do not tile the vector"
    );
    // Pass 1: per-group ℓ2 norms (singletons skip the sqrt entirely).
    let mut start = 0usize;
    for (g, &len) in sizes.iter().enumerate() {
        assert!(len > 0, "group_soft_threshold: empty group");
        if len > 1 {
            let block = &u[start..start + len];
            norms[g] = dot(block, block, mode).sqrt();
        }
        start += len;
    }
    // Pass 2: scale each group by its shrink factor.
    let mut start = 0usize;
    for (g, &len) in sizes.iter().enumerate() {
        if len == 1 {
            out[start] = soft_one_branchless(u[start], t);
            start += 1;
            continue;
        }
        let tg = t * T::from_f64(len as f64).sqrt();
        // ‖u_g‖ = 0 ⇒ tg/0 is inf (or NaN at t = 0); `max` ignores the
        // NaN and both cases land on scale 0 — a zero group stays zero.
        let scale = (T::ONE - tg / norms[g]).max(T::ZERO);
        let block = &u[start..start + len];
        let ob = &mut out[start..start + len];
        match mode {
            KernelMode::Scalar => {
                for (o, &ui) in ob.iter_mut().zip(block) {
                    *o = ui * scale;
                }
            }
            KernelMode::Unrolled4 => {
                let cu = block.chunks_exact(4);
                let ru = cu.remainder();
                let mut co = ob.chunks_exact_mut(4);
                for (us, os) in cu.zip(&mut co) {
                    os[0] = us[0] * scale;
                    os[1] = us[1] * scale;
                    os[2] = us[2] * scale;
                    os[3] = us[3] * scale;
                }
                for (&ui, oi) in ru.iter().zip(co.into_remainder()) {
                    *oi = ui * scale;
                }
            }
        }
        start += len;
    }
}

/// FISTA's momentum combination `out = a + beta·(a − a_prev)` (Eq. 6).
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn momentum_combine<T: Real>(
    a: &[T],
    a_prev: &[T],
    beta: T,
    out: &mut [T],
    mode: KernelMode,
) {
    assert_eq!(a.len(), a_prev.len(), "momentum_combine: length mismatch");
    assert_eq!(a.len(), out.len(), "momentum_combine: length mismatch");
    match mode {
        KernelMode::Scalar => {
            for i in 0..a.len() {
                out[i] = a[i] + beta * (a[i] - a_prev[i]);
            }
        }
        KernelMode::Unrolled4 => {
            let ca = a.chunks_exact(4);
            let cp = a_prev.chunks_exact(4);
            let (ra, rp) = (ca.remainder(), cp.remainder());
            let mut co = out.chunks_exact_mut(4);
            for ((xs, ps), os) in ca.zip(cp).zip(&mut co) {
                os[0] = xs[0] + beta * (xs[0] - ps[0]);
                os[1] = xs[1] + beta * (xs[1] - ps[1]);
                os[2] = xs[2] + beta * (xs[2] - ps[2]);
                os[3] = xs[3] + beta * (xs[3] - ps[3]);
            }
            for ((&xi, &pi), oi) in ra.iter().zip(rp).zip(co.into_remainder()) {
                *oi = xi + beta * (xi - pi);
            }
        }
    }
}

/// Squared Euclidean distance `‖a − b‖²` (used by stopping criteria).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn squared_distance<T: Real>(a: &[T], b: &[T], mode: KernelMode) -> T {
    assert_eq!(a.len(), b.len(), "squared_distance: length mismatch");
    match mode {
        KernelMode::Scalar => {
            let mut acc = T::ZERO;
            for (&x, &y) in a.iter().zip(b) {
                let d = x - y;
                acc += d * d;
            }
            acc
        }
        KernelMode::Unrolled4 => {
            let mut acc = [T::ZERO; 4];
            let ca = a.chunks_exact(4);
            let cb = b.chunks_exact(4);
            let (ra, rb) = (ca.remainder(), cb.remainder());
            for (xs, ys) in ca.zip(cb) {
                let d0 = xs[0] - ys[0];
                let d1 = xs[1] - ys[1];
                let d2 = xs[2] - ys[2];
                let d3 = xs[3] - ys[3];
                acc[0] += d0 * d0;
                acc[1] += d1 * d1;
                acc[2] += d2 * d2;
                acc[3] += d3 * d3;
            }
            let mut tail = T::ZERO;
            for (&x, &y) in ra.iter().zip(rb) {
                let d = x - y;
                tail += d * d;
            }
            (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        (a, b)
    }

    #[test]
    fn modes_agree_on_all_kernels() {
        // Lengths chosen to exercise the leftover-peeling paths: multiples
        // of 4, plus every residue class (Fig. 3's A ∈ {1, 2, 3}).
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 512, 513] {
            let (a, b) = vecs(n);
            assert!(
                (dot(&a, &b, KernelMode::Scalar) - dot(&a, &b, KernelMode::Unrolled4)).abs()
                    < 1e-9,
                "dot n={n}"
            );
            let mut y1 = b.clone();
            let mut y2 = b.clone();
            axpy(1.5, &a, &mut y1, KernelMode::Scalar);
            axpy(1.5, &a, &mut y2, KernelMode::Unrolled4);
            assert_eq!(y1, y2, "axpy n={n}");

            let mut s1 = vec![0.0; n];
            let mut s2 = vec![0.0; n];
            soft_threshold(&a, 1.0, &mut s1, KernelMode::Scalar);
            soft_threshold(&a, 1.0, &mut s2, KernelMode::Unrolled4);
            assert_eq!(s1, s2, "soft n={n}");

            let mut m1 = vec![0.0; n];
            let mut m2 = vec![0.0; n];
            momentum_combine(&a, &b, 0.7, &mut m1, KernelMode::Scalar);
            momentum_combine(&a, &b, 0.7, &mut m2, KernelMode::Unrolled4);
            for (u, v) in m1.iter().zip(&m2) {
                assert!((u - v).abs() < 1e-12, "momentum n={n}");
            }

            assert!(
                (squared_distance(&a, &b, KernelMode::Scalar)
                    - squared_distance(&a, &b, KernelMode::Unrolled4))
                .abs()
                    < 1e-9,
                "sqdist n={n}"
            );
        }
    }

    #[test]
    fn soft_threshold_semantics() {
        let u = [3.0_f64, -3.0, 0.5, -0.5, 0.0, 1.0];
        let mut out = [0.0; 6];
        soft_threshold(&u, 1.0, &mut out, KernelMode::Unrolled4);
        assert_eq!(out, [2.0, -2.0, 0.0, -0.0, 0.0, 0.0]);
        // Exact-threshold input maps to zero.
        let mut o2 = [0.0; 6];
        soft_threshold(&u, 3.0, &mut o2, KernelMode::Scalar);
        assert!(o2.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn soft_threshold_is_prox_of_l1() {
        // prox property: v = soft(u, t) minimizes ½(x−u)² + t|x|, so for a
        // few candidate x the objective at v must be no larger.
        let t = 0.8;
        for &u in &[-2.3_f64, -0.4, 0.0, 0.9, 5.0] {
            let mut v = [0.0];
            soft_threshold(&[u], t, &mut v, KernelMode::Unrolled4);
            let obj = |x: f64| 0.5 * (x - u) * (x - u) + t * x.abs();
            for x in [-3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, u, v[0]] {
                assert!(obj(v[0]) <= obj(x) + 1e-12, "u={u}, v={}, x={x}", v[0]);
            }
        }
    }

    #[test]
    fn weighted_threshold_modes_agree_and_respect_weights() {
        let u: Vec<f64> = (0..37).map(|i| (i as f64 - 18.0) * 0.3).collect();
        let w: Vec<f64> = (0..37).map(|i| if i < 8 { 0.0 } else { 1.0 }).collect();
        let mut a = vec![0.0; 37];
        let mut b = vec![0.0; 37];
        soft_threshold_weighted(&u, 1.0, &w, &mut a, KernelMode::Scalar);
        soft_threshold_weighted(&u, 1.0, &w, &mut b, KernelMode::Unrolled4);
        assert_eq!(a, b);
        // Zero-weight coefficients pass through untouched.
        for i in 0..8 {
            assert_eq!(a[i], u[i]);
        }
        // Unit-weight coefficients match the unweighted kernel.
        let mut c = vec![0.0; 37];
        soft_threshold(&u, 1.0, &mut c, KernelMode::Unrolled4);
        for i in 8..37 {
            assert_eq!(a[i], c[i]);
        }
    }

    #[test]
    fn group_threshold_modes_agree() {
        for (n, sizes) in [
            (12, vec![4usize, 4, 4]),
            (13, vec![1, 4, 3, 5]),
            (16, vec![16]),
            (7, vec![1, 1, 1, 1, 1, 1, 1]),
        ] {
            let u: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
            let mut norms = vec![0.0; sizes.len()];
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            group_soft_threshold(&u, 0.7, &sizes, &mut norms, &mut a, KernelMode::Scalar);
            group_soft_threshold(&u, 0.7, &sizes, &mut norms, &mut b, KernelMode::Unrolled4);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn singleton_groups_are_bitwise_plain_soft_threshold() {
        let u: Vec<f64> = (0..41).map(|i| (i as f64 * 0.61).sin() * 3.0).collect();
        let sizes = vec![1usize; 41];
        let mut norms = vec![0.0; 41];
        for mode in [KernelMode::Scalar, KernelMode::Unrolled4] {
            let mut g = vec![0.0; 41];
            let mut p = vec![0.0; 41];
            group_soft_threshold(&u, 1.3, &sizes, &mut norms, &mut g, mode);
            soft_threshold(&u, 1.3, &mut p, mode);
            for (x, y) in g.iter().zip(&p) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn group_threshold_is_prox_of_group_norm() {
        // prox property per group: v minimizes ½‖x−u‖² + t·√|g|·‖x‖₂, so a
        // handful of candidate scalings of u (the minimizer is collinear
        // with u) must not beat it.
        let u = [3.0_f64, -1.0, 2.0, 0.5];
        let t = 0.9;
        let mut norms = [0.0];
        let mut v = [0.0; 4];
        group_soft_threshold(&u, t, &[4], &mut norms, &mut v, KernelMode::Unrolled4);
        let tg = t * 2.0; // √4
        let obj = |x: &[f64]| {
            let d: f64 = x.iter().zip(&u).map(|(a, b)| (a - b) * (a - b)).sum();
            let nx: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
            0.5 * d + tg * nx
        };
        for s in [-0.5, 0.0, 0.3, 0.7, 1.0, 1.5] {
            let cand: Vec<f64> = u.iter().map(|&x| x * s).collect();
            assert!(obj(&v) <= obj(&cand) + 1e-12, "s={s}");
        }
    }

    #[test]
    fn group_threshold_kills_small_groups_and_keeps_large() {
        let u = [0.1_f64, -0.1, 10.0, -8.0];
        let mut norms = [0.0, 0.0];
        let mut out = [0.0; 4];
        group_soft_threshold(&u, 1.0, &[2, 2], &mut norms, &mut out, KernelMode::Scalar);
        // ‖(0.1,−0.1)‖ ≈ 0.14 < √2 ⇒ group zeroed.
        assert_eq!(&out[..2], &[0.0, -0.0]);
        // Large group survives with direction preserved.
        assert!(out[2] > 0.0 && out[3] < 0.0);
        assert!((out[2] / out[3] - u[2] / u[3]).abs() < 1e-12);
    }

    #[test]
    fn group_threshold_zero_group_stays_zero_even_at_zero_threshold() {
        let u = [0.0_f64, 0.0, 0.0];
        let mut norms = [0.0];
        let mut out = [1.0; 3];
        group_soft_threshold(&u, 0.0, &[3], &mut norms, &mut out, KernelMode::Unrolled4);
        assert_eq!(out, [0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "group sizes do not tile")]
    fn group_threshold_bad_partition_panics() {
        let mut norms = [0.0];
        let mut out = [0.0_f64; 4];
        group_soft_threshold(&[1.0; 4], 0.5, &[3], &mut norms, &mut out, KernelMode::Scalar);
    }

    #[test]
    fn momentum_zero_beta_is_identity() {
        let (a, b) = vecs(17);
        let mut out = vec![0.0; 17];
        momentum_combine(&a, &b, 0.0, &mut out, KernelMode::Unrolled4);
        assert_eq!(out, a);
    }

    #[test]
    #[should_panic(expected = "negative threshold")]
    fn negative_threshold_panics() {
        let mut out = [0.0_f64];
        soft_threshold(&[1.0], -0.1, &mut out, KernelMode::Scalar);
    }

    proptest! {
        #[test]
        fn prop_dot_matches_reference(
            a in proptest::collection::vec(-10.0_f64..10.0, 1..100),
            mode in prop_oneof![Just(KernelMode::Scalar), Just(KernelMode::Unrolled4)],
        ) {
            let b: Vec<f64> = a.iter().map(|v| v * 0.5 - 1.0).collect();
            let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            prop_assert!((dot(&a, &b, mode) - reference).abs() < 1e-9);
        }

        #[test]
        fn prop_soft_threshold_shrinks(u in -100.0_f64..100.0, t in 0.0_f64..10.0) {
            let mut out = [0.0];
            soft_threshold(&[u], t, &mut out, KernelMode::Unrolled4);
            prop_assert!(out[0].abs() <= u.abs());
            prop_assert!(out[0] * u >= 0.0); // sign preserved or zero
            prop_assert!((u.abs() - out[0].abs() - t.min(u.abs())).abs() < 1e-12);
        }
    }
}
