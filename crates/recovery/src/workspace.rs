//! Reusable scratch buffers for the operator hot path.
//!
//! Every [`LinearOperator`](crate::LinearOperator) application inside the
//! FISTA inner loop needs transient signal-domain and measurement-domain
//! buffers (the DWT filter-bank ping-pong, the deflated copy of `y`).
//! Allocating them per call costs ~4 heap round-trips per iteration —
//! ~8000 for a 2000-iteration solve. A [`Workspace`] owns those buffers
//! once and is threaded through `apply_into_ws`/`adjoint_into_ws` so a
//! whole solve (and, in the fleet decoder, a whole worker lifetime)
//! reuses the same memory.
//!
//! Buffers only ever grow: [`Workspace::ensure`] is idempotent once the
//! workspace has seen the largest geometry it will serve, so steady-state
//! use performs zero allocations.

use cs_dsp::Real;
use std::time::Duration;

/// Scratch buffers sized for one operator geometry (`m` rows × `n` cols).
///
/// The three buffers cover every transient the matrix-free chain needs:
///
/// * `signal` — a signal-domain (length-`n`) intermediate, e.g. the
///   synthesized signal between `Ψᵀ` and `Φ`;
/// * `scratch` — the DWT filter-bank ping-pong buffer (length `n`);
/// * `measure` — a measurement-domain (length-`m`) intermediate, e.g. the
///   deflected copy of `y` in
///   [`DeflatedOperator`](crate::DeflatedOperator)'s adjoint.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{Dwt, Wavelet};
/// use cs_recovery::{LinearOperator, SynthesisOperator, Workspace};
/// use cs_sensing::SparseBinarySensing;
///
/// let dwt: Dwt<f64> = Dwt::new(&Wavelet::daubechies(4)?, 128, 3)?;
/// let phi = SparseBinarySensing::new(64, 128, 8, 1)?;
/// let a = SynthesisOperator::new(&phi, &dwt);
/// let mut ws = Workspace::for_operator(&a);
/// let x = vec![0.25; 128];
/// let mut y = vec![0.0; 64];
/// a.apply_into_ws(&x, &mut y, &mut ws); // no allocation inside
/// assert_eq!(y, a.apply(&x));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace<T: Real> {
    pub(crate) signal: Vec<T>,
    pub(crate) scratch: Vec<T>,
    pub(crate) measure: Vec<T>,
}

impl<T: Real> Workspace<T> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace { signal: Vec::new(), scratch: Vec::new(), measure: Vec::new() }
    }

    /// A workspace pre-sized for an `rows × cols` operator.
    pub fn with_dims(rows: usize, cols: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(rows, cols);
        ws
    }

    /// A workspace pre-sized for `op`'s geometry.
    pub fn for_operator<A: crate::LinearOperator<T>>(op: &A) -> Self {
        Self::with_dims(op.rows(), op.cols())
    }

    /// Grows the buffers (never shrinks) to serve an `rows × cols`
    /// operator. Idempotent once the largest geometry has been seen.
    pub fn ensure(&mut self, rows: usize, cols: usize) {
        self.ensure_cols(cols);
        if self.measure.len() < rows {
            self.measure.resize(rows, T::ZERO);
        }
    }

    /// Grows only the signal-side buffers. Operators that never touch the
    /// measurement buffer use this so they don't re-grow `measure` while a
    /// wrapper (e.g. `DeflatedOperator`'s adjoint) has temporarily taken
    /// it out.
    pub(crate) fn ensure_cols(&mut self, cols: usize) {
        if self.signal.len() < cols {
            self.signal.resize(cols, T::ZERO);
        }
        if self.scratch.len() < cols {
            self.scratch.resize(cols, T::ZERO);
        }
    }
}

/// Reusable state for a whole shrinkage solve: the five iteration buffers
/// plus an operator [`Workspace`].
///
/// One `FistaWorkspace` serves any number of consecutive solves of the
/// same (or smaller) geometry with zero allocations — except the solution
/// vector, which moves out in [`SolverResult`](crate::SolverResult). To
/// close that loop, hand a no-longer-needed solution (e.g. the previous
/// packet's warm-start vector once replaced) back via
/// [`FistaWorkspace::recycle_solution`]; the fleet decoder ping-pongs the
/// two and reaches a true steady state.
///
/// # Examples
///
/// ```
/// use cs_recovery::{fista_warm, fista_warm_ws, DenseOperator, FistaWorkspace,
///                   KernelMode, LinearOperator, ShrinkageConfig};
///
/// let a = DenseOperator::from_row_major(
///     2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, -1.0], KernelMode::Scalar);
/// let y = a.apply(&[1.0, -2.0, 0.5]);
/// let cfg = ShrinkageConfig::new(1e-3);
/// let mut ws = FistaWorkspace::for_operator(&a);
/// let with_ws = fista_warm_ws(&a, &y, &cfg, None, None, &mut ws);
/// let without = fista_warm(&a, &y, &cfg, None, None);
/// assert_eq!(with_ws.solution, without.solution); // bitwise identical
/// ws.recycle_solution(with_ws.solution);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FistaWorkspace<T: Real> {
    /// Spare slot the next solve's iterate is carved from; empty after a
    /// solve until a solution is recycled.
    pub(crate) alpha: Vec<T>,
    pub(crate) alpha_prev: Vec<T>,
    pub(crate) point: Vec<T>,
    pub(crate) grad: Vec<T>,
    pub(crate) residual: Vec<T>,
    /// Per-group norm scratch for the block (group-ℓ1) prox; empty until
    /// the first group solve, then sized to the group count and reused.
    pub(crate) group_norms: Vec<T>,
    pub(crate) op_ws: Workspace<T>,
}

impl<T: Real> FistaWorkspace<T> {
    /// An empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for an `rows × cols` operator, so even the
    /// first solve allocates nothing.
    pub fn with_dims(rows: usize, cols: usize) -> Self {
        FistaWorkspace {
            alpha: vec![T::ZERO; cols],
            alpha_prev: vec![T::ZERO; cols],
            point: vec![T::ZERO; cols],
            grad: vec![T::ZERO; cols],
            residual: vec![T::ZERO; rows],
            group_norms: Vec::new(),
            op_ws: Workspace::with_dims(rows, cols),
        }
    }

    /// A workspace pre-sized for `op`'s geometry.
    pub fn for_operator<A: crate::LinearOperator<T>>(op: &A) -> Self {
        Self::with_dims(op.rows(), op.cols())
    }

    /// The inner operator workspace, for callers that apply the operator
    /// outside the solve loop (e.g. the decoder's warm-start safeguard).
    pub fn operator_workspace(&mut self) -> &mut Workspace<T> {
        &mut self.op_ws
    }

    /// Returns a retired solution vector to the buffer pool, so the next
    /// solve's iterate reuses its storage instead of allocating.
    pub fn recycle_solution(&mut self, solution: Vec<T>) {
        if solution.capacity() > self.alpha.capacity() {
            self.alpha = solution;
        }
    }
}

/// Column-block (MMV) generalization of [`FistaWorkspace`]: all state for
/// a K-lane batched shrinkage solve
/// ([`fista_warm_batch_ws`](crate::fista_warm_batch_ws)).
///
/// Iteration blocks are **lane-major**: lane `l`'s coefficients occupy
/// `[l·n .. (l+1)·n]` of each signal-side block and `[l·m .. (l+1)·m]` of
/// each measurement-side block, so per-lane kernels run on contiguous
/// slices. The solver freezes converged lanes by swapping their slices to
/// the back of the active prefix; `slot_of_lane` tracks where each staged
/// lane currently lives, and every accessor resolves through it, so
/// callers always address lanes by the index [`BatchWorkspace::stage_lane`]
/// returned.
///
/// Like [`Workspace`], buffers only ever grow: once the workspace has seen
/// its widest batch and largest geometry, staging and solving perform zero
/// heap allocations.
///
/// # Examples
///
/// ```
/// use cs_recovery::{fista_warm_batch_ws, fista_warm_ws, BatchWorkspace,
///                   DenseOperator, FistaWorkspace, KernelMode, LinearOperator,
///                   ShrinkageConfig};
///
/// let a = DenseOperator::from_row_major(
///     2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, -1.0], KernelMode::Scalar);
/// let ys = [a.apply(&[1.0, -2.0, 0.5]), a.apply(&[-0.3, 0.8, 0.0])];
/// let cfg = ShrinkageConfig::new(1e-3);
///
/// let mut bws = BatchWorkspace::for_operator(&a, 2);
/// bws.begin(a.rows(), a.cols());
/// for y in &ys {
///     bws.stage_lane(y, None);
/// }
/// fista_warm_batch_ws(&a, &[cfg.clone(), cfg.clone()], None, None, &mut bws);
///
/// // Each lane is bitwise identical to its own sequential solve.
/// let mut ws = FistaWorkspace::for_operator(&a);
/// for (lane, y) in ys.iter().enumerate() {
///     let seq = fista_warm_ws(&a, y, &cfg, None, None, &mut ws);
///     assert_eq!(bws.solution(lane), &seq.solution[..]);
///     assert_eq!(bws.iterations(lane), seq.iterations);
///     ws.recycle_solution(seq.solution);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace<T: Real> {
    /// Operator geometry of the staged batch.
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Number of staged lanes.
    pub(crate) lanes: usize,
    /// Staged measurements, lane-major `lanes × rows`. Swapped alongside
    /// the iterate blocks when lanes freeze.
    pub(crate) y: Vec<T>,
    /// Iterate block; holds each lane's solution after the solve.
    pub(crate) alpha: Vec<T>,
    pub(crate) alpha_prev: Vec<T>,
    pub(crate) point: Vec<T>,
    pub(crate) grad: Vec<T>,
    pub(crate) residual: Vec<T>,
    /// `slot_of_lane[lane]` = block slot the staged lane currently
    /// occupies; `lane_of_slot` is its inverse.
    pub(crate) slot_of_lane: Vec<usize>,
    pub(crate) lane_of_slot: Vec<usize>,
    /// Per-slot freeze markers for the current iteration's compaction pass.
    pub(crate) freeze: Vec<bool>,
    /// Per-lane results (lane-indexed, *not* slot-indexed).
    pub(crate) iterations: Vec<usize>,
    pub(crate) converged: Vec<bool>,
    pub(crate) residual_norm: Vec<T>,
    /// Per-lane precomputed `residual_tolerance · ‖y‖` targets.
    pub(crate) residual_target: Vec<T>,
    /// Per-lane soft-threshold levels `λ/L`.
    pub(crate) threshold: Vec<T>,
    /// Per-lane FISTA momentum scalars `t_k` (lane-indexed). Without
    /// adaptive restart every lane's sequence is identical; with it, a
    /// restarting lane resets its own `t` without disturbing batchmates.
    pub(crate) momentum: Vec<T>,
    /// Per-group norm scratch for the block prox (shared across lanes —
    /// the prox sweep is per-slot sequential).
    pub(crate) group_norms: Vec<T>,
    /// Wall-clock time of the whole batched solve.
    pub(crate) elapsed: Duration,
    pub(crate) op_ws: Workspace<T>,
}

impl<T: Real> BatchWorkspace<T> {
    /// An empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for `k` lanes of an `rows × cols` operator,
    /// so even the first batched solve allocates nothing.
    pub fn with_dims(rows: usize, cols: usize, k: usize) -> Self {
        let mut ws = Self::new();
        ws.reserve(rows, cols, k);
        ws.begin(rows, cols);
        ws
    }

    /// A workspace pre-sized for `k` lanes of `op`'s geometry.
    pub fn for_operator<A: crate::LinearOperator<T>>(op: &A, k: usize) -> Self {
        Self::with_dims(op.rows(), op.cols(), k)
    }

    /// Grows every buffer (never shrinks) to hold `k` lanes of an
    /// `rows × cols` geometry. Idempotent once the widest batch has been
    /// seen.
    pub fn reserve(&mut self, rows: usize, cols: usize, k: usize) {
        grow(&mut self.y, rows * k);
        grow(&mut self.alpha, cols * k);
        grow(&mut self.alpha_prev, cols * k);
        grow(&mut self.point, cols * k);
        grow(&mut self.grad, cols * k);
        grow(&mut self.residual, rows * k);
        if self.slot_of_lane.capacity() < k {
            self.slot_of_lane.reserve(k - self.slot_of_lane.capacity());
        }
        if self.lane_of_slot.capacity() < k {
            self.lane_of_slot.reserve(k - self.lane_of_slot.capacity());
        }
        if self.freeze.len() < k {
            self.freeze.resize(k, false);
        }
        if self.iterations.len() < k {
            self.iterations.resize(k, 0);
        }
        if self.converged.len() < k {
            self.converged.resize(k, false);
        }
        grow(&mut self.residual_norm, k);
        grow(&mut self.residual_target, k);
        grow(&mut self.threshold, k);
        grow(&mut self.momentum, k);
        self.op_ws.ensure(rows, cols * k);
    }

    /// Starts staging a fresh batch for an `rows × cols` operator,
    /// discarding any previously staged lanes. Capacity is preserved, so a
    /// warmed workspace re-begins without allocating.
    pub fn begin(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.lanes = 0;
        self.y.clear();
        self.alpha.clear();
        self.slot_of_lane.clear();
        self.lane_of_slot.clear();
        self.elapsed = Duration::ZERO;
    }

    /// Stages one lane's measurements (and optional warm-start coefficient
    /// vector — `None` seeds zeros, exactly like the sequential solver) and
    /// returns the lane index all post-solve accessors use.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from the geometry given to
    /// [`BatchWorkspace::begin`], or a warm vector's length differs from
    /// `cols`.
    pub fn stage_lane(&mut self, y: &[T], warm: Option<&[T]>) -> usize {
        assert_eq!(y.len(), self.rows, "stage_lane: y length mismatch");
        let lane = self.lanes;
        self.y.extend_from_slice(y);
        match warm {
            Some(w) => {
                assert_eq!(w.len(), self.cols, "stage_lane: warm length mismatch");
                self.alpha.extend_from_slice(w);
            }
            None => self.alpha.resize((lane + 1) * self.cols, T::ZERO),
        }
        self.slot_of_lane.push(lane);
        self.lane_of_slot.push(lane);
        self.lanes += 1;
        lane
    }

    /// Number of lanes staged in the current batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lane `lane`'s solution after a solve (borrow of the workspace —
    /// copy it out before re-staging).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes()`.
    pub fn solution(&self, lane: usize) -> &[T] {
        let s = self.slot_of_lane[lane];
        &self.alpha[s * self.cols..(s + 1) * self.cols]
    }

    /// Iterations lane `lane` ran before freezing (its exact sequential
    /// count — batchmates don't inflate it).
    pub fn iterations(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "iterations: lane out of range");
        self.iterations[lane]
    }

    /// Whether lane `lane` met its convergence criterion.
    pub fn converged(&self, lane: usize) -> bool {
        assert!(lane < self.lanes, "converged: lane out of range");
        self.converged[lane]
    }

    /// Final data-fit residual norm `‖Aα − y‖₂` for lane `lane`.
    pub fn residual_norm(&self, lane: usize) -> T {
        assert!(lane < self.lanes, "residual_norm: lane out of range");
        self.residual_norm[lane]
    }

    /// Wall-clock time of the whole batched solve (shared by all lanes).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The inner operator workspace, for callers that apply the operator
    /// outside the solve loop.
    pub fn operator_workspace(&mut self) -> &mut Workspace<T> {
        &mut self.op_ws
    }
}

/// Capacity-preserving grow-to-at-least: `clear + resize` would zero live
/// content, so plain `resize` is used — callers re-fill what they read.
fn grow<T: Real>(v: &mut Vec<T>, len: usize) {
    if v.len() < len {
        v.resize(len, T::ZERO);
    }
}
