//! Reusable scratch buffers for the operator hot path.
//!
//! Every [`LinearOperator`](crate::LinearOperator) application inside the
//! FISTA inner loop needs transient signal-domain and measurement-domain
//! buffers (the DWT filter-bank ping-pong, the deflated copy of `y`).
//! Allocating them per call costs ~4 heap round-trips per iteration —
//! ~8000 for a 2000-iteration solve. A [`Workspace`] owns those buffers
//! once and is threaded through `apply_into_ws`/`adjoint_into_ws` so a
//! whole solve (and, in the fleet decoder, a whole worker lifetime)
//! reuses the same memory.
//!
//! Buffers only ever grow: [`Workspace::ensure`] is idempotent once the
//! workspace has seen the largest geometry it will serve, so steady-state
//! use performs zero allocations.

use cs_dsp::Real;

/// Scratch buffers sized for one operator geometry (`m` rows × `n` cols).
///
/// The three buffers cover every transient the matrix-free chain needs:
///
/// * `signal` — a signal-domain (length-`n`) intermediate, e.g. the
///   synthesized signal between `Ψᵀ` and `Φ`;
/// * `scratch` — the DWT filter-bank ping-pong buffer (length `n`);
/// * `measure` — a measurement-domain (length-`m`) intermediate, e.g. the
///   deflected copy of `y` in
///   [`DeflatedOperator`](crate::DeflatedOperator)'s adjoint.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{Dwt, Wavelet};
/// use cs_recovery::{LinearOperator, SynthesisOperator, Workspace};
/// use cs_sensing::SparseBinarySensing;
///
/// let dwt: Dwt<f64> = Dwt::new(&Wavelet::daubechies(4)?, 128, 3)?;
/// let phi = SparseBinarySensing::new(64, 128, 8, 1)?;
/// let a = SynthesisOperator::new(&phi, &dwt);
/// let mut ws = Workspace::for_operator(&a);
/// let x = vec![0.25; 128];
/// let mut y = vec![0.0; 64];
/// a.apply_into_ws(&x, &mut y, &mut ws); // no allocation inside
/// assert_eq!(y, a.apply(&x));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace<T: Real> {
    pub(crate) signal: Vec<T>,
    pub(crate) scratch: Vec<T>,
    pub(crate) measure: Vec<T>,
}

impl<T: Real> Workspace<T> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace { signal: Vec::new(), scratch: Vec::new(), measure: Vec::new() }
    }

    /// A workspace pre-sized for an `rows × cols` operator.
    pub fn with_dims(rows: usize, cols: usize) -> Self {
        let mut ws = Self::new();
        ws.ensure(rows, cols);
        ws
    }

    /// A workspace pre-sized for `op`'s geometry.
    pub fn for_operator<A: crate::LinearOperator<T>>(op: &A) -> Self {
        Self::with_dims(op.rows(), op.cols())
    }

    /// Grows the buffers (never shrinks) to serve an `rows × cols`
    /// operator. Idempotent once the largest geometry has been seen.
    pub fn ensure(&mut self, rows: usize, cols: usize) {
        self.ensure_cols(cols);
        if self.measure.len() < rows {
            self.measure.resize(rows, T::ZERO);
        }
    }

    /// Grows only the signal-side buffers. Operators that never touch the
    /// measurement buffer use this so they don't re-grow `measure` while a
    /// wrapper (e.g. `DeflatedOperator`'s adjoint) has temporarily taken
    /// it out.
    pub(crate) fn ensure_cols(&mut self, cols: usize) {
        if self.signal.len() < cols {
            self.signal.resize(cols, T::ZERO);
        }
        if self.scratch.len() < cols {
            self.scratch.resize(cols, T::ZERO);
        }
    }
}

/// Reusable state for a whole shrinkage solve: the five iteration buffers
/// plus an operator [`Workspace`].
///
/// One `FistaWorkspace` serves any number of consecutive solves of the
/// same (or smaller) geometry with zero allocations — except the solution
/// vector, which moves out in [`SolverResult`](crate::SolverResult). To
/// close that loop, hand a no-longer-needed solution (e.g. the previous
/// packet's warm-start vector once replaced) back via
/// [`FistaWorkspace::recycle_solution`]; the fleet decoder ping-pongs the
/// two and reaches a true steady state.
///
/// # Examples
///
/// ```
/// use cs_recovery::{fista_warm, fista_warm_ws, DenseOperator, FistaWorkspace,
///                   KernelMode, LinearOperator, ShrinkageConfig};
///
/// let a = DenseOperator::from_row_major(
///     2, 3, vec![1.0, 0.0, 1.0, 0.0, 1.0, -1.0], KernelMode::Scalar);
/// let y = a.apply(&[1.0, -2.0, 0.5]);
/// let cfg = ShrinkageConfig::new(1e-3);
/// let mut ws = FistaWorkspace::for_operator(&a);
/// let with_ws = fista_warm_ws(&a, &y, &cfg, None, None, &mut ws);
/// let without = fista_warm(&a, &y, &cfg, None, None);
/// assert_eq!(with_ws.solution, without.solution); // bitwise identical
/// ws.recycle_solution(with_ws.solution);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FistaWorkspace<T: Real> {
    /// Spare slot the next solve's iterate is carved from; empty after a
    /// solve until a solution is recycled.
    pub(crate) alpha: Vec<T>,
    pub(crate) alpha_prev: Vec<T>,
    pub(crate) point: Vec<T>,
    pub(crate) grad: Vec<T>,
    pub(crate) residual: Vec<T>,
    pub(crate) op_ws: Workspace<T>,
}

impl<T: Real> FistaWorkspace<T> {
    /// An empty workspace; buffers grow on first solve.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for an `rows × cols` operator, so even the
    /// first solve allocates nothing.
    pub fn with_dims(rows: usize, cols: usize) -> Self {
        FistaWorkspace {
            alpha: vec![T::ZERO; cols],
            alpha_prev: vec![T::ZERO; cols],
            point: vec![T::ZERO; cols],
            grad: vec![T::ZERO; cols],
            residual: vec![T::ZERO; rows],
            op_ws: Workspace::with_dims(rows, cols),
        }
    }

    /// A workspace pre-sized for `op`'s geometry.
    pub fn for_operator<A: crate::LinearOperator<T>>(op: &A) -> Self {
        Self::with_dims(op.rows(), op.cols())
    }

    /// The inner operator workspace, for callers that apply the operator
    /// outside the solve loop (e.g. the decoder's warm-start safeguard).
    pub fn operator_workspace(&mut self) -> &mut Workspace<T> {
        &mut self.op_ws
    }

    /// Returns a retired solution vector to the buffer pool, so the next
    /// solve's iterate reuses its storage instead of allocating.
    pub fn recycle_solution(&mut self, solution: Vec<T>) {
        if solution.capacity() > self.alpha.capacity() {
            self.alpha = solution;
        }
    }
}
