//! # cs-recovery — sparse-recovery solvers for the CS-ECG decoder
//!
//! The coordinator reconstructs each 2-second ECG packet by solving the
//! paper's Eq. (3), `min_α ‖ΦΨᵀα − y‖² + λ‖α‖₁`, with **FISTA** (Beck &
//! Teboulle's constant-step variant, reproduced verbatim from the paper's
//! algorithm box). This crate provides:
//!
//! * [`SynthesisOperator`] — the matrix-free `A = Φ·Ψᵀ` composition
//!   (contribution 1 of the paper: no dense matrix is ever formed), and
//!   [`DenseOperator`] as the explicit-matrix baseline;
//! * [`fista`] / [`ista`] — the accelerated `O(1/k²)` solver and its
//!   `O(1/k)` predecessor, generic over `f32`/`f64` (Fig. 6's precision
//!   study runs the *same* code at both widths);
//! * [`omp`] — the greedy baseline from the related-work comparison;
//! * [`KernelMode`] — scalar vs unrolled/branch-free inner loops, the
//!   portable analogue of the paper's NEON vectorization (§IV-B2);
//! * [`operator_norm`] / [`lipschitz_constant`] — power-iteration step-size
//!   estimation.
//!
//! ## Example: recover a sparse vector
//!
//! ```
//! use cs_dsp::wavelet::{Dwt, Wavelet};
//! use cs_recovery::{fista, LinearOperator, ShrinkageConfig, SynthesisOperator};
//! use cs_sensing::{Sensing, SparseBinarySensing};
//!
//! // A signal that is 3-sparse in the Haar basis.
//! let dwt: Dwt<f64> = Dwt::new(&Wavelet::haar(), 64, 3)?;
//! let mut alpha = vec![0.0; 64];
//! alpha[0] = 4.0;
//! alpha[5] = -2.0;
//! alpha[20] = 1.0;
//! let x = dwt.synthesize(&alpha);
//!
//! // Measure with the paper's sparse binary Φ at 50 % compression.
//! let phi = SparseBinarySensing::new(32, 64, 8, 9)?;
//! let y: Vec<f64> = phi.apply(x.as_slice());
//!
//! // Solve Eq. (3) and compare.
//! let a = SynthesisOperator::new(&phi, &dwt);
//! let config = ShrinkageConfig {
//!     tolerance: 1e-7,
//!     max_iterations: 5000,
//!     ..ShrinkageConfig::new(1e-4)
//! };
//! let result = fista(&a, &y, &config, None);
//! let recovered = dwt.synthesize(&result.solution);
//! let err: f64 = x.iter().zip(&recovered).map(|(u, v)| (u - v).powi(2)).sum::<f64>().sqrt();
//! let scale: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
//! assert!(err / scale < 0.08, "relative error {}", err / scale);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod kernels;
mod lipschitz;
mod operator;
mod solvers;
mod workspace;

pub use cache::{SpectralCache, SpectralEstimate};
pub use workspace::{BatchWorkspace, FistaWorkspace, Workspace};
pub use kernels::{axpy, dot, group_soft_threshold, momentum_combine, soft_threshold, soft_threshold_weighted, squared_distance, KernelMode};
pub use lipschitz::{lipschitz_constant, operator_norm, top_singular_pair};
pub use operator::{DeflatedOperator, DenseOperator, LinearOperator, SynthesisOperator};
pub use solvers::{
    amp, debias, fista, fista_backtracking, fista_prior_batch_ws, fista_prior_batch_ws_observed,
    fista_prior_warm_ws, fista_prior_warm_ws_observed, fista_warm, fista_warm_batch_ws,
    fista_warm_batch_ws_observed, fista_warm_observed,
    fista_warm_ws, fista_warm_ws_observed, fista_weighted, fista_weighted_warm,
    fista_weighted_warm_observed, fista_weighted_warm_ws, fista_weighted_warm_ws_observed, ista,
    ista_warm, lambda_max, lambda_max_with, omp, BatchPenalty, DebiasConfig, OmpConfig, OmpResult,
    ProxSpec, ShrinkageConfig, SolverResult, AmpConfig, AmpResult,
};
