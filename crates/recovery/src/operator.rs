//! Linear operators for the reconstruction problem.
//!
//! FISTA only ever touches the forward operator `A = Φ·Ψᵀ` and its adjoint
//! `Aᴴ = Ψ·Φᴴ`. The paper's contribution (1) is precisely that neither
//! needs a dense matrix: Φ is a sparse binary gather and Ψᵀ/Ψ are O(N·L)
//! filter-bank passes. [`SynthesisOperator`] is that matrix-free
//! composition; [`DenseOperator`] materializes the same map as an `M×N`
//! matrix so benches can quantify what the matrix-free structure buys.

use crate::kernels::{dot, KernelMode};
use crate::workspace::Workspace;
use cs_dsp::wavelet::Dwt;
use cs_dsp::Real;
use cs_sensing::Sensing;
use std::borrow::Cow;

/// A real linear map `ℝᴺ → ℝᴹ` with an exact adjoint.
pub trait LinearOperator<T: Real> {
    /// Output dimension M.
    fn rows(&self) -> usize;

    /// Input dimension N.
    fn cols(&self) -> usize;

    /// `out = A·x`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn apply_into(&self, x: &[T], out: &mut [T]);

    /// `out = Aᴴ·y`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn adjoint_into(&self, y: &[T], out: &mut [T]);

    /// `out = A·x`, drawing any transient buffers from `ws` instead of the
    /// heap.
    ///
    /// The default falls back to [`LinearOperator::apply_into`]; operators
    /// whose application needs intermediates (e.g. [`SynthesisOperator`])
    /// override it to stay allocation-free. `ws` grows on first use and is
    /// then reused verbatim, so a workspace that has seen the operator's
    /// geometry once never allocates again.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn apply_into_ws(&self, x: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        let _ = ws;
        self.apply_into(x, out);
    }

    /// `out = Aᴴ·y`, drawing any transient buffers from `ws` instead of
    /// the heap. See [`LinearOperator::apply_into_ws`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn adjoint_into_ws(&self, y: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        let _ = ws;
        self.adjoint_into(y, out);
    }

    /// `out = A·X` for `k` lane-major input blocks: lane `l`'s input
    /// occupies `x[l·N .. (l+1)·N]` and its output lands in
    /// `out[l·M .. (l+1)·M]`. The default loops
    /// [`LinearOperator::apply_into_ws`] per lane, so every implementor is
    /// bit-identical to the sequential path by construction; overrides may
    /// amortize shared structure across lanes but must preserve each lane's
    /// exact floating-point operation order.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn apply_block_into_ws(&self, x: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        assert_eq!(x.len(), self.cols() * k, "apply_block_into_ws: x length mismatch");
        assert_eq!(out.len(), self.rows() * k, "apply_block_into_ws: out length mismatch");
        for (xl, ol) in x.chunks_exact(self.cols()).zip(out.chunks_exact_mut(self.rows())) {
            self.apply_into_ws(xl, ol, ws);
        }
    }

    /// `out = Aᴴ·Y` for `k` lane-major measurement blocks (adjoint twin of
    /// [`LinearOperator::apply_block_into_ws`], same layout and bit-identity
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    fn adjoint_block_into_ws(&self, y: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        assert_eq!(y.len(), self.rows() * k, "adjoint_block_into_ws: y length mismatch");
        assert_eq!(out.len(), self.cols() * k, "adjoint_block_into_ws: out length mismatch");
        for (yl, ol) in y.chunks_exact(self.rows()).zip(out.chunks_exact_mut(self.cols())) {
            self.adjoint_into_ws(yl, ol, ws);
        }
    }

    /// Allocating wrapper around [`LinearOperator::apply_into`].
    fn apply(&self, x: &[T]) -> Vec<T> {
        let mut out = vec![T::ZERO; self.rows()];
        self.apply_into(x, &mut out);
        out
    }

    /// Allocating wrapper around [`LinearOperator::adjoint_into`].
    fn adjoint(&self, y: &[T]) -> Vec<T> {
        let mut out = vec![T::ZERO; self.cols()];
        self.adjoint_into(y, &mut out);
        out
    }
}

impl<T: Real, A: LinearOperator<T> + ?Sized> LinearOperator<T> for &A {
    fn rows(&self) -> usize {
        (**self).rows()
    }

    fn cols(&self) -> usize {
        (**self).cols()
    }

    fn apply_into(&self, x: &[T], out: &mut [T]) {
        (**self).apply_into(x, out)
    }

    fn adjoint_into(&self, y: &[T], out: &mut [T]) {
        (**self).adjoint_into(y, out)
    }

    fn apply_into_ws(&self, x: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        (**self).apply_into_ws(x, out, ws)
    }

    fn adjoint_into_ws(&self, y: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        (**self).adjoint_into_ws(y, out, ws)
    }

    fn apply_block_into_ws(&self, x: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        (**self).apply_block_into_ws(x, k, out, ws)
    }

    fn adjoint_block_into_ws(&self, y: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        (**self).adjoint_block_into_ws(y, k, out, ws)
    }
}

/// The matrix-free composed operator `A = Φ·Ψᵀ`: a candidate coefficient
/// vector α is synthesized to the signal domain by the inverse wavelet
/// transform, then measured by the sensing matrix. The adjoint runs the
/// chain backwards.
///
/// # Examples
///
/// ```
/// use cs_dsp::wavelet::{Dwt, Wavelet};
/// use cs_recovery::{LinearOperator, SynthesisOperator};
/// use cs_sensing::SparseBinarySensing;
///
/// let dwt: Dwt<f64> = Dwt::new(&Wavelet::daubechies(4)?, 512, 5)?;
/// let phi = SparseBinarySensing::new(256, 512, 12, 1)?;
/// let a = SynthesisOperator::new(&phi, &dwt);
/// assert_eq!(a.rows(), 256);
/// assert_eq!(a.cols(), 512);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SynthesisOperator<'a, T: Real, S: Sensing<T>> {
    phi: &'a S,
    dwt: &'a Dwt<T>,
}

impl<'a, T: Real, S: Sensing<T>> SynthesisOperator<'a, T, S> {
    /// Composes a sensing matrix with a wavelet synthesis.
    ///
    /// # Panics
    ///
    /// Panics if the sensing matrix's signal length differs from the
    /// transform's length.
    pub fn new(phi: &'a S, dwt: &'a Dwt<T>) -> Self {
        assert_eq!(
            phi.cols(),
            dwt.len(),
            "SynthesisOperator: Φ expects N={} but Ψ synthesizes N={}",
            phi.cols(),
            dwt.len()
        );
        SynthesisOperator { phi, dwt }
    }

    /// The sensing matrix.
    pub fn sensing(&self) -> &S {
        self.phi
    }

    /// The wavelet plan.
    pub fn basis(&self) -> &Dwt<T> {
        self.dwt
    }
}

impl<T: Real, S: Sensing<T>> LinearOperator<T> for SynthesisOperator<'_, T, S> {
    fn rows(&self) -> usize {
        self.phi.rows()
    }

    fn cols(&self) -> usize {
        self.dwt.len()
    }

    fn apply_into(&self, x: &[T], out: &mut [T]) {
        let mut signal = vec![T::ZERO; self.dwt.len()];
        self.dwt.synthesize_into(x, &mut signal);
        self.phi.apply_into(&signal, out);
    }

    fn adjoint_into(&self, y: &[T], out: &mut [T]) {
        let mut signal = vec![T::ZERO; self.dwt.len()];
        self.phi.adjoint_into(y, &mut signal);
        self.dwt.analyze_into(&signal, out);
    }

    fn apply_into_ws(&self, x: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        let n = self.dwt.len();
        ws.ensure_cols(n);
        self.dwt.synthesize_scratch(x, &mut ws.signal[..n], &mut ws.scratch[..n]);
        self.phi.apply_into(&ws.signal[..n], out);
    }

    fn adjoint_into_ws(&self, y: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        let n = self.dwt.len();
        ws.ensure_cols(n);
        self.phi.adjoint_into(y, &mut ws.signal[..n]);
        self.dwt.analyze_scratch(&ws.signal[..n], out, &mut ws.scratch[..n]);
    }

    fn apply_block_into_ws(&self, x: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        let n = self.dwt.len();
        let m = self.phi.rows();
        assert_eq!(x.len(), n * k, "apply_block_into_ws: x length mismatch");
        assert_eq!(out.len(), m * k, "apply_block_into_ws: out length mismatch");
        // The Ψᵀ pass is inherently per-lane (each lane synthesizes into
        // its own signal slot, identical to the scalar path), but the Φ
        // pass below is the batched kernel that amortizes one index walk
        // across all K lanes.
        ws.ensure_cols(n * k);
        for (l, xl) in x.chunks_exact(n).enumerate() {
            self.dwt
                .synthesize_scratch(xl, &mut ws.signal[l * n..(l + 1) * n], &mut ws.scratch[..n]);
        }
        self.phi.apply_block_into(&ws.signal[..n * k], k, out);
    }

    fn adjoint_block_into_ws(&self, y: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        let n = self.dwt.len();
        let m = self.phi.rows();
        assert_eq!(y.len(), m * k, "adjoint_block_into_ws: y length mismatch");
        assert_eq!(out.len(), n * k, "adjoint_block_into_ws: out length mismatch");
        // Per-lane, deliberately: a fused ΦᴴY pass would have to stage a
        // K·N signal block, evicting the scratch the per-lane Ψ analysis
        // keeps hot in L1 — measured ~18 % slower at the paper geometry
        // than running each lane's Φᴴ gather and analysis back to back in
        // one N-sized slot. Per-lane is also bit-identical by definition.
        for (yl, ol) in y.chunks_exact(m).zip(out.chunks_exact_mut(n)) {
            self.adjoint_into_ws(yl, ol, ws);
        }
    }
}

/// A rank-one spectral deflation preconditioner in measurement space.
///
/// Sparse binary sensing matrices have near-constant row sums, which puts
/// one large singular value (the "DC" direction) far above the bulk of
/// the spectrum. FISTA's constant step is `1/L` with `L = 2σ₁²`, so that
/// single outlier direction slows *every* coordinate's convergence by
/// `σ₁²/σ_bulk²` (≈ 12× at the paper's `d = 12`, CR 50 geometry). The
/// Gaussian ensemble has no such outlier, which is why a naive constant-
/// step FISTA makes sparse sensing look much worse than Fig. 2 reports.
///
/// `DeflatedOperator` solves the *weighted* least-squares problem
/// `min ‖P(Aα − y)‖² + λ‖α‖₁` with `P = I − (1−c)·uuᴴ`, where `u` is the
/// top left singular vector and `c < 1` scales that direction down into
/// the bulk. This is an exact reweighting of the data-fit term (benign
/// for the low-noise CS setting) that restores Gaussian-like convergence;
/// the `fig2` harness and the decoder both use it with `c ≈ 0.15`.
///
/// # Examples
///
/// ```
/// use cs_recovery::{DeflatedOperator, DenseOperator, KernelMode, LinearOperator, operator_norm};
///
/// // diag(10, 1): deflating the top direction at c = 0.1 leaves norm 1.
/// let a = DenseOperator::from_row_major(2, 2, vec![10.0, 0.0, 0.0, 1.0], KernelMode::Scalar);
/// let deflated = DeflatedOperator::deflate_top(&a, 100, 0.1);
/// let norm: f64 = operator_norm(&deflated, 100);
/// assert!((norm - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct DeflatedOperator<'a, T: Real, A: LinearOperator<T>> {
    inner: &'a A,
    /// Unit measurement-space direction to scale (empty ⇒ identity P).
    /// Borrowed when the caller already owns the direction (the decoder
    /// keeps it across packets), owned when computed here.
    u: Cow<'a, [T]>,
    c: T,
}

impl<'a, T: Real, A: LinearOperator<T>> DeflatedOperator<'a, T, A> {
    /// Finds the top left singular vector by power iteration and deflates
    /// it by factor `c` (`1` disables deflation; typical values are
    /// 0.1–0.3).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1]` or `sweeps` is zero.
    pub fn deflate_top(inner: &'a A, sweeps: usize, c: T) -> Self {
        let (sigma, u) = crate::lipschitz::top_singular_pair(inner, sweeps);
        let u = if sigma == T::ZERO { Vec::new() } else { u };
        Self::with_direction(inner, u, c)
    }

    /// Wraps an operator with an explicit (already computed) direction.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1]`, or `u` is neither empty nor of
    /// length `inner.rows()`.
    pub fn with_direction(inner: &'a A, u: Vec<T>, c: T) -> Self {
        Self::with_direction_cow(inner, Cow::Owned(u), c)
    }

    /// Like [`DeflatedOperator::with_direction`], but borrows the
    /// direction instead of taking ownership — the decoder holds `u` for
    /// the stream's lifetime and must not clone it per packet.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `(0, 1]`, or `u` is neither empty nor of
    /// length `inner.rows()`.
    pub fn with_direction_borrowed(inner: &'a A, u: &'a [T], c: T) -> Self {
        Self::with_direction_cow(inner, Cow::Borrowed(u), c)
    }

    fn with_direction_cow(inner: &'a A, u: Cow<'a, [T]>, c: T) -> Self {
        assert!(
            c > T::ZERO && c <= T::ONE,
            "DeflatedOperator: c must be in (0, 1]"
        );
        assert!(
            u.is_empty() || u.len() == inner.rows(),
            "DeflatedOperator: direction length mismatch"
        );
        DeflatedOperator { inner, u, c }
    }

    /// The deflated measurement-space direction (empty if none).
    pub fn direction(&self) -> &[T] {
        &self.u
    }

    /// The deflation factor `c`.
    pub fn factor(&self) -> T {
        self.c
    }

    /// Applies the same preconditioner `P` to a measurement vector, so the
    /// solver sees consistent data: `y ← y + (c−1)·u·(uᴴy)`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    pub fn transform_measurements(&self, y: &[T]) -> Vec<T> {
        let mut out = vec![T::ZERO; y.len()];
        self.transform_measurements_into(y, &mut out);
        out
    }

    /// Non-allocating [`DeflatedOperator::transform_measurements`]:
    /// `out ← P·y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()` or `out.len() != y.len()`.
    pub fn transform_measurements_into(&self, y: &[T], out: &mut [T]) {
        assert_eq!(y.len(), self.inner.rows(), "transform_measurements: length mismatch");
        assert_eq!(out.len(), y.len(), "transform_measurements: output length mismatch");
        out.copy_from_slice(y);
        self.deflect(out);
    }

    /// In-place `z ← P z`.
    fn deflect(&self, z: &mut [T]) {
        if self.u.is_empty() {
            return;
        }
        let proj: T = z.iter().zip(self.u.iter()).map(|(&a, &b)| a * b).sum();
        let gain = (self.c - T::ONE) * proj;
        for (zi, &ui) in z.iter_mut().zip(self.u.iter()) {
            *zi += gain * ui;
        }
    }
}

impl<T: Real, A: LinearOperator<T>> LinearOperator<T> for DeflatedOperator<'_, T, A> {
    fn rows(&self) -> usize {
        self.inner.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn apply_into(&self, x: &[T], out: &mut [T]) {
        self.inner.apply_into(x, out);
        self.deflect(out);
    }

    fn adjoint_into(&self, y: &[T], out: &mut [T]) {
        if self.u.is_empty() {
            self.inner.adjoint_into(y, out);
            return;
        }
        // Pᴴ = P (symmetric), so adjoint is Aᴴ·P·y.
        let mut yp = y.to_vec();
        self.deflect(&mut yp);
        self.inner.adjoint_into(&yp, out);
    }

    fn apply_into_ws(&self, x: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        self.inner.apply_into_ws(x, out, ws);
        self.deflect(out);
    }

    fn adjoint_into_ws(&self, y: &[T], out: &mut [T], ws: &mut Workspace<T>) {
        if self.u.is_empty() {
            self.inner.adjoint_into_ws(y, out, ws);
            return;
        }
        // The deflected copy of y lives in the workspace's measurement
        // buffer; take it out so `ws` can still be lent to the inner
        // operator, then hand it back.
        let mut yp = std::mem::take(&mut ws.measure);
        yp.clear();
        yp.extend_from_slice(y);
        self.deflect(&mut yp);
        self.inner.adjoint_into_ws(&yp, out, ws);
        ws.measure = yp;
    }

    fn apply_block_into_ws(&self, x: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        self.inner.apply_block_into_ws(x, k, out, ws);
        let m = self.inner.rows();
        for ol in out.chunks_exact_mut(m).take(k) {
            self.deflect(ol);
        }
    }

    fn adjoint_block_into_ws(&self, y: &[T], k: usize, out: &mut [T], ws: &mut Workspace<T>) {
        if self.u.is_empty() {
            self.inner.adjoint_block_into_ws(y, k, out, ws);
            return;
        }
        let m = self.inner.rows();
        assert_eq!(y.len(), m * k, "adjoint_block_into_ws: y length mismatch");
        // Stage all K deflected measurement lanes in the workspace's
        // measurement buffer (grown once, then reused), exactly as the
        // scalar path stages one.
        let mut yp = std::mem::take(&mut ws.measure);
        yp.clear();
        yp.extend_from_slice(y);
        for yl in yp.chunks_exact_mut(m) {
            self.deflect(yl);
        }
        self.inner.adjoint_block_into_ws(&yp, k, out, ws);
        ws.measure = yp;
    }
}

/// A dense, explicitly stored operator (row-major), used as the baseline
/// the paper's matrix-free design is compared against, and by OMP for
/// column access.
#[derive(Debug, Clone)]
pub struct DenseOperator<T: Real> {
    m: usize,
    n: usize,
    /// Row-major storage: the apply/adjoint kernels walk rows contiguously.
    data: Vec<T>,
    /// Column-major mirror: OMP's selection loop reads whole columns, so
    /// `column_into` must not stride the row-major layout.
    col_data: Vec<T>,
    kernel: KernelMode,
}

impl<T: Real> DenseOperator<T> {
    /// Wraps row-major data as an operator.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != m * n` or a dimension is zero.
    pub fn from_row_major(m: usize, n: usize, data: Vec<T>, kernel: KernelMode) -> Self {
        assert!(m > 0 && n > 0, "DenseOperator: zero dimension");
        assert_eq!(data.len(), m * n, "DenseOperator: data length mismatch");
        let mut col_data = vec![T::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                col_data[j * m + i] = data[i * n + j];
            }
        }
        DenseOperator { m, n, data, col_data, kernel }
    }

    /// Materializes any operator into dense form (one `apply` per column).
    pub fn materialize<A: LinearOperator<T>>(op: &A, kernel: KernelMode) -> Self {
        let (m, n) = (op.rows(), op.cols());
        // Each unit-vector apply lands contiguously in the column-major
        // store; the row-major mirror is transposed out in a single pass.
        let mut col_data = vec![T::ZERO; m * n];
        let mut e = vec![T::ZERO; n];
        for (j, col) in col_data.chunks_exact_mut(m).enumerate() {
            e[j] = T::ONE;
            op.apply_into(&e, col);
            e[j] = T::ZERO;
        }
        let mut data = vec![T::ZERO; m * n];
        for j in 0..n {
            for i in 0..m {
                data[i * n + j] = col_data[j * m + i];
            }
        }
        DenseOperator { m, n, data, col_data, kernel }
    }

    /// Copies column `j` into `out` — a contiguous copy from the
    /// column-major mirror, not an `m`-stride walk of the row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()` or `out.len() != self.rows()`.
    pub fn column_into(&self, j: usize, out: &mut [T]) {
        assert!(j < self.n, "column_into: column out of range");
        assert_eq!(out.len(), self.m, "column_into: output length mismatch");
        out.copy_from_slice(&self.col_data[j * self.m..(j + 1) * self.m]);
    }

    /// The kernel mode the apply paths use.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }
}

impl<T: Real> LinearOperator<T> for DenseOperator<T> {
    fn rows(&self) -> usize {
        self.m
    }

    fn cols(&self) -> usize {
        self.n
    }

    fn apply_into(&self, x: &[T], out: &mut [T]) {
        assert_eq!(x.len(), self.n, "apply_into: x length mismatch");
        assert_eq!(out.len(), self.m, "apply_into: out length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(&self.data[i * self.n..(i + 1) * self.n], x, self.kernel);
        }
    }

    fn adjoint_into(&self, y: &[T], out: &mut [T]) {
        assert_eq!(y.len(), self.m, "adjoint_into: y length mismatch");
        assert_eq!(out.len(), self.n, "adjoint_into: out length mismatch");
        for v in out.iter_mut() {
            *v = T::ZERO;
        }
        for (i, &yi) in y.iter().enumerate() {
            if yi == T::ZERO {
                continue;
            }
            crate::kernels::axpy(yi, &self.data[i * self.n..(i + 1) * self.n], out, self.kernel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_dsp::wavelet::Wavelet;
    use cs_sensing::SparseBinarySensing;

    fn setup() -> (SparseBinarySensing, Dwt<f64>) {
        let dwt = Dwt::new(&Wavelet::daubechies(4).unwrap(), 128, 3).unwrap();
        let phi = SparseBinarySensing::new(64, 128, 8, 3).unwrap();
        (phi, dwt)
    }

    #[test]
    fn composed_adjoint_identity() {
        let (phi, dwt) = setup();
        let a = SynthesisOperator::new(&phi, &dwt);
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.23).sin()).collect();
        let y: Vec<f64> = (0..64).map(|i| (i as f64 * 0.71).cos()).collect();
        let ax = a.apply(&x);
        let aty = a.adjoint(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(u, v)| u * v).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(u, v)| u * v).sum();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn dense_materialization_matches_matrix_free() {
        let (phi, dwt) = setup();
        let a = SynthesisOperator::new(&phi, &dwt);
        let dense = DenseOperator::materialize(&a, KernelMode::Unrolled4);
        let x: Vec<f64> = (0..128).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let y1 = a.apply(&x);
        let y2 = dense.apply(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-9);
        }
        let r: Vec<f64> = (0..64).map(|i| (i as f64) - 32.0).collect();
        let b1 = a.adjoint(&r);
        let b2 = dense.adjoint(&r);
        for (u, v) in b1.iter().zip(&b2) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn dense_column_access() {
        let data = vec![
            1.0, 2.0, //
            3.0, 4.0, //
            5.0, 6.0,
        ];
        let op = DenseOperator::from_row_major(3, 2, data, KernelMode::Scalar);
        let mut col = vec![0.0; 3];
        op.column_into(1, &mut col);
        assert_eq!(col, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn composed_preserves_energy_on_orthonormal_part() {
        // With Φ = identity-ish impossible here, but Ψᵀ alone is orthonormal:
        // ‖Ψᵀα‖ = ‖α‖. Verify through the operator by comparing to Φ's
        // action on the synthesized signal directly.
        let (phi, dwt) = setup();
        let a = SynthesisOperator::new(&phi, &dwt);
        let alpha: Vec<f64> = (0..128).map(|i| if i % 17 == 0 { 1.0 } else { 0.0 }).collect();
        let via_op = a.apply(&alpha);
        let signal = dwt.synthesize(&alpha);
        let direct: Vec<f64> = phi.apply(signal.as_slice());
        assert_eq!(via_op, direct);
    }

    #[test]
    fn workspace_paths_bitwise_match_allocating() {
        let (phi, dwt) = setup();
        let a = SynthesisOperator::new(&phi, &dwt);
        let u: Vec<f64> = {
            let raw: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.31).sin() + 0.2).collect();
            let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt();
            raw.iter().map(|v| v / norm).collect()
        };
        let deflated = DeflatedOperator::with_direction_borrowed(&a, &u, 0.15);
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.11).cos()).collect();
        let y: Vec<f64> = (0..64).map(|i| (i as f64 * 0.53).sin()).collect();

        let mut ws = Workspace::for_operator(&deflated);
        let mut out_m = vec![0.0; 64];
        let mut out_n = vec![0.0; 128];

        // Exercise each path twice: the second pass reuses warmed buffers.
        for _ in 0..2 {
            deflated.apply_into_ws(&x, &mut out_m, &mut ws);
            assert_eq!(out_m, deflated.apply(&x), "deflated apply differs");
            deflated.adjoint_into_ws(&y, &mut out_n, &mut ws);
            assert_eq!(out_n, deflated.adjoint(&y), "deflated adjoint differs");
            a.apply_into_ws(&x, &mut out_m, &mut ws);
            assert_eq!(out_m, a.apply(&x), "synthesis apply differs");
            a.adjoint_into_ws(&y, &mut out_n, &mut ws);
            assert_eq!(out_n, a.adjoint(&y), "synthesis adjoint differs");
        }

        let mut yp = vec![0.0; 64];
        deflated.transform_measurements_into(&y, &mut yp);
        assert_eq!(yp, deflated.transform_measurements(&y));
    }

    #[test]
    fn block_paths_bitwise_match_scalar_lanes() {
        let (phi, dwt) = setup();
        let a = SynthesisOperator::new(&phi, &dwt);
        let u: Vec<f64> = {
            let raw: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.41).cos() + 0.3).collect();
            let norm = raw.iter().map(|v| v * v).sum::<f64>().sqrt();
            raw.iter().map(|v| v / norm).collect()
        };
        let deflated = DeflatedOperator::with_direction_borrowed(&a, &u, 0.15);
        for k in [1_usize, 2, 4, 8] {
            let x: Vec<f64> = (0..128 * k).map(|i| (i as f64 * 0.07).sin()).collect();
            let y: Vec<f64> = (0..64 * k).map(|i| (i as f64 * 0.13).cos()).collect();
            let mut ws_block = Workspace::new();
            let mut ws_seq = Workspace::new();
            let mut out_m = vec![0.0; 64 * k];
            let mut out_n = vec![0.0; 128 * k];
            let mut seq_m = vec![0.0; 64];
            let mut seq_n = vec![0.0; 128];
            deflated.apply_block_into_ws(&x, k, &mut out_m, &mut ws_block);
            for l in 0..k {
                deflated.apply_into_ws(&x[l * 128..(l + 1) * 128], &mut seq_m, &mut ws_seq);
                assert_eq!(&out_m[l * 64..(l + 1) * 64], &seq_m[..], "apply lane {l} (k={k})");
            }
            deflated.adjoint_block_into_ws(&y, k, &mut out_n, &mut ws_block);
            for l in 0..k {
                deflated.adjoint_into_ws(&y[l * 64..(l + 1) * 64], &mut seq_n, &mut ws_seq);
                assert_eq!(&out_n[l * 128..(l + 1) * 128], &seq_n[..], "adjoint lane {l} (k={k})");
            }
        }
    }

    #[test]
    fn borrowed_and_owned_directions_agree() {
        let (phi, dwt) = setup();
        let a = SynthesisOperator::new(&phi, &dwt);
        let u = vec![1.0 / 8.0; 64];
        let owned = DeflatedOperator::with_direction(&a, u.clone(), 0.2);
        let borrowed = DeflatedOperator::with_direction_borrowed(&a, &u, 0.2);
        let y: Vec<f64> = (0..64).map(|i| (i as f64 * 0.29).cos()).collect();
        assert_eq!(owned.adjoint(&y), borrowed.adjoint(&y));
        assert_eq!(owned.direction(), borrowed.direction());
    }

    #[test]
    #[should_panic(expected = "Φ expects")]
    fn dimension_mismatch_panics() {
        let dwt: Dwt<f64> = Dwt::new(&Wavelet::haar(), 64, 2).unwrap();
        let phi = SparseBinarySensing::new(32, 128, 4, 1).unwrap();
        let _ = SynthesisOperator::new(&phi, &dwt);
    }
}
