//! A shared cache of per-configuration spectral estimates.
//!
//! Constant-step FISTA needs `L = 2‖A‖²` (and, when spectral deflation is
//! on, the top singular direction of `A`) before it can take a single
//! step. Both come from power iteration — dozens of operator applications,
//! each as expensive as a FISTA iteration. A single decoder pays that once
//! at construction; a **fleet** of decoders over identical sensing
//! configurations would pay it once *per stream* for bit-identical
//! results. [`SpectralCache`] shares the estimate: the first decoder of a
//! configuration computes, every later one reuses.
//!
//! The cache is keyed by an opaque `u64` the caller derives from whatever
//! defines its operator (sensing seed and shape, wavelet, deflation
//! factor, …). Keys must be injective per distinct operator — the cache
//! trusts them blindly.

use cs_dsp::Real;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The spectral quantities FISTA needs, computed once per configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralEstimate<T: Real> {
    /// The step constant `L = 2‖A‖²` (padded; see
    /// [`crate::lipschitz_constant`]).
    pub lipschitz: T,
    /// Top measurement-space singular direction of the *undeflated*
    /// operator; empty when deflation is off.
    pub deflation_u: Vec<T>,
}

/// A thread-safe, insert-only map from configuration key to
/// [`SpectralEstimate`].
///
/// # Examples
///
/// ```
/// use cs_recovery::{SpectralCache, SpectralEstimate};
///
/// let cache: SpectralCache<f64> = SpectralCache::new();
/// let a = cache.get_or_compute(7, || SpectralEstimate {
///     lipschitz: 2.5,
///     deflation_u: vec![],
/// });
/// // The second lookup must not recompute.
/// let b = cache.get_or_compute(7, || unreachable!());
/// assert_eq!(a.lipschitz, b.lipschitz);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SpectralCache<T: Real> {
    entries: Mutex<HashMap<u64, Arc<SpectralEstimate<T>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T: Real> SpectralCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        SpectralCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the estimate for `key`, running `compute` only on the first
    /// request. Concurrent first requests for the same key serialize, so
    /// the power iteration runs exactly once per configuration.
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> SpectralEstimate<T>,
    ) -> Arc<SpectralEstimate<T>> {
        let mut entries = self.entries.lock().expect("spectral cache poisoned");
        if let Some(found) = entries.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = Arc::new(compute());
        entries.insert(key, Arc::clone(&computed));
        computed
    }

    /// Number of distinct configurations cached so far.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("spectral cache poisoned").len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from cache (power iterations avoided).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn estimate(l: f64) -> SpectralEstimate<f64> {
        SpectralEstimate {
            lipschitz: l,
            deflation_u: vec![1.0, 0.0],
        }
    }

    #[test]
    fn computes_once_per_key() {
        let cache = SpectralCache::new();
        let mut calls = 0;
        for _ in 0..5 {
            cache.get_or_compute(42, || {
                calls += 1;
                estimate(3.0)
            });
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
    }

    #[test]
    fn distinct_keys_get_distinct_entries() {
        let cache = SpectralCache::new();
        let a = cache.get_or_compute(1, || estimate(1.0));
        let b = cache.get_or_compute(2, || estimate(2.0));
        assert_eq!(a.lipschitz, 1.0);
        assert_eq!(b.lipschitz, 2.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_access_computes_exactly_once() {
        let cache = Arc::new(SpectralCache::new());
        let computed = Arc::new(AtomicU64::new(0));
        thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                scope.spawn(move || {
                    let e = cache.get_or_compute(9, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        estimate(9.0)
                    });
                    assert_eq!(e.lipschitz, 9.0);
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
