//! Approximate message passing (AMP) — the statistical-physics solver.
//!
//! AMP (Donoho, Maleki, Montanari 2009) iterates soft thresholding like
//! ISTA but adds the *Onsager correction* to the residual, which for
//! large i.i.d. (Gaussian-like) sensing matrices makes the effective
//! noise at each iteration Gaussian and the convergence dramatically
//! faster than ISTA. The catch — and the reason it is an *ablation* here
//! rather than the decoder default — is that the i.i.d. assumption is
//! load-bearing: on structured ensembles (including our sparse binary
//! Φ·Ψᵀ) plain AMP can oscillate or diverge, which the damping factor
//! only partially mitigates. The tests document both behaviours.

use crate::kernels::{soft_threshold, KernelMode};
use crate::operator::LinearOperator;
use cs_dsp::{l2_norm, Real};
use std::time::Instant;

/// AMP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmpConfig<T: Real> {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Relative-change stopping tolerance (`ZERO` disables).
    pub tolerance: T,
    /// Threshold multiplier τ: the per-iteration threshold is
    /// `τ · σ̂` with `σ̂ = ‖z‖/√M` the empirical residual deviation.
    pub threshold_multiplier: T,
    /// Damping in `(0, 1]`: 1 is pure AMP, smaller trades speed for
    /// stability on non-i.i.d. operators.
    pub damping: T,
    /// Kernel mode for the inner loops.
    pub kernel: KernelMode,
}

impl<T: Real> Default for AmpConfig<T> {
    fn default() -> Self {
        AmpConfig {
            max_iterations: 200,
            tolerance: T::from_f64(1e-6),
            threshold_multiplier: T::from_f64(1.5),
            damping: T::ONE,
            kernel: KernelMode::Unrolled4,
        }
    }
}

/// Outcome of an AMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct AmpResult<T: Real> {
    /// The recovered coefficient vector.
    pub solution: Vec<T>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance fired (and the iterates stayed finite).
    pub converged: bool,
    /// `true` if the iteration blew up (non-finite values appeared) and
    /// the last finite iterate was returned instead.
    pub diverged: bool,
    /// Final residual norm `‖Aα − y‖₂`.
    pub residual_norm: T,
    /// Wall-clock solve time.
    pub elapsed: std::time::Duration,
}

/// Runs (damped) AMP. The operator should behave like an i.i.d. matrix
/// with unit-norm columns for the Onsager term to be exact; see the
/// module docs for the caveats.
///
/// # Panics
///
/// Panics if `y.len() != op.rows()`, the cap is zero, damping is outside
/// `(0, 1]`, or the threshold multiplier is negative.
pub fn amp<T: Real, A: LinearOperator<T>>(op: &A, y: &[T], config: &AmpConfig<T>) -> AmpResult<T> {
    assert_eq!(y.len(), op.rows(), "amp: y length mismatch");
    assert!(config.max_iterations > 0, "amp: zero iteration cap");
    assert!(
        config.damping > T::ZERO && config.damping <= T::ONE,
        "amp: damping outside (0, 1]"
    );
    assert!(
        config.threshold_multiplier >= T::ZERO,
        "amp: negative threshold multiplier"
    );
    let start = Instant::now();
    let (m, n) = (op.rows(), op.cols());
    let m_t = T::from_usize(m);
    let mode = config.kernel;

    let mut alpha = vec![T::ZERO; n];
    let mut alpha_prev = vec![T::ZERO; n];
    let mut z: Vec<T> = y.to_vec(); // residual with Onsager memory
    let mut z_prev = vec![T::ZERO; m];
    let mut pseudo = vec![T::ZERO; n];
    let mut scratch_m = vec![T::ZERO; m];
    let mut iterations = 0;
    let mut converged = false;
    let mut diverged = false;

    for k in 1..=config.max_iterations {
        iterations = k;
        // Pseudo-data: α + Aᴴ z.
        op.adjoint_into(&z, &mut pseudo);
        for (p, &a) in pseudo.iter_mut().zip(&alpha) {
            *p += a;
        }
        // Threshold at τ·σ̂.
        let sigma = l2_norm(&z) / m_t.sqrt();
        let threshold = config.threshold_multiplier * sigma;
        alpha_prev.copy_from_slice(&alpha);
        soft_threshold(&pseudo, threshold, &mut alpha, mode);
        // Damping on the estimate.
        if config.damping < T::ONE {
            for (a, &ap) in alpha.iter_mut().zip(&alpha_prev) {
                *a = config.damping * *a + (T::ONE - config.damping) * ap;
            }
        }

        // Onsager term: (|support|/M) · z_prev. When damping is active it
        // applies to the residual track too, so the two state variables
        // stay consistent.
        let support = alpha.iter().filter(|&&v| v != T::ZERO).count();
        let onsager = T::from_usize(support) / m_t;
        z_prev.copy_from_slice(&z);
        op.apply_into(&alpha, &mut scratch_m);
        for ((zi, &yi), (&ax, &zp)) in z
            .iter_mut()
            .zip(y)
            .zip(scratch_m.iter().zip(&z_prev))
        {
            let fresh = yi - ax + onsager * zp;
            *zi = config.damping * fresh + (T::ONE - config.damping) * zp;
        }

        if !z.iter().all(|v| v.is_finite()) || !alpha.iter().all(|v| v.is_finite()) {
            diverged = true;
            alpha.copy_from_slice(&alpha_prev);
            break;
        }

        if config.tolerance > T::ZERO {
            let mut step = T::ZERO;
            for (&a, &b) in alpha.iter().zip(&alpha_prev) {
                let d = a - b;
                step += d * d;
            }
            if step.sqrt() <= config.tolerance * l2_norm(&alpha).max(T::ONE) {
                converged = true;
                break;
            }
        }
    }

    op.apply_into(&alpha, &mut scratch_m);
    for (r, &yi) in scratch_m.iter_mut().zip(y) {
        *r -= yi;
    }
    AmpResult {
        residual_norm: l2_norm(&scratch_m),
        solution: alpha,
        iterations,
        converged: converged && !diverged,
        diverged,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;
    use crate::solvers::shrinkage::{ista, ShrinkageConfig};
    use cs_sensing::MotePrng;

    /// I.i.d. Gaussian matrix with unit-norm columns — AMP's home turf.
    fn gaussian_instance(
        m: usize,
        n: usize,
        sparsity: usize,
        seed: u64,
    ) -> (DenseOperator<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0; n];
        for idx in rng.distinct_below(sparsity, n as u32) {
            truth[idx as usize] = rng.next_gaussian() * 3.0;
        }
        let y = op.apply(&truth);
        (op, truth, y)
    }

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = a.iter().map(|x| x * x).sum::<f64>().max(1e-30);
        (num / den).sqrt()
    }

    #[test]
    fn recovers_on_iid_gaussian() {
        let (op, truth, y) = gaussian_instance(128, 256, 12, 17);
        let r = amp(&op, &y, &AmpConfig::default());
        assert!(!r.diverged);
        let err = rel_err(&truth, &r.solution);
        assert!(err < 0.05, "relative error {err} after {} iterations", r.iterations);
    }

    #[test]
    fn faster_than_ista_on_its_home_turf() {
        let (op, truth, y) = gaussian_instance(96, 192, 8, 5);
        let r_amp = amp(&op, &y, &AmpConfig::default());
        // ISTA with the same iteration budget.
        let cfg = ShrinkageConfig {
            lambda: 0.01,
            max_iterations: r_amp.iterations,
            tolerance: 0.0,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let r_ista = ista(&op, &y, &cfg, None);
        assert!(
            rel_err(&truth, &r_amp.solution) < rel_err(&truth, &r_ista.solution),
            "AMP should beat ISTA at equal budget on i.i.d. Gaussian"
        );
    }

    #[test]
    fn zero_measurements_stay_zero() {
        let (op, _, _) = gaussian_instance(32, 64, 4, 9);
        let r = amp(&op, &vec![0.0; 32], &AmpConfig::default());
        assert!(r.solution.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn divergence_is_detected_not_propagated() {
        // A pathological operator far from i.i.d.: one enormous row.
        let mut data = vec![0.01_f64; 16 * 64];
        for cell in data.iter_mut().take(64) {
            *cell = 1000.0;
        }
        let op = DenseOperator::from_row_major(16, 64, data, KernelMode::Scalar);
        let y = op.apply(&vec![1.0; 64]);
        let cfg = AmpConfig {
            damping: 1.0, // undamped, to provoke it
            ..AmpConfig::default()
        };
        let r = amp(&op, &y, &cfg);
        // Whatever happened, the returned solution is finite.
        assert!(r.solution.iter().all(|v| v.is_finite()));
        if r.diverged {
            assert!(!r.converged);
        }
    }

    #[test]
    fn f32_works() {
        let mut rng = MotePrng::new(3);
        let data: Vec<f32> = (0..64 * 128)
            .map(|_| (rng.next_gaussian() / 8.0) as f32)
            .collect();
        let op = DenseOperator::from_row_major(64, 128, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0_f32; 128];
        truth[7] = 2.0;
        truth[90] = -1.5;
        let y = op.apply(&truth);
        let r = amp(&op, &y, &AmpConfig::default());
        assert!(rel_err(
            &truth.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            &r.solution.iter().map(|&v| v as f64).collect::<Vec<_>>()
        ) < 0.1);
    }
}
