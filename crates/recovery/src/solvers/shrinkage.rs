//! ISTA and FISTA — the iterative shrinkage-thresholding solvers.
//!
//! Both solve the paper's Eq. (3):
//!
//! ```text
//!   min_α  F(α) = ‖Aα − y‖² + λ‖α‖₁
//! ```
//!
//! One iteration of either costs one `apply` + one `adjoint` of `A` plus a
//! soft threshold. ISTA converges as `O(1/k)` and is "notoriously slow";
//! FISTA (Beck & Teboulle 2009, the paper's algorithm box) adds the
//! momentum sequence `t_k` and converges as `O(1/k²)`. The implementation
//! follows the paper's constant-step-size variant verbatim.

use crate::kernels::{
    group_soft_threshold, momentum_combine, soft_threshold, soft_threshold_weighted,
    squared_distance, KernelMode,
};
use crate::lipschitz::lipschitz_constant;
use crate::operator::LinearOperator;
use crate::workspace::{FistaWorkspace, Workspace};
use cs_dsp::{l1_norm, l2_norm, Real};
use cs_telemetry::{Stage, TelemetryRegistry};
use std::time::{Duration, Instant};

/// Configuration shared by the shrinkage solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShrinkageConfig<T: Real> {
    /// ℓ1 weight λ of Eq. (3).
    pub lambda: T,
    /// Hard iteration cap — the real-time budget of the decoder. The paper
    /// derives 800 (unoptimized) and 2000 (optimized) for the iPhone.
    pub max_iterations: usize,
    /// Relative-change stopping tolerance; `ZERO` disables early stopping
    /// and always runs `max_iterations`.
    pub tolerance: T,
    /// Residual-based stopping: stop once `‖Aα − y‖₂ ≤ residual_tolerance
    /// · ‖y‖₂` — the criterion matching the paper's constrained form
    /// (Eq. 2, "subject to ‖ΦΨα − y‖₂ ≤ σ"). `ZERO` disables. Checking it
    /// costs one extra `apply` per iteration, so production decoding
    /// usually prefers `tolerance`.
    pub residual_tolerance: T,
    /// Which kernel implementations the inner loops use.
    pub kernel: KernelMode,
    /// Record `F(α_k)` each iteration (costs one extra `apply` per
    /// iteration; off for production decoding).
    pub record_objective: bool,
}

impl<T: Real> ShrinkageConfig<T> {
    /// A sensible decoding default: tolerance-based stopping under a hard
    /// real-time cap, optimized kernels.
    pub fn new(lambda: T) -> Self {
        ShrinkageConfig {
            lambda,
            max_iterations: 2000,
            tolerance: T::from_f64(1e-4),
            residual_tolerance: T::ZERO,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        }
    }
}

/// Outcome of a solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverResult<T: Real> {
    /// The recovered coefficient vector α.
    pub solution: Vec<T>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the tolerance criterion fired before the iteration cap.
    pub converged: bool,
    /// Wall-clock time spent in the solve loop.
    pub elapsed: Duration,
    /// `F(α_k)` per iteration if requested, else empty.
    pub objective_history: Vec<T>,
    /// Final residual norm `‖Aα − y‖₂`.
    pub residual_norm: T,
}

/// Which proximal operator a prior-driven solve applies each iteration —
/// the penalty side of Eq. (3), generalized.
///
/// `L1` is the paper's plain soft threshold. `WeightedL1` carries
/// per-coefficient weights (support priors, subband exemptions).
/// `Group` carries a contiguous partition of the coefficient vector and
/// applies the group-ℓ1 prox of [`group_soft_threshold`] — size-1 groups
/// degrade bit-exactly to the plain soft threshold, so an all-singleton
/// partition reproduces `L1` to the bit.
#[derive(Debug, Clone, Copy)]
pub enum ProxSpec<'a, T: Real> {
    /// Plain ℓ1: `λ‖α‖₁`.
    L1,
    /// Weighted ℓ1: `λ·Σ wᵢ|αᵢ|` (weights must be non-negative, length
    /// `op.cols()`).
    WeightedL1(&'a [T]),
    /// Group ℓ1 over contiguous groups: `λ·Σ_g √|g|·‖α_g‖₂` (sizes must
    /// tile `op.cols()` exactly).
    Group(&'a [usize]),
}

fn validate_prox<T: Real>(cols: usize, prox: &ProxSpec<'_, T>) {
    match prox {
        ProxSpec::L1 => {}
        ProxSpec::WeightedL1(w) => {
            assert_eq!(w.len(), cols, "prior solve: weight length mismatch");
            assert!(w.iter().all(|&x| x >= T::ZERO), "prior solve: negative weight");
        }
        ProxSpec::Group(sizes) => {
            assert_eq!(
                sizes.iter().sum::<usize>(),
                cols,
                "prior solve: group sizes do not tile the coefficient vector"
            );
        }
    }
}

/// O'Donoghue–Candès gradient restart test, evaluated after the in-place
/// gradient step (`point` already holds `y_k − (2/L)·grad`): restart when
/// `⟨y_k − α_{k+1}, α_{k+1} − α_k⟩ > 0`, i.e. when momentum points
/// against the descent direction. Shared by the sequential and batched
/// loops so a restarting batch lane matches its sequential solve bitwise.
#[inline]
pub(crate) fn gradient_restart<T: Real>(
    point: &[T],
    grad: &[T],
    alpha: &[T],
    alpha_prev: &[T],
    inv_l: T,
) -> bool {
    let c = T::TWO * inv_l;
    let mut s = T::ZERO;
    for ((&p, &g), (&a, &ap)) in point.iter().zip(grad).zip(alpha.iter().zip(alpha_prev)) {
        s += (p + c * g - a) * (a - ap);
    }
    s > T::ZERO
}

/// The largest useful λ: for `λ ≥ λ_max = ‖2Aᴴy‖∞` the zero vector is
/// optimal. Decoders typically use a small fraction of this.
///
/// # Examples
///
/// ```
/// use cs_recovery::{lambda_max, DenseOperator, KernelMode};
///
/// let op = DenseOperator::from_row_major(1, 2, vec![1.0, -3.0], KernelMode::Scalar);
/// assert_eq!(lambda_max(&op, &[2.0]), 12.0); // |2·(−3)·2|
/// ```
pub fn lambda_max<T: Real, A: LinearOperator<T>>(op: &A, y: &[T]) -> T {
    let g = op.adjoint(y);
    let inf = g.iter().fold(T::ZERO, |m, &v| m.max(v.abs()));
    T::TWO * inf
}

/// Non-allocating [`lambda_max`]: the gradient lands in the caller's
/// `grad` buffer and operator transients come from `ws`. The decoder
/// calls this once per packet, so the allocating form would defeat its
/// zero-allocation steady state.
///
/// # Panics
///
/// Panics if `grad.len() != op.cols()` or `y.len() != op.rows()`.
pub fn lambda_max_with<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    grad: &mut [T],
    ws: &mut Workspace<T>,
) -> T {
    op.adjoint_into_ws(y, grad, ws);
    let inf = grad.iter().fold(T::ZERO, |m, &v| m.max(v.abs()));
    T::TWO * inf
}

/// Solves Eq. (3) with plain ISTA (the `O(1/k)` baseline the paper cites
/// as "notoriously slow").
///
/// `lipschitz` may pass a precomputed `L = 2‖A‖²·(1+ε)`; `None` estimates
/// it by power iteration first.
///
/// # Panics
///
/// Panics if `y.len() != op.rows()`, λ is negative, or the iteration cap
/// is zero.
pub fn ista<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
) -> SolverResult<T> {
    shrinkage_loop(op, y, config, lipschitz, false, false, ProxSpec::L1, None, None)
}

/// [`ista`] with an explicit starting point.
///
/// `warm_start` seeds the iteration at the given coefficient vector
/// instead of zero — the fleet decoder passes packet *k*'s solution when
/// solving packet *k+1*, which on correlated consecutive packets lands the
/// solver inside the basin where the stopping tolerance fires after a
/// handful of iterations (Polanía et al., arXiv:1405.4201, observe the
/// same effect for wireless ECG CS). `None` is exactly [`ista`].
///
/// # Panics
///
/// Panics under [`ista`]'s conditions, or if the warm-start length is not
/// `op.cols()`.
pub fn ista_warm<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    warm_start: Option<&[T]>,
) -> SolverResult<T> {
    shrinkage_loop(op, y, config, lipschitz, false, false, ProxSpec::L1, warm_start, None)
}

/// Solves Eq. (3) with FISTA (constant step size), the paper's decoder.
///
/// # Panics
///
/// Same conditions as [`ista`].
///
/// # Examples
///
/// ```
/// use cs_recovery::{fista, DenseOperator, KernelMode, LinearOperator, ShrinkageConfig};
///
/// // Recover a 2-sparse vector from an overdetermined system.
/// let a = DenseOperator::from_row_major(
///     4, 3,
///     vec![1.0, 0.0, 0.0,
///          0.0, 1.0, 0.0,
///          0.0, 0.0, 1.0,
///          1.0, 1.0, 1.0],
///     KernelMode::Unrolled4,
/// );
/// let truth = vec![2.0_f64, 0.0, -1.0];
/// let y = a.apply(&truth);
/// let cfg = ShrinkageConfig::new(1e-3_f64);
/// let result = fista(&a, &y, &cfg, None);
/// assert!(result.converged);
/// assert!((result.solution[0] - 2.0).abs() < 1e-2);
/// assert!(result.solution[1].abs() < 1e-2);
/// ```
pub fn fista<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
) -> SolverResult<T> {
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::L1, None, None)
}

/// [`fista`] with an explicit starting point.
///
/// `warm_start` seeds both the iterate and the momentum extrapolation
/// point at the given vector (momentum itself restarts at `t₁ = 1`, which
/// keeps the `O(1/k²)` guarantee — FISTA's bound holds for any starting
/// point). `None` is exactly [`fista`]. The solution is the minimizer of
/// the same convex objective, so warm and cold starts agree to within the
/// stopping tolerance; only the iteration count changes.
///
/// # Panics
///
/// Panics under [`ista`]'s conditions, or if the warm-start length is not
/// `op.cols()`.
pub fn fista_warm<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    warm_start: Option<&[T]>,
) -> SolverResult<T> {
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::L1, warm_start, None)
}

/// [`fista_warm`] drawing every solve buffer from a caller-owned
/// [`FistaWorkspace`], so a solve that has seen its geometry before
/// performs **zero heap allocations** (the solution vector is carved from
/// the workspace's recycled slot and moves out in the result).
///
/// Produces a bitwise-identical [`SolverResult::solution`] to
/// [`fista_warm`]: the buffers start from the same values and the
/// floating-point operation sequence is unchanged.
///
/// # Panics
///
/// Same conditions as [`fista_warm`].
pub fn fista_warm_ws<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    warm_start: Option<&[T]>,
    ws: &mut FistaWorkspace<T>,
) -> SolverResult<T> {
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::L1, warm_start, Some(ws))
}

/// [`fista_warm_ws`] timed into a telemetry registry; see
/// [`fista_warm_observed`].
///
/// # Panics
///
/// Same conditions as [`fista_warm`].
pub fn fista_warm_ws_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    warm_start: Option<&[T]>,
    ws: &mut FistaWorkspace<T>,
    telemetry: &TelemetryRegistry,
) -> SolverResult<T> {
    let _span = telemetry.span(Stage::FistaSolve);
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::L1, warm_start, Some(ws))
}

/// [`fista_warm`] timed into a telemetry registry: the whole solve runs
/// under a [`Stage::FistaSolve`] span, so its wall-clock latency lands in
/// the registry's per-stage histogram. With the disabled registry this is
/// [`fista_warm`] plus one atomic load.
///
/// The caller still owns journal publication (iteration count, residual,
/// stream/channel labels) — only the caller knows the labels; see
/// `cs_core::Decoder`.
///
/// # Panics
///
/// Same conditions as [`fista_warm`].
pub fn fista_warm_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    warm_start: Option<&[T]>,
    telemetry: &TelemetryRegistry,
) -> SolverResult<T> {
    let _span = telemetry.span(Stage::FistaSolve);
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::L1, warm_start, None)
}

/// FISTA with per-coefficient penalty weights: solves
/// `min_α ‖Aα − y‖² + λ·Σ wᵢ|αᵢ|`.
///
/// Zero weights exempt coefficients from shrinkage entirely — the CS-ECG
/// use case is `w = 0` on the coarse approximation subband, whose
/// coefficients are large and non-sparse, so an unweighted ℓ1 penalty
/// biases the reconstructed baseline (see `SolverPolicy` in `cs-core`).
///
/// # Panics
///
/// Panics under [`ista`]'s conditions, or if `weights.len() != op.cols()`
/// or any weight is negative.
pub fn fista_weighted<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    weights: &[T],
) -> SolverResult<T> {
    fista_weighted_warm(op, y, config, lipschitz, weights, None)
}

/// [`fista_weighted`] with an explicit starting point (see [`fista_warm`]).
///
/// # Panics
///
/// Panics under [`fista_weighted`]'s conditions, or if the warm-start
/// length is not `op.cols()`.
pub fn fista_weighted_warm<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    weights: &[T],
    warm_start: Option<&[T]>,
) -> SolverResult<T> {
    assert_eq!(weights.len(), op.cols(), "fista_weighted: weight length mismatch");
    assert!(
        weights.iter().all(|&w| w >= T::ZERO),
        "fista_weighted: negative weight"
    );
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::WeightedL1(weights), warm_start, None)
}

/// [`fista_weighted_warm`] drawing every solve buffer from a caller-owned
/// [`FistaWorkspace`]; see [`fista_warm_ws`].
///
/// # Panics
///
/// Same conditions as [`fista_weighted_warm`].
pub fn fista_weighted_warm_ws<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    weights: &[T],
    warm_start: Option<&[T]>,
    ws: &mut FistaWorkspace<T>,
) -> SolverResult<T> {
    assert_eq!(weights.len(), op.cols(), "fista_weighted: weight length mismatch");
    assert!(
        weights.iter().all(|&w| w >= T::ZERO),
        "fista_weighted: negative weight"
    );
    shrinkage_loop(op, y, config, lipschitz, true, false, ProxSpec::WeightedL1(weights), warm_start, Some(ws))
}

/// [`fista_weighted_warm_ws`] timed into a telemetry registry; see
/// [`fista_warm_observed`].
///
/// # Panics
///
/// Same conditions as [`fista_weighted_warm`].
#[allow(clippy::too_many_arguments)]
pub fn fista_weighted_warm_ws_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    weights: &[T],
    warm_start: Option<&[T]>,
    ws: &mut FistaWorkspace<T>,
    telemetry: &TelemetryRegistry,
) -> SolverResult<T> {
    let _span = telemetry.span(Stage::FistaSolve);
    fista_weighted_warm_ws(op, y, config, lipschitz, weights, warm_start, ws)
}

/// [`fista_weighted_warm`] timed into a telemetry registry; see
/// [`fista_warm_observed`].
///
/// # Panics
///
/// Same conditions as [`fista_weighted_warm`].
pub fn fista_weighted_warm_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    weights: &[T],
    warm_start: Option<&[T]>,
    telemetry: &TelemetryRegistry,
) -> SolverResult<T> {
    let _span = telemetry.span(Stage::FistaSolve);
    fista_weighted_warm(op, y, config, lipschitz, weights, warm_start)
}

/// Prior-driven FISTA: warm-started, workspace-backed, with a pluggable
/// proximal operator ([`ProxSpec`]) and optional adaptive gradient
/// restart.
///
/// This is the entry point the fleet decoder's support-weighted and
/// block-sparse modes use. `ProxSpec::L1` with `adaptive_restart = false`
/// is exactly [`fista_warm_ws`] (bitwise); `ProxSpec::WeightedL1` with
/// restart off is exactly [`fista_weighted_warm_ws`]. Restart applies the
/// O'Donoghue–Candès gradient test each iteration and resets the momentum
/// sequence when it fires — a few extra flops per iteration that pay for
/// themselves many times over on warm-started solves, whose momentum
/// otherwise oscillates around the nearby optimum.
///
/// # Panics
///
/// Panics under [`fista_warm_ws`]'s conditions, or if the prox spec is
/// inconsistent with `op.cols()` (weight length / group tiling) or
/// carries a negative weight.
#[allow(clippy::too_many_arguments)]
pub fn fista_prior_warm_ws<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    prox: ProxSpec<'_, T>,
    adaptive_restart: bool,
    warm_start: Option<&[T]>,
    ws: &mut FistaWorkspace<T>,
) -> SolverResult<T> {
    validate_prox(op.cols(), &prox);
    shrinkage_loop(op, y, config, lipschitz, true, adaptive_restart, prox, warm_start, Some(ws))
}

/// [`fista_prior_warm_ws`] timed into a telemetry registry; see
/// [`fista_warm_observed`].
///
/// # Panics
///
/// Same conditions as [`fista_prior_warm_ws`].
#[allow(clippy::too_many_arguments)]
pub fn fista_prior_warm_ws_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    prox: ProxSpec<'_, T>,
    adaptive_restart: bool,
    warm_start: Option<&[T]>,
    ws: &mut FistaWorkspace<T>,
    telemetry: &TelemetryRegistry,
) -> SolverResult<T> {
    let _span = telemetry.span(Stage::FistaSolve);
    fista_prior_warm_ws(op, y, config, lipschitz, prox, adaptive_restart, warm_start, ws)
}

/// Solves Eq. (3) with FISTA and **backtracking** line search (the other
/// variant in Beck & Teboulle 2009). No Lipschitz constant is needed:
/// the step is found adaptively, starting from `l0` (or 1) and doubling
/// until the majorization condition
/// `f(α⁺) ≤ f(y) + ⟨α⁺−y, ∇f(y)⟩ + L/2·‖α⁺−y‖²` holds.
///
/// Each backtrack probe costs one extra operator application, so the
/// constant-step [`fista`] is preferred when `2‖A‖²` is known (the
/// decoder precomputes it); backtracking wins when the spectrum is
/// unknown or a global constant would be pessimistic.
///
/// # Panics
///
/// Panics under the same conditions as [`ista`].
pub fn fista_backtracking<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    l0: Option<T>,
) -> SolverResult<T> {
    assert_eq!(y.len(), op.rows(), "fista_backtracking: y length mismatch");
    assert!(config.lambda >= T::ZERO, "fista_backtracking: negative lambda");
    assert!(config.max_iterations > 0, "fista_backtracking: zero iteration cap");

    let start = Instant::now();
    let n = op.cols();
    let m = op.rows();
    let eta = T::TWO;
    let mut l = l0.unwrap_or(T::ONE).max(T::from_f64(1e-12));
    let mode = config.kernel;
    let residual_target = config.residual_tolerance * l2_norm(y);

    let mut alpha = vec![T::ZERO; n];
    let mut alpha_prev = vec![T::ZERO; n];
    let mut point = vec![T::ZERO; n];
    let mut grad = vec![T::ZERO; n];
    let mut candidate = vec![T::ZERO; n];
    let mut shifted = vec![T::ZERO; n];
    let mut residual = vec![T::ZERO; m];
    let mut probe = vec![T::ZERO; m];
    let mut t = T::ONE;
    let mut iterations = 0;
    let mut converged = false;
    let mut history = Vec::new();

    for k in 1..=config.max_iterations {
        iterations = k;
        // f(point) and ∇f(point).
        op.apply_into(&point, &mut residual);
        for (r, &yi) in residual.iter_mut().zip(y) {
            *r -= yi;
        }
        let f_point: T = residual.iter().map(|&v| v * v).sum();
        op.adjoint_into(&residual, &mut grad);
        for g in grad.iter_mut() {
            *g *= T::TWO;
        }

        // Backtracking on L.
        loop {
            let inv_l = T::ONE / l;
            for ((s, &p), &g) in shifted.iter_mut().zip(&point).zip(&grad) {
                *s = p - inv_l * g;
            }
            soft_threshold(&shifted, config.lambda * inv_l, &mut candidate, mode);
            // Majorization test.
            op.apply_into(&candidate, &mut probe);
            for (r, &yi) in probe.iter_mut().zip(y) {
                *r -= yi;
            }
            let f_candidate: T = probe.iter().map(|&v| v * v).sum();
            let mut linear = T::ZERO;
            let mut quad = T::ZERO;
            for ((&c, &p), &g) in candidate.iter().zip(&point).zip(&grad) {
                let d = c - p;
                linear += d * g;
                quad += d * d;
            }
            if f_candidate <= f_point + linear + l * T::HALF * quad
                || l >= T::from_f64(1e30)
            {
                break;
            }
            l *= eta;
        }

        std::mem::swap(&mut alpha_prev, &mut alpha);
        alpha.copy_from_slice(&candidate);

        if config.record_objective {
            let r = op.apply(&alpha);
            let fval: T = r
                .iter()
                .zip(y)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<T>()
                + config.lambda * l1_norm(&alpha);
            history.push(fval);
        }

        if config.tolerance > T::ZERO {
            let step = squared_distance(&alpha, &alpha_prev, mode).sqrt();
            if step <= config.tolerance * l2_norm(&alpha).max(T::ONE) {
                converged = true;
            }
        }
        if !converged && config.residual_tolerance > T::ZERO {
            op.apply_into(&alpha, &mut probe);
            for (r, &yi) in probe.iter_mut().zip(y) {
                *r -= yi;
            }
            if l2_norm(&probe) <= residual_target {
                converged = true;
            }
        }

        let t_next = (T::ONE + (T::ONE + T::from_f64(4.0) * t * t).sqrt()) * T::HALF;
        let beta = (t - T::ONE) / t_next;
        momentum_combine(&alpha, &alpha_prev, beta, &mut point, mode);
        t = t_next;

        if converged {
            break;
        }
    }

    op.apply_into(&alpha, &mut residual);
    for (r, &yi) in residual.iter_mut().zip(y) {
        *r -= yi;
    }
    SolverResult {
        residual_norm: l2_norm(&residual),
        solution: alpha,
        iterations,
        converged,
        elapsed: start.elapsed(),
        objective_history: history,
    }
}

#[allow(clippy::too_many_arguments)]
fn shrinkage_loop<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    config: &ShrinkageConfig<T>,
    lipschitz: Option<T>,
    accelerate: bool,
    restart: bool,
    prox: ProxSpec<'_, T>,
    warm_start: Option<&[T]>,
    ws: Option<&mut FistaWorkspace<T>>,
) -> SolverResult<T> {
    assert_eq!(y.len(), op.rows(), "shrinkage solver: y length mismatch");
    assert!(config.lambda >= T::ZERO, "shrinkage solver: negative lambda");
    assert!(config.max_iterations > 0, "shrinkage solver: zero iteration cap");
    if let Some(w) = warm_start {
        assert_eq!(w.len(), op.cols(), "shrinkage solver: warm-start length mismatch");
    }

    let start = Instant::now();
    let l = lipschitz.unwrap_or_else(|| lipschitz_constant(op, 60));
    // A zero operator admits the zero solution immediately.
    if l == T::ZERO {
        return SolverResult {
            solution: vec![T::ZERO; op.cols()],
            iterations: 0,
            converged: true,
            elapsed: start.elapsed(),
            objective_history: Vec::new(),
            residual_norm: l2_norm(y),
        };
    }
    let inv_l = T::ONE / l;
    let threshold = config.lambda * inv_l;
    let mode = config.kernel;
    let residual_target = config.residual_tolerance * l2_norm(y);

    let n = op.cols();
    let m = op.rows();
    // Every solve runs through a workspace: the caller's (reused across
    // solves — zero allocations once warmed) or a solve-local one (still
    // eliminating the ~4 transient allocations per iteration the plain
    // apply/adjoint paths would make).
    let mut local_ws;
    let ws = match ws {
        Some(ws) => ws,
        None => {
            local_ws = FistaWorkspace::new();
            &mut local_ws
        }
    };
    // The iteration buffers are taken out of the workspace so it can still
    // be lent to the operator inside the loop; all but the solution go
    // back at the end. `clear` + `resize` preserves capacity, so a warmed
    // workspace allocates nothing here.
    let take = |buf: &mut Vec<T>, len: usize| {
        let mut v = std::mem::take(buf);
        v.clear();
        v.resize(len, T::ZERO);
        v
    };
    // Seed iterate and extrapolation point at the warm start (momentum
    // restarts at t₁ = 1 — FISTA's convergence bound holds from any
    // starting point, so this is safe and only the iteration count moves).
    let mut alpha = take(&mut ws.alpha, n); // α_{k}
    if let Some(w) = warm_start {
        alpha.copy_from_slice(w);
    }
    let mut alpha_prev = take(&mut ws.alpha_prev, n); // α_{k-1}
    let mut point = take(&mut ws.point, n); // y_k (extrapolation point)
    point.copy_from_slice(&alpha);
    let mut grad_point = take(&mut ws.grad, n);
    let mut residual = take(&mut ws.residual, m);
    let group_count = match prox {
        ProxSpec::Group(sizes) => sizes.len(),
        _ => 0,
    };
    let mut group_norms = take(&mut ws.group_norms, group_count);
    let mut t = T::ONE;
    let mut iterations = 0;
    let mut converged = false;
    let mut history = Vec::new();

    for k in 1..=config.max_iterations {
        iterations = k;
        // residual = A·point − y
        op.apply_into_ws(&point, &mut residual, &mut ws.op_ws);
        for (r, &yi) in residual.iter_mut().zip(y) {
            *r -= yi;
        }
        // grad = 2·Aᴴ·residual; fold the 2 into the step: point − grad/L.
        op.adjoint_into_ws(&residual, &mut grad_point, &mut ws.op_ws);
        for (p, &g) in point.iter_mut().zip(&grad_point) {
            *p -= T::TWO * inv_l * g;
        }
        // α_k = prox (Eq. 4): soft threshold at λ/L (optionally weighted
        // per coefficient, or grouped over a wavelet-tree partition).
        std::mem::swap(&mut alpha_prev, &mut alpha);
        match prox {
            ProxSpec::L1 => soft_threshold(&point, threshold, &mut alpha, mode),
            ProxSpec::WeightedL1(w) => {
                soft_threshold_weighted(&point, threshold, w, &mut alpha, mode)
            }
            ProxSpec::Group(sizes) => {
                group_soft_threshold(&point, threshold, sizes, &mut group_norms, &mut alpha, mode)
            }
        }

        if config.record_objective {
            let r = op.apply(&alpha);
            let fval: T = r
                .iter()
                .zip(y)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<T>()
                + config.lambda * l1_norm(&alpha);
            history.push(fval);
        }

        // Stopping: relative step size.
        if config.tolerance > T::ZERO {
            let step = squared_distance(&alpha, &alpha_prev, mode).sqrt();
            let scale = l2_norm(&alpha).max(T::ONE);
            if step <= config.tolerance * scale {
                converged = true;
            }
        }
        // Stopping: residual target (the paper's Eq. 2 criterion).
        if !converged && config.residual_tolerance > T::ZERO {
            op.apply_into_ws(&alpha, &mut residual, &mut ws.op_ws);
            for (r, &yi) in residual.iter_mut().zip(y) {
                *r -= yi;
            }
            if l2_norm(&residual) <= residual_target {
                converged = true;
            }
        }

        if accelerate {
            // Adaptive restart keeps the weighted/group solves inside
            // FISTA's convergence guarantees: on the restart condition the
            // momentum sequence drops back to t₁ = 1, killing the
            // oscillation a warm-started solve otherwise rides near the
            // optimum (O'Donoghue & Candès 2015).
            if restart && gradient_restart(&point, &grad_point, &alpha, &alpha_prev, inv_l) {
                t = T::ONE;
            }
            // Eq. (5)–(6): momentum extrapolation.
            let t_next = (T::ONE + (T::ONE + T::from_f64(4.0) * t * t).sqrt()) * T::HALF;
            let beta = (t - T::ONE) / t_next;
            momentum_combine(&alpha, &alpha_prev, beta, &mut point, mode);
            t = t_next;
        } else {
            point.copy_from_slice(&alpha);
        }

        if converged {
            break;
        }
    }

    op.apply_into_ws(&alpha, &mut residual, &mut ws.op_ws);
    for (r, &yi) in residual.iter_mut().zip(y) {
        *r -= yi;
    }
    let residual_norm = l2_norm(&residual);
    // Everything except the solution returns to the pool; the caller can
    // recycle a retired solution to close the last allocation.
    ws.alpha_prev = alpha_prev;
    ws.point = point;
    ws.grad = grad_point;
    ws.residual = residual;
    ws.group_norms = group_norms;
    SolverResult {
        residual_norm,
        solution: alpha,
        iterations,
        converged,
        elapsed: start.elapsed(),
        objective_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;
    use cs_sensing::MotePrng;

    /// Random well-conditioned compressed-sensing instance with a known
    /// sparse ground truth.
    fn instance(
        m: usize,
        n: usize,
        sparsity: usize,
        seed: u64,
    ) -> (DenseOperator<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0; n];
        for idx in rng.distinct_below(sparsity, n as u32) {
            truth[idx as usize] = rng.next_gaussian() * 2.0 + 1.0;
        }
        let y = op.apply(&truth);
        (op, truth, y)
    }

    #[test]
    fn fista_recovers_sparse_vector() {
        let (op, truth, y) = instance(64, 128, 6, 42);
        let cfg = ShrinkageConfig {
            lambda: 1e-3,
            max_iterations: 3000,
            tolerance: 1e-7,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let r = fista(&op, &y, &cfg, None);
        let err: f64 = truth
            .iter()
            .zip(&r.solution)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / scale < 0.02, "relative error {}", err / scale);
    }

    #[test]
    fn fista_beats_ista_at_equal_budget() {
        let (op, _, y) = instance(48, 96, 5, 7);
        let cfg = ShrinkageConfig {
            lambda: 0.01,
            max_iterations: 150,
            tolerance: 0.0, // run the full budget
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: true,
        };
        let rf = fista(&op, &y, &cfg, None);
        let ri = ista(&op, &y, &cfg, None);
        let f_final = *rf.objective_history.last().unwrap();
        let i_final = *ri.objective_history.last().unwrap();
        assert!(
            f_final <= i_final + 1e-12,
            "FISTA {f_final} vs ISTA {i_final}"
        );
        // And materially better early on (the O(1/k²) vs O(1/k) gap).
        assert!(rf.objective_history[60] < ri.objective_history[60]);
    }

    #[test]
    fn ista_objective_monotone_nonincreasing() {
        let (op, _, y) = instance(32, 64, 4, 3);
        let cfg = ShrinkageConfig {
            lambda: 0.05,
            max_iterations: 100,
            tolerance: 0.0,
            residual_tolerance: 0.0,
            kernel: KernelMode::Scalar,
            record_objective: true,
        };
        let r = ista(&op, &y, &cfg, None);
        for w in r.objective_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "ISTA objective increased: {w:?}");
        }
    }

    #[test]
    fn huge_lambda_gives_zero_solution() {
        let (op, _, y) = instance(32, 64, 4, 9);
        let lam = lambda_max(&op, &y) * 1.5;
        let cfg = ShrinkageConfig::new(lam);
        let r = fista(&op, &y, &cfg, None);
        assert!(r.solution.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kernel_modes_converge_to_same_answer() {
        let (op, _, y) = instance(40, 80, 5, 11);
        let mk = |mode| ShrinkageConfig {
            lambda: 0.01,
            max_iterations: 500,
            tolerance: 0.0,
            residual_tolerance: 0.0,
            kernel: mode,
            record_objective: false,
        };
        let a = fista(&op, &y, &mk(KernelMode::Scalar), None);
        let b = fista(&op, &y, &mk(KernelMode::Unrolled4), None);
        for (u, v) in a.solution.iter().zip(&b.solution) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn convergence_flag_and_iteration_cap() {
        let (op, _, y) = instance(32, 64, 4, 13);
        let tight = ShrinkageConfig {
            lambda: 0.01,
            max_iterations: 5,
            tolerance: 1e-12,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let r = fista(&op, &y, &tight, None);
        assert_eq!(r.iterations, 5);
        assert!(!r.converged);
    }

    #[test]
    fn f32_instantiation_recovers() {
        let mut rng = MotePrng::new(21);
        let (m, n) = (48, 96);
        let data: Vec<f32> = (0..m * n)
            .map(|_| (rng.next_gaussian() / (m as f64).sqrt()) as f32)
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0_f32; n];
        truth[10] = 1.5;
        truth[40] = -2.0;
        let y = op.apply(&truth);
        let cfg = ShrinkageConfig {
            lambda: 1e-3_f32,
            max_iterations: 2000,
            tolerance: 1e-6,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let r = fista(&op, &y, &cfg, None);
        assert!((r.solution[10] - 1.5).abs() < 0.05);
        assert!((r.solution[40] + 2.0).abs() < 0.05);
    }

    #[test]
    fn workspace_solve_bitwise_matches_allocating() {
        let (op, _, y) = instance(64, 128, 6, 31);
        let cfg = ShrinkageConfig {
            lambda: 1e-3,
            max_iterations: 800,
            tolerance: 1e-6,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let mut ws = FistaWorkspace::for_operator(&op);
        // Three consecutive solves reusing the workspace, each checked
        // bitwise against the allocating path (incl. warm-started ones).
        let mut warm: Option<Vec<f64>> = None;
        for _ in 0..3 {
            let plain = fista_warm(&op, &y, &cfg, None, warm.as_deref());
            let with_ws = fista_warm_ws(&op, &y, &cfg, None, warm.as_deref(), &mut ws);
            assert_eq!(plain.solution, with_ws.solution, "solutions not bitwise equal");
            assert_eq!(plain.iterations, with_ws.iterations);
            assert_eq!(plain.converged, with_ws.converged);
            assert_eq!(plain.residual_norm, with_ws.residual_norm);
            if let Some(old) = warm.replace(with_ws.solution) {
                ws.recycle_solution(old);
            }
        }
    }

    #[test]
    fn weighted_workspace_solve_bitwise_matches_allocating() {
        let (op, _, y) = instance(48, 96, 5, 37);
        let cfg = ShrinkageConfig::new(1e-3);
        let weights: Vec<f64> = (0..96).map(|i| if i < 12 { 0.0 } else { 1.0 }).collect();
        let mut ws = FistaWorkspace::new(); // grows on first use
        let plain = fista_weighted_warm(&op, &y, &cfg, None, &weights, None);
        let with_ws = fista_weighted_warm_ws(&op, &y, &cfg, None, &weights, None, &mut ws);
        assert_eq!(plain.solution, with_ws.solution);
        assert_eq!(plain.iterations, with_ws.iterations);
    }

    #[test]
    fn lambda_max_with_matches_allocating() {
        let (op, _, y) = instance(32, 64, 4, 41);
        let mut grad = vec![0.0; 64];
        let mut ws = Workspace::for_operator(&op);
        assert_eq!(lambda_max(&op, &y), lambda_max_with(&op, &y, &mut grad, &mut ws));
    }

    #[test]
    fn residual_norm_reported() {
        let (op, _, y) = instance(32, 64, 4, 17);
        let cfg = ShrinkageConfig::new(1e-3);
        let r = fista(&op, &y, &cfg, None);
        assert!(r.residual_norm >= 0.0);
        assert!(r.residual_norm < cs_dsp::l2_norm(&y));
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;
    use cs_sensing::MotePrng;
    use proptest::prelude::*;

    /// A sensing instance plus a pair of correlated sparse ground truths:
    /// the second is the first nudged by `drift` (relative), modelling two
    /// consecutive 2-second packets of the same heartbeat.
    fn correlated_pair(
        seed: u64,
        drift: f64,
    ) -> (DenseOperator<f64>, Vec<f64>, Vec<f64>) {
        let (m, n, sparsity) = (64, 128, 6);
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut x1 = vec![0.0; n];
        for idx in rng.distinct_below(sparsity, n as u32) {
            x1[idx as usize] = rng.next_gaussian() * 2.0 + 1.0;
        }
        let x2: Vec<f64> = x1
            .iter()
            .map(|&v| {
                if v == 0.0 {
                    0.0
                } else {
                    v * (1.0 + drift * rng.next_gaussian())
                }
            })
            .collect();
        (op, x1, x2)
    }

    fn config() -> ShrinkageConfig<f64> {
        ShrinkageConfig {
            lambda: 1e-3,
            max_iterations: 4000,
            tolerance: 1e-6,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        }
    }

    #[test]
    fn warm_none_is_exactly_cold() {
        let (op, x1, _) = correlated_pair(5, 0.0);
        let y = op.apply(&x1);
        let cfg = config();
        let cold = fista(&op, &y, &cfg, None);
        let warm_none = fista_warm(&op, &y, &cfg, None, None);
        assert_eq!(cold.solution, warm_none.solution);
        assert_eq!(cold.iterations, warm_none.iterations);
    }

    #[test]
    fn warm_start_at_optimum_stops_immediately() {
        let (op, x1, _) = correlated_pair(11, 0.0);
        let y = op.apply(&x1);
        let cfg = config();
        let cold = fista(&op, &y, &cfg, None);
        let rewarm = fista_warm(&op, &y, &cfg, None, Some(&cold.solution));
        assert!(rewarm.converged);
        assert!(
            rewarm.iterations <= 3,
            "restarting at the optimum took {} iterations",
            rewarm.iterations
        );
    }

    #[test]
    fn ista_warm_matches_ista_solution() {
        let (op, x1, x2) = correlated_pair(23, 0.02);
        let y1 = op.apply(&x1);
        let y2 = op.apply(&x2);
        let cfg = ShrinkageConfig {
            max_iterations: 20_000,
            ..config()
        };
        let prior = ista(&op, &y1, &cfg, None);
        let cold = ista(&op, &y2, &cfg, None);
        let warm = ista_warm(&op, &y2, &cfg, None, Some(&prior.solution));
        assert!(warm.iterations <= cold.iterations);
        for (a, b) in cold.solution.iter().zip(&warm.solution) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "warm-start length mismatch")]
    fn wrong_warm_length_panics() {
        let (op, x1, _) = correlated_pair(3, 0.0);
        let y = op.apply(&x1);
        let bad = vec![0.0; 7];
        let _ = fista_warm(&op, &y, &config(), None, Some(&bad));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// On consecutive correlated packets, the warm-started solve must
        /// reach the same minimizer (within the stopping tolerance) and
        /// never spend more iterations than the cold solve.
        #[test]
        fn prop_warm_start_same_solution_fewer_iterations(
            seed in 1_u64..10_000,
            drift in 0.0005_f64..0.05,
        ) {
            let (op, x1, x2) = correlated_pair(seed, drift);
            let y1 = op.apply(&x1);
            let y2 = op.apply(&x2);
            let cfg = config();
            let prior = fista(&op, &y1, &cfg, None);
            let cold = fista(&op, &y2, &cfg, None);
            let warm = fista_warm(&op, &y2, &cfg, None, Some(&prior.solution));
            prop_assert!(
                warm.iterations <= cold.iterations,
                "warm {} > cold {} (seed {seed}, drift {drift})",
                warm.iterations,
                cold.iterations
            );
            // Same objective minimizer within solver tolerance.
            let scale = cs_dsp::l2_norm(&cold.solution).max(1.0);
            let dist = squared_distance(&cold.solution, &warm.solution, cfg.kernel).sqrt();
            prop_assert!(
                dist / scale < 5e-3,
                "solutions diverge: {} (seed {seed}, drift {drift})",
                dist / scale
            );
        }

        /// The workspace-reusing solver is bit-for-bit the allocating
        /// path, cold and warm, across consecutive reuses of one
        /// workspace.
        #[test]
        fn prop_workspace_fista_bitwise_identical(seed in 1_u64..10_000) {
            let (op, x1, x2) = correlated_pair(seed, 0.01);
            let y1 = op.apply(&x1);
            let y2 = op.apply(&x2);
            let cfg = config();
            let mut ws = FistaWorkspace::for_operator(&op);
            let a1 = fista_warm(&op, &y1, &cfg, None, None);
            let b1 = fista_warm_ws(&op, &y1, &cfg, None, None, &mut ws);
            prop_assert_eq!(&a1.solution, &b1.solution);
            let a2 = fista_warm(&op, &y2, &cfg, None, Some(&a1.solution));
            let b2 = fista_warm_ws(&op, &y2, &cfg, None, Some(&b1.solution), &mut ws);
            prop_assert_eq!(a2.solution, b2.solution);
        }
    }
}

#[cfg(test)]
mod prior_tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;
    use cs_sensing::MotePrng;
    use proptest::prelude::*;

    fn instance(seed: u64, m: usize, n: usize, sparsity: usize) -> (DenseOperator<f64>, Vec<f64>) {
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut x = vec![0.0; n];
        for idx in rng.distinct_below(sparsity, n as u32) {
            x[idx as usize] = rng.next_gaussian() * 2.0 + 1.0;
        }
        (op, x)
    }

    fn config() -> ShrinkageConfig<f64> {
        ShrinkageConfig {
            lambda: 1e-3,
            max_iterations: 4000,
            tolerance: 1e-6,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn prior_l1_no_restart_is_exactly_fista_warm_ws() {
        let (op, x) = instance(41, 64, 128, 6);
        let y = op.apply(&x);
        let cfg = config();
        let mut ws_a = FistaWorkspace::for_operator(&op);
        let mut ws_b = FistaWorkspace::for_operator(&op);
        let a = fista_warm_ws(&op, &y, &cfg, None, None, &mut ws_a);
        let b = fista_prior_warm_ws(&op, &y, &cfg, None, ProxSpec::L1, false, None, &mut ws_b);
        assert_eq!(bits(&a.solution), bits(&b.solution));
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn singleton_groups_match_l1_bitwise() {
        let (op, x) = instance(42, 64, 128, 6);
        let y = op.apply(&x);
        let cfg = config();
        let sizes = vec![1_usize; op.cols()];
        let mut ws_a = FistaWorkspace::for_operator(&op);
        let mut ws_b = FistaWorkspace::for_operator(&op);
        let a = fista_prior_warm_ws(&op, &y, &cfg, None, ProxSpec::L1, false, None, &mut ws_a);
        let b = fista_prior_warm_ws(
            &op,
            &y,
            &cfg,
            None,
            ProxSpec::Group(&sizes),
            false,
            None,
            &mut ws_b,
        );
        assert_eq!(bits(&a.solution), bits(&b.solution));
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn restart_reaches_same_minimizer() {
        let (op, x) = instance(43, 64, 128, 6);
        let y = op.apply(&x);
        let cfg = config();
        let mut ws_a = FistaWorkspace::for_operator(&op);
        let mut ws_b = FistaWorkspace::for_operator(&op);
        let plain = fista_prior_warm_ws(&op, &y, &cfg, None, ProxSpec::L1, false, None, &mut ws_a);
        let restarted =
            fista_prior_warm_ws(&op, &y, &cfg, None, ProxSpec::L1, true, None, &mut ws_b);
        assert!(restarted.converged);
        let scale = cs_dsp::l2_norm(&plain.solution).max(1.0);
        let dist =
            squared_distance(&plain.solution, &restarted.solution, cfg.kernel).sqrt() / scale;
        assert!(dist < 5e-3, "restart diverged from plain FISTA: {dist}");
    }

    #[test]
    fn group_solve_recovers_block_sparse_signal() {
        // Ground truth sparse in contiguous blocks of 4; the group prox
        // should recover it at least as well as plain l1 at the same lambda.
        let (m, n, block) = (64, 128, 4_usize);
        let mut rng = MotePrng::new(77);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut x = vec![0.0; n];
        for g in rng.distinct_below(3, (n / block) as u32) {
            for j in 0..block {
                x[g as usize * block + j] = rng.next_gaussian() * 2.0 + 1.0;
            }
        }
        let y = op.apply(&x);
        let cfg = config();
        let sizes = vec![block; n / block];
        let mut ws = FistaWorkspace::for_operator(&op);
        let sol =
            fista_prior_warm_ws(&op, &y, &cfg, None, ProxSpec::Group(&sizes), false, None, &mut ws);
        assert!(sol.converged);
        let err = squared_distance(&sol.solution, &x, cfg.kernel).sqrt() / cs_dsp::l2_norm(&x);
        assert!(err < 0.05, "group solve missed block-sparse truth: {err}");
    }

    #[test]
    fn zero_weight_coordinate_is_never_shrunk_away() {
        // With a crushing lambda the all-ones weighted solve collapses to
        // zero, but a zero-weight coordinate feels no shrinkage and must
        // survive.
        let (op, x) = instance(44, 64, 128, 6);
        let y = op.apply(&x);
        let cfg = ShrinkageConfig {
            lambda: lambda_max(&op, &y) * 2.0,
            ..config()
        };
        let ones = vec![1.0; op.cols()];
        let mut weights = ones.clone();
        let free = x.iter().position(|&v| v != 0.0).unwrap();
        weights[free] = 0.0;
        let mut ws = FistaWorkspace::for_operator(&op);
        let crushed = fista_weighted_warm_ws(&op, &y, &cfg, None, &ones, None, &mut ws);
        assert!(crushed.solution.iter().all(|&v| v == 0.0));
        let freed = fista_weighted_warm_ws(&op, &y, &cfg, None, &weights, None, &mut ws);
        assert!(
            freed.solution[free] != 0.0,
            "zero-weight coordinate was shrunk away"
        );
    }

    #[test]
    #[should_panic(expected = "negative weight")]
    fn negative_weight_panics_via_prior_entry() {
        let (op, x) = instance(45, 64, 128, 6);
        let y = op.apply(&x);
        let mut w = vec![1.0; op.cols()];
        w[3] = -0.5;
        let mut ws = FistaWorkspace::for_operator(&op);
        let _ = fista_prior_warm_ws(
            &op,
            &y,
            &config(),
            None,
            ProxSpec::WeightedL1(&w),
            false,
            None,
            &mut ws,
        );
    }

    #[test]
    #[should_panic(expected = "group sizes do not tile")]
    fn bad_group_tiling_panics_via_prior_entry() {
        let (op, x) = instance(46, 64, 128, 6);
        let y = op.apply(&x);
        let sizes = vec![3_usize; 5];
        let mut ws = FistaWorkspace::for_operator(&op);
        let _ = fista_prior_warm_ws(
            &op,
            &y,
            &config(),
            None,
            ProxSpec::Group(&sizes),
            false,
            None,
            &mut ws,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// All-ones weights are bit-for-bit the unweighted solver: the
        /// weighted threshold `t * 1.0` is exactly `t` in IEEE arithmetic,
        /// so every iterate matches.
        #[test]
        fn prop_all_ones_weights_bitwise_unweighted(seed in 1_u64..10_000) {
            let (op, x) = instance(seed, 64, 128, 6);
            let y = op.apply(&x);
            let cfg = config();
            let ones = vec![1.0; op.cols()];
            let mut ws_a = FistaWorkspace::for_operator(&op);
            let mut ws_b = FistaWorkspace::for_operator(&op);
            let plain = fista_warm_ws(&op, &y, &cfg, None, None, &mut ws_a);
            let weighted =
                fista_weighted_warm_ws(&op, &y, &cfg, None, &ones, None, &mut ws_b);
            prop_assert_eq!(bits(&plain.solution), bits(&weighted.solution));
            prop_assert_eq!(plain.iterations, weighted.iterations);
        }

        /// Zero-weight coordinates are exempt from shrinkage for every
        /// instance, warm or cold.
        #[test]
        fn prop_zero_weight_survives_crushing_lambda(seed in 1_u64..10_000) {
            let (op, x) = instance(seed, 64, 128, 6);
            let y = op.apply(&x);
            let cfg = ShrinkageConfig {
                lambda: lambda_max(&op, &y) * 2.0,
                ..config()
            };
            let mut weights = vec![1.0; op.cols()];
            let free = x.iter().position(|&v| v != 0.0).unwrap();
            weights[free] = 0.0;
            let mut ws = FistaWorkspace::for_operator(&op);
            let sol = fista_weighted_warm_ws(&op, &y, &cfg, None, &weights, None, &mut ws);
            prop_assert!(sol.solution[free] != 0.0);
            for (i, &v) in sol.solution.iter().enumerate() {
                if i != free {
                    prop_assert!(v == 0.0, "coordinate {i} escaped full shrinkage");
                }
            }
        }
    }
}

#[cfg(test)]
mod backtracking_tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;
    use cs_sensing::MotePrng;

    fn instance(seed: u64) -> (DenseOperator<f64>, Vec<f64>, Vec<f64>) {
        let (m, n) = (48, 96);
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0; n];
        for idx in rng.distinct_below(5, n as u32) {
            truth[idx as usize] = rng.next_gaussian() + 2.0;
        }
        let y = op.apply(&truth);
        (op, truth, y)
    }

    #[test]
    fn backtracking_matches_constant_step_solution() {
        let (op, _, y) = instance(3);
        let cfg = ShrinkageConfig {
            lambda: 1e-3,
            max_iterations: 3000,
            tolerance: 1e-9,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let constant = fista(&op, &y, &cfg, None);
        let adaptive = fista_backtracking(&op, &y, &cfg, None);
        for (a, b) in constant.solution.iter().zip(&adaptive.solution) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn backtracking_needs_no_lipschitz_estimate() {
        // Start from a wildly wrong L and still converge.
        let (op, truth, y) = instance(7);
        let cfg = ShrinkageConfig {
            lambda: 1e-3,
            max_iterations: 3000,
            tolerance: 1e-8,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let r = fista_backtracking(&op, &y, &cfg, Some(1e-9));
        let err: f64 = truth
            .iter()
            .zip(&r.solution)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let scale: f64 = truth.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / scale < 0.02, "relative error {}", err / scale);
    }

    #[test]
    fn backtracking_objective_decreases_overall() {
        let (op, _, y) = instance(9);
        let cfg = ShrinkageConfig {
            lambda: 0.01,
            max_iterations: 120,
            tolerance: 0.0,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: true,
        };
        let r = fista_backtracking(&op, &y, &cfg, None);
        let first = r.objective_history[2];
        let last = *r.objective_history.last().unwrap();
        assert!(last < first * 0.5, "objective {first} → {last}");
    }
}
