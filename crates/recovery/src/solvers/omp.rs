//! Orthogonal matching pursuit — the greedy baseline.
//!
//! The paper cites OMP (Tropp 2004, ref. [11]) among the standard CS
//! reconstruction algorithms. It serves here as the greedy baseline the
//! `solver_comparison` ablation measures FISTA against: OMP picks one atom
//! per iteration (the column most correlated with the residual) and
//! re-solves a small least-squares problem on the grown support.

use crate::kernels::dot;
use crate::operator::{DenseOperator, LinearOperator};
use cs_dsp::{l2_norm, Real};
use std::time::Instant;

/// OMP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmpConfig<T: Real> {
    /// Maximum support size (number of greedy selections).
    pub max_sparsity: usize,
    /// Stop when `‖residual‖₂ / ‖y‖₂` drops below this.
    pub residual_tolerance: T,
}

impl<T: Real> OmpConfig<T> {
    /// A default targeting the ECG workload: up to `sparsity` atoms, stop
    /// at 1 % relative residual.
    pub fn new(sparsity: usize) -> Self {
        OmpConfig {
            max_sparsity: sparsity,
            residual_tolerance: T::from_f64(1e-2),
        }
    }
}

/// Result of an OMP run.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpResult<T: Real> {
    /// The recovered sparse coefficient vector.
    pub solution: Vec<T>,
    /// Selected atom indices in selection order.
    pub support: Vec<usize>,
    /// Final relative residual `‖Aα − y‖₂ / ‖y‖₂`.
    pub relative_residual: T,
    /// Wall-clock solve time.
    pub elapsed: std::time::Duration,
}

/// Runs OMP against an explicitly stored operator (greedy selection needs
/// per-column access, so the matrix-free composed operator must be
/// materialized first — itself part of why the paper prefers FISTA).
///
/// # Panics
///
/// Panics if `y.len() != op.rows()`, the sparsity cap is zero, or exceeds
/// `op.cols()`.
pub fn omp<T: Real>(op: &DenseOperator<T>, y: &[T], config: &OmpConfig<T>) -> OmpResult<T> {
    assert_eq!(y.len(), op.rows(), "omp: y length mismatch");
    assert!(
        config.max_sparsity > 0 && config.max_sparsity <= op.cols(),
        "omp: invalid sparsity cap"
    );
    let start = Instant::now();
    let (m, n) = (op.rows(), op.cols());
    let mode = op.kernel();
    let norm_y = l2_norm(y);
    if norm_y == T::ZERO {
        return OmpResult {
            solution: vec![T::ZERO; n],
            support: Vec::new(),
            relative_residual: T::ZERO,
            elapsed: start.elapsed(),
        };
    }

    let mut residual: Vec<T> = y.to_vec();
    let mut support: Vec<usize> = Vec::new();
    // Selected columns, stored contiguously (column-major, m per atom).
    let mut atoms: Vec<T> = Vec::new();
    let mut coeffs: Vec<T> = Vec::new();
    let mut col = vec![T::ZERO; m];

    for _ in 0..config.max_sparsity {
        // Greedy selection: argmax |⟨a_j, r⟩| / ‖a_j‖.
        let mut best_j = usize::MAX;
        let mut best_score = T::ZERO;
        for j in 0..n {
            if support.contains(&j) {
                continue;
            }
            op.column_into(j, &mut col);
            let norm = l2_norm(&col);
            if norm == T::ZERO {
                continue;
            }
            let score = dot(&col, &residual, mode).abs() / norm;
            if score > best_score {
                best_score = score;
                best_j = j;
            }
        }
        if best_j == usize::MAX || best_score <= T::from_f64(1e-14) {
            break;
        }
        op.column_into(best_j, &mut col);
        support.push(best_j);
        atoms.extend_from_slice(&col);

        // Least squares on the support via normal equations + Cholesky.
        let k = support.len();
        let mut gram = vec![T::ZERO; k * k];
        let mut rhs = vec![T::ZERO; k];
        for a in 0..k {
            let ca = &atoms[a * m..(a + 1) * m];
            rhs[a] = dot(ca, y, mode);
            for b in a..k {
                let cb = &atoms[b * m..(b + 1) * m];
                let g = dot(ca, cb, mode);
                gram[a * k + b] = g;
                gram[b * k + a] = g;
            }
        }
        coeffs = cholesky_solve(&gram, &rhs, k);

        // residual = y − A_S x_S
        residual.copy_from_slice(y);
        for (a, &c) in coeffs.iter().enumerate() {
            let ca = &atoms[a * m..(a + 1) * m];
            for (r, &v) in residual.iter_mut().zip(ca) {
                *r -= c * v;
            }
        }
        if l2_norm(&residual) / norm_y <= config.residual_tolerance {
            break;
        }
    }

    let mut solution = vec![T::ZERO; n];
    for (idx, &j) in support.iter().enumerate() {
        solution[j] = coeffs[idx];
    }
    OmpResult {
        solution,
        support,
        relative_residual: l2_norm(&residual) / norm_y,
        elapsed: start.elapsed(),
    }
}

/// Solves the SPD system `G x = b` by Cholesky factorization. `G` is
/// `k×k` row-major. Falls back to a tiny diagonal ridge if the Gram matrix
/// is numerically singular (collinear atoms).
fn cholesky_solve<T: Real>(gram: &[T], rhs: &[T], k: usize) -> Vec<T> {
    let mut g = gram.to_vec();
    // Ridge for numerical safety.
    let trace: T = (0..k).map(|i| g[i * k + i]).sum();
    let ridge = T::from_f64(1e-12) * (trace / T::from_usize(k.max(1))).max(T::ONE);
    for i in 0..k {
        g[i * k + i] += ridge;
    }
    // In-place lower Cholesky.
    let mut l = vec![T::ZERO; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = g[i * k + j];
            for p in 0..j {
                sum -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                l[i * k + j] = sum.max(T::MIN_POSITIVE).sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    // Forward then backward substitution.
    let mut y = vec![T::ZERO; k];
    for i in 0..k {
        let mut sum = rhs[i];
        for p in 0..i {
            sum -= l[i * k + p] * y[p];
        }
        y[i] = sum / l[i * k + i];
    }
    let mut x = vec![T::ZERO; k];
    for i in (0..k).rev() {
        let mut sum = y[i];
        for p in (i + 1)..k {
            sum -= l[p * k + i] * x[p];
        }
        x[i] = sum / l[i * k + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelMode;
    use cs_sensing::MotePrng;

    fn instance(
        m: usize,
        n: usize,
        sparsity: usize,
        seed: u64,
    ) -> (DenseOperator<f64>, Vec<f64>, Vec<f64>, Vec<usize>) {
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0; n];
        let support: Vec<usize> = rng
            .distinct_below(sparsity, n as u32)
            .into_iter()
            .map(|v| v as usize)
            .collect();
        for &idx in &support {
            truth[idx] = rng.next_gaussian() + 2.0;
        }
        let y = op.apply(&truth);
        (op, truth, y, support)
    }

    #[test]
    fn exact_recovery_in_noiseless_case() {
        let (op, truth, y, support) = instance(64, 128, 5, 31);
        let r = omp(&op, &y, &OmpConfig::new(5));
        let mut found = r.support.clone();
        found.sort_unstable();
        let mut expect = support.clone();
        expect.sort_unstable();
        assert_eq!(found, expect, "support mismatch");
        for (a, b) in truth.iter().zip(&r.solution) {
            assert!((a - b).abs() < 1e-8);
        }
        assert!(r.relative_residual < 1e-8);
    }

    #[test]
    fn residual_tolerance_stops_early() {
        let (op, _, y, _) = instance(64, 128, 8, 5);
        let cfg = OmpConfig {
            max_sparsity: 128,
            residual_tolerance: 0.5,
        };
        let r = omp(&op, &y, &cfg);
        assert!(r.support.len() < 8, "kept selecting past the tolerance");
        assert!(r.relative_residual <= 0.5);
    }

    #[test]
    fn zero_measurements_return_zero() {
        let (op, _, _, _) = instance(16, 32, 2, 8);
        let r = omp(&op, &[0.0; 16], &OmpConfig::new(4));
        assert!(r.solution.iter().all(|&v| v == 0.0));
        assert!(r.support.is_empty());
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // G = [[4,2],[2,3]], b = [10, 9] → x = [2 - wait, solve directly]
        let g = [4.0, 2.0, 2.0, 3.0];
        let b = [10.0, 9.0];
        let x = cholesky_solve(&g, &b, 2);
        // Check G x = b.
        assert!((4.0 * x[0] + 2.0 * x[1] - 10.0).abs() < 1e-9);
        assert!((2.0 * x[0] + 3.0 * x[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sparsity cap")]
    fn zero_sparsity_panics() {
        let (op, _, y, _) = instance(16, 32, 2, 8);
        let _ = omp(&op, &y, &OmpConfig::new(0));
    }
}
