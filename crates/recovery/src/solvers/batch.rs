//! Batched (MMV) FISTA: K lanes share one operator, one Lipschitz
//! constant, and one block apply/adjoint per iteration.
//!
//! The solver is written so that every lane's floating-point operation
//! sequence is *identical* to what [`fista_warm_ws`](crate::fista_warm_ws)
//! would execute on that lane alone:
//!
//! * block apply/adjoint kernels compute each lane's output with the same
//!   per-element reductions as the scalar paths (only the (row, lane)
//!   visiting order changes, and no reduction crosses lanes);
//! * the elementwise residual/gradient/threshold/momentum updates run on
//!   lane-contiguous slices with the same shared kernels;
//! * the momentum scalars `t_k`/`β_k` are data-independent, so one global
//!   sequence serves all lanes regardless of when each converges.
//!
//! Convergence is tracked per lane: a lane whose stopping criterion fires
//! **freezes** — its slices are swapped out of the active prefix and never
//! touched again — while stragglers keep iterating at shrinking batch
//! width. Per-lane iteration counts, convergence flags, and residual norms
//! therefore match the sequential solver bit-for-bit; the equivalence
//! suite in `tests/numerical_equivalence.rs` pins this.

use crate::kernels::{
    group_soft_threshold, momentum_combine, soft_threshold, soft_threshold_weighted,
    squared_distance,
};
use crate::lipschitz::lipschitz_constant;
use crate::operator::LinearOperator;
use crate::solvers::shrinkage::{gradient_restart, ShrinkageConfig};
use crate::workspace::BatchWorkspace;
use cs_dsp::{l2_norm, Real};
use cs_telemetry::{Stage, TelemetryRegistry};
use std::time::Instant;

/// Per-tile iterate-block budget for the batched solver's cache-aware
/// tiling: the number of lanes solved together is chosen so that one
/// tile's hot per-lane buffers (α, α_prev, point, grad, y, residual) fit
/// in roughly this many bytes, leaving the operator's index stream and
/// the transform scratch to stream through the outer cache levels. The
/// budget is tuned empirically (an A/B sweep on the dev host put 4-lane
/// tiles ~7% ahead of both 2-lane and untiled at the paper geometry):
/// at N = 512, M = 256, f32 this yields 4-lane tiles; tiny test
/// geometries get the full batch in one tile.
const TILE_L1_BUDGET_BYTES: usize = 40 * 1024;

/// Which penalty the batched solver applies per lane — the batch-side
/// mirror of [`ProxSpec`](crate::ProxSpec), extended with a per-lane
/// weight table so a mixed fleet (each lane carrying its own support
/// prior) solves in one batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchPenalty<'a, T: Real> {
    /// Plain ℓ1 for every lane.
    L1,
    /// One shared weight vector (length `op.cols()`) applied to every
    /// lane — exactly the old `weights: Some(..)` behavior.
    Shared(&'a [T]),
    /// Per-lane weight vectors, lane-major (`weights[lane·n .. (lane+1)·n]`
    /// — indexed by *lane*, not slot, so freeze compaction never moves
    /// them).
    PerLane(&'a [T]),
    /// One shared contiguous group partition (group-ℓ1 prox) for every
    /// lane.
    Group(&'a [usize]),
}

/// Solves Eq. (3) for every lane staged in `ws` with one batched FISTA
/// run, sharing the operator's index walks across lanes.
///
/// `configs[lane]` carries each lane's λ and stopping criteria (the
/// kernel mode and iteration caps may differ per lane too); `weights`
/// optionally applies one shared per-coefficient ℓ1 weighting to every
/// lane, exactly like [`fista_weighted_warm_ws`](crate::fista_weighted_warm_ws);
/// `lipschitz` passes the shared step-size constant (`None` estimates it
/// by power iteration, as the sequential solver does).
///
/// Results stay in the workspace: read them through
/// [`BatchWorkspace::solution`], [`BatchWorkspace::iterations`],
/// [`BatchWorkspace::converged`], [`BatchWorkspace::residual_norm`] and
/// [`BatchWorkspace::elapsed`] — nothing is returned by value, so a warmed
/// workspace keeps the whole solve allocation-free.
///
/// Staging a single lane (K = 1) executes exactly the sequential
/// operation order, so the batch of one *is* the sequential path.
///
/// # Panics
///
/// Panics if no lane is staged, `configs.len() != ws.lanes()`, the staged
/// geometry differs from `op`'s, a config requests `record_objective`
/// (unsupported in batch mode — it would change the per-lane cost model),
/// a λ is negative, an iteration cap is zero, a weight is negative, or
/// `weights.len() != op.cols()`.
pub fn fista_warm_batch_ws<T: Real, A: LinearOperator<T>>(
    op: &A,
    configs: &[ShrinkageConfig<T>],
    weights: Option<&[T]>,
    lipschitz: Option<T>,
    ws: &mut BatchWorkspace<T>,
) {
    let penalty = match weights {
        Some(w) => BatchPenalty::Shared(w),
        None => BatchPenalty::L1,
    };
    fista_prior_batch_ws(op, configs, penalty, false, lipschitz, ws);
}

/// The prior-driven batched solver: [`fista_warm_batch_ws`] generalized to
/// a [`BatchPenalty`] (per-lane support weights, group shrinkage) and an
/// optional O'Donoghue–Candès adaptive restart.
///
/// Momentum is tracked per lane, and the restart test runs on each lane's
/// own slices with the same arithmetic as the sequential
/// [`fista_prior_warm_ws`](crate::fista_prior_warm_ws) — a restarting
/// batch lane matches its sequential solve bit-for-bit, restart or not.
/// With `BatchPenalty::L1`/`Shared` and `adaptive_restart = false` this is
/// exactly the old solver (every lane's momentum sequence is the shared
/// one).
///
/// # Panics
///
/// Panics under [`fista_warm_batch_ws`]'s conditions, or if the penalty is
/// inconsistent with the geometry (`Shared` length ≠ `op.cols()`,
/// `PerLane` length ≠ `lanes · op.cols()`, negative weight, or `Group`
/// sizes that do not tile `op.cols()`).
pub fn fista_prior_batch_ws<T: Real, A: LinearOperator<T>>(
    op: &A,
    configs: &[ShrinkageConfig<T>],
    penalty: BatchPenalty<'_, T>,
    adaptive_restart: bool,
    lipschitz: Option<T>,
    ws: &mut BatchWorkspace<T>,
) {
    let k = ws.lanes;
    let (m, n) = (op.rows(), op.cols());
    assert!(k > 0, "batched solver: no lanes staged");
    assert_eq!(configs.len(), k, "batched solver: one config per lane required");
    assert_eq!(ws.rows, m, "batched solver: staged rows mismatch operator");
    assert_eq!(ws.cols, n, "batched solver: staged cols mismatch operator");
    for config in configs {
        assert!(config.lambda >= T::ZERO, "batched solver: negative lambda");
        assert!(config.max_iterations > 0, "batched solver: zero iteration cap");
        assert!(
            !config.record_objective,
            "batched solver: objective recording is not supported in batch mode"
        );
    }
    match penalty {
        BatchPenalty::L1 => {}
        BatchPenalty::Shared(w) => {
            assert_eq!(w.len(), n, "batched solver: weights length mismatch");
            assert!(
                w.iter().all(|&v| v >= T::ZERO),
                "batched solver: negative weight"
            );
        }
        BatchPenalty::PerLane(w) => {
            assert_eq!(
                w.len(),
                k * n,
                "batched solver: per-lane weights length mismatch"
            );
            assert!(
                w.iter().all(|&v| v >= T::ZERO),
                "batched solver: negative weight"
            );
        }
        BatchPenalty::Group(sizes) => {
            assert_eq!(
                sizes.iter().sum::<usize>(),
                n,
                "batched solver: group sizes do not tile the coefficient vector"
            );
        }
    }

    let start = Instant::now();
    // Size the iteration blocks (no-op once the workspace has seen this
    // width and geometry — the zero-alloc suite pins it).
    ws.reserve(m, n, k);
    if let BatchPenalty::Group(sizes) = penalty {
        if ws.group_norms.len() < sizes.len() {
            ws.group_norms.resize(sizes.len(), T::ZERO);
        }
    }

    let l = lipschitz.unwrap_or_else(|| lipschitz_constant(op, 60));
    if l == T::ZERO {
        // A zero operator admits the zero solution immediately, per lane —
        // mirrors the sequential early return.
        for lane in 0..k {
            let s = ws.slot_of_lane[lane];
            ws.alpha[s * n..(s + 1) * n].fill(T::ZERO);
            ws.iterations[lane] = 0;
            ws.converged[lane] = true;
            ws.residual_norm[lane] = l2_norm(&ws.y[s * m..(s + 1) * m]);
        }
        ws.elapsed = start.elapsed();
        return;
    }
    let inv_l = T::ONE / l;
    for (lane, config) in configs.iter().enumerate() {
        let s = ws.slot_of_lane[lane];
        ws.threshold[lane] = config.lambda * inv_l;
        ws.residual_target[lane] =
            config.residual_tolerance * l2_norm(&ws.y[s * m..(s + 1) * m]);
    }

    // Seed: α from staging (warm or zeros), extrapolation point = α,
    // α_prev = 0 — the sequential solver's exact starting state per lane.
    ws.alpha_prev[..k * n].fill(T::ZERO);
    ws.point[..k * n].copy_from_slice(&ws.alpha[..k * n]);

    // Cache-aware tiling: lanes are independent (the momentum scalars are
    // data-independent and every reduction is lane-local), so the batch
    // can be solved one L1-sized tile at a time instead of streaming all
    // K lanes' iterate blocks through cache every iteration. A tile still
    // amortizes the operator's index walks across its lanes; keeping the
    // tile's working set L1-resident is what lets that amortization show
    // up as wall-clock instead of being paid back in cache misses. Tile
    // membership changes no lane's operation sequence — bit-exactness is
    // unaffected, and the equivalence suite pins it.
    let per_lane_bytes = (4 * n + 2 * m) * core::mem::size_of::<T>();
    let tile_width = (TILE_L1_BUDGET_BYTES / per_lane_bytes.max(1)).clamp(1, k);

    // Every lane's momentum sequence starts at t₁ = 1, exactly like the
    // sequential solver. Without restart the sequences stay identical
    // across lanes (t_k is data-independent), reproducing the old shared
    // scalar bit-for-bit; with restart each lane walks its own schedule.
    ws.momentum[..k].fill(T::ONE);

    let mut tile_start = 0;
    while tile_start < k {
        let tile_len = tile_width.min(k - tile_start);
        let lo_n = tile_start * n;
        let lo_m = tile_start * m;
        let mut active = tile_len;
        let mut iter = 0;
        while active > 0 {
            iter += 1;
            let wn = active * n;
            let wm = active * m;

            // residual = A·point − y over the tile's active prefix.
            op.apply_block_into_ws(
                &ws.point[lo_n..lo_n + wn],
                active,
                &mut ws.residual[lo_m..lo_m + wm],
                &mut ws.op_ws,
            );
            for (r, &yi) in ws.residual[lo_m..lo_m + wm]
                .iter_mut()
                .zip(&ws.y[lo_m..lo_m + wm])
            {
                *r -= yi;
            }
            // grad = 2·Aᴴ·residual; fold the 2 into the step, as sequentially.
            op.adjoint_block_into_ws(
                &ws.residual[lo_m..lo_m + wm],
                active,
                &mut ws.grad[lo_n..lo_n + wn],
                &mut ws.op_ws,
            );
            for (p, &g) in ws.point[lo_n..lo_n + wn]
                .iter_mut()
                .zip(&ws.grad[lo_n..lo_n + wn])
            {
                *p -= T::TWO * inv_l * g;
            }
            // Pointer-swap α and α_prev exactly like the sequential solver
            // — copying would add ~4 KB of traffic per lane-iteration, the
            // dominant batch-only overhead at fleet geometry. The price is
            // that slots outside the tile's active prefix (frozen lanes,
            // other tiles) have their contents ping-pong between the two
            // blocks; the per-tile epilogue below restores orientation and
            // copies frozen finals home once, instead of per iteration.
            std::mem::swap(&mut ws.alpha, &mut ws.alpha_prev);
            for s in tile_start..tile_start + active {
                let lane = ws.lane_of_slot[s];
                let mode = configs[lane].kernel;
                let threshold = ws.threshold[lane];
                match penalty {
                    BatchPenalty::L1 => soft_threshold(
                        &ws.point[s * n..(s + 1) * n],
                        threshold,
                        &mut ws.alpha[s * n..(s + 1) * n],
                        mode,
                    ),
                    BatchPenalty::Shared(w) => soft_threshold_weighted(
                        &ws.point[s * n..(s + 1) * n],
                        threshold,
                        w,
                        &mut ws.alpha[s * n..(s + 1) * n],
                        mode,
                    ),
                    BatchPenalty::PerLane(w) => soft_threshold_weighted(
                        &ws.point[s * n..(s + 1) * n],
                        threshold,
                        &w[lane * n..(lane + 1) * n],
                        &mut ws.alpha[s * n..(s + 1) * n],
                        mode,
                    ),
                    BatchPenalty::Group(sizes) => group_soft_threshold(
                        &ws.point[s * n..(s + 1) * n],
                        threshold,
                        sizes,
                        &mut ws.group_norms,
                        &mut ws.alpha[s * n..(s + 1) * n],
                        mode,
                    ),
                }
            }

            // Per-lane stopping checks, in the sequential order (step size
            // first, then the optional residual target).
            for s in tile_start..tile_start + active {
                let lane = ws.lane_of_slot[s];
                let config = &configs[lane];
                ws.iterations[lane] = iter;
                let mut converged = false;
                if config.tolerance > T::ZERO {
                    let step = squared_distance(
                        &ws.alpha[s * n..(s + 1) * n],
                        &ws.alpha_prev[s * n..(s + 1) * n],
                        config.kernel,
                    )
                    .sqrt();
                    let scale = l2_norm(&ws.alpha[s * n..(s + 1) * n]).max(T::ONE);
                    if step <= config.tolerance * scale {
                        converged = true;
                    }
                }
                if !converged && config.residual_tolerance > T::ZERO {
                    // The residual block slot is free scratch here: it is
                    // recomputed from scratch next iteration (and below).
                    op.apply_into_ws(
                        &ws.alpha[s * n..(s + 1) * n],
                        &mut ws.residual[s * m..(s + 1) * m],
                        &mut ws.op_ws,
                    );
                    for (r, &yi) in ws.residual[s * m..(s + 1) * m]
                        .iter_mut()
                        .zip(&ws.y[s * m..(s + 1) * m])
                    {
                        *r -= yi;
                    }
                    if l2_norm(&ws.residual[s * m..(s + 1) * m]) <= ws.residual_target[lane] {
                        converged = true;
                    }
                }
                ws.converged[lane] = converged;
                ws.freeze[s] = converged || iter >= config.max_iterations;
            }

            // Momentum over every lane active this iteration — including
            // ones about to freeze: the sequential loop runs Eq. (5)–(6)
            // before its `break`. The adaptive-restart test runs on each
            // lane's own slices, in the same spot as the sequential loop
            // (after the prox, before the extrapolation), so per-lane
            // momentum evolves identically to the lane's private solve.
            for s in tile_start..tile_start + active {
                let lane = ws.lane_of_slot[s];
                let mode = configs[lane].kernel;
                if adaptive_restart
                    && gradient_restart(
                        &ws.point[s * n..(s + 1) * n],
                        &ws.grad[s * n..(s + 1) * n],
                        &ws.alpha[s * n..(s + 1) * n],
                        &ws.alpha_prev[s * n..(s + 1) * n],
                        inv_l,
                    )
                {
                    ws.momentum[lane] = T::ONE;
                }
                let t = ws.momentum[lane];
                let t_next = (T::ONE + (T::ONE + T::from_f64(4.0) * t * t).sqrt()) * T::HALF;
                let beta = (t - T::ONE) / t_next;
                momentum_combine(
                    &ws.alpha[s * n..(s + 1) * n],
                    &ws.alpha_prev[s * n..(s + 1) * n],
                    beta,
                    &mut ws.point[s * n..(s + 1) * n],
                    mode,
                );
                ws.momentum[lane] = t_next;
            }

            // Compact: swap each freezing lane's slices to the back of the
            // tile's active prefix. Frozen slots are never touched again,
            // so each lane's final α is exactly its converging iterate.
            let mut s = tile_start;
            while s < tile_start + active {
                if ws.freeze[s] {
                    let last = tile_start + active - 1;
                    if s != last {
                        swap_slots(ws, s, last, m, n);
                        ws.freeze.swap(s, last);
                    }
                    active -= 1;
                } else {
                    s += 1;
                }
            }
        }

        // Tile epilogue. First restore block orientation: the tile's loop
        // swapped α/α_prev `iter` times; an odd count leaves every slot
        // *outside* this tile (earlier tiles' finals, later tiles' staged
        // seeds and zeroed α_prev) in the wrong block, so undo it with one
        // more pointer swap.
        let restore = iter % 2 == 1;
        if restore {
            std::mem::swap(&mut ws.alpha, &mut ws.alpha_prev);
        }
        // Then copy frozen finals home: a lane frozen at iteration f wrote
        // its final α into the block that was `alpha` *then*; it sits in
        // `alpha_prev` now iff the swap count since — (iter − f), plus the
        // restore swap — is odd. (Values are untouched either way: frozen
        // slots are outside every active-prefix loop.)
        for s in tile_start..tile_start + tile_len {
            let lane = ws.lane_of_slot[s];
            let swaps_since = (iter - ws.iterations[lane]) + usize::from(restore);
            if swaps_since % 2 == 1 {
                ws.alpha[s * n..(s + 1) * n]
                    .copy_from_slice(&ws.alpha_prev[s * n..(s + 1) * n]);
            }
        }

        tile_start += tile_len;
    }

    // Final data-fit residual for every lane via one full-width block
    // apply — the same computation the sequential epilogue performs.
    op.apply_block_into_ws(&ws.alpha[..k * n], k, &mut ws.residual[..k * m], &mut ws.op_ws);
    for (r, &yi) in ws.residual[..k * m].iter_mut().zip(&ws.y[..k * m]) {
        *r -= yi;
    }
    for s in 0..k {
        let lane = ws.lane_of_slot[s];
        ws.residual_norm[lane] = l2_norm(&ws.residual[s * m..(s + 1) * m]);
    }
    ws.elapsed = start.elapsed();
}

/// [`fista_warm_batch_ws`] under a [`Stage::BatchSolve`] telemetry span,
/// with the batch width recorded into the `cs_batch_occupancy` histogram.
pub fn fista_warm_batch_ws_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    configs: &[ShrinkageConfig<T>],
    weights: Option<&[T]>,
    lipschitz: Option<T>,
    ws: &mut BatchWorkspace<T>,
    telemetry: &TelemetryRegistry,
) {
    let _span = telemetry.span(Stage::BatchSolve);
    telemetry.record_batch_occupancy(ws.lanes());
    fista_warm_batch_ws(op, configs, weights, lipschitz, ws);
}

/// [`fista_prior_batch_ws`] under a [`Stage::BatchSolve`] telemetry span,
/// with the batch width recorded into the `cs_batch_occupancy` histogram.
pub fn fista_prior_batch_ws_observed<T: Real, A: LinearOperator<T>>(
    op: &A,
    configs: &[ShrinkageConfig<T>],
    penalty: BatchPenalty<'_, T>,
    adaptive_restart: bool,
    lipschitz: Option<T>,
    ws: &mut BatchWorkspace<T>,
    telemetry: &TelemetryRegistry,
) {
    let _span = telemetry.span(Stage::BatchSolve);
    telemetry.record_batch_occupancy(ws.lanes());
    fista_prior_batch_ws(op, configs, penalty, adaptive_restart, lipschitz, ws);
}

/// Swaps two block slots across every lane-striped buffer (iterates *and*
/// the staged measurements — the active-prefix elementwise loops pair
/// `residual[..w·m]` with `y[..w·m]` positionally), then fixes the
/// lane ↔ slot permutation. `grad`/`residual` are fully recomputed each
/// iteration and need no swap.
fn swap_slots<T: Real>(ws: &mut BatchWorkspace<T>, a: usize, b: usize, m: usize, n: usize) {
    debug_assert!(a < b);
    swap_block(&mut ws.alpha, a, b, n);
    swap_block(&mut ws.alpha_prev, a, b, n);
    swap_block(&mut ws.point, a, b, n);
    swap_block(&mut ws.y, a, b, m);
    let (lane_a, lane_b) = (ws.lane_of_slot[a], ws.lane_of_slot[b]);
    ws.lane_of_slot.swap(a, b);
    ws.slot_of_lane[lane_a] = b;
    ws.slot_of_lane[lane_b] = a;
}

/// Swaps chunks `[a·len .. (a+1)·len]` and `[b·len .. (b+1)·len]` of one
/// buffer (`a < b`).
fn swap_block<T: Real>(buf: &mut [T], a: usize, b: usize, len: usize) {
    let (lo, hi) = buf.split_at_mut(b * len);
    lo[a * len..(a + 1) * len].swap_with_slice(&mut hi[..len]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::DenseOperator;
    use crate::solvers::shrinkage::{fista_warm_ws, fista_weighted_warm_ws, lambda_max};
    use crate::workspace::FistaWorkspace;
    use crate::KernelMode;
    use cs_sensing::MotePrng;

    fn instance(m: usize, n: usize, seed: u64) -> (DenseOperator<f64>, Vec<Vec<f64>>) {
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let ys: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..m).map(|_| rng.next_gaussian()).collect())
            .collect();
        (op, ys)
    }

    fn assert_lane_matches(
        bws: &BatchWorkspace<f64>,
        lane: usize,
        seq: &crate::SolverResult<f64>,
        label: &str,
    ) {
        assert_eq!(bws.iterations(lane), seq.iterations, "{label}: iterations");
        assert_eq!(bws.converged(lane), seq.converged, "{label}: converged");
        assert_eq!(
            bws.residual_norm(lane).to_bits(),
            seq.residual_norm.to_bits(),
            "{label}: residual norm"
        );
        for (i, (a, b)) in bws.solution(lane).iter().zip(&seq.solution).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: solution[{i}]");
        }
    }

    #[test]
    fn batch_matches_sequential_bitwise_with_masks() {
        let (op, ys) = instance(24, 48, 7);
        // Per-lane λ spread over two decades plus staggered iteration caps
        // force lanes to freeze at different iterations, exercising the
        // convergence-mask compaction path.
        let lambdas = [0.001, 0.02, 0.1, 0.4];
        let caps = [400, 370, 340, 310];
        let configs: Vec<ShrinkageConfig<f64>> = (0..4)
            .map(|lane| ShrinkageConfig {
                tolerance: 1e-6,
                max_iterations: caps[lane],
                ..ShrinkageConfig::new(lambdas[lane])
            })
            .collect();
        let mut bws = BatchWorkspace::for_operator(&op, 4);
        bws.begin(op.rows(), op.cols());
        for y in ys.iter().take(4) {
            bws.stage_lane(y, None);
        }
        fista_warm_batch_ws(&op, &configs, None, Some(9.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        let mut iteration_counts = Vec::new();
        for (lane, y) in ys.iter().take(4).enumerate() {
            let seq = fista_warm_ws(&op, y, &configs[lane], Some(9.0), None, &mut ws);
            iteration_counts.push(seq.iterations);
            assert_lane_matches(&bws, lane, &seq, &format!("lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
        // The masks must actually have been exercised: not all lanes
        // stopped at the same iteration.
        iteration_counts.sort_unstable();
        iteration_counts.dedup();
        assert!(iteration_counts.len() > 1, "lanes converged in lockstep");
    }

    #[test]
    fn warm_started_batch_matches_sequential() {
        let (op, ys) = instance(20, 40, 21);
        let cfg = ShrinkageConfig {
            tolerance: 1e-5,
            max_iterations: 300,
            ..ShrinkageConfig::new(0.01)
        };
        let warm: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin() * 0.1).collect();
        let mut bws = BatchWorkspace::for_operator(&op, 3);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], Some(&warm));
        bws.stage_lane(&ys[1], None);
        bws.stage_lane(&ys[2], Some(&warm));
        fista_warm_batch_ws(&op, &[cfg.clone(), cfg.clone(), cfg.clone()], None, Some(9.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        for (lane, warm_start) in [Some(&warm), None, Some(&warm)].into_iter().enumerate() {
            let seq = fista_warm_ws(
                &op,
                &ys[lane],
                &cfg,
                Some(9.0),
                warm_start.map(|w| &w[..]),
                &mut ws,
            );
            assert_lane_matches(&bws, lane, &seq, &format!("warm lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn weighted_batch_matches_weighted_sequential() {
        let (op, ys) = instance(16, 32, 5);
        let cfg = ShrinkageConfig {
            tolerance: 1e-5,
            max_iterations: 250,
            ..ShrinkageConfig::new(0.02)
        };
        let weights: Vec<f64> = (0..32).map(|i| 0.5 + (i % 4) as f64 * 0.25).collect();
        let mut bws = BatchWorkspace::for_operator(&op, 2);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], None);
        bws.stage_lane(&ys[1], None);
        fista_warm_batch_ws(&op, &[cfg.clone(), cfg.clone()], Some(&weights), Some(9.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        for lane in 0..2 {
            let seq =
                fista_weighted_warm_ws(&op, &ys[lane], &cfg, Some(9.0), &weights, None, &mut ws);
            assert_lane_matches(&bws, lane, &seq, &format!("weighted lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn per_lane_weighted_batch_matches_weighted_sequential() {
        let (op, ys) = instance(16, 32, 9);
        let cfg = ShrinkageConfig {
            tolerance: 1e-5,
            max_iterations: 250,
            ..ShrinkageConfig::new(0.02)
        };
        let n = op.cols();
        // Three lanes with three distinct weight vectors, lane-major.
        let weights: Vec<f64> = (0..3 * n)
            .map(|i| {
                let (lane, j) = (i / n, i % n);
                0.25 + (lane as f64) * 0.3 + (j % 5) as f64 * 0.1
            })
            .collect();
        let mut bws = BatchWorkspace::for_operator(&op, 3);
        bws.begin(op.rows(), op.cols());
        for y in ys.iter().take(3) {
            bws.stage_lane(y, None);
        }
        fista_prior_batch_ws(
            &op,
            &[cfg.clone(), cfg.clone(), cfg.clone()],
            BatchPenalty::PerLane(&weights),
            false,
            Some(9.0),
            &mut bws,
        );

        let mut ws = FistaWorkspace::for_operator(&op);
        for lane in 0..3 {
            let seq = fista_weighted_warm_ws(
                &op,
                &ys[lane],
                &cfg,
                Some(9.0),
                &weights[lane * n..(lane + 1) * n],
                None,
                &mut ws,
            );
            assert_lane_matches(&bws, lane, &seq, &format!("per-lane weighted lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn restarting_batch_matches_restarting_sequential() {
        use crate::solvers::shrinkage::{fista_prior_warm_ws, ProxSpec};
        let (op, ys) = instance(24, 48, 17);
        // Spread λ so lanes restart (and freeze) at different iterations.
        let lambdas = [0.002, 0.05, 0.3];
        let configs: Vec<ShrinkageConfig<f64>> = (0..3)
            .map(|lane| ShrinkageConfig {
                tolerance: 1e-6,
                max_iterations: 400,
                ..ShrinkageConfig::new(lambdas[lane])
            })
            .collect();
        let warm: Vec<f64> = (0..48).map(|i| (i as f64 * 0.4).cos() * 0.2).collect();
        let mut bws = BatchWorkspace::for_operator(&op, 3);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], Some(&warm));
        bws.stage_lane(&ys[1], None);
        bws.stage_lane(&ys[2], Some(&warm));
        fista_prior_batch_ws(&op, &configs, BatchPenalty::L1, true, Some(9.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        for (lane, warm_start) in [Some(&warm), None, Some(&warm)].into_iter().enumerate() {
            let seq = fista_prior_warm_ws(
                &op,
                &ys[lane],
                &configs[lane],
                Some(9.0),
                ProxSpec::L1,
                true,
                warm_start.map(|w| &w[..]),
                &mut ws,
            );
            assert_lane_matches(&bws, lane, &seq, &format!("restart lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn group_batch_matches_group_sequential() {
        use crate::solvers::shrinkage::{fista_prior_warm_ws, ProxSpec};
        let (op, ys) = instance(16, 32, 25);
        let cfg = ShrinkageConfig {
            tolerance: 1e-5,
            max_iterations: 250,
            ..ShrinkageConfig::new(0.02)
        };
        // Mixed partition: singletons up front, 4-wide groups after.
        let mut sizes = vec![1_usize; 8];
        sizes.extend(std::iter::repeat(4).take(6));
        assert_eq!(sizes.iter().sum::<usize>(), op.cols());
        let mut bws = BatchWorkspace::for_operator(&op, 2);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], None);
        bws.stage_lane(&ys[1], None);
        fista_prior_batch_ws(
            &op,
            &[cfg.clone(), cfg.clone()],
            BatchPenalty::Group(&sizes),
            false,
            Some(9.0),
            &mut bws,
        );

        let mut ws = FistaWorkspace::for_operator(&op);
        for lane in 0..2 {
            let seq = fista_prior_warm_ws(
                &op,
                &ys[lane],
                &cfg,
                Some(9.0),
                ProxSpec::Group(&sizes),
                false,
                None,
                &mut ws,
            );
            assert_lane_matches(&bws, lane, &seq, &format!("group lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn k1_is_exactly_the_sequential_path() {
        let (op, ys) = instance(24, 48, 99);
        let cfg = ShrinkageConfig {
            lambda: 0.01 * lambda_max(&op, &ys[0]),
            tolerance: 1e-6,
            max_iterations: 500,
            ..ShrinkageConfig::new(0.0)
        };
        let mut bws = BatchWorkspace::for_operator(&op, 1);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], None);
        fista_warm_batch_ws(&op, &[cfg.clone()], None, Some(9.0), &mut bws);
        let mut ws = FistaWorkspace::for_operator(&op);
        let seq = fista_warm_ws(&op, &ys[0], &cfg, Some(9.0), None, &mut ws);
        assert_lane_matches(&bws, 0, &seq, "k=1");
    }

    #[test]
    fn residual_tolerance_stopping_matches() {
        let (op, ys) = instance(16, 32, 13);
        let cfg = ShrinkageConfig {
            tolerance: 0.0,
            residual_tolerance: 0.7,
            max_iterations: 200,
            ..ShrinkageConfig::new(0.005)
        };
        let mut bws = BatchWorkspace::for_operator(&op, 2);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], None);
        bws.stage_lane(&ys[1], None);
        fista_warm_batch_ws(&op, &[cfg.clone(), cfg.clone()], None, Some(9.0), &mut bws);
        let mut ws = FistaWorkspace::for_operator(&op);
        for lane in 0..2 {
            let seq = fista_warm_ws(&op, &ys[lane], &cfg, Some(9.0), None, &mut ws);
            assert!(seq.converged, "residual stop never fired");
            assert_lane_matches(&bws, lane, &seq, &format!("residual lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn multi_tile_batch_matches_sequential_bitwise() {
        // Geometry sized so the f64 per-lane working set ((4·256 + 2·128)
        // · 8 = 10 KB) forces 4-lane tiles at K = 5 — the batch splits
        // into tiles of 4 and 1, exercising the tile loop, the
        // orientation-restore swap, and the per-tile parity fixup.
        let (op, ys) = instance(128, 256, 31);
        let per_lane = (4 * 256 + 2 * 128) * core::mem::size_of::<f64>();
        assert!(
            TILE_L1_BUDGET_BYTES / per_lane == 4,
            "geometry no longer forces 4-lane tiles; resize the test"
        );
        let lambdas = [0.002, 0.01, 0.05, 0.2, 0.9];
        let configs: Vec<ShrinkageConfig<f64>> = (0..5)
            .map(|lane| ShrinkageConfig {
                tolerance: 1e-6,
                max_iterations: 300 + 20 * lane,
                ..ShrinkageConfig::new(lambdas[lane])
            })
            .collect();
        let mut bws = BatchWorkspace::for_operator(&op, 5);
        bws.begin(op.rows(), op.cols());
        for y in ys.iter().take(5) {
            bws.stage_lane(y, None);
        }
        fista_warm_batch_ws(&op, &configs, None, Some(9.0), &mut bws);

        let mut ws = FistaWorkspace::for_operator(&op);
        for (lane, y) in ys.iter().take(5).enumerate() {
            let seq = fista_warm_ws(&op, y, &configs[lane], Some(9.0), None, &mut ws);
            assert_lane_matches(&bws, lane, &seq, &format!("tiled lane {lane}"));
            ws.recycle_solution(seq.solution);
        }
    }

    #[test]
    fn workspace_reuse_is_bitwise_stable() {
        let (op, ys) = instance(20, 40, 3);
        let cfg = ShrinkageConfig {
            tolerance: 1e-5,
            max_iterations: 300,
            ..ShrinkageConfig::new(0.01)
        };
        let configs = vec![cfg; 3];
        let mut bws = BatchWorkspace::for_operator(&op, 3);
        let mut first: Vec<Vec<f64>> = Vec::new();
        for round in 0..3 {
            bws.begin(op.rows(), op.cols());
            for y in ys.iter().take(3) {
                bws.stage_lane(y, None);
            }
            fista_warm_batch_ws(&op, &configs, None, Some(9.0), &mut bws);
            if round == 0 {
                first = (0..3).map(|l| bws.solution(l).to_vec()).collect();
            } else {
                for (lane, expect) in first.iter().enumerate() {
                    assert_eq!(bws.solution(lane), &expect[..], "round {round} lane {lane}");
                }
            }
        }
    }

    #[test]
    fn observed_wrapper_records_span_and_occupancy() {
        let (op, ys) = instance(16, 32, 1);
        let cfg = ShrinkageConfig {
            tolerance: 1e-4,
            max_iterations: 100,
            ..ShrinkageConfig::new(0.02)
        };
        let telemetry = TelemetryRegistry::new();
        let mut bws = BatchWorkspace::for_operator(&op, 2);
        bws.begin(op.rows(), op.cols());
        bws.stage_lane(&ys[0], None);
        bws.stage_lane(&ys[1], None);
        fista_warm_batch_ws_observed(
            &op,
            &[cfg.clone(), cfg],
            None,
            Some(9.0),
            &mut bws,
            &telemetry,
        );
        assert_eq!(telemetry.stage(Stage::BatchSolve).count(), 1);
        assert_eq!(telemetry.batch_occupancy().count(), 1);
        assert_eq!(telemetry.batch_occupancy().snapshot().sum_ns(), 2);
    }
}
