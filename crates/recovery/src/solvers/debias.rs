//! Least-squares debiasing of an ℓ1 solution.
//!
//! Soft thresholding shrinks every surviving coefficient by `λ/L`, so the
//! FISTA minimizer is biased toward zero. The standard remedy (popularized
//! by GPSR, Figueiredo et al. 2007 — the paper's ref. [9]) is a *debiasing*
//! pass: freeze the support recovered by the ℓ1 solve and re-fit the
//! nonzero coefficients by unconstrained least squares on that support.
//! The refit is computed matrix-free with conjugate gradients on the
//! normal equations, so it composes with [`SynthesisOperator`] without
//! ever materializing a matrix.
//!
//! [`SynthesisOperator`]: crate::SynthesisOperator

use crate::operator::LinearOperator;
use cs_dsp::{l2_norm, Real};

/// Configuration of the debiasing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebiasConfig<T: Real> {
    /// Maximum conjugate-gradient iterations.
    pub max_iterations: usize,
    /// Relative residual tolerance of the CG solve.
    pub tolerance: T,
    /// Coefficients with magnitude at or below this fraction of the
    /// largest coefficient are treated as "off the support".
    pub support_threshold: T,
}

impl<T: Real> Default for DebiasConfig<T> {
    fn default() -> Self {
        DebiasConfig {
            max_iterations: 50,
            tolerance: T::from_f64(1e-6),
            support_threshold: T::from_f64(1e-3),
        }
    }
}

/// Re-fits `alpha`'s support by least squares: solves
/// `min_z ‖A·M·z − y‖₂` where `M` masks coordinates off the support,
/// returning the debiased coefficient vector (zeros off-support).
///
/// Returns the input unchanged if the support is empty.
///
/// # Panics
///
/// Panics if `alpha.len() != op.cols()` or `y.len() != op.rows()`.
///
/// # Examples
///
/// ```
/// use cs_recovery::{debias, DebiasConfig, DenseOperator, KernelMode, LinearOperator};
///
/// // A biased estimate of a 1-sparse vector under an identity operator.
/// let a = DenseOperator::from_row_major(2, 2, vec![1.0, 0.0, 0.0, 1.0], KernelMode::Scalar);
/// let y = vec![3.0_f64, 0.0];
/// let biased = vec![2.2, 0.0]; // shrunk by the ℓ1 penalty
/// let fixed = debias(&a, &y, &biased, &DebiasConfig::default());
/// assert!((fixed[0] - 3.0).abs() < 1e-6);
/// assert_eq!(fixed[1], 0.0);
/// ```
pub fn debias<T: Real, A: LinearOperator<T>>(
    op: &A,
    y: &[T],
    alpha: &[T],
    config: &DebiasConfig<T>,
) -> Vec<T> {
    assert_eq!(alpha.len(), op.cols(), "debias: alpha length mismatch");
    assert_eq!(y.len(), op.rows(), "debias: y length mismatch");

    // Support mask.
    let peak = alpha.iter().fold(T::ZERO, |m, &v| m.max(v.abs()));
    if peak == T::ZERO {
        return alpha.to_vec();
    }
    let cut = peak * config.support_threshold;
    let mask: Vec<bool> = alpha.iter().map(|&v| v.abs() > cut).collect();
    if !mask.iter().any(|&b| b) {
        return alpha.to_vec();
    }

    // CG on the normal equations  (MᵀAᵀA M) z = Mᵀ Aᵀ y, warm-started at
    // the masked ℓ1 solution.
    let n = op.cols();
    let m = op.rows();
    let apply_masked = |v: &[T], out: &mut Vec<T>, tmp_m: &mut Vec<T>, tmp_n: &mut Vec<T>| {
        // out = Mᵀ Aᵀ A M v
        tmp_n.clear();
        tmp_n.extend(v.iter().zip(&mask).map(|(&x, &keep)| if keep { x } else { T::ZERO }));
        tmp_m.resize(m, T::ZERO);
        op.apply_into(tmp_n, tmp_m);
        out.resize(n, T::ZERO);
        op.adjoint_into(tmp_m, out);
        for (o, &keep) in out.iter_mut().zip(&mask) {
            if !keep {
                *o = T::ZERO;
            }
        }
    };

    // b = Mᵀ Aᵀ y
    let mut b = op.adjoint(y);
    for (v, &keep) in b.iter_mut().zip(&mask) {
        if !keep {
            *v = T::ZERO;
        }
    }
    let norm_b = l2_norm(&b);
    if norm_b == T::ZERO {
        return alpha.to_vec();
    }

    let mut z: Vec<T> = alpha
        .iter()
        .zip(&mask)
        .map(|(&v, &keep)| if keep { v } else { T::ZERO })
        .collect();
    let mut az = Vec::new();
    let mut tmp_m = Vec::new();
    let mut tmp_n = Vec::new();
    apply_masked(&z, &mut az, &mut tmp_m, &mut tmp_n);
    let mut r: Vec<T> = b.iter().zip(&az).map(|(&bi, &ai)| bi - ai).collect();
    let mut p = r.clone();
    let mut rs_old: T = r.iter().map(|&v| v * v).sum();

    for _ in 0..config.max_iterations {
        if rs_old.sqrt() <= config.tolerance * norm_b {
            break;
        }
        let mut ap = Vec::new();
        apply_masked(&p, &mut ap, &mut tmp_m, &mut tmp_n);
        let p_ap: T = p.iter().zip(&ap).map(|(&a, &c)| a * c).sum();
        if p_ap <= T::ZERO {
            break; // numerically singular on this support
        }
        let step = rs_old / p_ap;
        for ((zi, &pi), (ri, &api)) in
            z.iter_mut().zip(&p).zip(r.iter_mut().zip(&ap))
        {
            *zi += step * pi;
            *ri -= step * api;
        }
        let rs_new: T = r.iter().map(|&v| v * v).sum();
        let beta = rs_new / rs_old;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelMode;
    use crate::operator::DenseOperator;
    use crate::solvers::shrinkage::{fista, ShrinkageConfig};
    use cs_sensing::MotePrng;

    fn instance(
        m: usize,
        n: usize,
        sparsity: usize,
        seed: u64,
    ) -> (DenseOperator<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = MotePrng::new(seed);
        let data: Vec<f64> = (0..m * n)
            .map(|_| rng.next_gaussian() / (m as f64).sqrt())
            .collect();
        let op = DenseOperator::from_row_major(m, n, data, KernelMode::Unrolled4);
        let mut truth = vec![0.0; n];
        for idx in rng.distinct_below(sparsity, n as u32) {
            truth[idx as usize] = rng.next_gaussian() * 2.0 + 1.5;
        }
        let y = op.apply(&truth);
        (op, truth, y)
    }

    fn rel_err(a: &[f64], b: &[f64]) -> f64 {
        let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        let den: f64 = a.iter().map(|x| x * x).sum();
        (num / den).sqrt()
    }

    #[test]
    fn debias_improves_a_deliberately_biased_solve() {
        let (op, truth, y) = instance(64, 128, 5, 11);
        // Large lambda ⇒ strong shrinkage bias.
        let cfg = ShrinkageConfig {
            lambda: 0.5,
            max_iterations: 1500,
            tolerance: 1e-8,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };
        let biased = fista(&op, &y, &cfg, None).solution;
        let fixed = debias(&op, &y, &biased, &DebiasConfig::default());
        let before = rel_err(&truth, &biased);
        let after = rel_err(&truth, &fixed);
        assert!(
            after < before * 0.2,
            "debiasing should cut the error: {before} → {after}"
        );
        assert!(after < 1e-4, "noiseless refit should be near-exact: {after}");
    }

    #[test]
    fn zero_solution_passes_through() {
        let (op, _, y) = instance(16, 32, 3, 2);
        let zero = vec![0.0; 32];
        assert_eq!(debias(&op, &y, &zero, &DebiasConfig::default()), zero);
    }

    #[test]
    fn off_support_stays_zero() {
        let (op, _, y) = instance(32, 64, 4, 5);
        let cfg = ShrinkageConfig::new(0.1);
        let biased = fista(&op, &y, &cfg, None).solution;
        let fixed = debias(&op, &y, &biased, &DebiasConfig::default());
        for (f, b) in fixed.iter().zip(&biased) {
            if *b == 0.0 {
                assert_eq!(*f, 0.0);
            }
        }
    }

    #[test]
    fn f32_instantiation_works() {
        let mut rng = MotePrng::new(8);
        let data: Vec<f32> = (0..32 * 16)
            .map(|_| rng.next_gaussian() as f32 / 4.0)
            .collect();
        let op = DenseOperator::from_row_major(16, 32, data, KernelMode::Scalar);
        let mut truth = vec![0.0_f32; 32];
        truth[3] = 2.0;
        let y = op.apply(&truth);
        let mut biased = truth.clone();
        biased[3] = 1.4;
        let fixed = debias(&op, &y, &biased, &DebiasConfig::default());
        assert!((fixed[3] - 2.0).abs() < 1e-3, "got {}", fixed[3]);
    }
}
