//! Sparse-recovery solvers: ISTA, FISTA (constant-step and backtracking),
//! OMP, and least-squares debiasing.

mod amp;
mod batch;
mod debias;
mod omp;
mod shrinkage;

pub use amp::{amp, AmpConfig, AmpResult};
pub use batch::{
    fista_prior_batch_ws, fista_prior_batch_ws_observed, fista_warm_batch_ws,
    fista_warm_batch_ws_observed, BatchPenalty,
};
pub use debias::{debias, DebiasConfig};
pub use omp::{omp, OmpConfig, OmpResult};
pub use shrinkage::{
    fista, fista_backtracking, fista_prior_warm_ws, fista_prior_warm_ws_observed, fista_warm,
    fista_warm_observed, fista_warm_ws, fista_warm_ws_observed, fista_weighted,
    fista_weighted_warm, fista_weighted_warm_observed, fista_weighted_warm_ws,
    fista_weighted_warm_ws_observed, ista, ista_warm, lambda_max, lambda_max_with, ProxSpec,
    ShrinkageConfig, SolverResult,
};
