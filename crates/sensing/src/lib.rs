//! # cs-sensing — measurement matrices for the CS-ECG monitor
//!
//! Compressed sensing acquires `M ≪ N` linear measurements `y = Φx` of a
//! 2-second ECG packet. This crate provides every Φ construction the DATE
//! 2011 paper evaluates on the mote (§IV-A2):
//!
//! 1. an **8-bit quantized Gaussian** generator
//!    ([`DenseSensing::quantized_gaussian`]) — the paper's first, not-real-
//!    time attempt,
//! 2. a **stored dense Gaussian** matrix ([`DenseSensing::gaussian`]) — the
//!    reference ensemble whose dense multiply was the bottleneck,
//! 3. the **sparse binary** matrix ([`SparseBinarySensing`]) with `d` ones
//!    per column that the paper's real-time encoder uses (multiplication-
//!    free integer gather-adds), plus
//! 4. a Bernoulli ±1/√N ensemble for completeness.
//!
//! Matrices are expanded deterministically from a shared seed by
//! [`MotePrng`], so the encoder and decoder agree on Φ without transmitting
//! it. [`estimate_isometry`] and [`mutual_coherence`] provide the empirical
//! RIP diagnostics behind Fig. 2's "no meaningful performance difference"
//! claim.
//!
//! ## Example
//!
//! ```
//! use cs_sensing::{measurements_for_cr, Sensing, SparseBinarySensing};
//!
//! // CR = 50 % on a 512-sample packet with the paper's d = 12.
//! let m = measurements_for_cr(512, 50.0);
//! let phi = SparseBinarySensing::new(m, 512, 12, 0xEC60)?;
//! let x = vec![1.0_f64; 512];
//! assert_eq!(phi.apply(x.as_slice()).len(), 256);
//! # Ok::<(), cs_sensing::SensingError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod diagnostics;
mod error;
mod matrix;
mod rng;

pub use diagnostics::{estimate_isometry, mutual_coherence, IsometryEstimate};
pub use error::SensingError;
pub use matrix::{measurements_for_cr, DenseEnsemble, DenseSensing, Sensing, SparseBinarySensing};
pub use rng::MotePrng;
