//! Error types for sensing-matrix construction.

use std::error::Error;
use std::fmt;

/// Errors returned when constructing or applying sensing matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SensingError {
    /// Matrix dimensions were structurally invalid (zero, or `m > n` for a
    /// compression matrix).
    InvalidDimensions {
        /// Requested number of measurements (rows).
        m: usize,
        /// Requested signal length (columns).
        n: usize,
        /// Why the pair is invalid.
        reason: String,
    },
    /// The sparse-binary column weight `d` was invalid for the matrix shape.
    InvalidColumnWeight {
        /// Requested ones per column.
        d: usize,
        /// Number of rows available.
        m: usize,
    },
}

impl fmt::Display for SensingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensingError::InvalidDimensions { m, n, reason } => {
                write!(f, "invalid sensing dimensions {m}×{n}: {reason}")
            }
            SensingError::InvalidColumnWeight { d, m } => {
                write!(
                    f,
                    "invalid sparse column weight d={d}: must satisfy 1 <= d <= m ({m})"
                )
            }
        }
    }
}

impl Error for SensingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SensingError::InvalidColumnWeight { d: 0, m: 128 };
        assert!(e.to_string().contains("d=0"));
        let e = SensingError::InvalidDimensions {
            m: 600,
            n: 512,
            reason: "more measurements than samples".into(),
        };
        assert!(e.to_string().contains("600×512"));
    }
}
