//! Sensing (measurement) matrices.
//!
//! The paper explores three implementations of the random sensing matrix Φ
//! on the mote (§IV-A2): (1) an 8-bit quantized on-board Gaussian generator,
//! (2) a stored dense Gaussian matrix, and (3) the innovation it settles on —
//! a **sparse binary** matrix with exactly `d` ones per column (scaled
//! 1/√d), whose product with the sample vector is a pure integer gather-add.
//! All three are implemented here, along with the Bernoulli ±1/√N matrix the
//! CS literature uses as a second universal ensemble.

use crate::error::SensingError;
use crate::rng::MotePrng;
use cs_dsp::Real;

/// A linear measurement operator `y = Φx` with `Φ ∈ ℝ^{M×N}`, plus its
/// adjoint — everything a gradient-based CS solver needs.
///
/// Implementors must guarantee `adjoint_into` computes the exact transpose
/// of `apply_into` (the solvers' convergence proofs rely on it, and the
/// test suites verify it by the inner-product identity).
pub trait Sensing<T: Real> {
    /// Number of measurements M (rows of Φ).
    fn rows(&self) -> usize;

    /// Signal length N (columns of Φ).
    fn cols(&self) -> usize;

    /// Computes `y = Φx` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    fn apply_into(&self, x: &[T], y: &mut [T]);

    /// Computes `x = Φᴴy` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()` or `x.len() != self.cols()`.
    fn adjoint_into(&self, y: &[T], x: &mut [T]);

    /// Allocating convenience wrapper around [`Sensing::apply_into`].
    fn apply(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.rows()];
        self.apply_into(x, &mut y);
        y
    }

    /// Allocating convenience wrapper around [`Sensing::adjoint_into`].
    fn adjoint(&self, y: &[T]) -> Vec<T> {
        let mut x = vec![T::ZERO; self.cols()];
        self.adjoint_into(y, &mut x);
        x
    }

    /// Computes `Y = ΦX` for `k` lane-major signal blocks: lane `l`'s
    /// signal occupies `x[l·N .. (l+1)·N]` and its measurements land in
    /// `y[l·M .. (l+1)·M]`. The default loops [`Sensing::apply_into`] per
    /// lane, so batched output is bit-identical to the sequential path by
    /// construction; implementors may override to amortize index walks
    /// across lanes, but must preserve each lane's exact operation order.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols() * k` or `y.len() != self.rows() * k`.
    fn apply_block_into(&self, x: &[T], k: usize, y: &mut [T]) {
        assert_eq!(x.len(), self.cols() * k, "apply_block_into: x length mismatch");
        assert_eq!(y.len(), self.rows() * k, "apply_block_into: y length mismatch");
        for (xl, yl) in x.chunks_exact(self.cols()).zip(y.chunks_exact_mut(self.rows())) {
            self.apply_into(xl, yl);
        }
    }

    /// Computes `X = ΦᴴY` for `k` lane-major measurement blocks (adjoint
    /// twin of [`Sensing::apply_block_into`], same layout and bit-identity
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows() * k` or `x.len() != self.cols() * k`.
    fn adjoint_block_into(&self, y: &[T], k: usize, x: &mut [T]) {
        assert_eq!(y.len(), self.rows() * k, "adjoint_block_into: y length mismatch");
        assert_eq!(x.len(), self.cols() * k, "adjoint_block_into: x length mismatch");
        for (yl, xl) in y.chunks_exact(self.rows()).zip(x.chunks_exact_mut(self.cols())) {
            self.adjoint_into(yl, xl);
        }
    }

    /// Materializes Φ row-major — intended for diagnostics and tests, not
    /// for the hot path.
    fn to_dense(&self) -> Vec<T> {
        let (m, n) = (self.rows(), self.cols());
        let mut dense = vec![T::ZERO; m * n];
        let mut e = vec![T::ZERO; n];
        let mut col = vec![T::ZERO; m];
        for j in 0..n {
            e[j] = T::ONE;
            self.apply_into(&e, &mut col);
            e[j] = T::ZERO;
            for i in 0..m {
                dense[i * n + j] = col[i];
            }
        }
        dense
    }
}

impl<T: Real, S: Sensing<T> + ?Sized> Sensing<T> for &S {
    fn rows(&self) -> usize {
        (**self).rows()
    }

    fn cols(&self) -> usize {
        (**self).cols()
    }

    fn apply_into(&self, x: &[T], y: &mut [T]) {
        (**self).apply_into(x, y)
    }

    fn adjoint_into(&self, y: &[T], x: &mut [T]) {
        (**self).adjoint_into(y, x)
    }

    fn apply_block_into(&self, x: &[T], k: usize, y: &mut [T]) {
        (**self).apply_block_into(x, k, y)
    }

    fn adjoint_block_into(&self, y: &[T], k: usize, x: &mut [T]) {
        (**self).adjoint_block_into(y, k, x)
    }
}

/// The statistical ensemble a [`DenseSensing`] matrix is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DenseEnsemble {
    /// I.i.d. `N(0, 1/N)` entries — the paper's reference ensemble.
    Gaussian,
    /// I.i.d. `±1/√N` entries with equal probability.
    Bernoulli,
    /// `N(0, 1/N)` entries quantized to an 8-bit grid spanning ±4σ — the
    /// paper's first on-mote attempt (§IV-A2 approach 1).
    QuantizedGaussian,
}

/// A dense random sensing matrix stored row-major at precision `T`.
///
/// # Examples
///
/// ```
/// use cs_sensing::{DenseSensing, Sensing};
///
/// let phi: DenseSensing<f64> = DenseSensing::gaussian(128, 512, 7)?;
/// let x = vec![1.0; 512];
/// let y = phi.apply(&x);
/// assert_eq!(y.len(), 128);
/// # Ok::<(), cs_sensing::SensingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DenseSensing<T: Real> {
    m: usize,
    n: usize,
    ensemble: DenseEnsemble,
    seed: u64,
    /// Row-major `m × n` entries.
    data: Vec<T>,
}

impl<T: Real> DenseSensing<T> {
    /// Draws an i.i.d. Gaussian `N(0, 1/N)` matrix from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidDimensions`] if either dimension is
    /// zero or `m > n`.
    pub fn gaussian(m: usize, n: usize, seed: u64) -> Result<Self, SensingError> {
        Self::build(m, n, seed, DenseEnsemble::Gaussian)
    }

    /// Draws an i.i.d. symmetric Bernoulli `±1/√N` matrix from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidDimensions`] if either dimension is
    /// zero or `m > n`.
    pub fn bernoulli(m: usize, n: usize, seed: u64) -> Result<Self, SensingError> {
        Self::build(m, n, seed, DenseEnsemble::Bernoulli)
    }

    /// Draws a Gaussian matrix and quantizes every entry to the 8-bit grid
    /// the paper's first mote implementation used.
    ///
    /// # Errors
    ///
    /// Returns [`SensingError::InvalidDimensions`] if either dimension is
    /// zero or `m > n`.
    pub fn quantized_gaussian(m: usize, n: usize, seed: u64) -> Result<Self, SensingError> {
        Self::build(m, n, seed, DenseEnsemble::QuantizedGaussian)
    }

    fn build(
        m: usize,
        n: usize,
        seed: u64,
        ensemble: DenseEnsemble,
    ) -> Result<Self, SensingError> {
        validate_dims(m, n)?;
        let mut rng = MotePrng::new(seed);
        let sigma = 1.0 / (n as f64).sqrt();
        let data: Vec<T> = match ensemble {
            DenseEnsemble::Gaussian => (0..m * n)
                .map(|_| T::from_f64(rng.next_gaussian() * sigma))
                .collect(),
            DenseEnsemble::Bernoulli => (0..m * n)
                .map(|_| {
                    if rng.next_u32() & 1 == 0 {
                        T::from_f64(sigma)
                    } else {
                        T::from_f64(-sigma)
                    }
                })
                .collect(),
            DenseEnsemble::QuantizedGaussian => {
                // 8-bit signed grid over ±4σ: step = 4σ/127.
                let step = 4.0 * sigma / 127.0;
                (0..m * n)
                    .map(|_| {
                        let g = rng.next_gaussian() * sigma;
                        let q = (g / step).round().clamp(-128.0, 127.0);
                        T::from_f64(q * step)
                    })
                    .collect()
            }
        };
        Ok(DenseSensing {
            m,
            n,
            ensemble,
            seed,
            data,
        })
    }

    /// The ensemble this matrix was drawn from.
    pub fn ensemble(&self) -> DenseEnsemble {
        self.ensemble
    }

    /// The seed the matrix expands from (shared encoder ↔ decoder state).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw row-major entries.
    pub fn entries(&self) -> &[T] {
        &self.data
    }
}

impl<T: Real> Sensing<T> for DenseSensing<T> {
    fn rows(&self) -> usize {
        self.m
    }

    fn cols(&self) -> usize {
        self.n
    }

    fn apply_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n, "apply_into: x length mismatch");
        assert_eq!(y.len(), self.m, "apply_into: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            let mut acc = T::ZERO;
            for (r, xv) in row.iter().zip(x) {
                acc += *r * *xv;
            }
            *yi = acc;
        }
    }

    fn adjoint_into(&self, y: &[T], x: &mut [T]) {
        assert_eq!(y.len(), self.m, "adjoint_into: y length mismatch");
        assert_eq!(x.len(), self.n, "adjoint_into: x length mismatch");
        for v in x.iter_mut() {
            *v = T::ZERO;
        }
        for (i, &yi) in y.iter().enumerate() {
            if yi == T::ZERO {
                continue;
            }
            let row = &self.data[i * self.n..(i + 1) * self.n];
            for (xv, r) in x.iter_mut().zip(row) {
                *xv += *r * yi;
            }
        }
    }

    fn to_dense(&self) -> Vec<T> {
        self.data.clone()
    }
}

/// The paper's sparse binary sensing matrix: each of the N columns has
/// exactly `d` nonzero entries equal to `1/√d`, at pseudo-random row
/// positions expanded from a seed (§IV-A2 approach 3).
///
/// Because the nonzeros are all equal, the mote never multiplies: the
/// measurement is a gather-add of `d` input samples per column, done in
/// 16-bit integer arithmetic ([`SparseBinarySensing::apply_unscaled_i32`]),
/// with the single `1/√d` scale folded into the decoder.
///
/// # Examples
///
/// ```
/// use cs_sensing::{Sensing, SparseBinarySensing};
///
/// let phi = SparseBinarySensing::new(256, 512, 12, 42)?;
/// assert_eq!(phi.rows(), 256);
/// assert_eq!(phi.ones_per_column(), 12);
///
/// // Float path (decoder) and integer path (mote) agree up to the scale.
/// let x_i: Vec<i16> = (0..512).map(|i| (i % 50) as i16 - 25).collect();
/// let x_f: Vec<f64> = x_i.iter().map(|&v| v as f64).collect();
/// let y_f: Vec<f64> = phi.apply(x_f.as_slice());
/// let y_i = phi.apply_unscaled_i32(&x_i);
/// let scale = 1.0 / (12.0_f64).sqrt();
/// for (a, b) in y_f.iter().zip(&y_i) {
///     assert!((a - *b as f64 * scale).abs() < 1e-9);
/// }
/// # Ok::<(), cs_sensing::SensingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBinarySensing {
    m: usize,
    n: usize,
    d: usize,
    seed: u64,
    /// Row indices of the ones, `d` per column: column `j` occupies
    /// `col_rows[j*d .. (j+1)*d]`, sorted within each column (CSC — the
    /// adjoint's layout: `Φᴴy` gathers per column).
    col_rows: Vec<u32>,
    /// The same support in row-major (CSR) form: row `i`'s nonzero columns
    /// occupy `row_cols[row_ptr[i] .. row_ptr[i+1]]`, sorted ascending.
    /// This is the *forward* direction's layout: `y = Φx` becomes one
    /// sequential gather per row with a register accumulator, instead of
    /// the CSC path's scattered read-modify-writes across all of `y`.
    row_cols: Vec<u32>,
    /// CSR row offsets, `m + 1` entries.
    row_ptr: Vec<u32>,
}

impl SparseBinarySensing {
    /// Expands the matrix structure from a seed.
    ///
    /// # Errors
    ///
    /// * [`SensingError::InvalidDimensions`] if a dimension is zero or
    ///   `m > n`.
    /// * [`SensingError::InvalidColumnWeight`] unless `1 ≤ d ≤ m`.
    pub fn new(m: usize, n: usize, d: usize, seed: u64) -> Result<Self, SensingError> {
        validate_dims(m, n)?;
        if d == 0 || d > m {
            return Err(SensingError::InvalidColumnWeight { d, m });
        }
        let mut rng = MotePrng::new(seed);
        let mut col_rows = Vec::with_capacity(n * d);
        for _ in 0..n {
            col_rows.extend(rng.distinct_below(d, m as u32));
        }
        // Transpose the CSC support into CSR once, by counting sort: the
        // column indices of each row come out sorted ascending because the
        // outer scan visits columns in order.
        let mut row_ptr = vec![0_u32; m + 1];
        for &row in &col_rows {
            row_ptr[row as usize + 1] += 1;
        }
        for i in 0..m {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut row_cols = vec![0_u32; n * d];
        for (j, rows) in col_rows.chunks_exact(d).enumerate() {
            for &row in rows {
                let slot = &mut cursor[row as usize];
                row_cols[*slot as usize] = j as u32;
                *slot += 1;
            }
        }
        Ok(SparseBinarySensing {
            m,
            n,
            d,
            seed,
            col_rows,
            row_cols,
            row_ptr,
        })
    }

    /// Number of measurements M (rows of Φ). Inherent twin of
    /// [`Sensing::rows`] so callers need not name a precision.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Signal length N (columns of Φ). Inherent twin of [`Sensing::cols`].
    pub fn cols(&self) -> usize {
        self.n
    }

    /// The column weight `d` (number of ones per column).
    pub fn ones_per_column(&self) -> usize {
        self.d
    }

    /// The seed the structure expands from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The value of each nonzero entry, `1/√d`.
    pub fn nonzero_value(&self) -> f64 {
        1.0 / (self.d as f64).sqrt()
    }

    /// The sorted row indices of column `j`'s ones.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column_support(&self, j: usize) -> &[u32] {
        assert!(j < self.n, "column_support: column out of range");
        &self.col_rows[j * self.d..(j + 1) * self.d]
    }

    /// The sorted column indices of row `i`'s ones (the CSR view; the
    /// forward apply gathers exactly these).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_support(&self, i: usize) -> &[u32] {
        assert!(i < self.m, "row_support: row out of range");
        &self.row_cols[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize]
    }

    /// The integer mote path: `y_i = Σ_{j : Φ_{ij} ≠ 0} x_j`, **without**
    /// the `1/√d` scale, exactly as the 16-bit encoder computes it. Sums
    /// accumulate in `i32`, which cannot overflow for 11-bit ECG samples
    /// and any practical `d`.
    pub fn apply_unscaled_i32(&self, x: &[i16]) -> Vec<i32> {
        assert_eq!(x.len(), self.n, "apply_unscaled_i32: x length mismatch");
        let mut y = vec![0_i32; self.m];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0 {
                continue;
            }
            let xj = xj as i32;
            for &row in self.column_support(j) {
                y[row as usize] += xj;
            }
        }
        y
    }

    /// Number of gather-add operations one application costs — `N·d`
    /// additions. The mote cycle model in `cs-platform` prices this.
    pub fn op_count(&self) -> u64 {
        (self.n as u64) * (self.d as u64)
    }
}

impl<T: Real> Sensing<T> for SparseBinarySensing {
    fn rows(&self) -> usize {
        self.m
    }

    fn cols(&self) -> usize {
        self.n
    }

    fn apply_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.n, "apply_into: x length mismatch");
        assert_eq!(y.len(), self.m, "apply_into: y length mismatch");
        // CSR gather: each output element is a sequential sum over its
        // row's support — one streaming pass over `row_cols`, one write per
        // output, no scattered read-modify-writes (cache-shaped for the
        // forward direction of travel; the adjoint below keeps CSC).
        let scale = T::from_f64(self.nonzero_value());
        let mut lo = self.row_ptr[0] as usize;
        for (i, yi) in y.iter_mut().enumerate() {
            let hi = self.row_ptr[i + 1] as usize;
            *yi = gather_sum(x, &self.row_cols[lo..hi]) * scale;
            lo = hi;
        }
    }

    fn adjoint_into(&self, y: &[T], x: &mut [T]) {
        assert_eq!(y.len(), self.m, "adjoint_into: y length mismatch");
        assert_eq!(x.len(), self.n, "adjoint_into: x length mismatch");
        let scale = T::from_f64(self.nonzero_value());
        for (j, xv) in x.iter_mut().enumerate() {
            *xv = gather_sum(y, self.column_support(j)) * scale;
        }
    }

    fn apply_block_into(&self, x: &[T], k: usize, y: &mut [T]) {
        assert_eq!(x.len(), self.n * k, "apply_block_into: x length mismatch");
        assert_eq!(y.len(), self.m * k, "apply_block_into: y length mismatch");
        // MMV gather: walk the CSR index stream once per batch and reuse
        // each row's support slice across the K lanes. Per lane this is the
        // identical `gather_sum` over the identical support as the scalar
        // `apply_into`, so the output is bit-for-bit the sequential result —
        // only the (row, lane) visiting order changes, and each output
        // element's reduction is self-contained.
        let scale = T::from_f64(self.nonzero_value());
        let mut lo = self.row_ptr[0] as usize;
        for i in 0..self.m {
            let hi = self.row_ptr[i + 1] as usize;
            let support = &self.row_cols[lo..hi];
            for lane in 0..k {
                y[lane * self.m + i] =
                    gather_sum(&x[lane * self.n..(lane + 1) * self.n], support) * scale;
            }
            lo = hi;
        }
    }

    fn adjoint_block_into(&self, y: &[T], k: usize, x: &mut [T]) {
        assert_eq!(y.len(), self.m * k, "adjoint_block_into: y length mismatch");
        assert_eq!(x.len(), self.n * k, "adjoint_block_into: x length mismatch");
        // Same amortization for the CSC direction: one column-support walk
        // feeds all K lanes' gathers.
        let scale = T::from_f64(self.nonzero_value());
        for j in 0..self.n {
            let support = self.column_support(j);
            for lane in 0..k {
                x[lane * self.n + j] =
                    gather_sum(&y[lane * self.m..(lane + 1) * self.m], support) * scale;
            }
        }
    }
}

/// `Σ src[idx]` with four independent accumulators: a single running sum
/// serializes on add latency (~4 cycles each), which dominates these
/// 12–24-element support loops since every `src` read hits L1.
#[inline]
fn gather_sum<T: Real>(src: &[T], idx: &[u32]) -> T {
    let mut quads = idx.chunks_exact(4);
    let mut acc = [T::ZERO; 4];
    for q in quads.by_ref() {
        acc[0] += src[q[0] as usize];
        acc[1] += src[q[1] as usize];
        acc[2] += src[q[2] as usize];
        acc[3] += src[q[3] as usize];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &i in quads.remainder() {
        sum += src[i as usize];
    }
    sum
}

fn validate_dims(m: usize, n: usize) -> Result<(), SensingError> {
    if m == 0 || n == 0 {
        return Err(SensingError::InvalidDimensions {
            m,
            n,
            reason: "dimensions must be nonzero".into(),
        });
    }
    if m > n {
        return Err(SensingError::InvalidDimensions {
            m,
            n,
            reason: "a compression matrix needs m <= n".into(),
        });
    }
    Ok(())
}

/// Number of measurements `M` for a target compression ratio of the linear
/// CS stage: `M = round(N · (1 − CR/100))`, clamped to `[1, N]`.
///
/// # Panics
///
/// Panics if `cr_percent` is not in `[0, 100)` or `n == 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(cs_sensing::measurements_for_cr(512, 50.0), 256);
/// assert_eq!(cs_sensing::measurements_for_cr(512, 75.0), 128);
/// ```
pub fn measurements_for_cr(n: usize, cr_percent: f64) -> usize {
    assert!(n > 0, "measurements_for_cr: n must be positive");
    assert!(
        (0.0..100.0).contains(&cr_percent),
        "measurements_for_cr: CR must be in [0, 100)"
    );
    let m = ((n as f64) * (1.0 - cr_percent / 100.0)).round() as usize;
    m.clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn adjoint_identity<S: Sensing<f64>>(phi: &S, seed: u64) {
        let (m, n) = (phi.rows(), phi.cols());
        let mut rng = MotePrng::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let y: Vec<f64> = (0..m).map(|_| rng.next_gaussian()).collect();
        let ax: Vec<f64> = phi.apply(&x);
        let aty: Vec<f64> = phi.adjoint(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()),
            "⟨Φx,y⟩={lhs} vs ⟨x,Φᵀy⟩={rhs}"
        );
    }

    #[test]
    fn dense_adjoint_is_transpose() {
        for phi in [
            DenseSensing::<f64>::gaussian(32, 64, 1).unwrap(),
            DenseSensing::<f64>::bernoulli(32, 64, 2).unwrap(),
            DenseSensing::<f64>::quantized_gaussian(32, 64, 3).unwrap(),
        ] {
            adjoint_identity(&phi, 99);
        }
    }

    #[test]
    fn sparse_adjoint_is_transpose() {
        let phi = SparseBinarySensing::new(64, 128, 8, 5).unwrap();
        adjoint_identity(&phi, 77);
    }

    #[test]
    fn sparse_structure_is_exact() {
        let phi = SparseBinarySensing::new(100, 200, 12, 9).unwrap();
        for j in 0..200 {
            let s = phi.column_support(j);
            assert_eq!(s.len(), 12);
            for w in s.windows(2) {
                assert!(w[0] < w[1], "column {j} not strictly sorted");
            }
            assert!(s.iter().all(|&r| r < 100));
        }
    }

    #[test]
    fn sparse_dense_view_matches_apply() {
        let phi = SparseBinarySensing::new(16, 32, 4, 11).unwrap();
        let dense: Vec<f64> = Sensing::<f64>::to_dense(&phi);
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let y = phi.apply(&x);
        for i in 0..16 {
            let manual: f64 = (0..32).map(|j| dense[i * 32 + j] * x[j]).sum();
            assert!((manual - y[i]).abs() < 1e-12);
        }
        // Every column of the dense view sums to d · (1/√d) = √d.
        for j in 0..32 {
            let col_sum: f64 = (0..16).map(|i| dense[i * 32 + j]).sum();
            assert!((col_sum - 2.0).abs() < 1e-12); // √4
        }
    }

    /// The CSC reference implementation of `y = Φx` (the pre-CSR forward
    /// path): scatter each column's contribution, scale at the end.
    fn apply_csc(phi: &SparseBinarySensing, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; phi.rows()];
        for (j, &xj) in x.iter().enumerate() {
            for &row in phi.column_support(j) {
                y[row as usize] += xj;
            }
        }
        let scale = phi.nonzero_value();
        y.iter().map(|v| v * scale).collect()
    }

    #[test]
    fn csr_and_csc_describe_the_same_support() {
        for (m, n, d) in [(64, 128, 8), (16, 32, 1), (16, 32, 16), (100, 200, 12)] {
            let phi = SparseBinarySensing::new(m, n, d, 31).unwrap();
            // Every (row, col) pair in the CSC view appears in the CSR view.
            let mut csc_pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|j| phi.column_support(j).iter().map(move |&r| (r, j as u32)))
                .collect();
            csc_pairs.sort_unstable();
            let csr_pairs: Vec<(u32, u32)> = (0..m)
                .flat_map(|i| phi.row_support(i).iter().map(move |&c| (i as u32, c)))
                .collect();
            assert_eq!(csc_pairs, csr_pairs, "layouts disagree at d={d}");
            // CSR columns are sorted within each row.
            for i in 0..m {
                for w in phi.row_support(i).windows(2) {
                    assert!(w[0] < w[1], "row {i} not strictly sorted");
                }
            }
        }
    }

    #[test]
    fn integer_and_float_paths_agree() {
        let phi = SparseBinarySensing::new(128, 512, 12, 2024).unwrap();
        let x_i: Vec<i16> = (0..512).map(|i| ((i * 37) % 2047) as i16 - 1024).collect();
        let x_f: Vec<f64> = x_i.iter().map(|&v| v as f64).collect();
        let y_i = phi.apply_unscaled_i32(&x_i);
        let y_f: Vec<f64> = phi.apply(&x_f);
        let scale = phi.nonzero_value();
        for (f, i) in y_f.iter().zip(&y_i) {
            assert!((f - *i as f64 * scale).abs() < 1e-6);
        }
    }

    #[test]
    fn same_seed_same_matrix() {
        let a = SparseBinarySensing::new(64, 256, 12, 555).unwrap();
        let b = SparseBinarySensing::new(64, 256, 12, 555).unwrap();
        assert_eq!(a, b);
        let c = SparseBinarySensing::new(64, 256, 12, 556).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_variance_close_to_one_over_n() {
        let n = 256;
        let phi = DenseSensing::<f64>::gaussian(128, n, 7).unwrap();
        let entries = phi.entries();
        let mean: f64 = entries.iter().sum::<f64>() / entries.len() as f64;
        let var: f64 =
            entries.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / entries.len() as f64;
        assert!((var * n as f64 - 1.0).abs() < 0.1, "Nσ² = {}", var * n as f64);
    }

    #[test]
    fn quantized_gaussian_has_few_levels() {
        let phi = DenseSensing::<f64>::quantized_gaussian(64, 128, 3).unwrap();
        let mut levels: Vec<i64> = phi
            .entries()
            .iter()
            .map(|&e| (e * 1e12).round() as i64)
            .collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 256, "{} distinct levels", levels.len());
    }

    #[test]
    fn bernoulli_entries_are_two_valued() {
        let n = 64;
        let phi = DenseSensing::<f64>::bernoulli(32, n, 4).unwrap();
        let s = 1.0 / (n as f64).sqrt();
        assert!(phi
            .entries()
            .iter()
            .all(|&e| (e - s).abs() < 1e-15 || (e + s).abs() < 1e-15));
    }

    #[test]
    fn invalid_constructions_rejected() {
        assert!(DenseSensing::<f64>::gaussian(0, 10, 1).is_err());
        assert!(DenseSensing::<f64>::gaussian(20, 10, 1).is_err());
        assert!(SparseBinarySensing::new(64, 128, 0, 1).is_err());
        assert!(SparseBinarySensing::new(64, 128, 65, 1).is_err());
    }

    #[test]
    fn measurements_for_cr_table() {
        assert_eq!(measurements_for_cr(512, 0.0), 512);
        assert_eq!(measurements_for_cr(512, 30.0), 358);
        assert_eq!(measurements_for_cr(512, 90.0), 51);
        assert_eq!(measurements_for_cr(10, 99.9), 1); // clamped to >= 1
    }

    #[test]
    #[should_panic(expected = "CR must be in")]
    fn measurements_for_cr_rejects_100() {
        let _ = measurements_for_cr(512, 100.0);
    }

    proptest! {
        #[test]
        fn prop_sparse_apply_linear(seed in any::<u64>(), scale in -3.0_f64..3.0) {
            let phi = SparseBinarySensing::new(32, 64, 6, seed).unwrap();
            let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).cos()).collect();
            let sx: Vec<f64> = x.iter().map(|v| v * scale).collect();
            let y: Vec<f64> = phi.apply(&x);
            let ys: Vec<f64> = phi.apply(&sx);
            for (a, b) in y.iter().zip(&ys) {
                prop_assert!((a * scale - b).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_csr_csc_dense_apply_agree(
            seed in any::<u64>(),
            m in 4_usize..40,
            n_extra in 0_usize..60,
            d_pick in 0_usize..3,
        ) {
            let n = m + n_extra;
            // Exercise the d = 1 and d = m edge cases explicitly alongside
            // an interior value.
            let d = match d_pick {
                0 => 1,
                1 => m,
                _ => (m / 2).max(1),
            };
            let phi = SparseBinarySensing::new(m, n, d, seed).unwrap();
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + 0.1).collect();

            // CSR path (production apply_into).
            let y_csr: Vec<f64> = phi.apply(&x);
            // CSC reference path (column scatter).
            let y_csc = apply_csc(&phi, &x);
            // Dense materialization path.
            let dense = Sensing::<f64>::to_dense(&phi);
            let y_dense: Vec<f64> = (0..m)
                .map(|i| dense[i * n..(i + 1) * n].iter().zip(&x).map(|(a, b)| a * b).sum())
                .collect();

            for i in 0..m {
                prop_assert!((y_csr[i] - y_csc[i]).abs() < 1e-9,
                    "CSR vs CSC row {} (d={}): {} vs {}", i, d, y_csr[i], y_csc[i]);
                prop_assert!((y_csr[i] - y_dense[i]).abs() < 1e-9,
                    "CSR vs dense row {} (d={}): {} vs {}", i, d, y_csr[i], y_dense[i]);
            }
        }

        #[test]
        fn prop_block_kernels_bitwise_match_scalar(
            seed in any::<u64>(),
            k in 1_usize..9,
        ) {
            let (m, n, d) = (24, 48, 6);
            let phi = SparseBinarySensing::new(m, n, d, seed).unwrap();
            let x: Vec<f64> = (0..n * k)
                .map(|i| ((i as f64) * 0.29).sin() * 10.0)
                .collect();
            let mut y_block = vec![0.0_f64; m * k];
            phi.apply_block_into(&x, k, &mut y_block);
            for lane in 0..k {
                let y_seq: Vec<f64> = phi.apply(&x[lane * n..(lane + 1) * n]);
                for (a, b) in y_block[lane * m..(lane + 1) * m].iter().zip(&y_seq) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "apply lane {} diverged", lane);
                }
            }
            let mut x_block = vec![0.0_f64; n * k];
            phi.adjoint_block_into(&y_block, k, &mut x_block);
            for lane in 0..k {
                let x_seq: Vec<f64> = phi.adjoint(&y_block[lane * m..(lane + 1) * m]);
                for (a, b) in x_block[lane * n..(lane + 1) * n].iter().zip(&x_seq) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "adjoint lane {} diverged", lane);
                }
            }
        }

        #[test]
        fn prop_i32_path_never_overflows_11bit(seed in any::<u64>()) {
            // Worst case: all samples at ±(2^10) and d = m.
            let phi = SparseBinarySensing::new(16, 32, 16, seed).unwrap();
            let x = vec![1024_i16; 32];
            let y = phi.apply_unscaled_i32(&x);
            // Row weight ≤ n (each of n columns may hit the row once).
            prop_assert!(y.iter().all(|&v| v.abs() <= 1024 * 32));
        }
    }
}
