//! Deterministic, mote-friendly pseudo-random number generation.
//!
//! The CS-ECG system relies on the encoder (mote) and decoder (coordinator)
//! agreeing on the *same* sensing matrix without ever transmitting it: both
//! sides expand a shared seed. The paper notes (§IV-A2) that sensing
//! matrices "can be constructed with simple pseudo-random design that can be
//! implemented using a surprisingly small amount of on-board memory and
//! computation" — [`MotePrng`] is that design: a 64-bit xorshift with a
//! handful of shifts and XORs per draw, trivially implementable on a 16-bit
//! MCU as four 16-bit words.
//!
//! Determinism across builds matters here (a codebook or matrix generated
//! on one side must match the other), so this module deliberately does
//! *not* use the `rand` crate, whose stream may change across versions.

/// A small, fast, seedable xorshift64* generator.
///
/// # Examples
///
/// ```
/// use cs_sensing::MotePrng;
///
/// let mut a = MotePrng::new(42);
/// let mut b = MotePrng::new(42);
/// assert_eq!(a.next_u32(), b.next_u32()); // same seed ⇒ same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotePrng {
    state: u64,
}

impl MotePrng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        MotePrng { state }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Marsaglia / Vigna)
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, bound)` using rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below: zero bound");
        // Lemire-style rejection.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = (r as u64) * (bound as u64);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A standard-normal draw via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u in (0, 1] to keep ln() finite.
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }

    /// Fills `k` distinct values drawn uniformly from `[0, bound)` — the
    /// primitive used to place the `d` ones of each sparse-binary column.
    /// Uses Floyd's algorithm so memory is `O(k)`, not `O(bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > bound as usize`.
    pub fn distinct_below(&mut self, k: usize, bound: u32) -> Vec<u32> {
        assert!(
            k <= bound as usize,
            "distinct_below: cannot draw {k} distinct values below {bound}"
        );
        let mut chosen: Vec<u32> = Vec::with_capacity(k);
        for j in (bound as usize - k)..bound as usize {
            let t = self.next_below(j as u32 + 1);
            if chosen.contains(&t) {
                chosen.push(j as u32);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = MotePrng::new(7);
        let mut b = MotePrng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = MotePrng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = MotePrng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = MotePrng::new(123);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = MotePrng::new(99);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let g = r.next_gaussian();
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut r = MotePrng::new(5);
        let mut counts = [0_u32; 7];
        for _ in 0..70_000 {
            counts[r.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "zero bound")]
    fn next_below_zero_panics() {
        MotePrng::new(1).next_below(0);
    }

    proptest! {
        #[test]
        fn prop_distinct_below_yields_distinct_sorted(
            seed in any::<u64>(),
            k in 1_usize..32,
        ) {
            let bound = 64_u32;
            let v = MotePrng::new(seed).distinct_below(k, bound);
            prop_assert_eq!(v.len(), k);
            for w in v.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert!(v.iter().all(|&x| x < bound));
        }

        #[test]
        fn prop_distinct_below_full_range(seed in any::<u64>()) {
            // k == bound must return a permutation of 0..bound (sorted).
            let v = MotePrng::new(seed).distinct_below(16, 16);
            prop_assert_eq!(v, (0..16).collect::<Vec<u32>>());
        }
    }
}
