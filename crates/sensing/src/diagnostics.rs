//! Empirical isometry and coherence diagnostics.
//!
//! The recovery guarantee of CS rests on the restricted isometry property
//! (Eq. 1 of the paper) for Gaussian-type matrices, and on the weaker RIP-p
//! property (Berinde et al., ref. [19]) for sparse binary matrices. Neither
//! can be certified exactly in polynomial time, so — as is standard — we
//! *estimate* the isometry constants by Monte-Carlo over random sparse
//! vectors, and compute mutual coherence exactly. The `rip_check` example
//! and the design ablations use these numbers.

use crate::matrix::Sensing;
use crate::rng::MotePrng;

/// Result of a Monte-Carlo restricted-isometry probe.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IsometryEstimate {
    /// Smallest observed `‖Ax‖₂ / ‖x‖₂` over the sampled S-sparse vectors.
    pub min_ratio: f64,
    /// Largest observed ratio.
    pub max_ratio: f64,
    /// Mean observed ratio.
    pub mean_ratio: f64,
    /// Sparsity level S the probe used.
    pub sparsity: usize,
    /// Number of random vectors sampled.
    pub trials: usize,
}

impl IsometryEstimate {
    /// A lower bound on the isometry constant δ_S implied by the samples:
    /// `max(1 − min², max² − 1)` (Eq. 1 squared form). The true δ_S can
    /// only be larger, so small values here are necessary-but-not-
    /// sufficient evidence of good sensing.
    pub fn delta_lower_bound(&self) -> f64 {
        let lo = 1.0 - self.min_ratio * self.min_ratio;
        let hi = self.max_ratio * self.max_ratio - 1.0;
        lo.max(hi)
    }
}

/// Samples `trials` random S-sparse vectors (Gaussian values on a uniform
/// random support) and records the spread of `‖op(x)‖₂ / ‖x‖₂`.
///
/// `op` is typically `Φ` itself or the composed `Φ·Ψᵀ` the solver sees.
///
/// # Panics
///
/// Panics if `sparsity` is zero or exceeds `n`, or `trials` is zero.
pub fn estimate_isometry<F>(
    op: F,
    n: usize,
    sparsity: usize,
    trials: usize,
    seed: u64,
) -> IsometryEstimate
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    assert!(sparsity > 0 && sparsity <= n, "estimate_isometry: bad sparsity");
    assert!(trials > 0, "estimate_isometry: need at least one trial");
    let mut rng = MotePrng::new(seed);
    let mut min_ratio = f64::INFINITY;
    let mut max_ratio = 0.0_f64;
    let mut sum = 0.0_f64;
    for _ in 0..trials {
        let support = rng.distinct_below(sparsity, n as u32);
        let mut x = vec![0.0_f64; n];
        for &idx in &support {
            x[idx as usize] = rng.next_gaussian();
        }
        let norm_x: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let y = op(&x);
        let norm_y: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        let ratio = norm_y / norm_x;
        min_ratio = min_ratio.min(ratio);
        max_ratio = max_ratio.max(ratio);
        sum += ratio;
    }
    IsometryEstimate {
        min_ratio,
        max_ratio,
        mean_ratio: sum / trials as f64,
        sparsity,
        trials,
    }
}

/// Mutual coherence of a sensing matrix: the maximum absolute normalized
/// inner product between distinct columns. Lower is better; the sparse
/// binary construction keeps this bounded by keeping column supports
/// "spread out" (paper §IV-A2).
///
/// # Panics
///
/// Panics if the matrix has fewer than two columns or a zero column.
pub fn mutual_coherence<S: Sensing<f64>>(phi: &S) -> f64 {
    let (m, n) = (phi.rows(), phi.cols());
    assert!(n >= 2, "mutual_coherence: need at least two columns");
    let dense = phi.to_dense();
    // Column norms.
    let mut norms = vec![0.0_f64; n];
    for i in 0..m {
        for j in 0..n {
            let v = dense[i * n + j];
            norms[j] += v * v;
        }
    }
    for (j, v) in norms.iter_mut().enumerate() {
        assert!(*v > 0.0, "mutual_coherence: column {j} is zero");
        *v = v.sqrt();
    }
    let mut best = 0.0_f64;
    for j in 0..n {
        for k in (j + 1)..n {
            let mut dot = 0.0;
            for i in 0..m {
                dot += dense[i * n + j] * dense[i * n + k];
            }
            best = best.max((dot / (norms[j] * norms[k])).abs());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{DenseSensing, SparseBinarySensing};

    #[test]
    fn gaussian_matrix_is_near_isometric() {
        let phi = DenseSensing::<f64>::gaussian(256, 512, 1).unwrap();
        // With M = N/2 and S = 16, a Gaussian N(0, 1/N) matrix has
        // E‖Φx‖² = (M/N)‖x‖², so ratios concentrate near √(M/N) ≈ 0.707.
        let est = estimate_isometry(|x| phi.apply(x), 512, 16, 50, 9);
        assert!(est.mean_ratio > 0.5 && est.mean_ratio < 0.9, "{est:?}");
        assert!(est.min_ratio > 0.35);
        assert!(est.max_ratio < 1.1);
    }

    #[test]
    fn sparse_binary_isometry_comparable_to_gaussian() {
        let n = 512;
        let m = 256;
        let sparse = SparseBinarySensing::new(m, n, 12, 3).unwrap();
        let gauss = DenseSensing::<f64>::gaussian(m, n, 3).unwrap();
        let es = estimate_isometry(|x| sparse.apply(x), n, 16, 50, 17);
        let eg = estimate_isometry(|x| gauss.apply(x), n, 16, 50, 17);
        // The paper's claim: no meaningful performance difference. Allow a
        // generous band but require the same order.
        assert!(
            (es.mean_ratio - eg.mean_ratio).abs() < 0.3,
            "sparse {es:?} vs gaussian {eg:?}"
        );
    }

    #[test]
    fn identity_like_operator_has_unit_ratio() {
        let est = estimate_isometry(|x| x.to_vec(), 64, 8, 20, 5);
        assert!((est.min_ratio - 1.0).abs() < 1e-12);
        assert!((est.max_ratio - 1.0).abs() < 1e-12);
        assert!(est.delta_lower_bound() < 1e-10);
    }

    #[test]
    fn coherence_of_orthogonal_columns_is_zero() {
        // A 4×4 identity-like sparse matrix: d=1, columns hit distinct rows
        // is not guaranteed, so build a tiny dense one by hand through the
        // Gaussian ensemble and only smoke-test the range.
        let phi = DenseSensing::<f64>::gaussian(32, 64, 2).unwrap();
        let mu = mutual_coherence(&phi);
        assert!(mu > 0.0 && mu < 1.0, "coherence {mu}");
    }

    #[test]
    fn sparse_coherence_below_one() {
        let phi = SparseBinarySensing::new(128, 256, 12, 8).unwrap();
        let mu = mutual_coherence(&phi);
        // Two distinct columns share at most d−1 … d rows; equal columns
        // (coherence 1) are astronomically unlikely and would break RIP-p.
        assert!(mu < 0.99, "coherence {mu}");
    }

    #[test]
    #[should_panic(expected = "bad sparsity")]
    fn zero_sparsity_panics() {
        let _ = estimate_isometry(|x| x.to_vec(), 8, 0, 1, 1);
    }
}
