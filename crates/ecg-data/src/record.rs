//! ECG records: multi-channel sample storage with beat annotations.

use crate::adc::AdcModel;
use crate::model::BeatAnnotation;

/// A digitized multi-channel ECG record, mirroring the structure of an
/// MIT-BIH record: raw ADC codes per channel, the converter that produced
/// them, and beat annotations.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::{AdcModel, Record};
///
/// let adc = AdcModel::mit_bih();
/// let codes = vec![adc.quantize(0.0); 720];
/// let rec = Record::new("s100", 360.0, adc, vec![codes], vec![]);
/// assert_eq!(rec.len(), 720);
/// assert_eq!(rec.num_channels(), 1);
/// assert!((rec.duration_s() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    id: String,
    sample_rate_hz: f64,
    adc: AdcModel,
    channels: Vec<Vec<u16>>,
    annotations: Vec<BeatAnnotation>,
}

impl Record {
    /// Assembles a record from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty, channels differ in length, or the
    /// sample rate is not positive.
    pub fn new(
        id: impl Into<String>,
        sample_rate_hz: f64,
        adc: AdcModel,
        channels: Vec<Vec<u16>>,
        annotations: Vec<BeatAnnotation>,
    ) -> Self {
        assert!(sample_rate_hz > 0.0, "Record: sample rate must be positive");
        assert!(!channels.is_empty(), "Record: need at least one channel");
        let len = channels[0].len();
        assert!(
            channels.iter().all(|c| c.len() == len),
            "Record: channels must share a length"
        );
        Record {
            id: id.into(),
            sample_rate_hz,
            adc,
            channels,
            annotations,
        }
    }

    /// Record identifier (e.g. `"s100"`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Sampling rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The ADC model that produced the codes.
    pub fn adc(&self) -> &AdcModel {
        &self.adc
    }

    /// Number of channels (leads).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Samples per channel.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// Whether the record holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / self.sample_rate_hz
    }

    /// Raw ADC codes of a channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn codes(&self, channel: usize) -> &[u16] {
        &self.channels[channel]
    }

    /// Channel samples in millivolts (dequantized).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn signal_mv(&self, channel: usize) -> Vec<f64> {
        self.adc.dequantize_trace(&self.channels[channel])
    }

    /// Channel samples as signed, midscale-removed 16-bit integers — the
    /// representation the mote encoder consumes.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn signed_samples(&self, channel: usize) -> Vec<i16> {
        self.channels[channel]
            .iter()
            .map(|&c| self.adc.to_signed(c))
            .collect()
    }

    /// Beat annotations (R-peak positions and classes).
    pub fn annotations(&self) -> &[BeatAnnotation] {
        &self.annotations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BeatType;

    fn tiny() -> Record {
        let adc = AdcModel::mit_bih();
        Record::new(
            "t1",
            360.0,
            adc,
            vec![vec![1024, 1030, 1010], vec![1024, 1020, 1040]],
            vec![BeatAnnotation {
                sample: 1,
                beat: BeatType::Normal,
            }],
        )
    }

    #[test]
    fn accessors() {
        let r = tiny();
        assert_eq!(r.id(), "t1");
        assert_eq!(r.num_channels(), 2);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.annotations().len(), 1);
        assert_eq!(r.codes(0)[1], 1030);
    }

    #[test]
    fn signed_and_mv_views_agree() {
        let r = tiny();
        let mv = r.signal_mv(0);
        let signed = r.signed_samples(0);
        let lsb = r.adc().lsb_mv();
        for (m, s) in mv.iter().zip(&signed) {
            assert!((m - *s as f64 * lsb).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn mismatched_channels_rejected() {
        let adc = AdcModel::mit_bih();
        let _ = Record::new("x", 360.0, adc, vec![vec![0; 3], vec![0; 4]], vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_channel_list_rejected() {
        let _ = Record::new("x", 360.0, AdcModel::mit_bih(), vec![], vec![]);
    }
}
