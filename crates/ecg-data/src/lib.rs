//! # cs-ecg-data — the ECG data substrate
//!
//! The DATE 2011 CS-ECG paper evaluates on the MIT-BIH Arrhythmia Database
//! (48 half-hour two-channel ambulatory records, 360 Hz, 11-bit over
//! 10 mV), re-sampled to 256 Hz before encoding. That database cannot ship
//! with this repository, so this crate builds the closest synthetic
//! equivalent end to end:
//!
//! * [`EcgModel`] — the McSharry/ECGSYN dynamical model: a limit-cycle ODE
//!   whose Gaussian P-Q-R-S-T events generate realistic, quasi-periodic ECG
//!   with beat-to-beat variability and ectopic (PVC/APC) beats. This
//!   preserves the two properties compressed sensing exploits: wavelet-
//!   domain sparsity and inter-packet redundancy.
//! * [`noise_trace`] — ambulatory contaminants (baseline wander, muscle
//!   artifact, mains hum, white noise).
//! * [`AdcModel`] — the 11-bit/10 mV converter, producing the integer codes
//!   the 16-bit mote encoder actually works on.
//! * [`Record`] / [`SyntheticDatabase`] — a deterministic 48-record corpus
//!   mirroring the original database's structure, generated lazily.
//! * [`Resampler`] — the polyphase 360 Hz → 256 Hz rational resampler
//!   (L/M = 32/45) the paper applies before feeding the mote.
//!
//! ## Example: one packet of mote input
//!
//! ```
//! use cs_ecg_data::{resample_360_to_256, DatabaseConfig, SyntheticDatabase};
//!
//! let db = SyntheticDatabase::new(DatabaseConfig {
//!     num_records: 1,
//!     duration_s: 10.0,
//!     ..DatabaseConfig::default()
//! });
//! let record = db.record(0);
//! let mv = record.signal_mv(0);           // 360 Hz millivolts
//! let at_256 = resample_360_to_256(&mv);  // what the serial port feeds in
//! let packet = &at_256[..512];            // one 2-second CS packet
//! assert_eq!(packet.len(), 512);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adc;
mod database;
mod detect;
mod model;
mod noise;
mod record;
mod resample;
pub mod wfdb;

pub use adc::AdcModel;
pub use database::{DatabaseConfig, SyntheticDatabase};
pub use detect::{detect_r_peaks, score_detections, QrsDetectorConfig, SEARCHBACK_RR_FACTOR};
pub use model::{BeatAnnotation, BeatType, EcgModel, EcgModelConfig, RhythmConfig};
pub use noise::{contaminate, noise_trace, NoiseConfig};
pub use record::Record;
pub use resample::{resample_360_to_256, Resampler};
