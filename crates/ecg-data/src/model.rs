//! Dynamical-model ECG synthesis.
//!
//! The MIT-BIH Arrhythmia Database the paper evaluates on cannot be bundled
//! here, so this module implements the standard substitute: the McSharry–
//! Clifford–Tarassenko dynamical model (IEEE TBME 2003, the model behind
//! `ECGSYN`). A trajectory moves around a unit limit cycle; each of the
//! P, Q, R, S and T events is a Gaussian bump attached to an angle on the
//! cycle, and the vertical coordinate `z(t)` traces a realistic ECG:
//!
//! ```text
//!   θ̇ = ω                       (angular velocity, set per beat from RR)
//!   ż = −Σᵢ aᵢ Δθᵢ exp(−Δθᵢ²/(2bᵢ²)) − (z − z₀(t))
//! ```
//!
//! with `Δθᵢ = (θ − θᵢ) mod 2π` and a respiration-coupled baseline `z₀`.
//! Beat-to-beat RR intervals follow an AR(1) process with respiratory
//! sinus-arrhythmia modulation, and individual beats can be replaced by
//! ectopic morphologies (PVC/APC) to emulate the arrhythmia content of the
//! original database. What matters for compressed sensing — the sharp QRS
//! support, the smooth P/T lobes, the quasi-periodicity the inter-packet
//! differencing exploits — is all reproduced by this construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The class of a synthesized heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BeatType {
    /// A normal sinus beat.
    Normal,
    /// A premature ventricular contraction: wide, high-amplitude QRS with
    /// no preceding P wave and a compensatory pause.
    Pvc,
    /// An atrial premature contraction: early, slightly abnormal P wave
    /// with an otherwise narrow QRS.
    Apc,
}

/// One Gaussian event of the limit-cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WaveEvent {
    /// Event angle θᵢ on the cycle (radians, R peak at 0).
    theta: f64,
    /// Event magnitude aᵢ.
    a: f64,
    /// Event angular width bᵢ.
    b: f64,
}

/// Morphology: the five wave events of one beat class for one lead.
#[derive(Debug, Clone, PartialEq)]
struct Morphology {
    events: [WaveEvent; 5],
}

impl Morphology {
    /// McSharry et al.'s published normal-beat parameters.
    fn normal() -> Self {
        let pi = std::f64::consts::PI;
        Morphology {
            events: [
                WaveEvent { theta: -pi / 3.0, a: 1.2, b: 0.25 },  // P
                WaveEvent { theta: -pi / 12.0, a: -5.0, b: 0.1 }, // Q
                WaveEvent { theta: 0.0, a: 30.0, b: 0.1 },        // R
                WaveEvent { theta: pi / 12.0, a: -7.5, b: 0.1 },  // S
                WaveEvent { theta: pi / 2.0, a: 0.75, b: 0.4 },   // T
            ],
        }
    }

    /// PVC: no P wave, wide and deep QRS complex, discordant T.
    fn pvc() -> Self {
        let pi = std::f64::consts::PI;
        Morphology {
            events: [
                WaveEvent { theta: -pi / 3.0, a: 0.0, b: 0.25 },   // P absent
                WaveEvent { theta: -pi / 9.0, a: -8.0, b: 0.22 },  // wide Q
                WaveEvent { theta: 0.0, a: 38.0, b: 0.22 },        // wide R
                WaveEvent { theta: pi / 9.0, a: -12.0, b: 0.22 },  // wide S
                WaveEvent { theta: pi / 2.0, a: -1.8, b: 0.5 },    // inverted T
            ],
        }
    }

    /// APC: early, small, re-shaped P wave; normal QRS.
    fn apc() -> Self {
        let pi = std::f64::consts::PI;
        Morphology {
            events: [
                WaveEvent { theta: -pi / 2.4, a: 0.8, b: 0.18 },  // early P
                WaveEvent { theta: -pi / 12.0, a: -5.0, b: 0.1 },
                WaveEvent { theta: 0.0, a: 30.0, b: 0.1 },
                WaveEvent { theta: pi / 12.0, a: -7.5, b: 0.1 },
                WaveEvent { theta: pi / 2.0, a: 0.75, b: 0.4 },
            ],
        }
    }

    fn for_beat(beat: BeatType) -> Self {
        match beat {
            BeatType::Normal => Morphology::normal(),
            BeatType::Pvc => Morphology::pvc(),
            BeatType::Apc => Morphology::apc(),
        }
    }

    /// Projects the morphology onto a second lead by scaling each event —
    /// a crude but effective stand-in for a different electrode placement.
    fn project(&self, gains: &[f64; 5]) -> Self {
        let mut events = self.events;
        for (e, g) in events.iter_mut().zip(gains) {
            e.a *= g;
        }
        Morphology { events }
    }
}

/// Configuration of the beat-level rhythm generator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RhythmConfig {
    /// Mean heart rate in beats per minute.
    pub mean_heart_rate_bpm: f64,
    /// Standard deviation of the beat-to-beat RR fluctuation (seconds).
    pub rr_std_s: f64,
    /// AR(1) coefficient of the RR series (0 = white, →1 = slow drift).
    pub rr_ar_coeff: f64,
    /// Peak-to-peak respiratory sinus-arrhythmia modulation (seconds).
    pub rsa_depth_s: f64,
    /// Respiration frequency in Hz.
    pub respiration_hz: f64,
    /// Probability that any given beat is a PVC.
    pub pvc_probability: f64,
    /// Probability that any given beat is an APC.
    pub apc_probability: f64,
}

impl Default for RhythmConfig {
    fn default() -> Self {
        RhythmConfig {
            mean_heart_rate_bpm: 72.0,
            rr_std_s: 0.03,
            rr_ar_coeff: 0.8,
            rsa_depth_s: 0.05,
            respiration_hz: 0.25,
            pvc_probability: 0.0,
            apc_probability: 0.0,
        }
    }
}

/// Full synthesizer configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EcgModelConfig {
    /// Output sampling rate in Hz (MIT-BIH records use 360).
    pub sample_rate_hz: f64,
    /// Target peak-to-peak amplitude of the clean ECG in millivolts.
    pub amplitude_mv: f64,
    /// Rhythm (RR-interval and ectopy) parameters.
    pub rhythm: RhythmConfig,
    /// Baseline-coupling gain of the respiration term `z₀`.
    pub baseline_coupling_mv: f64,
}

impl Default for EcgModelConfig {
    fn default() -> Self {
        EcgModelConfig {
            sample_rate_hz: 360.0,
            amplitude_mv: 2.0,
            rhythm: RhythmConfig::default(),
            baseline_coupling_mv: 0.01,
        }
    }
}

/// A synthesized beat boundary, reported alongside the samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeatAnnotation {
    /// Sample index of the R peak (θ = 0 crossing).
    pub sample: usize,
    /// Beat class.
    pub beat: BeatType,
}

/// The dynamical-model ECG generator.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::{EcgModel, EcgModelConfig};
///
/// let mut model = EcgModel::new(EcgModelConfig::default(), 42);
/// let (signal, beats) = model.synthesize(10.0); // 10 s at 360 Hz
/// assert_eq!(signal.len(), 3600);
/// // ~72 bpm ⇒ roughly 12 beats in 10 s.
/// assert!(beats.len() >= 9 && beats.len() <= 15, "{} beats", beats.len());
/// ```
#[derive(Debug, Clone)]
pub struct EcgModel {
    config: EcgModelConfig,
    rng: StdRng,
    /// AR(1) state of the RR fluctuation.
    rr_state: f64,
    /// Lead gains applied to every morphology (identity for lead I).
    lead_gains: [f64; 5],
}

impl EcgModel {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: EcgModelConfig, seed: u64) -> Self {
        EcgModel {
            config,
            rng: StdRng::seed_from_u64(seed),
            rr_state: 0.0,
            lead_gains: [1.0; 5],
        }
    }

    /// Creates a generator whose morphologies are projected onto a second
    /// lead (different relative wave amplitudes), for two-channel records.
    pub fn with_lead_gains(config: EcgModelConfig, seed: u64, gains: [f64; 5]) -> Self {
        EcgModel {
            config,
            rng: StdRng::seed_from_u64(seed),
            rr_state: 0.0,
            lead_gains: gains,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EcgModelConfig {
        &self.config
    }

    /// Draws the next RR interval (seconds) and beat class.
    fn next_beat(&mut self, t: f64) -> (f64, BeatType) {
        let r = &self.config.rhythm;
        let mean_rr = 60.0 / r.mean_heart_rate_bpm;
        // AR(1) fluctuation.
        let innovation_std = r.rr_std_s * (1.0 - r.rr_ar_coeff * r.rr_ar_coeff).sqrt();
        let z: f64 = standard_normal(&mut self.rng);
        self.rr_state = r.rr_ar_coeff * self.rr_state + innovation_std * z;
        // Respiratory sinus arrhythmia.
        let rsa =
            0.5 * r.rsa_depth_s * (2.0 * std::f64::consts::PI * r.respiration_hz * t).sin();
        let u: f64 = self.rng.gen();
        let (beat, rr) = if u < r.pvc_probability {
            // Premature, followed (implicitly) by a longer cycle because the
            // AR state is pulled down only for this beat.
            (BeatType::Pvc, mean_rr * 0.65)
        } else if u < r.pvc_probability + r.apc_probability {
            (BeatType::Apc, mean_rr * 0.8)
        } else {
            (BeatType::Normal, mean_rr + self.rr_state + rsa)
        };
        (rr.max(0.3), beat)
    }

    /// Synthesizes `duration_s` seconds of single-lead ECG in millivolts,
    /// returning the samples and the beat annotations.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive.
    pub fn synthesize(&mut self, duration_s: f64) -> (Vec<f64>, Vec<BeatAnnotation>) {
        assert!(duration_s > 0.0, "synthesize: duration must be positive");
        let fs = self.config.sample_rate_hz;
        let n = (duration_s * fs).round() as usize;
        let dt = 1.0 / fs;
        let two_pi = 2.0 * std::f64::consts::PI;

        let mut samples = Vec::with_capacity(n);
        let mut beats = Vec::new();

        // Integration state.
        let mut theta = -std::f64::consts::PI; // start mid-diastole
        let mut z = 0.0_f64;
        let (mut rr, mut beat) = self.next_beat(0.0);
        let mut morph = Morphology::for_beat(beat).project(&self.lead_gains);
        let mut omega = two_pi / rr;

        for i in 0..n {
            let t = i as f64 * dt;
            // Baseline respiratory coupling.
            let z0 = self.config.baseline_coupling_mv
                * (two_pi * self.config.rhythm.respiration_hz * t).sin();

            // RK4 on ż; θ advances linearly within a beat.
            let f = |th: f64, zz: f64| -> f64 {
                let mut dz = -(zz - z0);
                for e in &morph.events {
                    if e.a == 0.0 {
                        continue;
                    }
                    let mut dth = th - e.theta;
                    // Wrap to (−π, π].
                    while dth > std::f64::consts::PI {
                        dth -= two_pi;
                    }
                    while dth <= -std::f64::consts::PI {
                        dth += two_pi;
                    }
                    dz -= e.a * omega * dth * (-dth * dth / (2.0 * e.b * e.b)).exp();
                }
                dz
            };
            let k1 = f(theta, z);
            let k2 = f(theta + 0.5 * dt * omega, z + 0.5 * dt * k1);
            let k3 = f(theta + 0.5 * dt * omega, z + 0.5 * dt * k2);
            let k4 = f(theta + dt * omega, z + dt * k3);
            z += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);

            let prev_theta = theta;
            theta += dt * omega;

            // R-peak annotation: θ crosses 0 upward.
            if prev_theta < 0.0 && theta >= 0.0 {
                beats.push(BeatAnnotation { sample: i, beat });
            }

            // Beat boundary: θ wraps at +π → start next cycle at −π.
            if theta >= std::f64::consts::PI {
                theta -= two_pi;
                let (next_rr, next_beat) = self.next_beat(t);
                rr = next_rr;
                beat = next_beat;
                omega = two_pi / rr;
                morph = Morphology::for_beat(beat).project(&self.lead_gains);
            }

            samples.push(z);
        }

        // Normalize peak-to-peak to the configured amplitude.
        let (min, max) = samples
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let span = max - min;
        if span > 0.0 {
            let scale = self.config.amplitude_mv / span;
            let mid = (max + min) / 2.0;
            for v in &mut samples {
                *v = (*v - mid) * scale;
            }
        }
        (samples, beats)
    }
}

/// Standard-normal draw via Box–Muller on the `rand` uniform stream.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    let v: f64 = rng.gen();
    (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_signal(seed: u64, secs: f64) -> (Vec<f64>, Vec<BeatAnnotation>) {
        EcgModel::new(EcgModelConfig::default(), seed).synthesize(secs)
    }

    #[test]
    fn deterministic_for_seed() {
        let (a, ba) = default_signal(1, 5.0);
        let (b, bb) = default_signal(1, 5.0);
        assert_eq!(a, b);
        assert_eq!(ba, bb);
        let (c, _) = default_signal(2, 5.0);
        assert_ne!(a, c);
    }

    #[test]
    fn amplitude_is_normalized() {
        let (s, _) = default_signal(3, 10.0);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min - 2.0).abs() < 1e-9, "p2p = {}", max - min);
    }

    #[test]
    fn beat_rate_matches_config() {
        let mut cfg = EcgModelConfig::default();
        cfg.rhythm.mean_heart_rate_bpm = 120.0;
        let (_, beats) = EcgModel::new(cfg, 4).synthesize(30.0);
        // 120 bpm over 30 s ⇒ ~60 beats.
        assert!(
            (50..=70).contains(&beats.len()),
            "{} beats at 120 bpm / 30 s",
            beats.len()
        );
    }

    #[test]
    fn r_peaks_are_local_maxima() {
        let (s, beats) = default_signal(5, 20.0);
        // The annotated sample should be within a few samples of a local max
        // that towers over the record mean.
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        for b in &beats {
            let lo = b.sample.saturating_sub(8);
            let hi = (b.sample + 8).min(s.len() - 1);
            let peak = s[lo..=hi].iter().cloned().fold(f64::MIN, f64::max);
            assert!(
                peak > mean + 0.4,
                "no prominent peak near annotated R at {}",
                b.sample
            );
        }
    }

    #[test]
    fn pvc_beats_are_generated_and_differ() {
        let mut cfg = EcgModelConfig::default();
        cfg.rhythm.pvc_probability = 0.3;
        let (_, beats) = EcgModel::new(cfg, 6).synthesize(60.0);
        let pvcs = beats.iter().filter(|b| b.beat == BeatType::Pvc).count();
        assert!(pvcs >= 5, "only {pvcs} PVCs in 60 s at p=0.3");
        assert!(beats.iter().any(|b| b.beat == BeatType::Normal));
    }

    #[test]
    fn second_lead_differs_from_first() {
        let cfg = EcgModelConfig::default();
        let (a, _) = EcgModel::new(cfg.clone(), 7).synthesize(5.0);
        let (b, _) =
            EcgModel::with_lead_gains(cfg, 7, [0.6, -0.4, 0.9, -0.6, 1.3]).synthesize(5.0);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0, "leads are identical");
    }

    #[test]
    fn signal_is_sparse_in_wavelet_domain() {
        // The property the whole system rests on: most energy in few coeffs.
        use cs_dsp::wavelet::{Dwt, Wavelet};
        let (s, _) = default_signal(8, 512.0 / 360.0 + 0.01);
        let x = &s[..512];
        let dwt: Dwt<f64> = Dwt::new(&Wavelet::daubechies(4).unwrap(), 512, 5).unwrap();
        let c = dwt.analyze(x);
        let total: f64 = c.iter().map(|v| v * v).sum();
        let mut mags: Vec<f64> = c.iter().map(|v| v * v).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top: f64 = mags[..64].iter().sum();
        assert!(top / total > 0.97, "top-64 energy fraction {}", top / total);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        let _ = EcgModel::new(EcgModelConfig::default(), 1).synthesize(0.0);
    }
}
