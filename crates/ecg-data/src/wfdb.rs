//! Minimal WFDB (PhysioNet) interchange: format-212 signals and header
//! records.
//!
//! MIT-BIH records ship as a `.hea` text header plus a `.dat` file in
//! **format 212**: two 12-bit samples packed into three bytes. This module
//! implements that packing and a compatible header writer/parser so the
//! synthetic corpus can be exported for inspection in standard PhysioNet
//! tooling, and so the pipeline could ingest a real MIT-BIH record
//! byte-for-byte if one is available locally.
//!
//! Only the fields MIT-BIH headers actually use are supported.

use crate::record::Record;
use std::fmt::Write as _;

/// Packs two channels of 12-bit samples into WFDB format 212.
///
/// Samples are interleaved (ch0, ch1, ch0, …) as WFDB specifies for
/// multiplexed signals; both channels must share a length. Values are
/// masked to 12 bits two's-complement.
///
/// # Panics
///
/// Panics if the channels differ in length.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::wfdb::{pack_212, unpack_212};
///
/// let ch0 = vec![0_i16, 100, -100, 2047];
/// let ch1 = vec![5_i16, -5, 1024, -2048];
/// let bytes = pack_212(&ch0, &ch1);
/// assert_eq!(bytes.len(), 4 * 3); // 2 samples per 3 bytes
/// let (a, b) = unpack_212(&bytes, 4);
/// assert_eq!(a, ch0);
/// assert_eq!(b, ch1);
/// ```
pub fn pack_212(ch0: &[i16], ch1: &[i16]) -> Vec<u8> {
    assert_eq!(ch0.len(), ch1.len(), "pack_212: channel length mismatch");
    let mut out = Vec::with_capacity(ch0.len() * 3);
    for (&a, &b) in ch0.iter().zip(ch1) {
        let a = (a as u16) & 0x0FFF;
        let b = (b as u16) & 0x0FFF;
        out.push((a & 0xFF) as u8);
        out.push((((a >> 8) & 0x0F) | ((b >> 4) & 0xF0)) as u8);
        out.push((b & 0xFF) as u8);
    }
    out
}

/// Inverse of [`pack_212`]: unpacks `samples_per_channel` sample pairs.
///
/// # Panics
///
/// Panics if `bytes` is shorter than `3 × samples_per_channel`.
pub fn unpack_212(bytes: &[u8], samples_per_channel: usize) -> (Vec<i16>, Vec<i16>) {
    assert!(
        bytes.len() >= samples_per_channel * 3,
        "unpack_212: buffer too short"
    );
    let mut ch0 = Vec::with_capacity(samples_per_channel);
    let mut ch1 = Vec::with_capacity(samples_per_channel);
    for i in 0..samples_per_channel {
        let b0 = bytes[3 * i] as u16;
        let b1 = bytes[3 * i + 1] as u16;
        let b2 = bytes[3 * i + 2] as u16;
        let a = ((b1 & 0x0F) << 8) | b0;
        let b = ((b1 & 0xF0) << 4) | b2;
        ch0.push(sign_extend_12(a));
        ch1.push(sign_extend_12(b));
    }
    (ch0, ch1)
}

fn sign_extend_12(v: u16) -> i16 {
    if v & 0x0800 != 0 {
        (v | 0xF000) as i16
    } else {
        v as i16
    }
}

/// A parsed (or to-be-written) WFDB header for a two-channel format-212
/// record.
#[derive(Debug, Clone, PartialEq)]
pub struct WfdbHeader {
    /// Record name (base of the `.dat`/`.hea` file names).
    pub record_name: String,
    /// Channels (2 for MIT-BIH).
    pub num_signals: usize,
    /// Sampling frequency in Hz.
    pub sample_rate_hz: f64,
    /// Samples per channel.
    pub num_samples: usize,
    /// ADC gain in counts per millivolt (MIT-BIH: 200).
    pub gain: f64,
    /// ADC zero (midscale code).
    pub adc_zero: i32,
}

impl WfdbHeader {
    /// Renders the `.hea` text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} {} {} {}",
            self.record_name, self.num_signals, self.sample_rate_hz, self.num_samples
        );
        for ch in 0..self.num_signals {
            let _ = writeln!(
                out,
                "{}.dat 212 {}(0)/mV 12 {} 0 0 0 ch{}",
                self.record_name, self.gain, self.adc_zero, ch
            );
        }
        out
    }

    /// Parses the subset of `.hea` syntax this module writes.
    ///
    /// Returns `None` on any structural mismatch (callers treat that as
    /// "not a supported header", not a panic).
    pub fn parse(text: &str) -> Option<WfdbHeader> {
        let mut lines = text.lines().filter(|l| !l.trim_start().starts_with('#'));
        let first = lines.next()?;
        let mut it = first.split_whitespace();
        let record_name = it.next()?.to_owned();
        let num_signals: usize = it.next()?.parse().ok()?;
        let sample_rate_hz: f64 = it.next()?.parse().ok()?;
        let num_samples: usize = it.next()?.parse().ok()?;
        let mut gain = 200.0;
        let mut adc_zero = 1024;
        if let Some(sig) = lines.next() {
            let fields: Vec<&str> = sig.split_whitespace().collect();
            if fields.len() >= 5 {
                if fields.get(1) != Some(&"212") {
                    return None;
                }
                let g = fields[2].split('(').next()?;
                gain = g.parse().ok()?;
                adc_zero = fields[4].parse().ok()?;
            }
        }
        Some(WfdbHeader {
            record_name,
            num_signals,
            sample_rate_hz,
            num_samples,
            gain,
            adc_zero,
        })
    }
}

/// Serializes a two-channel [`Record`] into WFDB `(header_text, dat_bytes)`.
///
/// Codes are centered on the ADC midscale so they fit format 212's 12-bit
/// range (MIT-BIH's 11-bit codes always do).
///
/// # Panics
///
/// Panics if the record does not have exactly two channels.
pub fn record_to_wfdb(record: &Record) -> (String, Vec<u8>) {
    assert_eq!(record.num_channels(), 2, "record_to_wfdb: need two channels");
    let header = WfdbHeader {
        record_name: record.id().to_owned(),
        num_signals: 2,
        sample_rate_hz: record.sample_rate_hz(),
        num_samples: record.len(),
        gain: record.adc().levels() as f64 / record.adc().range_mv(),
        adc_zero: record.adc().midscale() as i32,
    };
    let ch0 = record.signed_samples(0);
    let ch1 = record.signed_samples(1);
    (header.to_text(), pack_212(&ch0, &ch1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{DatabaseConfig, SyntheticDatabase};
    use proptest::prelude::*;

    #[test]
    fn sign_extension_boundaries() {
        assert_eq!(sign_extend_12(0x000), 0);
        assert_eq!(sign_extend_12(0x7FF), 2047);
        assert_eq!(sign_extend_12(0x800), -2048);
        assert_eq!(sign_extend_12(0xFFF), -1);
    }

    #[test]
    fn header_round_trip() {
        let h = WfdbHeader {
            record_name: "s100".into(),
            num_signals: 2,
            sample_rate_hz: 360.0,
            num_samples: 1800,
            gain: 204.8,
            adc_zero: 1024,
        };
        let parsed = WfdbHeader::parse(&h.to_text()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn parse_rejects_non_212() {
        let text = "x 2 360 100\nx.dat 16 200(0)/mV 12 1024 0 0 0 ch0\n";
        assert!(WfdbHeader::parse(text).is_none());
    }

    #[test]
    fn synthetic_record_exports() {
        let db = SyntheticDatabase::new(DatabaseConfig {
            num_records: 1,
            duration_s: 2.0,
            ..DatabaseConfig::default()
        });
        let record = db.record(0);
        let (hea, dat) = record_to_wfdb(&record);
        assert!(hea.contains("212"));
        assert_eq!(dat.len(), record.len() * 3);
        // And the signal round-trips through the packing.
        let (ch0, _) = unpack_212(&dat, record.len());
        assert_eq!(ch0, record.signed_samples(0));
    }

    proptest! {
        #[test]
        fn prop_pack_unpack_bijective(
            pairs in proptest::collection::vec((-2048_i16..=2047, -2048_i16..=2047), 1..200)
        ) {
            let ch0: Vec<i16> = pairs.iter().map(|p| p.0).collect();
            let ch1: Vec<i16> = pairs.iter().map(|p| p.1).collect();
            let bytes = pack_212(&ch0, &ch1);
            let (a, b) = unpack_212(&bytes, pairs.len());
            prop_assert_eq!(a, ch0);
            prop_assert_eq!(b, ch1);
        }
    }
}
