//! Polyphase rational-rate resampling.
//!
//! The paper feeds the mote "database records re-sampled at 256 Hz"
//! (§IV-A1) from the 360 Hz originals. 256/360 reduces to 32/45, so the
//! conversion is a classic L/M rational resampler: conceptually upsample by
//! L = 32, low-pass filter, downsample by M = 45. [`Resampler`] computes
//! only the output samples (polyphase decomposition), so the cost per
//! output sample is `taps / L` multiply-adds, not the full upsampled
//! convolution.

use cs_dsp::fir::lowpass_sinc;
use cs_dsp::window::kaiser;

/// Greatest common divisor (Euclid).
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A planned rational resampler converting by the factor `up/down`.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::Resampler;
///
/// // 360 Hz → 256 Hz (the paper's conversion).
/// let rs = Resampler::new(256, 360);
/// assert_eq!(rs.up(), 32);
/// assert_eq!(rs.down(), 45);
/// let x = vec![1.0; 4500]; // 12.5 s of DC at 360 Hz
/// let y = rs.resample(&x);
/// assert_eq!(y.len(), 3200); // 12.5 s at 256 Hz
/// // DC gain is unity away from the edges.
/// assert!((y[1600] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Resampler {
    up: usize,
    down: usize,
    /// Prototype low-pass taps, already scaled by `up` for unity passband
    /// gain after zero-stuffing.
    taps: Vec<f64>,
}

impl Resampler {
    /// Plans a resampler converting a rate of `from_hz`-equivalent units to
    /// `to_hz` (only the ratio matters; it is reduced internally).
    ///
    /// # Panics
    ///
    /// Panics if either rate is zero.
    pub fn new(to_hz: usize, from_hz: usize) -> Self {
        assert!(to_hz > 0 && from_hz > 0, "Resampler: rates must be nonzero");
        let g = gcd(to_hz, from_hz);
        let up = to_hz / g;
        let down = from_hz / g;
        // Anti-alias + anti-image filter at the upsampled rate: cutoff at
        // the tighter of the two Nyquist limits.
        let cutoff = 0.5 / up.max(down) as f64 * 0.92; // small transition margin
        let taps_per_phase = 24;
        let n_taps = taps_per_phase * up.max(2) + 1;
        let window = kaiser(n_taps, 10.0);
        let mut taps: Vec<f64> = lowpass_sinc(cutoff, &window);
        for t in &mut taps {
            *t *= up as f64;
        }
        Resampler { up, down, taps }
    }

    /// Reduced upsampling factor L.
    pub fn up(&self) -> usize {
        self.up
    }

    /// Reduced downsampling factor M.
    pub fn down(&self) -> usize {
        self.down
    }

    /// Number of prototype filter taps.
    pub fn taps_len(&self) -> usize {
        self.taps.len()
    }

    /// Resamples a whole signal, compensating the filter's group delay so
    /// output sample `k` aligns with input time `k·M/L`.
    pub fn resample(&self, x: &[f64]) -> Vec<f64> {
        if x.is_empty() {
            return Vec::new();
        }
        let n = x.len();
        let out_len = (n * self.up).div_ceil(self.down);
        let delay = (self.taps.len() - 1) / 2;
        let mut out = Vec::with_capacity(out_len);
        for k in 0..out_len {
            // Virtual index into the upsampled-and-filtered stream.
            let i_base = k * self.down + delay;
            let mut acc = 0.0_f64;
            // j ranges over taps with (i_base − j) divisible by up.
            let phase = i_base % self.up;
            let mut j = phase;
            // j may not exceed i_base (the stream is causal and starts at 0).
            while j < self.taps.len() && j <= i_base {
                let up_idx = i_base - j;
                let src = up_idx / self.up;
                if src < n {
                    acc += self.taps[j] * x[src];
                }
                j += self.up;
            }
            out.push(acc);
        }
        out
    }
}

/// Convenience: the paper's exact 360 Hz → 256 Hz conversion.
///
/// # Examples
///
/// ```
/// let x: Vec<f64> = (0..3600).map(|i| (i as f64 * 0.05).sin()).collect();
/// let y = cs_ecg_data::resample_360_to_256(&x);
/// assert_eq!(y.len(), 2560);
/// ```
pub fn resample_360_to_256(x: &[f64]) -> Vec<f64> {
    Resampler::new(256, 360).resample(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_reduction() {
        let rs = Resampler::new(256, 360);
        assert_eq!((rs.up(), rs.down()), (32, 45));
        let rs = Resampler::new(2, 1);
        assert_eq!((rs.up(), rs.down()), (2, 1));
    }

    #[test]
    fn output_length() {
        let rs = Resampler::new(256, 360);
        assert_eq!(rs.resample(&vec![0.0; 360]).len(), 256);
        assert_eq!(rs.resample(&vec![0.0; 720]).len(), 512);
        assert!(rs.resample(&[]).is_empty());
    }

    #[test]
    fn sine_frequency_preserved() {
        // 10 Hz sine at 360 Hz must come out as a 10 Hz sine at 256 Hz.
        let f = 10.0;
        let n = 3600;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / 360.0).sin())
            .collect();
        let y = resample_360_to_256(&x);
        // Compare against the ideal resampled sine away from the edges.
        let mut max_err = 0.0_f64;
        for (k, &v) in y.iter().enumerate().skip(100).take(y.len() - 200) {
            let t = k as f64 / 256.0;
            let ideal = (2.0 * std::f64::consts::PI * f * t).sin();
            max_err = max_err.max((v - ideal).abs());
        }
        assert!(max_err < 1e-3, "max interior error {max_err}");
    }

    #[test]
    fn high_frequency_rejected() {
        // 170 Hz is above the 128 Hz output Nyquist: it must be attenuated,
        // not aliased in at full strength.
        let n = 3600;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 170.0 * i as f64 / 360.0).sin())
            .collect();
        let y = resample_360_to_256(&x);
        let rms = (y.iter().skip(100).take(y.len() - 200).map(|v| v * v).sum::<f64>()
            / (y.len() - 200) as f64)
            .sqrt();
        assert!(rms < 0.02, "aliased energy rms {rms}");
    }

    #[test]
    fn upsample_by_two_interpolates() {
        let rs = Resampler::new(2, 1);
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let y = rs.resample(&x);
        assert_eq!(y.len(), 400);
        // Even samples reproduce the input away from the edges.
        for i in 50..150 {
            assert!((y[2 * i] - x[i]).abs() < 1e-3, "sample {i}");
        }
    }

    #[test]
    fn identity_ratio_is_near_identity() {
        let rs = Resampler::new(360, 360);
        assert_eq!((rs.up(), rs.down()), (1, 1));
        let x: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).cos()).collect();
        let y = rs.resample(&x);
        assert_eq!(y.len(), 300);
        for i in 30..270 {
            assert!((x[i] - y[i]).abs() < 1e-4);
        }
    }
}
