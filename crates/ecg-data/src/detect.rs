//! QRS detection — a Pan–Tompkins-style R-peak detector.
//!
//! The clinical value of a compressed ECG is whether downstream analysis
//! still works (§I: "clinical relevance"). The canonical first stage of
//! any such analysis is QRS detection, so this module implements the
//! classic Pan–Tompkins pipeline (1985), simplified to the parts that
//! matter at 256–360 Hz:
//!
//! ```text
//!   band-pass (5–20 Hz FIR) → derivative → squaring → moving-window
//!   integration → adaptive threshold with refractory period
//! ```
//!
//! The `arrhythmia_monitor` example scores this detector on reconstructed
//! signals against the synthesizer's ground-truth annotations.

use crate::model::BeatAnnotation;
use cs_dsp::fir::{convolve, lowpass_sinc, ConvMode};
use cs_dsp::window::hamming;

/// Configuration of the QRS detector.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QrsDetectorConfig {
    /// Sampling rate of the input in Hz.
    pub sample_rate_hz: f64,
    /// Refractory period in seconds (no two beats closer than this).
    pub refractory_s: f64,
    /// Threshold as a fraction of the running integrated-energy peak.
    pub threshold_fraction: f64,
    /// Moving-integration window length in seconds (≈ QRS width).
    pub integration_window_s: f64,
}

impl QrsDetectorConfig {
    /// Defaults tuned for the 256 Hz decoder output.
    pub fn at_256_hz() -> Self {
        QrsDetectorConfig {
            sample_rate_hz: 256.0,
            refractory_s: 0.25,
            threshold_fraction: 0.35,
            integration_window_s: 0.11,
        }
    }

    /// Defaults for raw 360 Hz records.
    pub fn at_360_hz() -> Self {
        QrsDetectorConfig {
            sample_rate_hz: 360.0,
            ..QrsDetectorConfig::at_256_hz()
        }
    }
}

/// Detects R peaks, returning their sample indices in ascending order.
///
/// # Panics
///
/// Panics if the configuration has a non-positive sample rate or the
/// threshold fraction is outside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::{detect_r_peaks, EcgModel, EcgModelConfig, QrsDetectorConfig};
///
/// let mut model = EcgModel::new(EcgModelConfig::default(), 5);
/// let (signal, beats) = model.synthesize(20.0);
/// let detected = detect_r_peaks(&signal, &QrsDetectorConfig::at_360_hz());
/// // Essentially every annotated beat is found.
/// assert!(detected.len() >= beats.len().saturating_sub(2));
/// ```
pub fn detect_r_peaks(signal: &[f64], config: &QrsDetectorConfig) -> Vec<usize> {
    assert!(config.sample_rate_hz > 0.0, "detect_r_peaks: bad sample rate");
    assert!(
        config.threshold_fraction > 0.0 && config.threshold_fraction < 1.0,
        "detect_r_peaks: threshold fraction outside (0, 1)"
    );
    let fs = config.sample_rate_hz;
    if signal.len() < (0.5 * fs) as usize {
        return Vec::new();
    }

    // 1. Band-pass ≈ 5–20 Hz: difference of two windowed-sinc low-passes.
    let lp_hi = lowpass_sinc::<f64>((20.0 / fs).min(0.45), &hamming(31));
    let lp_lo = lowpass_sinc::<f64>((5.0 / fs).min(0.4), &hamming(31));
    let smooth_hi = convolve(signal, &lp_hi, ConvMode::Same);
    let smooth_lo = convolve(signal, &lp_lo, ConvMode::Same);
    let band: Vec<f64> = smooth_hi
        .iter()
        .zip(&smooth_lo)
        .map(|(a, b)| a - b)
        .collect();

    // 2–3. Five-point derivative, then squaring.
    let mut energy = vec![0.0_f64; band.len()];
    for i in 2..band.len().saturating_sub(2) {
        let d = (2.0 * band[i + 2] + band[i + 1] - band[i - 1] - 2.0 * band[i - 2]) / 8.0;
        energy[i] = d * d;
    }

    // 4. Moving-window integration.
    let w = ((config.integration_window_s * fs) as usize).max(1);
    let mut integrated = vec![0.0_f64; energy.len()];
    let mut acc = 0.0;
    for i in 0..energy.len() {
        acc += energy[i];
        if i >= w {
            acc -= energy[i - w];
        }
        integrated[i] = acc / w as f64;
    }

    // 5. Pan–Tompkins dual running estimates: a signal-peak level (SPKI)
    //    and a noise-peak level (NPKI); the threshold floats between them
    //    so one giant ectopic beat cannot mask subsequent normal beats.
    let refractory = (config.refractory_s * fs) as usize;
    let warmup = (2.0 * fs) as usize;
    let init_peak = integrated[..warmup.min(integrated.len())]
        .iter()
        .cloned()
        .fold(0.0_f64, f64::max);
    if init_peak <= 0.0 {
        return Vec::new();
    }
    let mut spki = 0.5 * init_peak;
    let mut npki = 0.05 * init_peak;
    let frac = config.threshold_fraction;
    // Pan–Tompkins searchback state: the running RR average and the best
    // sub-threshold crest seen since the last accepted beat. When no beat
    // arrives for 1.66× the expected RR, the detector has almost
    // certainly *missed* one (a run of tall ectopics ratchets SPKI up
    // faster than normal beats can pull it down), so the strongest
    // rejected crest in the gap is accepted at half threshold and SPKI is
    // yanked toward it — without this the miss is self-reinforcing: only
    // ectopics keep crossing the inflated threshold, and each one feeds
    // SPKI again.
    let mut rr_avg: Option<f64> = None;
    let mut candidate: Option<(usize, f64)> = None;
    let mut detections: Vec<usize> = Vec::new();
    for i in 1..integrated.len().saturating_sub(1) {
        if let (Some(&last), Some(rr), Some((cand, cv))) =
            (detections.last(), rr_avg, candidate)
        {
            if i.saturating_sub(last) as f64 > SEARCHBACK_RR_FACTOR * rr
                && cand.saturating_sub(last) > refractory
            {
                detections.push(cand);
                spki = 0.25 * cv.min(2.0 * spki) + 0.75 * spki;
                rr_avg = Some(rr + 0.125 * ((cand - last) as f64 - rr));
                candidate = None;
            }
        }
        let v = integrated[i];
        // Local maxima of the integrated energy only.
        if !(v >= integrated[i - 1] && v >= integrated[i + 1] && v > 0.0) {
            continue;
        }
        let threshold = npki + frac * (spki - npki);
        let in_refractory = detections
            .last()
            .is_some_and(|&last| i.saturating_sub(last) <= refractory);
        if v > threshold && !in_refractory {
            // Refine to the band-passed extremum near the crest.
            let refined = refine_crest(&band, i, w);
            if detections
                .last()
                .is_none_or(|&last| refined.saturating_sub(last) > refractory)
            {
                if let Some(&last) = detections.last() {
                    let rr = (refined - last) as f64;
                    rr_avg = Some(match rr_avg {
                        Some(avg) => avg + 0.125 * (rr - avg),
                        None => rr,
                    });
                }
                detections.push(refined);
                candidate = None;
                // Cap the contribution of one crest so a single giant
                // ectopic beat cannot launch SPKI out of reach of the
                // following normal beats.
                spki = 0.125 * v.min(2.0 * spki) + 0.875 * spki;
                continue;
            }
        }
        if !in_refractory {
            if v > 0.5 * threshold {
                let refined = refine_crest(&band, i, w);
                if candidate.is_none_or(|(_, cv)| v > cv) {
                    candidate = Some((refined, v));
                }
            }
            npki = 0.125 * v.min(spki) + 0.875 * npki;
            // Noise estimate may never swallow the signal estimate.
            npki = npki.min(0.8 * spki);
        }
    }
    detections
}

/// Gap length, as a multiple of the running RR average, after which the
/// searchback accepts the best half-threshold crest (Pan–Tompkins 1985).
pub const SEARCHBACK_RR_FACTOR: f64 = 1.66;

/// Refines an integrated-energy crest at `i` to the band-passed extremum
/// in the window `[i − w, i + w/2]`.
fn refine_crest(band: &[f64], i: usize, w: usize) -> usize {
    let start = i.saturating_sub(w);
    let end = (i + w / 2).min(band.len() - 1);
    (start..=end)
        .max_by(|&a, &b| {
            band[a]
                .abs()
                .partial_cmp(&band[b].abs())
                .expect("finite band values")
        })
        .unwrap_or(i)
}

/// Sensitivity and positive predictivity of detections against annotated
/// beats, with a symmetric tolerance window in samples.
///
/// Returns `(sensitivity, positive_predictivity)` in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::{score_detections, BeatAnnotation, BeatType};
///
/// let truth = vec![
///     BeatAnnotation { sample: 100, beat: BeatType::Normal },
///     BeatAnnotation { sample: 300, beat: BeatType::Normal },
/// ];
/// let (se, ppv) = score_detections(&truth, &[102, 295, 500], 10);
/// assert_eq!(se, 1.0);       // both beats found
/// assert!((ppv - 2.0 / 3.0).abs() < 1e-12); // one false positive
/// ```
pub fn score_detections(
    truth: &[BeatAnnotation],
    detections: &[usize],
    tolerance: usize,
) -> (f64, f64) {
    if truth.is_empty() || detections.is_empty() {
        return (0.0, 0.0);
    }
    let hit = |target: usize| detections.iter().any(|&d| d.abs_diff(target) <= tolerance);
    let tp = truth.iter().filter(|b| hit(b.sample)).count();
    let matched = detections
        .iter()
        .filter(|&&d| truth.iter().any(|b| d.abs_diff(b.sample) <= tolerance))
        .count();
    (
        tp as f64 / truth.len() as f64,
        matched as f64 / detections.len() as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EcgModel, EcgModelConfig};
    use crate::noise::{contaminate, noise_trace, NoiseConfig};

    #[test]
    fn clean_ecg_detected_nearly_perfectly() {
        let mut model = EcgModel::new(EcgModelConfig::default(), 3);
        let (signal, beats) = model.synthesize(30.0);
        let detected = detect_r_peaks(&signal, &QrsDetectorConfig::at_360_hz());
        let (se, ppv) = score_detections(&beats, &detected, 18); // ±50 ms
        assert!(se > 0.95, "sensitivity {se}");
        assert!(ppv > 0.95, "predictivity {ppv}");
    }

    #[test]
    fn noisy_ecg_still_detected() {
        let mut model = EcgModel::new(EcgModelConfig::default(), 4);
        let (clean, beats) = model.synthesize(30.0);
        let noise = noise_trace(&NoiseConfig::default(), 360.0, clean.len(), 9);
        let noisy = contaminate(&clean, &noise);
        let detected = detect_r_peaks(&noisy, &QrsDetectorConfig::at_360_hz());
        let (se, ppv) = score_detections(&beats, &detected, 18);
        assert!(se > 0.9, "sensitivity {se}");
        assert!(ppv > 0.9, "predictivity {ppv}");
    }

    #[test]
    fn tachycardia_respects_refractory() {
        let mut cfg = EcgModelConfig::default();
        cfg.rhythm.mean_heart_rate_bpm = 150.0;
        let mut model = EcgModel::new(cfg, 5);
        let (signal, beats) = model.synthesize(20.0);
        let detected = detect_r_peaks(&signal, &QrsDetectorConfig::at_360_hz());
        let (se, _) = score_detections(&beats, &detected, 18);
        assert!(se > 0.9, "sensitivity {se} at 150 bpm");
        // No double-counting within the refractory window.
        for w in detected.windows(2) {
            assert!(w[1] - w[0] > (0.25 * 360.0) as usize);
        }
    }

    #[test]
    fn ectopic_beats_do_not_mask_normal_ones() {
        // A giant PVC must not raise the threshold past the normal beats —
        // the dual SPKI/NPKI tracking exists exactly for this.
        let mut cfg = EcgModelConfig::default();
        cfg.rhythm.pvc_probability = 0.15;
        let mut model = EcgModel::new(cfg, 2024);
        let (signal, beats) = model.synthesize(40.0);
        let detected = detect_r_peaks(&signal, &QrsDetectorConfig::at_360_hz());
        let (se, ppv) = score_detections(&beats, &detected, 18);
        assert!(se > 0.9, "sensitivity {se} with PVCs present");
        assert!(ppv > 0.9, "predictivity {ppv} with PVCs present");
    }

    #[test]
    fn flat_line_yields_nothing() {
        assert!(detect_r_peaks(&vec![0.0; 2000], &QrsDetectorConfig::at_360_hz()).is_empty());
        assert!(detect_r_peaks(&[0.0; 10], &QrsDetectorConfig::at_360_hz()).is_empty());
    }

    #[test]
    fn score_edge_cases() {
        assert_eq!(score_detections(&[], &[1, 2], 5), (0.0, 0.0));
        let truth = vec![crate::model::BeatAnnotation {
            sample: 50,
            beat: crate::model::BeatType::Normal,
        }];
        assert_eq!(score_detections(&truth, &[], 5), (0.0, 0.0));
    }
}
