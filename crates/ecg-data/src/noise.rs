//! Ambulatory ECG noise models.
//!
//! MIT-BIH records are *ambulatory* recordings: they carry baseline wander
//! from respiration and electrode motion, broadband muscle (EMG) artifact,
//! and mains interference. The synthetic corpus reproduces those
//! contaminants so the compression pipeline is evaluated on realistic
//! inputs rather than clean model output.

use cs_dsp::fir::{convolve, ConvMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the additive noise mix, all amplitudes in millivolts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseConfig {
    /// Peak amplitude of the baseline-wander component.
    pub baseline_wander_mv: f64,
    /// RMS amplitude of the band-limited muscle-artifact component.
    pub muscle_artifact_mv: f64,
    /// Peak amplitude of the mains (power-line) component.
    pub mains_mv: f64,
    /// Mains frequency in Hz (50 in Europe, 60 in the US; MIT-BIH has 60).
    pub mains_hz: f64,
    /// RMS of white measurement noise.
    pub white_mv: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            baseline_wander_mv: 0.05,
            muscle_artifact_mv: 0.01,
            mains_mv: 0.005,
            mains_hz: 60.0,
            white_mv: 0.005,
        }
    }
}

impl NoiseConfig {
    /// A configuration with every component disabled.
    pub fn clean() -> Self {
        NoiseConfig {
            baseline_wander_mv: 0.0,
            muscle_artifact_mv: 0.0,
            mains_mv: 0.0,
            mains_hz: 60.0,
            white_mv: 0.0,
        }
    }
}

/// Generates the additive noise trace for `n` samples at `fs` Hz.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::{noise_trace, NoiseConfig};
///
/// let noise = noise_trace(&NoiseConfig::default(), 360.0, 3600, 7);
/// assert_eq!(noise.len(), 3600);
/// let clean = noise_trace(&NoiseConfig::clean(), 360.0, 100, 7);
/// assert!(clean.iter().all(|&v| v == 0.0));
/// ```
pub fn noise_trace(config: &NoiseConfig, fs: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0.0_f64; n];

    // Baseline wander: a sum of slow sinusoids (respiration + electrode
    // drift) with randomized phases, plus a bounded random walk.
    if config.baseline_wander_mv > 0.0 {
        let freqs = [0.15, 0.23, 0.31];
        let phases: Vec<f64> = (0..freqs.len())
            .map(|_| rng.gen::<f64>() * 2.0 * std::f64::consts::PI)
            .collect();
        let mut walk = 0.0_f64;
        for (i, v) in out.iter_mut().enumerate() {
            let t = i as f64 / fs;
            let mut bw = 0.0;
            for (f, p) in freqs.iter().zip(&phases) {
                bw += (2.0 * std::f64::consts::PI * f * t + p).sin();
            }
            walk = (walk + (rng.gen::<f64>() - 0.5) * 0.02).clamp(-1.0, 1.0);
            *v += config.baseline_wander_mv * (bw / freqs.len() as f64 + 0.3 * walk);
        }
    }

    // Muscle artifact: white noise shaped by a short smoothing kernel so its
    // spectrum rolls off like surface EMG.
    if config.muscle_artifact_mv > 0.0 {
        let white: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let kernel = [0.2, 0.3, 0.3, 0.2];
        let shaped = convolve(&white, &kernel, ConvMode::Same);
        let rms = (shaped.iter().map(|v| v * v).sum::<f64>() / n.max(1) as f64).sqrt();
        if rms > 0.0 {
            let g = config.muscle_artifact_mv / rms;
            for (v, s) in out.iter_mut().zip(&shaped) {
                *v += g * s;
            }
        }
    }

    // Mains hum with slow amplitude modulation.
    if config.mains_mv > 0.0 {
        let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        for (i, v) in out.iter_mut().enumerate() {
            let t = i as f64 / fs;
            let am = 1.0 + 0.2 * (2.0 * std::f64::consts::PI * 0.1 * t).sin();
            *v += config.mains_mv
                * am
                * (2.0 * std::f64::consts::PI * config.mains_hz * t + phase).sin();
        }
    }

    // White measurement noise.
    if config.white_mv > 0.0 {
        for v in out.iter_mut() {
            // Box–Muller.
            let u: f64 = 1.0 - rng.gen::<f64>();
            let w: f64 = rng.gen();
            let g = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * w).cos();
            *v += config.white_mv * g;
        }
    }

    out
}

/// Adds a noise trace to a clean signal, returning the contaminated copy.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn contaminate(clean: &[f64], noise: &[f64]) -> Vec<f64> {
    assert_eq!(clean.len(), noise.len(), "contaminate: length mismatch");
    clean.iter().zip(noise).map(|(a, b)| a + b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let c = NoiseConfig::default();
        assert_eq!(noise_trace(&c, 360.0, 500, 1), noise_trace(&c, 360.0, 500, 1));
        assert_ne!(noise_trace(&c, 360.0, 500, 1), noise_trace(&c, 360.0, 500, 2));
    }

    #[test]
    fn component_amplitudes_scale() {
        let mut c = NoiseConfig::clean();
        c.white_mv = 0.1;
        let tr = noise_trace(&c, 360.0, 20_000, 3);
        let rms = (tr.iter().map(|v| v * v).sum::<f64>() / tr.len() as f64).sqrt();
        assert!((rms - 0.1).abs() < 0.01, "white rms {rms}");
    }

    #[test]
    fn mains_component_is_narrowband() {
        let mut c = NoiseConfig::clean();
        c.mains_mv = 1.0;
        c.mains_hz = 60.0;
        let fs = 360.0;
        let n = 3600;
        let tr = noise_trace(&c, fs, n, 4);
        // Goertzel-style power at 60 Hz vs at 30 Hz.
        let power_at = |f: f64| -> f64 {
            let (mut re, mut im) = (0.0, 0.0);
            for (i, &v) in tr.iter().enumerate() {
                let w = 2.0 * std::f64::consts::PI * f * i as f64 / fs;
                re += v * w.cos();
                im += v * w.sin();
            }
            (re * re + im * im) / n as f64
        };
        assert!(power_at(60.0) > 100.0 * power_at(30.0));
    }

    #[test]
    fn baseline_wander_is_slow() {
        let mut c = NoiseConfig::clean();
        c.baseline_wander_mv = 1.0;
        let tr = noise_trace(&c, 360.0, 3600, 5);
        // Adjacent-sample differences are tiny relative to the excursion.
        let max_step = tr.windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        let span = tr.iter().cloned().fold(f64::MIN, f64::max)
            - tr.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max_step < span * 0.05, "step {max_step} vs span {span}");
    }

    #[test]
    fn contaminate_adds_elementwise() {
        let y = contaminate(&[1.0, 2.0], &[0.5, -0.5]);
        assert_eq!(y, vec![1.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn contaminate_length_mismatch_panics() {
        let _ = contaminate(&[1.0], &[1.0, 2.0]);
    }
}
