//! ADC front-end model.
//!
//! MIT-BIH recordings were "digitized at 360 samples per second per channel
//! with 11-bit resolution over a 10 mV range" (paper §III). [`AdcModel`]
//! reproduces that conversion: millivolts in, integer sample codes out,
//! with saturation at the rails — and the inverse mapping the decoder uses
//! to report PRD in physical units.

/// An ideal mid-tread quantizer over a symmetric input range.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::AdcModel;
///
/// let adc = AdcModel::mit_bih(); // 11 bits over 10 mV
/// let code = adc.quantize(0.0);
/// assert_eq!(code, 1024); // midscale
/// assert!((adc.dequantize(code) - 0.0).abs() < adc.lsb_mv());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdcModel {
    bits: u8,
    range_mv: f64,
}

impl AdcModel {
    /// Creates a converter with `bits` of resolution spanning
    /// `[-range_mv/2, +range_mv/2]`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 16` and `range_mv > 0`.
    pub fn new(bits: u8, range_mv: f64) -> Self {
        assert!((2..=16).contains(&bits), "AdcModel: bits out of range");
        assert!(range_mv > 0.0, "AdcModel: range must be positive");
        AdcModel { bits, range_mv }
    }

    /// The MIT-BIH converter: 11 bits over a 10 mV range.
    pub fn mit_bih() -> Self {
        AdcModel::new(11, 10.0)
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale range in millivolts.
    pub fn range_mv(&self) -> f64 {
        self.range_mv
    }

    /// Number of output codes, `2^bits`.
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// One least-significant bit in millivolts.
    pub fn lsb_mv(&self) -> f64 {
        self.range_mv / self.levels() as f64
    }

    /// The midscale (zero-volt) code.
    pub fn midscale(&self) -> u16 {
        (self.levels() / 2) as u16
    }

    /// Converts millivolts to an output code, saturating at the rails.
    pub fn quantize(&self, mv: f64) -> u16 {
        let code = (mv / self.lsb_mv()).round() + self.midscale() as f64;
        code.clamp(0.0, (self.levels() - 1) as f64) as u16
    }

    /// Converts a whole trace, saturating out-of-range samples.
    pub fn quantize_trace(&self, mv: &[f64]) -> Vec<u16> {
        mv.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Inverse mapping: output code to millivolts (the quantized value).
    pub fn dequantize(&self, code: u16) -> f64 {
        (code as f64 - self.midscale() as f64) * self.lsb_mv()
    }

    /// Inverse mapping of a whole trace.
    pub fn dequantize_trace(&self, codes: &[u16]) -> Vec<f64> {
        codes.iter().map(|&c| self.dequantize(c)).collect()
    }

    /// Signed, midscale-removed view of a code — the representation the
    /// 16-bit encoder works in.
    pub fn to_signed(&self, code: u16) -> i16 {
        code as i16 - self.midscale() as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mit_bih_parameters() {
        let a = AdcModel::mit_bih();
        assert_eq!(a.bits(), 11);
        assert_eq!(a.levels(), 2048);
        assert_eq!(a.midscale(), 1024);
        assert!((a.lsb_mv() - 10.0 / 2048.0).abs() < 1e-15);
    }

    #[test]
    fn saturation_at_rails() {
        let a = AdcModel::mit_bih();
        assert_eq!(a.quantize(100.0), 2047);
        assert_eq!(a.quantize(-100.0), 0);
    }

    #[test]
    fn signed_view_is_centered() {
        let a = AdcModel::mit_bih();
        assert_eq!(a.to_signed(1024), 0);
        assert_eq!(a.to_signed(0), -1024);
        assert_eq!(a.to_signed(2047), 1023);
    }

    #[test]
    #[should_panic(expected = "bits out of range")]
    fn one_bit_rejected() {
        let _ = AdcModel::new(1, 10.0);
    }

    proptest! {
        #[test]
        fn prop_quantization_error_below_half_lsb(mv in -4.9_f64..4.9) {
            let a = AdcModel::mit_bih();
            let rt = a.dequantize(a.quantize(mv));
            prop_assert!((rt - mv).abs() <= a.lsb_mv() / 2.0 + 1e-12);
        }

        #[test]
        fn prop_monotonic(a in -4.9_f64..4.9, b in -4.9_f64..4.9) {
            let adc = AdcModel::mit_bih();
            if a <= b {
                prop_assert!(adc.quantize(a) <= adc.quantize(b));
            }
        }

        #[test]
        fn prop_trace_round_trip(codes in proptest::collection::vec(0_u16..2048, 1..64)) {
            let adc = AdcModel::mit_bih();
            let mv = adc.dequantize_trace(&codes);
            let back = adc.quantize_trace(&mv);
            prop_assert_eq!(back, codes);
        }
    }
}
