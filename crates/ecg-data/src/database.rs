//! The synthetic MIT-BIH-like corpus.
//!
//! The paper evaluates on all 48 half-hour, two-channel records of the
//! MIT-BIH Arrhythmia Database. That database cannot be redistributed with
//! this repository, so [`SyntheticDatabase`] generates a 48-record corpus
//! with the same structure — 2 channels, 360 Hz, 11-bit over 10 mV — and a
//! population-like spread of heart rates, noise conditions and arrhythmia
//! content (a subset of records carries PVCs/APCs, as in the original).
//! Records are generated deterministically on demand from a corpus seed, so
//! the full 30-minute corpus never has to be resident in memory at once.

use crate::adc::AdcModel;
use crate::model::{EcgModel, EcgModelConfig};
use crate::noise::{contaminate, noise_trace, NoiseConfig};
use crate::record::Record;

/// Corpus-level configuration.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatabaseConfig {
    /// Number of records (MIT-BIH has 48).
    pub num_records: usize,
    /// Channels per record (MIT-BIH has 2).
    pub num_channels: usize,
    /// Record duration in seconds (MIT-BIH records are 1800 s; tests and
    /// sweeps typically use 60–120 s).
    pub duration_s: f64,
    /// Sampling rate in Hz.
    pub sample_rate_hz: f64,
    /// Master seed; every record derives its own seed from this.
    pub corpus_seed: u64,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            num_records: 48,
            num_channels: 2,
            duration_s: 60.0,
            sample_rate_hz: 360.0,
            corpus_seed: 0x00EC_60DB,
        }
    }
}

/// A deterministic, lazily generated corpus of synthetic ECG records.
///
/// # Examples
///
/// ```
/// use cs_ecg_data::{DatabaseConfig, SyntheticDatabase};
///
/// let db = SyntheticDatabase::new(DatabaseConfig {
///     num_records: 2,
///     duration_s: 4.0,
///     ..DatabaseConfig::default()
/// });
/// let rec = db.record(0);
/// assert_eq!(rec.num_channels(), 2);
/// assert_eq!(rec.len(), 1440); // 4 s at 360 Hz
/// assert_eq!(db.record(0), db.record(0)); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticDatabase {
    config: DatabaseConfig,
}

impl SyntheticDatabase {
    /// Creates a corpus descriptor (no records are generated yet).
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero/non-positive.
    pub fn new(config: DatabaseConfig) -> Self {
        assert!(config.num_records > 0, "SyntheticDatabase: no records");
        assert!(config.num_channels > 0, "SyntheticDatabase: no channels");
        assert!(config.duration_s > 0.0, "SyntheticDatabase: zero duration");
        assert!(
            config.sample_rate_hz > 0.0,
            "SyntheticDatabase: zero sample rate"
        );
        SyntheticDatabase { config }
    }

    /// A corpus mirroring the paper's evaluation shape (48 records × 2
    /// channels at 360 Hz) with the given per-record duration.
    pub fn mit_bih_like(duration_s: f64) -> Self {
        SyntheticDatabase::new(DatabaseConfig {
            duration_s,
            ..DatabaseConfig::default()
        })
    }

    /// The corpus configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Number of records in the corpus.
    pub fn len(&self) -> usize {
        self.config.num_records
    }

    /// Whether the corpus is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The per-record profile (heart rate, ectopy, noise) derived
    /// deterministically from the corpus seed and record index.
    fn profile(&self, index: usize) -> (EcgModelConfig, NoiseConfig, u64) {
        // Cheap splitmix-style hash to decorrelate record parameters.
        let mut h = self
            .config
            .corpus_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1));
        let mut next = move || {
            h ^= h >> 30;
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 27;
            h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            h
        };
        let unit = |v: u64| (v >> 11) as f64 / (1u64 << 53) as f64;

        let mut cfg = EcgModelConfig {
            sample_rate_hz: self.config.sample_rate_hz,
            ..EcgModelConfig::default()
        };
        cfg.rhythm.mean_heart_rate_bpm = 55.0 + 50.0 * unit(next());
        cfg.rhythm.rr_std_s = 0.02 + 0.04 * unit(next());
        // Roughly a third of MIT-BIH records carry significant ectopy.
        match index % 6 {
            0 => cfg.rhythm.pvc_probability = 0.05 + 0.10 * unit(next()),
            3 => cfg.rhythm.apc_probability = 0.05 + 0.08 * unit(next()),
            _ => {}
        }
        let noise = NoiseConfig {
            baseline_wander_mv: 0.02 + 0.06 * unit(next()),
            muscle_artifact_mv: 0.004 + 0.012 * unit(next()),
            mains_mv: 0.002 + 0.006 * unit(next()),
            mains_hz: 60.0,
            white_mv: 0.002 + 0.004 * unit(next()),
        };
        (cfg, noise, next())
    }

    /// Generates record `index` (deterministic for a given corpus).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn record(&self, index: usize) -> Record {
        assert!(index < self.len(), "record index out of range");
        let (cfg, noise_cfg, seed) = self.profile(index);
        let adc = AdcModel::mit_bih();
        let n = (self.config.duration_s * self.config.sample_rate_hz).round() as usize;

        let mut channels = Vec::with_capacity(self.config.num_channels);
        let mut annotations = Vec::new();
        for ch in 0..self.config.num_channels {
            // Same rhythm seed per channel (leads observe the same heart),
            // different projection and independent noise.
            let gains = if ch == 0 {
                [1.0, 1.0, 1.0, 1.0, 1.0]
            } else {
                [0.55, -0.35, 0.85, -0.55, 1.25]
            };
            let mut model = EcgModel::with_lead_gains(cfg.clone(), seed, gains);
            let (clean, beats) = model.synthesize(self.config.duration_s);
            if ch == 0 {
                annotations = beats;
            }
            let noise = noise_trace(
                &noise_cfg,
                self.config.sample_rate_hz,
                n,
                seed ^ (0xA5A5 + ch as u64),
            );
            let noisy = contaminate(&clean[..n.min(clean.len())], &noise[..n.min(clean.len())]);
            channels.push(adc.quantize_trace(&noisy));
        }

        Record::new(
            format!("s{:03}", 100 + index),
            self.config.sample_rate_hz,
            adc,
            channels,
            annotations,
        )
    }

    /// Iterates over all records, generating each lazily.
    pub fn iter(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.len()).map(move |i| self.record(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BeatType;

    fn small_db(n: usize, secs: f64) -> SyntheticDatabase {
        SyntheticDatabase::new(DatabaseConfig {
            num_records: n,
            duration_s: secs,
            ..DatabaseConfig::default()
        })
    }

    #[test]
    fn records_are_deterministic_and_distinct() {
        let db = small_db(3, 3.0);
        assert_eq!(db.record(1), db.record(1));
        assert_ne!(db.record(0).codes(0), db.record(1).codes(0));
    }

    #[test]
    fn record_shape_matches_mit_bih() {
        let db = small_db(1, 5.0);
        let r = db.record(0);
        assert_eq!(r.num_channels(), 2);
        assert_eq!(r.sample_rate_hz(), 360.0);
        assert_eq!(r.adc().bits(), 11);
        assert_eq!(r.len(), 1800);
        assert!(r.id().starts_with('s'));
    }

    #[test]
    fn corpus_has_heart_rate_diversity() {
        let db = small_db(12, 10.0);
        let rates: Vec<f64> = (0..12)
            .map(|i| {
                let r = db.record(i);
                r.annotations().len() as f64 / r.duration_s() * 60.0
            })
            .collect();
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 10.0, "rates {rates:?} not diverse");
    }

    #[test]
    fn some_records_have_ectopy() {
        let db = small_db(12, 30.0);
        let mut pvc_records = 0;
        for i in 0..12 {
            let r = db.record(i);
            if r.annotations().iter().any(|b| b.beat == BeatType::Pvc) {
                pvc_records += 1;
            }
        }
        assert!(pvc_records >= 1, "no arrhythmic records in corpus");
    }

    #[test]
    fn iter_yields_all_records() {
        let db = small_db(4, 2.0);
        assert_eq!(db.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_record_panics() {
        let _ = small_db(2, 2.0).record(2);
    }
}
