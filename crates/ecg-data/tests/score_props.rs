//! Property tests for [`score_detections`], the scoring primitive every
//! accuracy gate in the workspace leans on (`arrhythmia_soak`, the
//! `arrhythmia_monitor` example, the clinical parity suite).
//!
//! The properties pin the scorer's edge behaviour: empty inputs,
//! duplicate and near-duplicate detections, and the exact inclusive
//! tolerance boundary. A scorer that silently shifted its boundary by
//! one sample or double-counted duplicates would inflate every
//! downstream sensitivity/PPV claim without failing a single
//! integration test — these properties make that a loud failure.

use cs_ecg_data::{score_detections, BeatAnnotation, BeatType};
use proptest::prelude::*;

fn annotate(samples: &[usize]) -> Vec<BeatAnnotation> {
    samples
        .iter()
        .map(|&sample| BeatAnnotation { sample, beat: BeatType::Normal })
        .collect()
}

/// Strictly increasing beat positions from per-beat jitters, spaced at
/// least `2 * gap + 1` apart so tolerance windows up to `gap` never
/// overlap between adjacent beats.
fn space_beats(jitters: &[usize], gap: usize) -> Vec<usize> {
    let mut pos = 100usize;
    jitters
        .iter()
        .map(|&j| {
            pos += 2 * gap + 1 + j;
            pos
        })
        .collect()
}

proptest! {
    /// Empty truth or empty detections score (0, 0) — never NaN, never
    /// a division by zero, regardless of the other side's contents.
    #[test]
    fn empty_sets_score_zero(
        samples in proptest::collection::vec(0usize..100_000, 0..30),
        tolerance in 0usize..50,
    ) {
        let truth = annotate(&samples);
        prop_assert_eq!(score_detections(&truth, &[], tolerance), (0.0, 0.0));
        prop_assert_eq!(score_detections(&[], &samples, tolerance), (0.0, 0.0));
        prop_assert_eq!(score_detections(&[], &[], tolerance), (0.0, 0.0));
    }

    /// Both scores live in [0, 1] for arbitrary unsorted, duplicated
    /// inputs, and detecting the exact truth positions scores (1, 1).
    #[test]
    fn scores_are_probabilities_and_exact_match_is_perfect(
        samples in proptest::collection::vec(0usize..100_000, 1..40),
        detections in proptest::collection::vec(0usize..100_000, 1..40),
        tolerance in 0usize..100,
    ) {
        let truth = annotate(&samples);
        let (se, ppv) = score_detections(&truth, &detections, tolerance);
        prop_assert!((0.0..=1.0).contains(&se), "sensitivity {}", se);
        prop_assert!((0.0..=1.0).contains(&ppv), "predictivity {}", ppv);
        prop_assert_eq!(score_detections(&truth, &samples, tolerance), (1.0, 1.0));
    }

    /// Duplicating every detection changes neither score: sensitivity
    /// only asks whether each beat has *a* match, and PPV counts matched
    /// detections proportionally, so clones cancel out.
    #[test]
    fn duplicate_detections_do_not_move_the_scores(
        jitters in proptest::collection::vec(0usize..30, 1..12),
        copies in 2usize..5,
        tolerance in 0usize..30,
    ) {
        let beats = space_beats(&jitters, 30);
        let truth = annotate(&beats);
        let detections: Vec<usize> = beats.iter().map(|&b| b + tolerance / 2).collect();
        let (se1, ppv1) = score_detections(&truth, &detections, tolerance);
        let cloned: Vec<usize> = detections
            .iter()
            .flat_map(|&d| std::iter::repeat_n(d, copies))
            .collect();
        let (se2, ppv2) = score_detections(&truth, &cloned, tolerance);
        prop_assert_eq!(se1, se2);
        prop_assert_eq!(ppv1, ppv2);
    }

    /// Near-duplicate peaks — a clone jittered inside the tolerance
    /// window — are still matched detections: sensitivity and PPV both
    /// stay 1.0. Jittered just *outside*, the clone is a false positive:
    /// sensitivity holds at 1.0 and PPV drops to exactly 1/2.
    #[test]
    fn near_duplicates_split_on_the_tolerance_boundary(
        jitters in proptest::collection::vec(0usize..40, 1..10),
        tolerance in 1usize..20,
    ) {
        let beats = space_beats(&jitters, 2 * 20 + 40);
        let truth = annotate(&beats);
        let inside: Vec<usize> = beats
            .iter()
            .flat_map(|&b| [b, b + tolerance])
            .collect();
        prop_assert_eq!(score_detections(&truth, &inside, tolerance), (1.0, 1.0));

        let outside: Vec<usize> = beats
            .iter()
            .flat_map(|&b| [b, b + tolerance + 1])
            .collect();
        let (se, ppv) = score_detections(&truth, &outside, tolerance);
        prop_assert_eq!(se, 1.0);
        prop_assert!((ppv - 0.5).abs() < 1e-12, "ppv {}", ppv);
    }

    /// The tolerance window is inclusive and symmetric: an offset of
    /// exactly `tolerance` (either side) is a hit, `tolerance + 1` is a
    /// miss — for every beat, not just in aggregate.
    #[test]
    fn tolerance_boundary_is_inclusive_and_symmetric(
        jitters in proptest::collection::vec(0usize..40, 1..10),
        tolerance in 0usize..20,
        late in any::<bool>(),
    ) {
        let beats = space_beats(&jitters, 2 * 21 + 40);
        let truth = annotate(&beats);
        let on_edge: Vec<usize> = beats
            .iter()
            .map(|&b| if late { b + tolerance } else { b - tolerance })
            .collect();
        prop_assert_eq!(score_detections(&truth, &on_edge, tolerance), (1.0, 1.0));

        let past_edge: Vec<usize> = beats
            .iter()
            .map(|&b| if late { b + tolerance + 1 } else { b - tolerance - 1 })
            .collect();
        prop_assert_eq!(score_detections(&truth, &past_edge, tolerance), (0.0, 0.0));
    }

    /// Widening the tolerance never lowers either score.
    #[test]
    fn scores_are_monotone_in_tolerance(
        samples in proptest::collection::vec(0usize..10_000, 1..25),
        detections in proptest::collection::vec(0usize..10_000, 1..25),
        tolerance in 0usize..40,
        widen in 1usize..40,
    ) {
        let truth = annotate(&samples);
        let (se1, ppv1) = score_detections(&truth, &detections, tolerance);
        let (se2, ppv2) = score_detections(&truth, &detections, tolerance + widen);
        prop_assert!(se2 >= se1, "sensitivity fell {} -> {}", se1, se2);
        prop_assert!(ppv2 >= ppv1, "predictivity fell {} -> {}", ppv1, ppv2);
    }
}
