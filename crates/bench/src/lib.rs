//! # cs-bench — the figure/table reproduction harness
//!
//! One binary per published result (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md`):
//!
//! | binary              | paper result                                    |
//! |---------------------|-------------------------------------------------|
//! | `fig2`              | output SNR vs CR, sparse binary vs Gaussian     |
//! | `fig6`              | output PRD vs CR, 64-bit vs 32-bit decoder      |
//! | `fig7`              | mean iterations & time vs CR                    |
//! | `realtime_report`   | Fig. 8 / §V CPU-usage numbers                   |
//! | `table_encoder`     | §IV-A encode timing + memory footprint          |
//! | `table_speedup`     | §V 2.43× optimized-kernel speedup, 800→2000     |
//! | `table_lifetime`    | §V 12.9 % node-lifetime extension               |
//! | `ablation_d`        | §IV-A d = 12 trade-off knee                     |
//! | `solver_comparison` | FISTA vs ISTA vs OMP design ablation            |
//! | `baseline_dwt`      | CS vs classical DWT transform coding            |
//! | `entropy_stage`     | Huffman (paper) vs Golomb–Rice entropy coder    |
//! | `fig8_display`      | Fig. 8's live ECG display, in ASCII             |
//!
//! This library holds what they share: deterministic corpus preparation
//! (synthesize → resample to 256 Hz → quantize to signed counts) and a
//! tiny argument parser so every binary supports `--records`,
//! `--seconds` and `--full`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cs_ecg_data::{resample_360_to_256, DatabaseConfig, SyntheticDatabase};

/// One record's mote-ready sample stream.
#[derive(Debug, Clone)]
pub struct RecordStream {
    /// Record identifier from the synthetic database.
    pub id: String,
    /// Signed, midscale-removed ADC counts at 256 Hz (channel 0).
    pub samples: Vec<i16>,
}

/// A prepared evaluation corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Prepared record streams.
    pub records: Vec<RecordStream>,
}

impl Corpus {
    /// Synthesizes and prepares `num_records` records of `duration_s`
    /// seconds each: generate at 360 Hz, resample to 256 Hz, quantize to
    /// the encoder's signed 16-bit representation.
    pub fn prepare(num_records: usize, duration_s: f64) -> Self {
        let db = SyntheticDatabase::new(DatabaseConfig {
            num_records,
            duration_s,
            ..DatabaseConfig::default()
        });
        let records = db
            .iter()
            .map(|record| {
                let mv = record.signal_mv(0);
                let at256 = resample_360_to_256(&mv);
                let adc = record.adc();
                let samples = at256
                    .iter()
                    .map(|&v| adc.to_signed(adc.quantize(v)))
                    .collect();
                RecordStream {
                    id: record.id().to_owned(),
                    samples,
                }
            })
            .collect();
        Corpus { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the corpus holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Harness run settings shared by all figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSettings {
    /// Records to evaluate.
    pub records: usize,
    /// Seconds per record.
    pub seconds: f64,
    /// Emit live telemetry (Prometheus scrape + JSON-Lines snapshot) in
    /// binaries that support it.
    pub telemetry: bool,
    /// Drive the run from an archived session (`--replay <dir>`) instead
    /// of a freshly synthesized corpus, in binaries that support it.
    pub replay: Option<String>,
    /// Serve the live registry over HTTP (`--serve ADDR`, e.g.
    /// `--serve 127.0.0.1:0`) in binaries that support it: `GET /metrics`
    /// (Prometheus), `/healthz` (SLO verdict), `/tracez` (solve traces).
    pub serve: Option<String>,
}

impl RunSettings {
    /// The quick default used in CI-style runs: a sample of the corpus.
    pub fn quick() -> Self {
        RunSettings {
            records: 8,
            seconds: 16.0,
            telemetry: false,
            replay: None,
            serve: None,
        }
    }

    /// The paper-shaped run: all 48 records, one minute each (the full 30
    /// minutes per record is statistically indistinguishable for these
    /// aggregates and takes proportionally longer).
    pub fn full() -> Self {
        RunSettings {
            records: 48,
            seconds: 60.0,
            telemetry: false,
            replay: None,
            serve: None,
        }
    }

    /// Parses `--records N`, `--seconds S`, `--full`, `--telemetry`,
    /// `--replay DIR` and `--serve ADDR` from process arguments, starting
    /// from the quick defaults.
    pub fn from_args() -> Self {
        let mut settings = RunSettings::quick();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    let quick = settings;
                    settings = RunSettings::full();
                    settings.telemetry = quick.telemetry;
                    settings.replay = quick.replay;
                    settings.serve = quick.serve;
                }
                "--telemetry" => settings.telemetry = true,
                "--replay" => {
                    if let Some(dir) = args.get(i + 1) {
                        settings.replay = Some(dir.clone());
                        i += 1;
                    }
                }
                "--serve" => {
                    if let Some(addr) = args.get(i + 1) {
                        settings.serve = Some(addr.clone());
                        i += 1;
                    }
                }
                "--records" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        settings.records = v;
                        i += 1;
                    }
                }
                "--seconds" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        settings.seconds = v;
                        i += 1;
                    }
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
            i += 1;
        }
        settings
    }

    /// Prepares the corpus for these settings.
    pub fn corpus(&self) -> Corpus {
        Corpus::prepare(self.records, self.seconds)
    }
}

/// A prepared linear-stage solver for one sensing configuration: the
/// Fig. 2 setting (measure `y = Φx` in floating point, recover with
/// FISTA over the spectrally deflated `Φ·Ψᵀ`), with the expensive
/// per-configuration work (power iterations) done once at construction.
pub struct LinearSolver<'a, S: cs_sensing::Sensing<f64>> {
    phi: &'a S,
    dwt: &'a cs_dsp::wavelet::Dwt<f64>,
    deflation_u: Vec<f64>,
    deflation_c: f64,
    lipschitz: f64,
}

impl<'a, S: cs_sensing::Sensing<f64>> LinearSolver<'a, S> {
    /// Plans the solver; `deflation_c = 1.0` disables deflation.
    pub fn new(phi: &'a S, dwt: &'a cs_dsp::wavelet::Dwt<f64>, deflation_c: f64) -> Self {
        use cs_recovery::{lipschitz_constant, top_singular_pair, DeflatedOperator, SynthesisOperator};
        let op = SynthesisOperator::new(phi, dwt);
        let (deflation_u, lipschitz) = if deflation_c < 1.0 {
            let (sigma, u) = top_singular_pair(&op, 150);
            let u = if sigma == 0.0 { Vec::new() } else { u };
            let deflated = DeflatedOperator::with_direction(&op, u.clone(), deflation_c);
            (u, lipschitz_constant(&deflated, 150))
        } else {
            (Vec::new(), lipschitz_constant(&op, 150))
        };
        LinearSolver {
            phi,
            dwt,
            deflation_u,
            deflation_c,
            lipschitz,
        }
    }

    /// Recovers one packet and reports quality + solver statistics.
    pub fn solve(&self, samples: &[i16]) -> LinearSolveOutcome {
        use cs_recovery::{fista, lambda_max, DeflatedOperator, ShrinkageConfig, SynthesisOperator};
        let x: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        let y = self.phi.apply(&x);
        let op = SynthesisOperator::new(self.phi, self.dwt);
        let deflated =
            DeflatedOperator::with_direction(&op, self.deflation_u.clone(), self.deflation_c);
        let yd = deflated.transform_measurements(&y);
        let config = ShrinkageConfig {
            lambda: 0.002 * lambda_max(&deflated, &yd),
            max_iterations: 2000,
            tolerance: 5e-5,
            residual_tolerance: 0.0,
            kernel: cs_recovery::KernelMode::Unrolled4,
            record_objective: false,
        };
        let result = fista(&deflated, &yd, &config, Some(self.lipschitz));
        let xhat = self.dwt.synthesize(&result.solution);
        LinearSolveOutcome {
            snr_db: cs_metrics::output_snr(&x, &xhat),
            prd: cs_metrics::prd(&x, &xhat),
            iterations: result.iterations,
            solve_time: result.elapsed,
        }
    }
}

/// Outcome of [`LinearSolver::solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSolveOutcome {
    /// Output SNR in dB.
    pub snr_db: f64,
    /// PRD in percent.
    pub prd: f64,
    /// FISTA iterations.
    pub iterations: usize,
    /// Solver wall time.
    pub solve_time: std::time::Duration,
}

/// Prints the standard harness banner so outputs are self-describing.
pub fn banner(name: &str, paper_ref: &str, settings: &RunSettings) {
    println!("# {name} — reproduces {paper_ref}");
    println!(
        "# corpus: {} synthetic records × {} s (MIT-BIH-like, 2 ch, 360→256 Hz)",
        settings.records, settings.seconds
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_preparation_shapes() {
        let c = Corpus::prepare(2, 6.0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        for r in &c.records {
            // 6 s at 256 Hz.
            assert_eq!(r.samples.len(), 1536);
            assert!(r.samples.iter().any(|&v| v != 0));
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::prepare(1, 4.0);
        let b = Corpus::prepare(1, 4.0);
        assert_eq!(a.records[0].samples, b.records[0].samples);
    }

    #[test]
    fn settings_defaults() {
        assert_eq!(RunSettings::quick().records, 8);
        assert_eq!(RunSettings::full().records, 48);
    }
}
