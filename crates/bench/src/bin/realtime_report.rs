//! Reproduces **Fig. 8 and §V's CPU-usage numbers**: the end-to-end
//! real-time demo at CR 50 — coordinator CPU usage (paper: 17.7 % average
//! on the iPhone 3GS), node CPU usage (paper: < 5 % on the ShimmerTM) and
//! the real-time verdict for every packet.
//!
//! The decode workload is real (our FISTA on this host); the mapping from
//! solve time to *iPhone* CPU-% uses the coordinator budget model, and
//! the node CPU-% comes from the calibrated MSP430 cycle model.
//!
//! ```text
//! cargo run --release -p cs-bench --bin realtime_report [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{
    packetize, train_codebook, Decoder, Encoder, SolverPolicy, SystemConfig,
};
use cs_metrics::Summary;
use cs_platform::{
    analyze_solves, encode_cost, encoder_footprint, CoordinatorSpec, MoteSpec, SolveSample,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let settings = RunSettings::from_args();
    banner("realtime_report", "Fig. 8 / §V (real-time CPU usage at CR 50)", &settings);
    let corpus = settings.corpus();

    let config = SystemConfig::paper_default();
    let training = corpus
        .records
        .iter()
        .flat_map(|r| packetize(&r.samples, config.packet_len()).take(3))
        .map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).expect("training succeeds"));

    let mote = MoteSpec::msp430f1611();
    let coordinator = CoordinatorSpec::iphone_3gs();
    let packet_period = Duration::from_secs(2);

    let mut solves = Vec::new();
    let mut node_util = Summary::new();
    let mut airtime_bits = Summary::new();

    for record in &corpus.records {
        let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).expect("encoder");
        let mut decoder: Decoder<f32> =
            Decoder::new(&config, Arc::clone(&codebook), SolverPolicy::default())
                .expect("decoder");
        for packet in packetize(&record.samples, config.packet_len()) {
            let wire = encoder.encode_packet(packet).expect("encode");
            let cost = encode_cost(&mote, &config, &wire);
            node_util.push(cost.cpu_utilization(&mote, packet_period));
            airtime_bits.push(wire.payload_bits as f64);
            let decoded = decoder.decode_packet(&wire).expect("decode");
            solves.push(SolveSample {
                iterations: decoded.iterations,
                solve_time: decoded.solve_time,
            });
        }
    }

    let report = analyze_solves(&coordinator, &solves);
    let footprint = encoder_footprint(&config, &codebook);

    println!("== Node (ShimmerTM / MSP430 model) ==");
    println!(
        "mean CPU usage          : {:>6.2} %   (paper: < 5 %)",
        node_util.mean() * 100.0
    );
    println!(
        "mean payload            : {:>6.0} bits per 2-s packet",
        airtime_bits.mean()
    );
    println!("{}", footprint.to_table());

    println!("== Coordinator (iPhone-3GS budget model) ==");
    println!(
        "mean CPU usage          : {:>6.2} %   (paper: 17.7 % at CR 50)",
        report.cpu_usage_percent
    );
    println!(
        "per-iteration time      : {:>9.3} µs (host)",
        report.per_iteration.as_secs_f64() * 1e6
    );
    println!(
        "iterations in 1-s budget: {:>6}     (paper: 2000 optimized)",
        report.max_iterations_in_budget
    );
    println!(
        "worst packet            : {:>6.1} % of budget",
        report.worst_case_fraction_of_budget * 100.0
    );
    println!(
        "real-time               : {}        (every packet within budget)",
        report.real_time
    );
}
