//! Reproduces **Fig. 6**: average output PRD vs compression ratio for the
//! full pipeline, decoded at 64-bit and at 32-bit precision.
//!
//! The paper's claim: "the real-time implementation … provides the same
//! accuracy as the original 64-bit Matlab design" — the two curves
//! coincide — and the quality bands ("VG", "G") are crossed as CR rises.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig6 [--full] [--records N] [--seconds S]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{train_and_evaluate, SolverPolicy, SystemConfig};
use cs_metrics::{Summary, SweepSeries};

fn main() {
    let settings = RunSettings::from_args();
    banner("fig6", "Fig. 6 (PRD vs CR, 64-bit vs 32-bit decoder)", &settings);
    let corpus = settings.corpus();

    let mut f64_series = SweepSeries::new("f64 decoder (Matlab-precision reference)");
    let mut f32_series = SweepSeries::new("f32 decoder (iPhone-precision port)");

    for cr in [30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0] {
        let config = SystemConfig::builder()
            .compression_ratio(cr)
            .build()
            .expect("valid config");
        let mut s64 = Summary::new();
        let mut s32 = Summary::new();
        for record in &corpus.records {
            let r64 =
                train_and_evaluate::<f64>(&config, &record.samples, 4, SolverPolicy::default())
                    .expect("pipeline runs");
            let r32 =
                train_and_evaluate::<f32>(&config, &record.samples, 4, SolverPolicy::default())
                    .expect("pipeline runs");
            s64.push(r64.prd.mean());
            s32.push(r32.prd.mean());
        }
        f64_series.push(cr, s64);
        f32_series.push(cr, s32);
        eprintln!(
            "CR {cr:>4.0}%  f64 PRD {:>6.2}   f32 PRD {:>6.2}",
            s64.mean(),
            s32.mean()
        );
    }

    println!("{}", f64_series.to_table());
    println!("{}", f32_series.to_table());
    println!("# quality bands (Zigel): PRD < 2 → very good (VG), < 9 → good (G)");

    let max_gap = f64_series
        .points()
        .iter()
        .zip(f32_series.points())
        .map(|(a, b)| (a.summary.mean() - b.summary.mean()).abs())
        .fold(0.0_f64, f64::max);
    println!("# max |f64 − f32| PRD gap: {max_gap:.3} (paper: curves coincide)");
}
