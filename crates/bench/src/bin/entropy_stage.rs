//! Entropy-stage ablation: the paper's trained Huffman codebook vs a
//! table-free Golomb–Rice coder on the *same* measurement deltas.
//!
//! The paper pays 1.5 kB of mote flash for the Huffman tables. Rice
//! coding pays zero table bytes and a 5-bit per-packet parameter instead;
//! this binary measures how many payload bits that trade costs on real
//! encoder output.
//!
//! ```text
//! cargo run --release -p cs-bench --bin entropy_stage [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_codec::{
    rice_encode_block, value_to_symbol, BitWriter, DiffConfig, DiffEncoder, DiffPacket,
};
use cs_core::{packetize, train_codebook, SystemConfig};
use cs_metrics::Summary;
use cs_sensing::SparseBinarySensing;

fn main() {
    let settings = RunSettings::from_args();
    banner("entropy_stage", "entropy-coder ablation (Huffman vs Golomb–Rice)", &settings);
    let corpus = settings.corpus();
    let config = SystemConfig::paper_default();

    // Train the Huffman codebook exactly as the system does.
    let training = corpus
        .records
        .iter()
        .flat_map(|r| packetize(&r.samples, config.packet_len()).take(3))
        .map(|p| p.to_vec());
    let codebook = train_codebook(&config, training).expect("training");

    // Re-run the front end and code every delta block both ways.
    let phi = SparseBinarySensing::new(
        config.measurements(),
        config.packet_len(),
        config.sparse_ones_per_column(),
        config.seed(),
    )
    .expect("Φ");

    let mut huffman_bits = Summary::new();
    let mut rice_bits = Summary::new();
    for record in &corpus.records {
        let mut diff = DiffEncoder::new(DiffConfig {
            vector_len: config.measurements(),
            reference_interval: config.reference_interval(),
            alphabet: config.alphabet(),
        });
        for packet in packetize(&record.samples, config.packet_len()) {
            let y = phi.apply_unscaled_i32(packet);
            if let DiffPacket::Delta(block) = diff.encode(&y).expect("diff") {
                // Huffman path (4-bit gain + codewords).
                let symbols: Vec<u16> = block
                    .values
                    .iter()
                    .map(|&d| value_to_symbol(d as i32, config.alphabet()))
                    .collect::<Result<_, _>>()
                    .expect("deltas are clamped into the alphabet");
                let mut w = BitWriter::new();
                w.write_bits(block.shift as u32, 4);
                codebook.encode(&symbols, &mut w).expect("huffman");
                huffman_bits.push(w.bit_len() as f64);

                // Rice path (4-bit gain + adaptive-k block).
                let values: Vec<i32> = block.values.iter().map(|&v| v as i32).collect();
                let mut w = BitWriter::new();
                w.write_bits(block.shift as u32, 4);
                rice_encode_block(&values, &mut w);
                rice_bits.push(w.bit_len() as f64);
            }
        }
    }

    let m = config.measurements() as f64;
    println!(
        "{:<28} {:>14} {:>14} {:>14}",
        "coder", "bits/packet", "bits/symbol", "table bytes"
    );
    println!(
        "{:<28} {:>14.0} {:>14.2} {:>14}",
        "Huffman (paper, trained)",
        huffman_bits.mean(),
        huffman_bits.mean() / m,
        codebook.mote_storage_bytes()
    );
    println!(
        "{:<28} {:>14.0} {:>14.2} {:>14}",
        "Golomb–Rice (adaptive k)",
        rice_bits.mean(),
        rice_bits.mean() / m,
        0
    );
    println!();
    println!(
        "# Rice overhead: {:+.1} % payload bits for 0 table bytes (Huffman needs {} B flash)",
        (rice_bits.mean() / huffman_bits.mean() - 1.0) * 100.0,
        codebook.mote_storage_bytes()
    );
}
