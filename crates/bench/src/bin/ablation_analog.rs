//! "Analog CS" study — the paper's stated ultimate goal (§II-A): apply
//! the measurement matrix in the analog front end, *before* the ADC, so
//! the converter digitizes M measurements instead of N samples.
//!
//! The design question that matters there is measurement quantization:
//! how many ADC bits do the measurements `y = Φx` need before recovery
//! quality stops improving? This binary takes the *unquantized* synthetic
//! millivolt signal, measures it in floating point (the analog
//! multiply-accumulate), quantizes `y` at a sweep of ADC resolutions, and
//! reconstructs — charting the digital-CS (11-bit samples) operating
//! point against its analog successor.
//!
//! ```text
//! cargo run --release -p cs-bench --bin ablation_analog [--records N] [--seconds S]
//! ```

use cs_bench::{banner, RunSettings};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_ecg_data::{resample_360_to_256, DatabaseConfig, SyntheticDatabase};
use cs_metrics::{output_snr, Summary};
use cs_recovery::{
    fista, lambda_max, lipschitz_constant, top_singular_pair, DeflatedOperator, KernelMode,
    ShrinkageConfig, SynthesisOperator,
};
use cs_sensing::{measurements_for_cr, Sensing, SparseBinarySensing};

const PACKET: usize = 512;

fn main() {
    let settings = RunSettings::from_args();
    banner(
        "ablation_analog",
        "§II-A outlook (analog CS: quantizing measurements, not samples)",
        &settings,
    );
    // Unquantized millivolt packets straight from the synthesizer.
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: settings.records,
        duration_s: settings.seconds,
        ..DatabaseConfig::default()
    });
    let packets: Vec<Vec<f64>> = db
        .iter()
        .flat_map(|record| {
            let at_256 = resample_360_to_256(&record.signal_mv(0));
            at_256
                .chunks_exact(PACKET)
                .map(|c| c.to_vec())
                .collect::<Vec<_>>()
        })
        .take(6 * settings.records)
        .collect();

    let m = measurements_for_cr(PACKET, 50.0);
    let phi = SparseBinarySensing::new(m, PACKET, 12, 0xA7A1).expect("valid Φ");
    let dwt: Dwt<f64> = Dwt::new(&Wavelet::daubechies(4).expect("db4"), PACKET, 5).expect("plan");
    let op = SynthesisOperator::new(&phi, &dwt);
    let (_, u) = top_singular_pair(&op, 150);
    let defl = DeflatedOperator::with_direction(&op, u, 0.15);
    let lips = lipschitz_constant(&defl, 150);

    println!("{:>18} {:>12} {:>12}", "measurement ADC", "SNR (dB)", "PRD (%)");
    for bits in [6u32, 8, 10, 12, 14, 16, 0] {
        let mut snr = Summary::new();
        let mut prd = Summary::new();
        for x in &packets {
            let y: Vec<f64> = phi.apply(x.as_slice());
            // Quantize the measurements over their per-stream dynamic
            // range (an analog AGC would do this in hardware); bits == 0
            // means the unquantized ideal.
            let yq: Vec<f64> = if bits == 0 {
                y.clone()
            } else {
                let peak = y.iter().fold(0.0_f64, |a, &v| a.max(v.abs())).max(1e-12);
                let levels = (1u64 << (bits - 1)) as f64 - 1.0;
                y.iter()
                    .map(|&v| (v / peak * levels).round() / levels * peak)
                    .collect()
            };
            let yd = defl.transform_measurements(&yq);
            let cfg = ShrinkageConfig {
                lambda: 0.002 * lambda_max(&defl, &yd),
                max_iterations: 2000,
                tolerance: 5e-5,
                residual_tolerance: 0.0,
                kernel: KernelMode::Unrolled4,
                record_objective: false,
            };
            let r = fista(&defl, &yd, &cfg, Some(lips));
            let xhat = dwt.synthesize(&r.solution);
            let s = output_snr(x, &xhat);
            if s.is_finite() {
                snr.push(s);
                prd.push(cs_metrics::prd(x, &xhat));
            }
        }
        let label = if bits == 0 {
            "ideal (float)".to_owned()
        } else {
            format!("{bits}-bit")
        };
        println!("{label:>18} {:>12.2} {:>12.2}", snr.mean(), prd.mean());
    }
    println!();
    println!("# Reading: once the measurement ADC reaches ~10–12 bits, quantization is no");
    println!("# longer the bottleneck — an analog-CS front end needs no more converter");
    println!("# resolution than the digital-CS system it replaces, at M/N the conversions.");
}
