//! Wavelet-basis ablation (DESIGN.md ✦): which sparsifying Ψ should the
//! decoder use? The paper only says "orthonormal wavelet basis"; this
//! binary sweeps families and depths at CR 50 and reports reconstruction
//! quality, justifying the workspace default (db4 × 5 levels).
//!
//! ```text
//! cargo run --release -p cs-bench --bin ablation_wavelet [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{train_and_evaluate, SolverPolicy, SystemConfig};
use cs_dsp::wavelet::WaveletFamily;
use cs_metrics::Summary;

fn main() {
    let settings = RunSettings::from_args();
    banner("ablation_wavelet", "sparsifying-basis ablation (family × depth)", &settings);
    let corpus = settings.corpus();

    println!("{:<10} {:>7} {:>10} {:>10} {:>10}", "wavelet", "levels", "PRD (%)", "SNR-ish", "iters");
    let cases = [
        (WaveletFamily::Haar, 5),
        (WaveletFamily::Daubechies(2), 5),
        (WaveletFamily::Daubechies(4), 3),
        (WaveletFamily::Daubechies(4), 5),
        (WaveletFamily::Daubechies(4), 6),
        (WaveletFamily::Daubechies(8), 5),
        (WaveletFamily::Symlet(4), 5),
        (WaveletFamily::Symlet(8), 5),
    ];
    let mut best: Option<(String, f64)> = None;
    for (family, levels) in cases {
        let config = SystemConfig::builder()
            .wavelet(family)
            .levels(levels)
            .build()
            .expect("valid config");
        let mut prd = Summary::new();
        let mut iters = Summary::new();
        for record in &corpus.records {
            let r = train_and_evaluate::<f64>(&config, &record.samples, 3, SolverPolicy::default())
                .expect("pipeline");
            prd.push(r.prd.mean());
            iters.push(r.iterations.mean());
        }
        let snr = cs_metrics::snr_from_prd(prd.mean());
        println!(
            "{:<10} {:>7} {:>10.3} {:>10.2} {:>10.0}",
            family.name(),
            levels,
            prd.mean(),
            snr,
            iters.mean()
        );
        let name = format!("{} × {}", family.name(), levels);
        if best.as_ref().is_none_or(|(_, p)| prd.mean() < *p) {
            best = Some((name, prd.mean()));
        }
    }
    let (name, p) = best.expect("nonempty sweep");
    println!();
    println!("# best basis on this corpus: {name} (PRD {p:.3}); the workspace default db4 × 5");
    println!("# should sit within a few tenths of a PRD point of it.");
}
