//! Seeded arrhythmia soak: clinical detection on *reconstructed*
//! signals, alarm latency, and the closed adaptive-compression loop.
//!
//! Four phases, every assertion exiting non-zero on violation:
//!
//! 1. **Detection quality.** A PVC-heavy record is round-tripped through
//!    the CS pipeline at CR 50–75 %; the streaming detector runs on the
//!    reconstruction and must keep QRS sensitivity ≥ 95 % and
//!    PPV ≥ 95 % against the synthesizer's annotations.
//! 2. **Chaos detection.** The same bound with seeded window drops and
//!    zero-order-hold concealment (truth inside concealed regions is
//!    excluded — signal that never arrived cannot be detected; the
//!    suppression telemetry accounts for it instead).
//! 3. **Alarm latency.** Tachycardia, bradycardia and PVC-run episodes
//!    embedded in sinus rhythm, run through the full closed loop
//!    ([`AdaptiveEncoder`] → wire → [`AdaptiveDecoder`] →
//!    [`ClinicalEngine`] → [`TierController`] → encoder). The matching
//!    alarm must fire within 10 s of the annotated onset, the loop must
//!    escalate to the diagnostic tier during the episode (measurably
//!    fatter packets) and restore the routine tier after the quiet
//!    holdoff.
//! 4. **False-alarm control.** A clean sinus record (plus a chaos
//!    variant with concealed windows) must produce zero alarm
//!    transitions and zero tier escalations.
//!
//! ```text
//! cargo run --release -p cs-bench --bin arrhythmia_soak -- \
//!     [--short] [--seed 2024] [--telemetry]
//! ```

use cs_clinical::{ClinicalConfig, ClinicalEngine, ClinicalEvent, StreamingQrsDetector};
use cs_core::{
    packetize, train_codebook, AdaptiveDecoder, AdaptiveEncoder, ConcealmentReason, DecodedPacket,
    Decoder, Encoder, FidelitySchedule, FidelityTier, FleetPacket, PacketOutcome, SolverPolicy,
    SystemConfig, TierController,
};
use cs_ecg_data::{
    resample_360_to_256, score_detections, AdcModel, BeatAnnotation, BeatType, EcgModel,
    EcgModelConfig, QrsDetectorConfig,
};
use cs_telemetry::{AlarmKind, TelemetryRegistry};
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
struct Settings {
    short: bool,
    seed: u64,
    telemetry: bool,
}

impl Settings {
    fn from_args() -> Self {
        let mut s = Settings { short: false, seed: 2024, telemetry: false };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--short" => s.short = true,
                "--seed" => {
                    s.seed = args.next().expect("--seed requires a value").parse().expect("--seed")
                }
                "--telemetry" => s.telemetry = true,
                other => panic!("unknown flag {other}; see the module doc for usage"),
            }
        }
        s
    }
}

/// Deterministic splitmix64 for chaos decisions.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An annotated 256 Hz integer record.
struct Record256 {
    samples: Vec<i16>,
    truth: Vec<BeatAnnotation>,
}

/// Synthesizes one rhythm segment at 360 Hz.
fn segment(bpm: f64, pvc: f64, duration_s: f64, seed: u64) -> (Vec<f64>, Vec<BeatAnnotation>) {
    let mut cfg = EcgModelConfig::default();
    cfg.rhythm.mean_heart_rate_bpm = bpm;
    cfg.rhythm.pvc_probability = pvc;
    EcgModel::new(cfg, seed).synthesize(duration_s)
}

/// Median R-peak amplitude of the *normal* beats in a segment. The
/// synthesizer normalizes each run's peak-to-peak span, so a segment
/// whose tall ventricular complexes dominate that span carries smaller
/// sinus beats than a clean one — splicing them raw would fake a gain
/// step no electrode ever produces.
fn sinus_gain(signal: &[f64], beats: &[BeatAnnotation]) -> f64 {
    let mut peaks: Vec<f64> = beats
        .iter()
        .filter(|b| b.beat == BeatType::Normal)
        .filter_map(|b| signal.get(b.sample).map(|v| v.abs()))
        .collect();
    if peaks.is_empty() {
        return 1.0;
    }
    peaks.sort_by(|a, b| a.partial_cmp(b).unwrap());
    peaks[peaks.len() / 2]
}

/// Concatenates 360 Hz segments (equalizing sinus gain across them),
/// resamples to 256 Hz, quantizes, and returns the record plus the
/// 256 Hz sample index of each segment boundary.
fn record_from_segments(segments: &[(Vec<f64>, Vec<BeatAnnotation>)]) -> (Record256, Vec<usize>) {
    let mut mv = Vec::new();
    let mut truth_360 = Vec::new();
    let mut boundaries = Vec::new();
    let reference = sinus_gain(&segments[0].0, &segments[0].1);
    for (signal, beats) in segments {
        let offset = mv.len();
        boundaries.push(offset * 256 / 360);
        truth_360.extend(beats.iter().map(|b| BeatAnnotation {
            sample: b.sample + offset,
            beat: b.beat,
        }));
        let gain = sinus_gain(signal, beats);
        let scale = if gain > 0.0 { reference / gain } else { 1.0 };
        mv.extend(signal.iter().map(|&v| v * scale));
    }
    let at_256 = resample_360_to_256(&mv);
    let adc = AdcModel::mit_bih();
    let samples: Vec<i16> = at_256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect();
    let truth = truth_360
        .iter()
        .map(|b| BeatAnnotation { sample: b.sample * 256 / 360, beat: b.beat })
        .filter(|b| b.sample < samples.len())
        .collect();
    (Record256 { samples, truth }, boundaries)
}

/// Round-trips a record at `cr` and returns the reconstruction.
fn reconstruct(config: &SystemConfig, samples: &[i16]) -> Result<Vec<f64>, String> {
    let training = packetize(samples, config.packet_len()).take(3).map(|p| p.to_vec());
    let codebook =
        Arc::new(train_codebook(config, training).map_err(|e| format!("codebook: {e}"))?);
    let mut encoder =
        Encoder::new(config, Arc::clone(&codebook)).map_err(|e| format!("encoder: {e}"))?;
    // The block-sparse wavelet-tree prior: at the aggressive end of the
    // CR sweep it preserves QRS morphology measurably better than the
    // plain solve (PVC-adjacent low-amplitude beats survive CR 75).
    let mut decoder: Decoder<f64> = Decoder::new(config, codebook, SolverPolicy::block_prior())
        .map_err(|e| format!("decoder: {e}"))?;
    let mut out = Vec::with_capacity(samples.len());
    for packet in packetize(samples, config.packet_len()) {
        let wire = encoder.encode_packet(packet).map_err(|e| format!("encode: {e}"))?;
        out.extend(decoder.decode_packet(&wire).map_err(|e| format!("decode: {e}"))?.samples);
    }
    Ok(out)
}

fn streaming_detections(signal: &[f64]) -> Vec<usize> {
    let mut det = StreamingQrsDetector::new(QrsDetectorConfig::at_256_hz());
    let mut out = Vec::new();
    for window in signal.chunks(512) {
        det.push_window(window, &mut out);
    }
    det.flush(&mut out);
    out.iter().map(|d| d.sample).collect()
}

/// The record starts mid-beat, so the band-pass onset transient can fake
/// one detection in the first fraction of a second, and thresholds only
/// seed after the 2 s warm-up. Score like a monitor: after settle time.
const SETTLE_SAMPLES: usize = 512;

fn score_after_settle(
    truth: &[BeatAnnotation],
    detected: &[usize],
    tolerance: usize,
) -> (f64, f64) {
    let truth: Vec<BeatAnnotation> =
        truth.iter().filter(|b| b.sample >= SETTLE_SAMPLES).cloned().collect();
    let detected: Vec<usize> = detected.iter().copied().filter(|&d| d >= SETTLE_SAMPLES).collect();
    score_detections(&truth, &detected, tolerance)
}

/// Phase 1: sensitivity/PPV bounds on clean reconstructions.
fn phase_detection(settings: &Settings) -> Result<(), String> {
    let duration = if settings.short { 24.0 } else { 40.0 };
    // A clean sinus lead-in first: thresholds seed during the 2 s
    // warm-up, and a giant ventricular complex inside that window would
    // seed them an order of magnitude too high — a monitor is attached
    // during stable rhythm, not mid-run.
    let (record, _) = record_from_segments(&[
        segment(80.0, 0.0, 8.0, settings.seed ^ 0x5EED),
        segment(80.0, 0.10, duration, settings.seed),
    ]);
    let crs: &[f64] = if settings.short { &[50.0, 75.0] } else { &[50.0, 65.0, 75.0] };
    for &cr in crs {
        let config = SystemConfig::builder()
            .compression_ratio(cr)
            .build()
            .map_err(|e| format!("config CR {cr}: {e}"))?;
        let recon = reconstruct(&config, &record.samples)?;
        let detected = streaming_detections(&recon);
        let (sens, ppv) = score_after_settle(&record.truth, &detected, 13);
        println!(
            "phase 1  CR {cr:>4.0} %: {} truth beats, {} detected, sens {:.1} %, ppv {:.1} %",
            record.truth.len(),
            detected.len(),
            sens * 100.0,
            ppv * 100.0
        );
        if sens < 0.95 {
            return Err(format!("CR {cr}: sensitivity {sens:.3} below 0.95 on reconstruction"));
        }
        if ppv < 0.95 {
            return Err(format!("CR {cr}: PPV {ppv:.3} below 0.95 on reconstruction"));
        }
    }
    Ok(())
}

/// Phase 2: the same bound under seeded window drops with zero-order
/// -hold concealment. Truth peaks within a concealed (or immediately
/// following) region are excluded from scoring — and so are detections
/// there, since hold-over signal can echo the previous window's beat.
fn phase_chaos_detection(settings: &Settings) -> Result<(), String> {
    let duration = if settings.short { 30.0 } else { 60.0 };
    let (record, _) = record_from_segments(&[
        segment(80.0, 0.0, 8.0, settings.seed ^ 0x5EED ^ 0xC0FFEE),
        segment(80.0, 0.10, duration, settings.seed ^ 0xC0FFEE),
    ]);
    // Every packet a reference so a dropped window cannot desynchronize
    // the differencing loop — the fleet ingest layer's resync machinery
    // is exercised by chaos_soak; here the subject is the detector.
    let config = SystemConfig::builder()
        .compression_ratio(50.0)
        .reference_interval(1)
        .build()
        .map_err(|e| format!("config: {e}"))?;
    let n = config.packet_len();
    let training = packetize(&record.samples, n).take(3).map(|p| p.to_vec());
    let codebook =
        Arc::new(train_codebook(&config, training).map_err(|e| format!("codebook: {e}"))?);
    let mut encoder =
        Encoder::new(&config, Arc::clone(&codebook)).map_err(|e| format!("encoder: {e}"))?;
    let mut decoder: Decoder<f64> = Decoder::new(&config, codebook, SolverPolicy::block_prior())
        .map_err(|e| format!("decoder: {e}"))?;

    let mut rng = settings.seed ^ 0xD00D;
    let mut recon = Vec::with_capacity(record.samples.len());
    let mut held = vec![0.0; n];
    let mut concealed_ranges: Vec<(usize, usize)> = Vec::new();
    let mut dropped = 0usize;
    let mut windows = 0usize;
    // Window 9 always drops (every seed must actually exercise
    // concealment — at 5 % a 30-window record draws zero drops one run
    // in five); the rest are 5 % seeded chaos. Window 0 never drops:
    // zero-order hold has nothing to hold before the first delivery.
    for (k, packet) in packetize(&record.samples, n).enumerate() {
        let wire = encoder.encode_packet(packet).map_err(|e| format!("encode: {e}"))?;
        windows += 1;
        if k == 9 || (k > 0 && splitmix(&mut rng) % 100 < 5) {
            dropped += 1;
            concealed_ranges.push((recon.len(), recon.len() + n));
            recon.extend_from_slice(&held);
            continue;
        }
        let decoded = decoder.decode_packet(&wire).map_err(|e| format!("decode: {e}"))?;
        held.copy_from_slice(&decoded.samples);
        recon.extend(decoded.samples);
    }

    let tol = 13usize;
    let excluded = |sample: usize| {
        concealed_ranges
            .iter()
            .any(|&(a, b)| sample + tol >= a && sample < b + tol)
    };
    let truth: Vec<BeatAnnotation> =
        record.truth.iter().filter(|b| !excluded(b.sample)).cloned().collect();
    let detected: Vec<usize> =
        streaming_detections(&recon).into_iter().filter(|&d| !excluded(d)).collect();
    let (sens, ppv) = score_after_settle(&truth, &detected, tol);
    println!(
        "phase 2  CR 50 % + {dropped}/{windows} windows concealed: sens {:.1} %, ppv {:.1} %",
        sens * 100.0,
        ppv * 100.0
    );
    if sens < 0.95 || ppv < 0.95 {
        return Err(format!("chaos detection degraded: sens {sens:.3}, ppv {ppv:.3}"));
    }
    Ok(())
}

/// Outcome of one closed-loop episode run.
struct LoopRun {
    events: Vec<ClinicalEvent>,
    escalations: u64,
    restorations: u64,
    final_tier: FidelityTier,
    routine_bits_per_window: f64,
    diagnostic_bits_per_window: f64,
    suppressed: u64,
}

/// Drives one single-patient record through the complete loop:
/// adaptive encoder → wire bytes → adaptive decoder → clinical engine →
/// tier controller → (next window's) encoder tier. `drop_pct` windows
/// are concealed with zero-order hold instead of decoded.
fn run_closed_loop(
    record: &Record256,
    routine_cr: f64,
    diagnostic_cr: f64,
    drop_pct: u64,
    chaos_seed: u64,
) -> Result<LoopRun, String> {
    let routine = SystemConfig::builder()
        .compression_ratio(routine_cr)
        .reference_interval(1)
        .build()
        .map_err(|e| format!("routine config: {e}"))?;
    let schedule =
        FidelitySchedule::new(&routine, diagnostic_cr).map_err(|e| format!("schedule: {e}"))?;
    let n = routine.packet_len();
    let training = packetize(&record.samples, n).take(3).map(|p| p.to_vec());
    let codebook =
        Arc::new(train_codebook(&routine, training).map_err(|e| format!("codebook: {e}"))?);
    let mut encoder = AdaptiveEncoder::new(schedule.clone(), Arc::clone(&codebook), 1)
        .map_err(|e| format!("adaptive encoder: {e}"))?;
    let mut decoder: AdaptiveDecoder<f64> =
        AdaptiveDecoder::new(schedule, codebook, SolverPolicy::block_prior(), 1)
            .map_err(|e| format!("adaptive decoder: {e}"))?;

    let telemetry = TelemetryRegistry::new();
    let controller = TierController::new(1);
    let mut engine = ClinicalEngine::new(ClinicalConfig::at_256_hz(), 1, 1, telemetry.clone());
    engine.set_tier_controller(controller.clone());

    let mut events = Vec::new();
    let mut rng = chaos_seed;
    let mut held = vec![0.0; n];
    let mut bits = [(0u64, 0u64); 2]; // (payload bits, windows) per tier
    for (k, window) in record.samples.chunks(n).enumerate() {
        if window.len() < n {
            break;
        }
        // The mote applies the coordinator's latest feedback before
        // encoding — one-window feedback latency, like the real uplink.
        encoder.set_tier(controller.tier(0));
        let cp = encoder.encode_packet(0, window).map_err(|e| format!("encode {k}: {e}"))?;
        let tier = encoder.tier();
        bits[tier.index()].0 += cp.packet.payload_bits as u64;
        bits[tier.index()].1 += 1;

        // Every packet is a reference (reference_interval 1 in both
        // tiers), so a dropped window cannot desynchronize differencing.
        // Like phase 2: one guaranteed drop so chaos runs always
        // exercise concealment, none on the first window.
        let chaos = splitmix(&mut rng) % 100 < drop_pct;
        let emission = if drop_pct > 0 && (k == 7 || (k > 0 && chaos)) {
            let mut packet = DecodedPacket::default();
            packet.index = cp.packet.index;
            packet.samples = held.clone();
            FleetPacket {
                stream: 0,
                channel: 0,
                outcome: PacketOutcome::Concealed(ConcealmentReason::Loss),
                e2e: None,
                packet,
            }
        } else {
            let (_, decoded) = decoder.decode(&cp).map_err(|e| format!("decode {k}: {e}"))?;
            held.copy_from_slice(&decoded.samples);
            FleetPacket {
                stream: 0,
                channel: 0,
                outcome: PacketOutcome::Decoded,
                e2e: None,
                packet: decoded,
            }
        };
        engine.on_packet(&emission, &mut events);
    }
    engine.finish(&mut events);

    let per_window = |(total, windows): (u64, u64)| total as f64 / windows.max(1) as f64;
    Ok(LoopRun {
        events,
        escalations: controller.escalations(),
        restorations: controller.restorations(),
        final_tier: controller.tier(0),
        routine_bits_per_window: per_window(bits[FidelityTier::Routine.index()]),
        diagnostic_bits_per_window: per_window(bits[FidelityTier::Diagnostic.index()]),
        suppressed: telemetry.snapshot().alarms_suppressed,
    })
}

/// First alarm transition of `kind` above normal, as a sample index.
fn first_alarm(events: &[ClinicalEvent], kind: AlarmKind) -> Option<usize> {
    events.iter().find_map(|e| match e {
        ClinicalEvent::Alarm { transition, .. }
            if transition.kind == kind && transition.to > cs_telemetry::AlarmSeverity::Normal =>
        {
            Some(transition.sample)
        }
        _ => None,
    })
}

fn alarm_kinds_fired(events: &[ClinicalEvent]) -> Vec<AlarmKind> {
    let mut kinds: Vec<AlarmKind> = events
        .iter()
        .filter_map(|e| match e {
            ClinicalEvent::Alarm { transition, .. } => Some(transition.kind),
            _ => None,
        })
        .collect();
    kinds.dedup();
    kinds
}

/// Phase 3: one arrhythmic episode — alarm latency plus the adaptive
/// loop's escalate/restore cycle.
fn episode(
    name: &str,
    kind: AlarmKind,
    record: &Record256,
    onset_sample: usize,
) -> Result<(), String> {
    let run = run_closed_loop(record, 75.0, 50.0, 0, 0)?;
    let fired = first_alarm(&run.events, kind)
        .ok_or_else(|| format!("{name}: no {kind} alarm fired; kinds seen: {:?}",
            alarm_kinds_fired(&run.events)))?;
    let latency_s = (fired as f64 - onset_sample as f64) / 256.0;
    if fired < onset_sample {
        return Err(format!("{name}: {kind} fired {latency_s:.1} s BEFORE the annotated onset"));
    }
    if latency_s > 10.0 {
        return Err(format!("{name}: {kind} latency {latency_s:.1} s exceeds the 10 s bound"));
    }
    if run.escalations < 1 || run.restorations < 1 {
        return Err(format!(
            "{name}: adaptive loop did not cycle (escalations {}, restorations {})",
            run.escalations, run.restorations
        ));
    }
    if run.final_tier != FidelityTier::Routine {
        return Err(format!("{name}: loop ended in {:?}, not Routine", run.final_tier));
    }
    if run.diagnostic_bits_per_window < 1.2 * run.routine_bits_per_window {
        return Err(format!(
            "{name}: diagnostic windows ({:.0} bits) are not measurably fatter than routine ({:.0})",
            run.diagnostic_bits_per_window, run.routine_bits_per_window
        ));
    }
    println!(
        "phase 3  {name:<12}: {kind} in {latency_s:>4.1} s, tier cycle {}↑/{}↓, \
         {:.0} → {:.0} bits/window while abnormal",
        run.escalations,
        run.restorations,
        run.routine_bits_per_window,
        run.diagnostic_bits_per_window
    );
    Ok(())
}

/// The 256 Hz sample where the first annotated ≥3-PVC-in-10-beats run
/// completes — the PVC-run alarm's ground-truth onset.
fn pvc_run_onset(truth: &[BeatAnnotation]) -> Option<usize> {
    let mut recent = Vec::new();
    for b in truth {
        recent.push(b.beat);
        let window = recent.iter().rev().take(10);
        if window.filter(|&&t| t == BeatType::Pvc).count() >= 3 {
            return Some(b.sample);
        }
    }
    None
}

fn phase_episodes(settings: &Settings) -> Result<(), String> {
    let pre = if settings.short { 20.0 } else { 28.0 };
    let abnormal = if settings.short { 24.0 } else { 32.0 };
    let post = if settings.short { 36.0 } else { 44.0 };
    let s = settings.seed;

    // Tachycardia: sinus 72 → SVT 150 → sinus 72.
    let (tachy, bounds) = record_from_segments(&[
        segment(72.0, 0.0, pre, s),
        segment(150.0, 0.0, abnormal, s ^ 1),
        segment(72.0, 0.0, post, s ^ 2),
    ]);
    episode("tachycardia", AlarmKind::Tachycardia, &tachy, bounds[1])?;

    // Bradycardia: sinus 72 → 38 bpm → sinus 72.
    let (brady, bounds) = record_from_segments(&[
        segment(72.0, 0.0, pre, s ^ 3),
        segment(38.0, 0.0, abnormal, s ^ 4),
        segment(72.0, 0.0, post, s ^ 5),
    ]);
    episode("bradycardia", AlarmKind::Bradycardia, &brady, bounds[1])?;

    // PVC run: sinus → heavy ectopy → sinus. Onset is the annotated
    // completion of the first 3-in-10 run, not the segment boundary.
    let (pvc, bounds) = record_from_segments(&[
        segment(78.0, 0.0, pre, s ^ 6),
        segment(78.0, 0.45, abnormal, s ^ 7),
        segment(78.0, 0.0, post, s ^ 8),
    ]);
    let onset = pvc_run_onset(&pvc.truth)
        .ok_or("pvc episode synthesized no 3-in-10 run; change the seed")?;
    if onset < bounds[1] {
        return Err("pvc run onset precedes the ectopic segment; seed produced PVCs early".into());
    }
    episode("pvc-run", AlarmKind::PvcRun, &pvc, onset)?;
    Ok(())
}

/// Phase 4: clean-sinus control — zero alarms, zero escalations — and
/// the same under concealment chaos.
fn phase_control(settings: &Settings) -> Result<(), String> {
    let duration = if settings.short { 60.0 } else { 120.0 };
    let (control, _) = record_from_segments(&[segment(72.0, 0.0, duration, settings.seed ^ 9)]);

    for (label, drop_pct) in [("clean", 0u64), ("chaos", 6u64)] {
        let run = run_closed_loop(&control, 75.0, 50.0, drop_pct, settings.seed ^ 10)?;
        let alarms = alarm_kinds_fired(&run.events);
        if !alarms.is_empty() {
            return Err(format!(
                "{label} control: false alarm(s) {alarms:?} on clean sinus rhythm"
            ));
        }
        if run.escalations != 0 {
            return Err(format!(
                "{label} control: {} spurious tier escalations",
                run.escalations
            ));
        }
        if drop_pct > 0 && run.suppressed == 0 {
            return Err("chaos control concealed nothing; widen the profile".into());
        }
        let beats = run
            .events
            .iter()
            .filter(|e| matches!(e, ClinicalEvent::Beat { .. }))
            .count();
        println!(
            "phase 4  {label:<6} control: {beats} beats, 0 alarms, 0 escalations, \
             {} suppressed evaluations",
            run.suppressed
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let settings = Settings::from_args();
    println!(
        "arrhythmia_soak: seed {}, {} profile",
        settings.seed,
        if settings.short { "short" } else { "full" }
    );
    let started = std::time::Instant::now();
    type Phase = fn(&Settings) -> Result<(), String>;
    let phases: [(&str, Phase); 4] = [
        ("detection quality", phase_detection),
        ("chaos detection", phase_chaos_detection),
        ("alarm latency + adaptive loop", phase_episodes),
        ("false-alarm control", phase_control),
    ];
    for (name, phase) in phases {
        if let Err(msg) = phase(&settings) {
            eprintln!("FAIL [{name}]: {msg}");
            return ExitCode::FAILURE;
        }
    }
    println!("OK: all clinical soak invariants held ({:.1?})", started.elapsed());
    if settings.telemetry {
        let registry = TelemetryRegistry::new();
        print!("{}", registry.prometheus());
    }
    ExitCode::SUCCESS
}
