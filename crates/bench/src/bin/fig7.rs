//! Reproduces **Fig. 7**: average FISTA iteration count and average
//! execution time per 2-second packet, as functions of compression ratio.
//!
//! The paper plots both on the iPhone over CR 30–70: iterations in the
//! 600–900 band and times in the 0.34–0.46 s band, both *decreasing* as
//! CR rises (fewer measurements → cheaper, easier-to-saturate problems).
//! Absolute times here are host times, not Cortex-A8 times — the shape
//! and the iteration counts are the reproduction targets.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig7 [--full] [--records N] [--seconds S]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{train_and_evaluate, SolverPolicy, SystemConfig};
use cs_metrics::{Summary, SweepSeries};
use cs_recovery::KernelMode;

fn main() {
    let settings = RunSettings::from_args();
    banner("fig7", "Fig. 7 (iterations and time vs CR)", &settings);
    let corpus = settings.corpus();

    // Match the paper's decoder: f32, optimized kernels, and the Eq. (2)
    // stopping rule — iterate until ‖ΦΨα − y‖₂ ≤ σ — under the
    // 2000-iteration real-time cap. With a residual target, fewer
    // measurements are easier to fit, which is why the paper's iteration
    // count *falls* as CR rises.
    let policy = SolverPolicy::<f32> {
        tolerance: 0.0,
        residual_tolerance: 0.01,
        max_iterations: 2000,
        kernel: KernelMode::Unrolled4,
        lambda_relative: 5e-4,
        ..SolverPolicy::default()
    };

    let mut iter_series = SweepSeries::new("FISTA iterations per 2-s packet");
    let mut time_series = SweepSeries::new("solver time per 2-s packet (seconds, host)");

    for cr in [30.0, 40.0, 50.0, 60.0, 70.0] {
        let config = SystemConfig::builder()
            .compression_ratio(cr)
            .build()
            .expect("valid config");
        let mut iters = Summary::new();
        let mut times = Summary::new();
        for record in &corpus.records {
            let report = train_and_evaluate::<f32>(&config, &record.samples, 4, policy)
                .expect("pipeline runs");
            for p in &report.packets {
                iters.push(p.iterations as f64);
                times.push(p.solve_time.as_secs_f64());
            }
        }
        iter_series.push(cr, iters);
        time_series.push(cr, times);
        eprintln!(
            "CR {cr:>4.0}%  iterations {:>7.1}   time {:>9.6} s",
            iters.mean(),
            times.mean()
        );
    }

    println!("{}", iter_series.to_table());
    println!("{}", time_series.to_table());

    let first = iter_series.points().first().expect("nonempty").summary.mean();
    let last = iter_series.points().last().expect("nonempty").summary.mean();
    println!(
        "# iterations trend CR 30 → 70: {first:.0} → {last:.0} (paper: ~900 → ~620, decreasing)"
    );
}
