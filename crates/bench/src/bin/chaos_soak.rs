//! Seeded chaos soak: fleet decode under a hostile wire.
//!
//! Drives the wire-feed fleet engine ([`run_fleet_wire`]) with traffic
//! that has been mangled by the [`LossyLink`] fault injector — burst bit
//! errors (Gilbert–Elliott), drops, duplicates, reordering, truncation —
//! and checks the robustness invariants round after round until the time
//! budget is spent:
//!
//! 1. **No panics, no deadlocks.** Every round completes; a worker panic
//!    escaping supervision fails the run. (Deadlock detection is the
//!    caller's job: `scripts/chaos.sh` wraps this binary in `timeout`.)
//! 2. **Exact accounting.** Every ingested frame lands in exactly one
//!    bucket: `frames == rejects + duplicates + late + decoded +
//!    concealed_desync + quarantined`, and every emitted window is
//!    `decoded + concealed + quarantined`.
//! 3. **In-order emission.** Per (stream, lead), window indices are
//!    strictly increasing.
//! 4. **Supervision works.** Round 0 injects a panic into one decode and
//!    requires the supervisor to restart the worker and surface it.
//! 5. **The durable tap is lossless.** Round 0 runs through the
//!    write-before-decode archive sink; after the round the archive is
//!    reopened and every delivered frame — including corrupt ones the
//!    pipeline quarantined — must read back byte-for-byte in arrival
//!    order on its `(stream, lane)` sequence.
//!
//! Any violation prints a diagnostic and exits non-zero.
//!
//! ```text
//! cargo run --release -p cs-bench --bin chaos_soak -- \
//!     [--streams 8] [--workers 4] [--seconds 60] [--seed 7] \
//!     [--ber 1e-3] [--drop 0.05] [--reorder 0.02] [--dup 0.01] \
//!     [--truncate 0.01] [--signal-seconds 16] [--telemetry]
//! ```

use cs_archive::{Archive, ArchiveConfig, ArchiveSink};
use cs_core::{
    parse_frame, run_fleet_wire, run_fleet_wire_archived, uniform_codebook, FleetConfig,
    FleetReport, MultiChannelEncoder, PacketOutcome, SolverPolicy, SystemConfig, QUARANTINE_LANE,
};
use cs_ecg_data::{resample_360_to_256, DatabaseConfig, SyntheticDatabase};
use cs_telemetry::TelemetryRegistry;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Chaos profile and run shape, parsed from argv.
#[derive(Debug, Clone, Copy)]
struct SoakSettings {
    streams: usize,
    workers: usize,
    seconds: f64,
    seed: u64,
    ber: f64,
    drop: f64,
    reorder: f64,
    duplicate: f64,
    truncate: f64,
    signal_seconds: f64,
    telemetry: bool,
}

impl Default for SoakSettings {
    fn default() -> Self {
        SoakSettings {
            streams: 8,
            workers: 4,
            seconds: 60.0,
            seed: 7,
            ber: 1e-3,
            drop: 0.05,
            reorder: 0.02,
            duplicate: 0.01,
            truncate: 0.01,
            signal_seconds: 16.0,
            telemetry: false,
        }
    }
}

impl SoakSettings {
    fn from_args() -> Self {
        let mut s = SoakSettings::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--streams" => s.streams = value("--streams").parse().expect("--streams"),
                "--workers" => s.workers = value("--workers").parse().expect("--workers"),
                "--seconds" => s.seconds = value("--seconds").parse().expect("--seconds"),
                "--seed" => s.seed = value("--seed").parse().expect("--seed"),
                "--ber" => s.ber = value("--ber").parse().expect("--ber"),
                "--drop" => s.drop = value("--drop").parse().expect("--drop"),
                "--reorder" => s.reorder = value("--reorder").parse().expect("--reorder"),
                "--dup" => s.duplicate = value("--dup").parse().expect("--dup"),
                "--truncate" => s.truncate = value("--truncate").parse().expect("--truncate"),
                "--signal-seconds" => {
                    s.signal_seconds = value("--signal-seconds").parse().expect("--signal-seconds")
                }
                "--telemetry" => s.telemetry = true,
                other => panic!("unknown flag {other}; see the module doc for usage"),
            }
        }
        assert!(s.streams > 0, "--streams must be positive");
        s
    }

    fn fault_spec(&self) -> cs_platform::FaultSpec {
        cs_platform::FaultSpec {
            drop: self.drop,
            duplicate: self.duplicate,
            reorder: self.reorder,
            truncate: self.truncate,
            gilbert_elliott: (self.ber > 0.0)
                .then(|| cs_platform::GilbertElliottParams::for_mean_ber(self.ber)),
        }
    }
}

/// Clean two-lead wire frames for one stream.
fn stream_frames(config: &SystemConfig, samples0: &[i16], samples1: &[i16]) -> Vec<Vec<u8>> {
    let cb = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
    let mut enc = MultiChannelEncoder::new(config, cb, 2).expect("encoder");
    let n = config.packet_len();
    let windows = samples0.len().min(samples1.len()) / n;
    let mut frames = Vec::with_capacity(windows * 2);
    for w in 0..windows {
        let leads = [&samples0[w * n..(w + 1) * n], &samples1[w * n..(w + 1) * n]];
        for packet in enc.encode_frame(&leads).expect("encode") {
            frames.push(packet.to_bytes());
        }
    }
    frames
}

/// One stream's mangled traffic plus the link's ground truth.
struct MangledStream {
    deliveries: Vec<Vec<u8>>,
    stats: cs_platform::LinkStats,
    /// Wire sequence number of the first intact delivery, if any — the
    /// chaos-panic target must be a frame that actually arrives.
    first_intact_seq: Option<u64>,
}

fn mangle(clean: &[Vec<u8>], spec: cs_platform::FaultSpec, seed: u64) -> MangledStream {
    let mut link = cs_platform::LossyLink::new(spec, seed);
    let mut out = Vec::new();
    for frame in clean {
        link.offer(frame, &mut out);
    }
    link.flush(&mut out);
    let first_intact_seq = out.iter().find(|d| d.intact).and_then(|d| {
        parse_frame(&d.bytes).ok().map(|(info, _)| info.index)
    });
    MangledStream {
        deliveries: out.into_iter().map(|d| d.bytes).collect(),
        stats: link.stats(),
        first_intact_seq,
    }
}

/// Reopens the round's archive and checks that every delivered frame is
/// stored byte-for-byte: per stream, the arrival order partitioned by
/// destination lane (parsed lane for intact frames, [`QUARANTINE_LANE`]
/// for anything unparseable) must equal what each lane replays. Returns
/// the number of frames verified.
fn verify_archive_round_trip(root: &Path, traffic: &[Vec<Vec<u8>>]) -> Result<u64, String> {
    let (archive, _) = Archive::open(root).map_err(|e| format!("archive reopen failed: {e}"))?;
    let mut verified = 0u64;
    for (stream, frames) in traffic.iter().enumerate() {
        let mut expect: BTreeMap<u8, Vec<&[u8]>> = BTreeMap::new();
        for bytes in frames {
            let lane = match parse_frame(bytes) {
                Ok((info, _)) if info.lane != QUARANTINE_LANE => info.lane,
                _ => QUARANTINE_LANE,
            };
            expect.entry(lane).or_default().push(bytes);
        }
        let patient = stream as u32;
        let lanes = archive.lanes_of(patient);
        if lanes != expect.keys().copied().collect::<Vec<u8>>() {
            return Err(format!(
                "stream {stream}: archived lanes {lanes:?} != delivered lanes {:?}",
                expect.keys().collect::<Vec<_>>()
            ));
        }
        for (lane, want) in expect {
            let got: Vec<_> = archive
                .replay_range(patient, lane, 0..u64::MAX)
                .and_then(|r| r.collect::<std::io::Result<Vec<_>>>())
                .map_err(|e| format!("stream {stream} lane {lane}: replay failed: {e}"))?;
            if got.len() != want.len() {
                return Err(format!(
                    "stream {stream} lane {lane}: archived {} frames, link delivered {}",
                    got.len(),
                    want.len()
                ));
            }
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                if g.bytes != **w {
                    return Err(format!(
                        "stream {stream} lane {lane} frame {i}: archived bytes differ from wire"
                    ));
                }
                verified += 1;
            }
        }
    }
    Ok(verified)
}

/// A single soak round; returns the violation message on failure.
#[allow(clippy::too_many_lines)]
fn round(
    config: &SystemConfig,
    patients: &[(Vec<i16>, Vec<i16>)],
    settings: &SoakSettings,
    registry: &TelemetryRegistry,
    round_seed: u64,
    inject_panic: bool,
) -> Result<(FleetReport, cs_platform::LinkStats), String> {
    let spec = settings.fault_spec();
    let mangled: Vec<MangledStream> = patients
        .iter()
        .enumerate()
        .map(|(i, (lead0, lead1))| {
            let clean = stream_frames(config, lead0, lead1);
            mangle(&clean, spec, round_seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
        })
        .collect();

    let mut link_total = cs_platform::LinkStats::default();
    for m in &mangled {
        link_total.sent += m.stats.sent;
        link_total.dropped += m.stats.dropped;
        link_total.delivered += m.stats.delivered;
        link_total.corrupted += m.stats.corrupted;
        link_total.truncated += m.stats.truncated;
        link_total.duplicated += m.stats.duplicated;
        link_total.reordered += m.stats.reordered;
    }

    let traffic: Vec<Vec<Vec<u8>>> = mangled.iter().map(|m| m.deliveries.clone()).collect();
    let chaos_panic = if inject_panic {
        mangled[0].first_intact_seq.map(|seq| (0usize, seq))
    } else {
        None
    };

    let cb = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
    let fleet = FleetConfig {
        workers: settings.workers,
        warm_start: true,
        solve_budget: Some(400),
        chaos_panic,
        ..FleetConfig::default()
    };

    // Round 0 additionally taps ingest through the durable archive sink
    // so the round-trip invariant gets a fresh hostile sample each run.
    let archive_root = inject_panic.then(|| {
        std::env::temp_dir().join(format!("cs-chaos-archive-{}", std::process::id()))
    });
    let sink = archive_root.as_ref().map(|root| {
        let _ = std::fs::remove_dir_all(root);
        Mutex::new(ArchiveSink::create(root, ArchiveConfig::default()).expect("archive sink"))
    });

    // Per-(stream, lead) last emitted window index, for the in-order check.
    let order = Mutex::new(HashMap::<(usize, u8), u64>::new());
    let emitted = Mutex::new(0u64);
    let violations = Mutex::new(Vec::<String>::new());
    let on_packet = |p: &cs_core::FleetPacket<f32>| {
            *emitted.lock().unwrap() += 1;
            let mut order = order.lock().unwrap();
            let key = (p.stream, p.channel);
            if let Some(&last) = order.get(&key) {
                if p.packet.index <= last {
                    violations.lock().unwrap().push(format!(
                        "stream {} lead {}: window {} emitted after {}",
                        p.stream, p.channel, p.packet.index, last
                    ));
                }
            }
            order.insert(key, p.packet.index);
            let synthetic = p.packet.concealed;
            let flagged = !matches!(p.outcome, PacketOutcome::Decoded);
            if synthetic != flagged {
                violations.lock().unwrap().push(format!(
                    "stream {} lead {} window {}: concealed flag {} disagrees with outcome {:?}",
                    p.stream, p.channel, p.packet.index, synthetic, p.outcome
                ));
            }
    };
    let report = match &sink {
        Some(sink) => run_fleet_wire_archived::<f32, _>(
            config,
            cb,
            &traffic,
            SolverPolicy::default(),
            &fleet,
            registry,
            sink,
            on_packet,
        ),
        None => run_fleet_wire::<f32, _>(
            config,
            cb,
            &traffic,
            SolverPolicy::default(),
            &fleet,
            registry,
            on_packet,
        ),
    }
    .map_err(|e| format!("fleet run failed: {e}"))?;

    if let (Some(sink), Some(root)) = (sink, &archive_root) {
        sink.into_inner()
            .unwrap()
            .finish()
            .map_err(|e| format!("archive seal failed: {e}"))?;
        let archived = verify_archive_round_trip(root, &traffic)?;
        println!("round 0: archive round-trip verified, {archived} frames byte-for-byte");
        let _ = std::fs::remove_dir_all(root);
    }

    let violations = violations.into_inner().unwrap();
    if let Some(first) = violations.first() {
        return Err(format!("{} ordering/flag violations; first: {first}", violations.len()));
    }

    let f = &report.faults;
    if f.frames != link_total.delivered as u64 {
        return Err(format!(
            "ingest saw {} frames but the link delivered {}",
            f.frames, link_total.delivered
        ));
    }
    let terminal = f.frame_rejects + f.duplicates + f.late + f.decoded + f.concealed_desync
        + f.quarantined;
    if f.frames != terminal {
        return Err(format!(
            "frame accounting leak: {} ingested vs {} accounted ({f:?})",
            f.frames, terminal
        ));
    }
    let emitted = emitted.into_inner().unwrap();
    if emitted != f.delivered() {
        return Err(format!(
            "emitted {} windows but counters say {} ({f:?})",
            emitted,
            f.delivered()
        ));
    }
    if inject_panic && chaos_panic.is_some() {
        if f.worker_restarts == 0 {
            return Err("injected panic but no worker restart was recorded".into());
        }
        if !report.quarantine.iter().any(|q| q.cause.contains("panic")) {
            return Err("injected panic left no quarantine record".into());
        }
    }
    Ok((report, link_total))
}

fn main() -> ExitCode {
    // The round-0 supervision check panics inside a worker on purpose;
    // keep its backtrace out of the soak log while leaving every other
    // panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected decode panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let settings = SoakSettings::from_args();
    let config = SystemConfig::paper_default();
    let n = config.packet_len();
    println!(
        "chaos_soak: {} streams x {} workers, {:.0} s budget, seed {}",
        settings.streams, settings.workers, settings.seconds, settings.seed
    );
    println!(
        "profile: ber {:.1e} (burst), drop {:.3}%, reorder {:.3}%, dup {:.3}%, truncate {:.3}%",
        settings.ber,
        settings.drop * 100.0,
        settings.reorder * 100.0,
        settings.duplicate * 100.0,
        settings.truncate * 100.0,
    );

    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: settings.streams,
        duration_s: settings.signal_seconds,
        ..DatabaseConfig::default()
    });
    let patients: Vec<(Vec<i16>, Vec<i16>)> = (0..db.len())
        .map(|i| {
            let record = db.record(i);
            let adc = record.adc();
            let lead = |c: usize| -> Vec<i16> {
                resample_360_to_256(&record.signal_mv(c))
                    .iter()
                    .map(|&v| adc.to_signed(adc.quantize(v)))
                    .collect()
            };
            (lead(0), lead(1))
        })
        .collect();
    let frames_per_round: usize =
        patients.iter().map(|(a, b)| (a.len().min(b.len()) / n) * 2).sum();

    let registry = TelemetryRegistry::new();
    let started = Instant::now();
    let mut rounds = 0u64;
    let mut totals = cs_core::FaultStats::default();
    let mut link_totals = cs_platform::LinkStats::default();
    loop {
        let round_seed = settings.seed.wrapping_add(rounds.wrapping_mul(0x0123_4567_89AB_CDEF));
        match round(&config, &patients, &settings, &registry, round_seed, rounds == 0) {
            Ok((report, link)) => {
                let f = report.faults;
                totals.frames += f.frames;
                totals.frame_rejects += f.frame_rejects;
                totals.duplicates += f.duplicates;
                totals.late += f.late;
                totals.resyncs += f.resyncs;
                totals.decoded += f.decoded;
                totals.concealed_loss += f.concealed_loss;
                totals.concealed_desync += f.concealed_desync;
                totals.quarantined += f.quarantined;
                totals.worker_restarts += f.worker_restarts;
                totals.deadline_degraded += f.deadline_degraded;
                link_totals.sent += link.sent;
                link_totals.dropped += link.dropped;
                link_totals.delivered += link.delivered;
                link_totals.corrupted += link.corrupted;
                link_totals.duplicated += link.duplicated;
            }
            Err(msg) => {
                eprintln!("FAIL round {rounds} (seed {round_seed}): {msg}");
                return ExitCode::FAILURE;
            }
        }
        rounds += 1;
        if started.elapsed().as_secs_f64() >= settings.seconds {
            break;
        }
    }
    let wall = started.elapsed();

    println!("== Soak result ==");
    println!("rounds                  : {rounds}  ({frames_per_round} clean frames each)");
    println!("wall time               : {wall:.2?}");
    println!(
        "link: sent/dropped/dup  : {} / {} / {}  ({} corrupted)",
        link_totals.sent, link_totals.dropped, link_totals.duplicated, link_totals.corrupted
    );
    let pct = |part: u64| 100.0 * part as f64 / totals.frames.max(1) as f64;
    println!("frames ingested         : {}", totals.frames);
    println!("  rejected (CRC/frame)  : {:>8}  ({:.2} %)", totals.frame_rejects, pct(totals.frame_rejects));
    println!("  duplicates / late     : {:>8} / {}", totals.duplicates, totals.late);
    println!("windows decoded         : {:>8}", totals.decoded);
    println!(
        "windows concealed       : {:>8}  ({} loss, {} desync)",
        totals.concealed(),
        totals.concealed_loss,
        totals.concealed_desync
    );
    println!("windows quarantined     : {:>8}", totals.quarantined);
    println!("resyncs                 : {:>8}", totals.resyncs);
    println!("worker restarts         : {:>8}", totals.worker_restarts);
    println!("deadline-degraded       : {:>8}", totals.deadline_degraded);
    println!("OK: {} rounds, every invariant held", rounds);

    if settings.telemetry {
        println!("== Prometheus scrape ==");
        print!("{}", registry.prometheus());
        println!("== JSONL snapshot ==");
        println!("{}", registry.json_line());
    }
    ExitCode::SUCCESS
}
