//! CS vs classical DWT transform coding — the trade the paper's whole
//! premise rests on (§I): transform coding compresses better, but its
//! encoder needs a full DSP pipeline on the mote, while the CS encoder is
//! a multiplication-free gather-add.
//!
//! For each CR this binary reports, on the same corpus and wavelet:
//! reconstruction PRD of both systems, and the modeled MSP430 encode cost
//! of both encoders.
//!
//! ```text
//! cargo run --release -p cs-bench --bin baseline_dwt [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{
    packetize, train_and_evaluate, DwtThresholdCodec, SolverPolicy, SystemConfig,
};
use cs_dsp::wavelet::Wavelet;
use cs_metrics::{prd, Summary};
use cs_platform::{dwt_baseline_cost, encode_cost, MoteSpec};
use std::time::Duration;

fn main() {
    let settings = RunSettings::from_args();
    banner(
        "baseline_dwt",
        "§I premise (CS encoder simplicity vs transform-coding quality)",
        &settings,
    );
    let corpus = settings.corpus();
    let mote = MoteSpec::msp430f1611();
    let period = Duration::from_secs(2);

    println!(
        "{:>5} {:>12} {:>12} {:>16} {:>16}",
        "CR %", "CS PRD", "DWT PRD", "CS enc (ms)", "DWT enc (ms)"
    );
    for cr in [30.0, 50.0, 70.0, 85.0] {
        let config = SystemConfig::builder()
            .compression_ratio(cr)
            .build()
            .expect("valid config");
        let codec = DwtThresholdCodec::new(&config).expect("codec");
        let filter_len = Wavelet::new(config.wavelet_family())
            .expect("wavelet")
            .filter_len();

        let mut cs_prd = Summary::new();
        let mut dwt_prd = Summary::new();
        let mut cs_ms = Summary::new();
        let mut dwt_ms = Summary::new();
        for record in &corpus.records {
            // CS pipeline.
            let report =
                train_and_evaluate::<f64>(&config, &record.samples, 3, SolverPolicy::default())
                    .expect("cs pipeline");
            for p in &report.packets {
                cs_prd.push(p.prd);
            }
            // Transform-coding baseline on the same packets.
            for packet in packetize(&record.samples, config.packet_len()) {
                let enc = codec.encode(packet, cr).expect("baseline encode");
                let recon = codec.decode(&enc).expect("baseline decode");
                let x: Vec<f64> = packet.iter().map(|&v| v as f64).collect();
                if x.iter().any(|&v| v != 0.0) {
                    dwt_prd.push(prd(&x, &recon));
                }
                let cost = dwt_baseline_cost(
                    &mote,
                    config.packet_len(),
                    filter_len,
                    config.levels(),
                    enc.kept,
                );
                dwt_ms.push(cost.time_on(&mote).as_secs_f64() * 1e3);
            }
        }
        // CS encoder cost (from the calibrated model, one representative packet).
        {
            use cs_core::{uniform_codebook, Encoder};
            use std::sync::Arc;
            let cb = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
            let mut enc = Encoder::new(&config, cb).expect("encoder");
            for packet in packetize(&corpus.records[0].samples, config.packet_len()).take(4) {
                let wire = enc.encode_packet(packet).expect("encode");
                cs_ms.push(encode_cost(&mote, &config, &wire).time_on(&mote).as_secs_f64() * 1e3);
            }
        }
        println!(
            "{:>5.0} {:>12.2} {:>12.2} {:>16.1} {:>16.1}",
            cr,
            cs_prd.mean(),
            dwt_prd.mean(),
            cs_ms.mean(),
            dwt_ms.mean()
        );
        let _ = period;
    }
    println!();
    println!("# DWT transform coding wins on PRD at every CR (the known result this");
    println!("# baseline demonstrates). On modeled cycles the DWT encoder is NOT more");
    println!("# expensive than the paper-calibrated CS stage: the 82 ms anchor is");
    println!("# dominated by on-the-fly Φ index regeneration, not arithmetic. The CS");
    println!("# advantages the paper claims are architectural — no multiplier-bound");
    println!("# DSP chain, no coefficient buffering, a path to analog CS — plus the");
    println!("# decoder-side flexibility; see DESIGN.md for the discussion.");
}
