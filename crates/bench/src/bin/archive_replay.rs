//! Decode-on-read replay report: reconstruct a monitoring session from
//! the durable packet archive and measure what the store costs and what
//! the replay recovers.
//!
//! With no arguments the binary is self-contained: it synthesizes the
//! corpus, records a fault-free fleet session through the
//! write-before-decode sink into a scratch directory, then drops the
//! live output and works **only from disk**. Point `--replay DIR` at an
//! existing archive (e.g. one left behind by a crashed writer) to skip
//! the recording step; point it at a *missing* directory to record the
//! session there and keep it for later `fleet_report --replay` runs.
//! Decoding uses the codebook trained from the same
//! `--records/--seconds` corpus, so replay a session with the settings
//! it was recorded under.
//!
//! Panels: archive geometry and recovery stats, decode-on-read fault
//! accounting, per-stream reconstruction PRD against the deterministic
//! corpus (via `try_prd` — sessions that diverge from the corpus print
//! `n/a` instead of tearing down the report), stage latency quantiles
//! including the archive spans, and the `ArchiveCapacityModel`
//! provisioning table.
//!
//! ```text
//! cargo run --release -p cs-bench --bin archive_replay [--replay DIR] [--full]
//! ```

use cs_archive::{Archive, ArchiveConfig, ArchiveSink};
use cs_bench::{banner, RunSettings};
use cs_core::{
    packetize, run_fleet_wire, run_fleet_wire_archived, train_codebook, FleetConfig,
    MultiChannelEncoder, SolverPolicy, SystemConfig, QUARANTINE_LANE,
};
use cs_ecg_data::{resample_360_to_256, DatabaseConfig, Record, SyntheticDatabase};
use cs_metrics::try_prd;
use cs_platform::{ArchiveCapacityModel, SyncCadence};
use cs_telemetry::{ArchiveOp, TelemetryRegistry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Mote-ready samples for one lead: resample to 256 Hz, quantize.
fn prepare(record: &Record, channel: usize) -> Vec<i16> {
    let at256 = resample_360_to_256(&record.signal_mv(channel));
    let adc = record.adc();
    at256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect()
}

/// Renders nanoseconds at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn main() {
    let settings = RunSettings::from_args();
    banner("archive_replay", "durable store + decode-on-read replay", &settings);
    let config = SystemConfig::paper_default();
    let n = config.packet_len();

    // The deterministic two-lead corpus: ground truth for PRD, training
    // set for the codebook, and (when recording) the session source.
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: settings.records,
        duration_s: settings.seconds,
        ..DatabaseConfig::default()
    });
    let patients: Vec<(Vec<i16>, Vec<i16>)> = (0..db.len())
        .map(|i| {
            let record = db.record(i);
            (prepare(&record, 0), prepare(&record, 1))
        })
        .collect();
    let training = patients
        .iter()
        .flat_map(|(lead0, _)| packetize(lead0, n).take(3))
        .map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).expect("training succeeds"));
    let fleet = FleetConfig { warm_start: true, ..FleetConfig::default() };

    let scratch = std::env::temp_dir().join(format!("cs-archive-replay-{}", std::process::id()));
    // `--replay DIR` on an existing directory replays it; on a missing
    // one, the recorded session is written there and kept — a convenient
    // way to produce an archive for `fleet_report --replay`.
    let (dir, record_into) = match settings.replay.clone() {
        Some(dir) if std::path::Path::new(&dir).exists() => (dir, None),
        Some(dir) => (dir.clone(), Some(std::path::PathBuf::from(dir))),
        None => (scratch.to_string_lossy().into_owned(), Some(scratch.clone())),
    };
    if let Some(target) = record_into {
        // Record the session: live encode → archive sink → decode,
        // discarding the live output. Everything below reads disk.
        let traffic: Vec<Vec<Vec<u8>>> = patients
            .iter()
            .map(|(lead0, lead1)| {
                let mut enc = MultiChannelEncoder::new(&config, Arc::clone(&codebook), 2)
                    .expect("wire encoder");
                let mut frames = Vec::new();
                for w in 0..lead0.len().min(lead1.len()) / n {
                    let leads = [&lead0[w * n..(w + 1) * n], &lead1[w * n..(w + 1) * n]];
                    for packet in enc.encode_frame(&leads).expect("wire encode") {
                        frames.push(packet.to_bytes());
                    }
                }
                frames
            })
            .collect();
        let sink = Mutex::new(
            ArchiveSink::create(&target, ArchiveConfig::default()).expect("archive sink"),
        );
        run_fleet_wire_archived::<f32, _>(
            &config,
            Arc::clone(&codebook),
            &traffic,
            SolverPolicy::default(),
            &fleet,
            &TelemetryRegistry::disabled(),
            &sink,
            |_| {},
        )
        .expect("recording run");
        sink.into_inner().unwrap().finish().expect("seal archive");
    }

    let registry = TelemetryRegistry::new();
    let (archive, recovery) =
        Archive::open_observed(&dir, registry.clone()).expect("open archive");
    let patients_on_disk = archive.patients();
    let mut segments = 0usize;
    let mut sealed = 0usize;
    let mut bytes = 0u64;
    let mut quarantine_lanes = 0usize;
    for &p in &patients_on_disk {
        for lane in archive.lanes_of(p) {
            if lane == QUARANTINE_LANE {
                quarantine_lanes += 1;
            }
            for seg in archive.segments(p, lane) {
                segments += 1;
                sealed += usize::from(seg.sealed);
                bytes += seg.valid_bytes;
            }
        }
    }
    println!("== Archive ({dir}) ==");
    println!("patients                : {:>8}", patients_on_disk.len());
    println!(
        "segments                : {:>8}  ({sealed} sealed, {} recovered by scan)",
        segments, recovery.segments_scanned
    );
    println!("frame records           : {:>8}", archive.total_records());
    println!("stored bytes            : {:>8}  ({:.2} MiB)", bytes, bytes as f64 / (1 << 20) as f64);
    println!(
        "torn tails              : {:>8}  ({} bytes discarded)",
        recovery.torn_tails, recovery.torn_bytes
    );
    println!("quarantine lanes        : {:>8}", quarantine_lanes);

    // Decode on read: the archived wire bytes through the supervised
    // fleet engine, exactly as a live session would run.
    let traffic: Vec<Vec<Vec<u8>>> = patients_on_disk
        .iter()
        .map(|&p| archive.replay_stream(p).expect("replay stream"))
        .collect();
    let mut decoded: BTreeMap<(usize, u8), BTreeMap<u64, Vec<f32>>> = BTreeMap::new();
    let decoded_cell = Mutex::new(&mut decoded);
    let started = Instant::now();
    let report = run_fleet_wire::<f32, _>(
        &config,
        Arc::clone(&codebook),
        &traffic,
        SolverPolicy::default(),
        &fleet,
        &registry,
        |p| {
            decoded_cell
                .lock()
                .unwrap()
                .entry((p.stream, p.channel))
                .or_default()
                .insert(p.packet.index, p.packet.samples.clone());
        },
    )
    .expect("replay decode");
    let wall = started.elapsed();
    let frames_read: u64 = traffic.iter().map(|t| t.len() as u64).sum();
    let faults = &report.faults;
    println!("== Decode on read ==");
    println!("frames replayed         : {:>8}", frames_read);
    println!(
        "windows decoded         : {:>8}  (+{} concealed, {} quarantined)",
        faults.decoded,
        faults.concealed(),
        faults.quarantined
    );
    println!(
        "replay wall-clock       : {:>8.2?}  ({:.0} frames/s)",
        wall,
        frames_read as f64 / wall.as_secs_f64()
    );

    // Reconstruction quality vs the deterministic corpus. `try_prd`
    // degrades to n/a when the archive doesn't correspond to these
    // settings (different corpus, foreign session, empty lead).
    println!("== Reconstruction PRD (vs corpus ground truth) ==");
    println!("{:<12} {:>12} {:>12}", "stream", "lead0 PRD %", "lead1 PRD %");
    let mut prds: Vec<f64> = Vec::new();
    for (s, &p) in patients_on_disk.iter().enumerate() {
        let truth = patients.get(p as usize);
        let lead_prd = |channel: u8| -> Option<f64> {
            let windows = decoded.get(&(s, channel))?;
            let recon: Vec<f64> = windows
                .values()
                .flat_map(|w| w.iter().map(|&v| f64::from(v)))
                .collect();
            let (lead0, lead1) = truth?;
            let t = if channel == 0 { lead0 } else { lead1 };
            let len = recon.len().min(t.len());
            let t: Vec<f64> = t[..len].iter().map(|&v| f64::from(v)).collect();
            try_prd(&t, &recon[..len])
        };
        let fmt = |v: Option<f64>| v.map_or("n/a".to_owned(), |p| format!("{p:.2}"));
        let (p0, p1) = (lead_prd(0), lead_prd(1));
        prds.extend(p0.iter().chain(p1.iter()));
        println!("p{:<11} {:>12} {:>12}", p, fmt(p0), fmt(p1));
    }
    if !prds.is_empty() {
        let mean = prds.iter().sum::<f64>() / prds.len() as f64;
        let max = prds.iter().cloned().fold(f64::MIN, f64::max);
        println!("mean / worst            : {mean:>8.2} / {max:.2} %");
    }

    let snapshot = registry.snapshot();
    println!("== Stage latency (live registry) ==");
    println!("{:<20} {:>8} {:>12} {:>12}", "stage", "count", "p50", "p99");
    for (stage, hist) in snapshot.stages {
        if hist.count() == 0 {
            continue;
        }
        println!(
            "{:<20} {:>8} {:>12} {:>12}",
            stage.name(),
            hist.count(),
            fmt_ns(hist.quantile(0.50)),
            fmt_ns(hist.quantile(0.99))
        );
    }
    println!(
        "archive ops             : {}",
        ArchiveOp::ALL
            .iter()
            .map(|&op| format!("{op}={}", snapshot.archive(op)))
            .collect::<Vec<_>>()
            .join("  ")
    );

    let model = ArchiveCapacityModel::paper_default();
    println!("== Capacity model (paper defaults: 256 Hz, N=512, CR 50 %) ==");
    println!("storage per patient-day : {:>8.1} MB  (raw would be {:.1} MB)",
        model.bytes_per_day() / 1e6, model.raw_bytes_per_day() / 1e6);
    println!("segments per day        : {:>8.2}", model.segments_per_day());
    println!("retention per GiB       : {:>8.1} patient-days", model.days_per_gib());
    println!(
        "fsyncs per day          : {:>8.0} (per-record) / {:.0} (every 64) / {:.0} (seal only)",
        model.fsyncs_per_day(SyncCadence::PerRecord),
        model.fsyncs_per_day(SyncCadence::EveryN(64)),
        model.fsyncs_per_day(SyncCadence::Never)
    );

    if settings.replay.is_none() {
        let _ = std::fs::remove_dir_all(&scratch);
    }
    if settings.telemetry {
        println!("== Prometheus scrape ==");
        print!("{}", registry.prometheus());
        println!("== JSONL snapshot ==");
        println!("{}", registry.json_line());
    }
}
