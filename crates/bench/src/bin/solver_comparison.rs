//! Solver design ablation (DESIGN.md ✦): FISTA vs ISTA vs OMP on the
//! same CR 50 packets.
//!
//! The paper picks FISTA over ISTA for its `O(1/k²)` rate and over greedy
//! pursuit for its dense-matrix-free iteration; this binary quantifies
//! both choices on the ECG workload: reconstruction quality at an equal
//! iteration budget for the shrinkage solvers, and wall time for OMP
//! (which needs the materialized operator).
//!
//! ```text
//! cargo run --release -p cs-bench --bin solver_comparison [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_metrics::{output_snr, Summary};
use cs_recovery::{
    amp, fista, ista, lambda_max, lipschitz_constant, omp, AmpConfig, DeflatedOperator,
    DenseOperator, KernelMode, OmpConfig, ShrinkageConfig, SynthesisOperator,
    top_singular_pair,
};
use cs_sensing::{measurements_for_cr, Sensing, SparseBinarySensing};

const PACKET: usize = 512;
const BUDGET: usize = 60; // tight budget so the O(1/k²) vs O(1/k) gap shows

fn main() {
    let settings = RunSettings::from_args();
    banner("solver_comparison", "solver design ablation (FISTA vs ISTA vs OMP)", &settings);
    let corpus = settings.corpus();

    let m = measurements_for_cr(PACKET, 50.0);
    let phi = SparseBinarySensing::new(m, PACKET, 12, 0x501B).expect("valid Φ");
    let wavelet = Wavelet::daubechies(4).expect("db4");
    let dwt: Dwt<f64> = Dwt::new(&wavelet, PACKET, 5).expect("plan");
    let op = SynthesisOperator::new(&phi, &dwt);
    let (_, u) = top_singular_pair(&op, 150);
    let defl = DeflatedOperator::with_direction(&op, u, 0.15);
    let lips = lipschitz_constant(&defl, 150);
    let dense = DenseOperator::materialize(&op, KernelMode::Unrolled4);

    let packets: Vec<&[i16]> = corpus
        .records
        .iter()
        .flat_map(|r| r.samples.chunks_exact(PACKET))
        .take(16)
        .collect();

    let mut fista_snr = Summary::new();
    let mut ista_snr = Summary::new();
    let mut omp_snr = Summary::new();
    let mut amp_snr = Summary::new();
    let mut fista_ms = Summary::new();
    let mut ista_ms = Summary::new();
    let mut omp_ms = Summary::new();
    let mut amp_ms = Summary::new();
    let mut amp_diverged = 0usize;

    for p in &packets {
        let x: Vec<f64> = p.iter().map(|&v| v as f64).collect();
        let y: Vec<f64> = phi.apply(x.as_slice());
        let yd = defl.transform_measurements(&y);
        let lam = 0.002 * lambda_max(&defl, &yd);
        let cfg = ShrinkageConfig {
            lambda: lam,
            max_iterations: BUDGET,
            tolerance: 0.0,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        };

        let rf = fista(&defl, &yd, &cfg, Some(lips));
        let ri = ista(&defl, &yd, &cfg, Some(lips));
        let ro = omp(&dense, &y, &OmpConfig::new(64));
        let ra = amp(
            &defl,
            &yd,
            &AmpConfig {
                max_iterations: BUDGET,
                ..AmpConfig::default()
            },
        );
        if ra.diverged {
            amp_diverged += 1;
        }

        fista_snr.push(output_snr(&x, &dwt.synthesize(&rf.solution)));
        ista_snr.push(output_snr(&x, &dwt.synthesize(&ri.solution)));
        omp_snr.push(output_snr(&x, &dwt.synthesize(&ro.solution)));
        amp_snr.push(output_snr(&x, &dwt.synthesize(&ra.solution)));
        fista_ms.push(rf.elapsed.as_secs_f64() * 1e3);
        ista_ms.push(ri.elapsed.as_secs_f64() * 1e3);
        omp_ms.push(ro.elapsed.as_secs_f64() * 1e3);
        amp_ms.push(ra.elapsed.as_secs_f64() * 1e3);
    }

    println!(
        "{:<28} {:>12} {:>14}",
        "solver", "SNR (dB)", "time (ms/pkt)"
    );
    println!(
        "{:<28} {:>12.2} {:>14.3}",
        format!("FISTA ({BUDGET} iters)"),
        fista_snr.mean(),
        fista_ms.mean()
    );
    println!(
        "{:<28} {:>12.2} {:>14.3}",
        format!("ISTA ({BUDGET} iters)"),
        ista_snr.mean(),
        ista_ms.mean()
    );
    println!(
        "{:<28} {:>12.2} {:>14.3}",
        "OMP (greedy, ≤64 atoms)",
        omp_snr.mean(),
        omp_ms.mean()
    );
    println!(
        "{:<28} {:>12.2} {:>14.3}",
        format!("AMP (≤{BUDGET} iters)"),
        amp_snr.mean(),
        amp_ms.mean()
    );
    if amp_diverged > 0 {
        println!("# AMP diverged on {amp_diverged}/{} packets (non-i.i.d. operator; see docs)", packets.len());
    }
    println!();
    println!(
        "# FISTA − ISTA at equal budget: {:+.2} dB (acceleration gap, paper's O(1/k²) vs O(1/k))",
        fista_snr.mean() - ista_snr.mean()
    );
}
