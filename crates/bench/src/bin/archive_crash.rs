//! Crash-recovery harness for the durable packet archive, driven by
//! `scripts/archive_crash.sh`: the `write` mode is killed with SIGKILL
//! mid-append, then `verify` (a read-only recovery scan) must find every
//! completed record intact — per lane, sequence numbers contiguous from
//! 0 and every payload matching its deterministic generator. The only
//! permitted damage is a single torn record at each lane's tail.
//!
//! ```text
//! archive_crash write  <dir>    # append forever; resumes after a kill
//! archive_crash verify <dir>    # exit non-zero on any record loss
//! ```

use cs_archive::{Archive, ArchiveConfig, ArchiveWriter, FsyncPolicy};
use std::path::Path;
use std::process::ExitCode;

const PATIENT: u32 = 0;
const LANES: [u8; 2] = [0, 1];

/// The payload for `(lane, seq)`: length and bytes both derive from the
/// sequence number, so `verify` needs no side channel and torn offsets
/// land differently every round.
fn payload(lane: u8, seq: u64) -> Vec<u8> {
    let len = 200 + ((seq * 31 + u64::from(lane) * 7) % 120) as usize;
    (0..len)
        .map(|i| (seq.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64 * 131 + u64::from(lane)) & 0xFF) as u8)
        .collect()
}

fn write_forever(dir: &Path) -> std::io::Result<()> {
    let config = ArchiveConfig {
        segment_bytes: 256 * 1024, // small segments: rotations happen within one round
        fsync: FsyncPolicy::EveryN(4),
        ..ArchiveConfig::default()
    };
    // Resume each lane after whatever a prior (killed) writer completed.
    let (archive, _) = Archive::open(dir)?;
    let mut next: [u64; 2] = [0, 0];
    for (i, &lane) in LANES.iter().enumerate() {
        next[i] = archive
            .segments(PATIENT, lane)
            .iter()
            .filter(|s| s.records > 0)
            .map(|s| s.max_seq + 1)
            .max()
            .unwrap_or(0);
    }
    drop(archive);
    let (mut writer, stats) = ArchiveWriter::open(dir, config)?;
    eprintln!(
        "write: resuming at seqs {:?} (recovered {} frames, {} torn tails)",
        next, stats.frames_recovered, stats.torn_tails
    );
    loop {
        for (i, &lane) in LANES.iter().enumerate() {
            writer.append(PATIENT, lane, next[i], &payload(lane, next[i]))?;
            next[i] += 1;
        }
    }
}

fn verify(dir: &Path) -> Result<(), String> {
    // Read-only: the recovery scan must succeed without touching disk,
    // so a failed verify leaves the evidence in place.
    let (archive, stats) =
        Archive::open(dir).map_err(|e| format!("recovery open failed: {e}"))?;
    let mut total = 0u64;
    for &lane in &LANES {
        let frames: Vec<_> = archive
            .replay_range(PATIENT, lane, 0..u64::MAX)
            .and_then(|r| r.collect::<std::io::Result<Vec<_>>>())
            .map_err(|e| format!("lane {lane}: replay failed: {e}"))?;
        for (i, frame) in frames.iter().enumerate() {
            if frame.seq != i as u64 {
                return Err(format!(
                    "lane {lane}: record {i} has seq {} — {} records lost beyond the torn tail",
                    frame.seq,
                    frame.seq - i as u64
                ));
            }
            if frame.bytes != payload(lane, frame.seq) {
                return Err(format!("lane {lane} seq {}: payload corrupted", frame.seq));
            }
        }
        total += frames.len() as u64;
    }
    println!(
        "verify: {} frames intact across {} lanes ({} torn tails, {} torn bytes discarded)",
        total,
        LANES.len(),
        stats.torn_tails,
        stats.torn_bytes
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("write") if args.len() == 3 => match write_forever(Path::new(&args[2])) {
            Ok(()) => unreachable!("write loop only ends by signal"),
            Err(e) => {
                eprintln!("write failed: {e}");
                ExitCode::FAILURE
            }
        },
        Some("verify") if args.len() == 3 => match verify(Path::new(&args[2])) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("FAIL: {msg}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: archive_crash <write|verify> <dir>");
            ExitCode::FAILURE
        }
    }
}
