//! Reproduces the **§V energy claim**: CS compression extends node
//! lifetime by 12.9 % at CR 50 relative to streaming uncompressed ECG.
//!
//! The payload sizes are *measured* from the real encoder over the
//! corpus; the encoder CPU share comes from the calibrated MSP430 cycle
//! model; the power numbers come from the ShimmerTM energy model
//! (documented in `cs-platform`).
//!
//! ```text
//! cargo run --release -p cs-bench --bin table_lifetime [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{packetize, train_codebook, Encoder, SystemConfig};
use cs_metrics::Summary;
use cs_platform::{compare_lifetime, encode_cost, EnergyModel, MoteSpec};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let settings = RunSettings::from_args();
    banner("table_lifetime", "§V (12.9 % node-lifetime extension at CR 50)", &settings);
    let corpus = settings.corpus();
    let model = EnergyModel::shimmer();
    let mote = MoteSpec::msp430f1611();
    let packet_period = Duration::from_secs(2);
    // Uncompressed streaming: 512 samples per 2 s as 16-bit transport
    // words (the mote's native sample container).
    let raw_bits = 512.0 * 16.0;

    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>12} {:>11}",
        "CR %", "bits/packet", "node CPU%", "raw (h)", "CS (h)", "extension %"
    );
    for cr in [30.0, 40.0, 50.0, 60.0, 70.0] {
        let config = SystemConfig::builder()
            .compression_ratio(cr)
            .build()
            .expect("valid config");
        let training = corpus
            .records
            .iter()
            .flat_map(|r| packetize(&r.samples, config.packet_len()).take(3))
            .map(|p| p.to_vec());
        let codebook = Arc::new(train_codebook(&config, training).expect("training"));
        let mut bits = Summary::new();
        let mut util = Summary::new();
        for record in &corpus.records {
            let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).expect("encoder");
            for packet in packetize(&record.samples, config.packet_len()) {
                let wire = encoder.encode_packet(packet).expect("encode");
                // Charge the framed size: headers ride the radio too.
                bits.push(wire.framed_bytes() as f64 * 8.0);
                util.push(
                    encode_cost(&mote, &config, &wire).cpu_utilization(&mote, packet_period),
                );
            }
        }
        let cmp = compare_lifetime(&model, raw_bits, bits.mean(), util.mean(), packet_period);
        println!(
            "{:>5.0} {:>12.0} {:>10.2} {:>12.1} {:>12.1} {:>11.1}",
            cr,
            bits.mean(),
            util.mean() * 100.0,
            cmp.uncompressed_hours,
            cmp.compressed_hours,
            cmp.extension_percent
        );
        if (cr - 50.0).abs() < 1e-9 {
            println!("# ^ paper anchor: 12.9 % extension at CR 50");
        }
    }
}
