//! Socket-fed swarm soak: hundreds of motes fan into one ingest service.
//!
//! Stands up the full network stack — streaming wire engine, ingest
//! listener, `/metrics`+`/healthz` server, optionally a seeded
//! [`TcpChaosProxy`] in front — and drives it with `--motes` concurrent
//! TCP clients, each performing the versioned handshake and streaming
//! `--frames` encoded windows per lane. Motes whose connections are torn
//! by the chaos proxy reconnect with resume and replay their unacked
//! tail; motes shed by admission retry after the server's hint.
//!
//! After the swarm completes the harness drains gracefully and checks
//! the robustness invariants:
//!
//! 1. **Exact accounting.** Server-side: every frame the deframers
//!    yielded reached the engine (`summary.frames == faults.frames`).
//!    Engine-side: every ingested frame lands in exactly one bucket
//!    (`frames == rejects + duplicates + late + decoded +
//!    concealed_desync + quarantined`).
//! 2. **No double emission.** Per `(stream, lead)`, emitted window
//!    indices are strictly increasing — resume replays must dedup.
//! 3. **Telemetry balance.** The session gauge returns to zero and
//!    every session ended in exactly one typed disconnect.
//! 4. **`/healthz` recovers.** Whatever chaos did mid-run, the verdict
//!    is `200` once the fleet has flushed.
//! 5. **Swarm completion.** Every mote eventually lands all its frames
//!    (clean runs) or survives with bounded retries (chaos runs).
//!
//! Any violation prints a diagnostic and exits non-zero.
//!
//! ```text
//! cargo run --release -p cs-bench --bin mote_swarm -- \
//!     [--motes 200] [--frames 6] [--lanes 1] [--workers 4] [--seed 7] \
//!     [--concurrency 128] [--max-sessions 256] [--shed-backlog 512] \
//!     [--chaos] [--telemetry-dump]
//! ```
//!
//! With `--connect HOST:PORT` the binary is a pure load generator
//! against an external `cs-ingestd`: no in-process stack, client-side
//! reporting only (the server prints its own accounting at drain).

use cs_core::{
    run_fleet_wire_stream, uniform_codebook, Encoder, FleetConfig, FleetPacket, FleetReport,
    SolverPolicy, SystemConfig, WireFrame,
};
use cs_ingest::{Connect, ControlCode, IngestClient, IngestConfig, IngestServer, LaneResume};
use cs_platform::{TcpChaosProxy, TcpChaosSpec};
use cs_telemetry::{MetricsServer, TelemetryRegistry, MAX_PATIENTS};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct SwarmSettings {
    motes: usize,
    frames: usize,
    lanes: usize,
    workers: usize,
    concurrency: usize,
    max_sessions: usize,
    shed_backlog: usize,
    seed: u64,
    chaos: bool,
    telemetry_dump: bool,
    /// Drive an external `cs-ingestd` instead of an in-process stack.
    /// Client-side load generation only: the server-side invariants are
    /// that process's to check (it prints its own accounting at drain).
    connect: Option<SocketAddr>,
}

impl Default for SwarmSettings {
    fn default() -> Self {
        SwarmSettings {
            motes: 200,
            frames: 6,
            lanes: 1,
            workers: 4,
            concurrency: 128,
            max_sessions: 256,
            shed_backlog: 512,
            seed: 7,
            chaos: false,
            telemetry_dump: false,
            connect: None,
        }
    }
}

impl SwarmSettings {
    fn from_args() -> Self {
        let mut s = SwarmSettings::default();
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next().unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--motes" => s.motes = value("--motes").parse().expect("--motes"),
                "--frames" => s.frames = value("--frames").parse().expect("--frames"),
                "--lanes" => s.lanes = value("--lanes").parse().expect("--lanes"),
                "--workers" => s.workers = value("--workers").parse().expect("--workers"),
                "--concurrency" => {
                    s.concurrency = value("--concurrency").parse().expect("--concurrency")
                }
                "--max-sessions" => {
                    s.max_sessions = value("--max-sessions").parse().expect("--max-sessions")
                }
                "--shed-backlog" => {
                    s.shed_backlog = value("--shed-backlog").parse().expect("--shed-backlog")
                }
                "--seed" => s.seed = value("--seed").parse().expect("--seed"),
                "--connect" => {
                    s.connect = Some(value("--connect").parse().expect("--connect"))
                }
                "--chaos" => s.chaos = true,
                "--telemetry-dump" => s.telemetry_dump = true,
                other => panic!("unknown flag {other}; see the module doc for usage"),
            }
        }
        assert!(s.motes > 0 && s.frames > 0 && s.lanes > 0, "swarm must be non-empty");
        assert!(s.lanes <= cs_ingest::MAX_HELLO_LANES, "--lanes exceeds the protocol limit");
        s
    }
}

fn synthetic_packet(n: usize, phase: f64) -> Vec<i16> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            let spike = (-((t - 0.3 + phase) * 40.0).powi(2)).exp()
                + (-((t - 0.8 + phase) * 40.0).powi(2)).exp();
            (900.0 * spike + 60.0 * (t * 12.0).sin()) as i16
        })
        .collect()
}

/// Pre-encodes the frame schedule one mote streams: `frames` windows per
/// lane, interleaved lane-major per window so lanes advance together.
/// Every mote sends the same bytes (distinct patients keep streams
/// distinct), so a 10k-mote swarm costs one encode.
fn mote_schedule(config: &SystemConfig, settings: &SwarmSettings) -> Vec<Vec<u8>> {
    let codebook = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
    let mut encoders: Vec<Encoder> = (0..settings.lanes)
        .map(|_| Encoder::new(config, Arc::clone(&codebook)).expect("encoder"))
        .collect();
    let mut schedule = Vec::with_capacity(settings.frames * settings.lanes);
    for k in 0..settings.frames {
        for (lane, encoder) in encoders.iter_mut().enumerate() {
            let samples =
                synthetic_packet(config.packet_len(), k as f64 * 0.003 + lane as f64 * 0.001);
            let packet = encoder.encode_packet(&samples).expect("encode");
            schedule.push(packet.to_bytes_tagged(lane as u8));
        }
    }
    schedule
}

/// Strictly-increasing emission watermarks per `(stream, lead)`.
#[derive(Default)]
struct EmissionOrder {
    last: Mutex<HashMap<(usize, u8), u64>>,
    violations: AtomicU64,
    emitted: AtomicU64,
}

impl EmissionOrder {
    fn observe(&self, packet: &FleetPacket<f32>) {
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let mut last = self.last.lock().expect("emission order lock");
        let key = (packet.stream, packet.channel);
        let index = packet.packet.index;
        if let Some(&prev) = last.get(&key) {
            if index <= prev {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
        }
        last.insert(key, index);
    }
}

/// One mote's run: handshake (with shed retries), stream, resume on
/// tears, finish. Returns (frames_sent, shed_retries, reconnects) or an
/// error string for motes that exhausted their attempts.
fn run_mote(
    addr: SocketAddr,
    patient: u32,
    schedule: &[Vec<u8>],
    lanes: usize,
) -> Result<(u64, u64, u64), String> {
    // Wall-clock budget, not an attempt count: a burst of motes can
    // legitimately be shed until the decode backlog drains, and that
    // takes as long as it takes. Chaos decides how many retries fit.
    let deadline = Instant::now() + Duration::from_secs(120);
    let lane_set: Vec<LaneResume> =
        (0..lanes).map(|l| LaneResume { lane: l as u8, resume_from: 0 }).collect();
    let mut cursor = 0usize;
    let mut tail = std::collections::VecDeque::new();
    let mut sent = 0u64;
    let mut sheds = 0u64;
    let mut reconnects = 0u64;
    let mut backoff = Duration::from_millis(5);
    let back_off = |backoff: &mut Duration| {
        std::thread::sleep(*backoff);
        *backoff = (*backoff * 2).min(Duration::from_millis(200));
    };
    loop {
        if Instant::now() >= deadline {
            return Err(format!(
                "mote {patient} ran out its clock at frame {cursor}/{} ({sheds} sheds)",
                schedule.len()
            ));
        }
        let connect = match IngestClient::connect(
            addr,
            patient,
            &lane_set,
            schedule.len(),
            Duration::from_secs(5),
        ) {
            Ok(connect) => connect,
            Err(_) => {
                // Chaos can kill the handshake itself; back off and retry.
                reconnects += 1;
                back_off(&mut backoff);
                continue;
            }
        };
        let mut client = match connect {
            Connect::Accepted(client) => {
                backoff = Duration::from_millis(5);
                client
            }
            Connect::Refused(control) if control.code == ControlCode::Shed => {
                sheds += 1;
                let hint = Duration::from_secs(control.retry_after_secs as u64);
                std::thread::sleep(hint.min(Duration::from_millis(50)));
                back_off(&mut backoff);
                continue;
            }
            Connect::Refused(control) if control.code == ControlCode::BadHandshake => {
                // A bit flip in the hello itself; indistinguishable from
                // a client bug server-side, but retryable client-side.
                reconnects += 1;
                back_off(&mut backoff);
                continue;
            }
            Connect::Refused(control) => {
                return Err(format!("refused with {:?}", control.code));
            }
        };
        if cursor > 0 {
            reconnects += 1;
            // Resume: replay the unacked tail; the engine dedups.
            if client.replay(&tail).is_err() {
                tail.extend(client.into_tail());
                continue;
            }
            sent += tail.len() as u64;
        }
        let mut torn = false;
        while cursor < schedule.len() {
            match client.send_frame(&schedule[cursor]) {
                Ok(()) => {
                    cursor += 1;
                    sent += 1;
                }
                Err(_) => {
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            tail = client.into_tail();
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        match client.finish(Duration::from_secs(10)) {
            Ok(control)
                if control.code == ControlCode::Goodbye
                    || control.code == ControlCode::Evicted =>
            {
                return Ok((sent, sheds, reconnects));
            }
            Ok(control) => return Err(format!("unexpected goodbye {:?}", control.code)),
            Err(_) => {
                // Goodbye lost to chaos: the tail frames may or may not
                // have landed. Rebuild the tail from the schedule and
                // reconnect so the server definitely has everything
                // (dedup makes the replay free).
                tail = schedule
                    .iter()
                    .map(|frame| {
                        let mut record = Vec::new();
                        cs_ingest::encode_record(frame, &mut record);
                        record
                    })
                    .collect();
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        }
    }
}

/// What the mote pool did, summed over all motes.
struct SwarmOutcome {
    sent: u64,
    shed_retries: u64,
    reconnects: u64,
    failures: Vec<String>,
    wall: Duration,
}

/// Runs the swarm: a fixed worker pool claims mote ids off a shared
/// cursor until all `settings.motes` have run to completion or error.
fn run_swarm(target: SocketAddr, schedule: &Arc<Vec<Vec<u8>>>, settings: &SwarmSettings) -> SwarmOutcome {
    let started = Instant::now();
    let next_mote = AtomicUsize::new(0);
    let sent_total = AtomicU64::new(0);
    let shed_retries = AtomicU64::new(0);
    let reconnects = AtomicU64::new(0);
    let failures = Mutex::new(Vec::<String>::new());
    let pool = settings.concurrency.min(settings.motes).max(1);
    std::thread::scope(|scope| {
        for _ in 0..pool {
            scope.spawn(|| loop {
                let mote = next_mote.fetch_add(1, Ordering::Relaxed);
                if mote >= settings.motes {
                    break;
                }
                match run_mote(target, mote as u32, schedule, settings.lanes) {
                    Ok((sent, sheds, recon)) => {
                        sent_total.fetch_add(sent, Ordering::Relaxed);
                        shed_retries.fetch_add(sheds, Ordering::Relaxed);
                        reconnects.fetch_add(recon, Ordering::Relaxed);
                    }
                    Err(e) => failures.lock().expect("failure list").push(e),
                }
            });
        }
    });
    SwarmOutcome {
        sent: sent_total.into_inner(),
        shed_retries: shed_retries.into_inner(),
        reconnects: reconnects.into_inner(),
        failures: failures.into_inner().expect("pool joined"),
        wall: started.elapsed(),
    }
}

fn http_get(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: swarm\r\nConnection: close\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let status = response.split_whitespace().nth(1)?.parse().ok()?;
    Some((status, response))
}

fn main() -> ExitCode {
    let settings = SwarmSettings::from_args();
    let config = SystemConfig::paper_default();
    let schedule = Arc::new(mote_schedule(&config, &settings));
    let per_mote_frames = schedule.len() as u64;

    // Pure load-generation mode: fan into an external cs-ingestd. The
    // server process owns the server-side invariants and prints its own
    // accounting when drained; this side only reports client truth.
    if let Some(target) = settings.connect {
        eprintln!(
            "mote_swarm: {} motes x {} frames ({} lanes) -> {} (external)",
            settings.motes, settings.frames, settings.lanes, target,
        );
        let outcome = run_swarm(target, &schedule, &settings);
        println!(
            "swarm: {} motes, {} frames sent in {:.2}s ({:.0} frames/s offered), {} reconnects, {} shed retries",
            settings.motes,
            outcome.sent,
            outcome.wall.as_secs_f64(),
            outcome.sent as f64 / outcome.wall.as_secs_f64().max(1e-9),
            outcome.reconnects,
            outcome.shed_retries,
        );
        if outcome.failures.is_empty() {
            return ExitCode::SUCCESS;
        }
        let show = outcome.failures.iter().take(5).cloned().collect::<Vec<_>>().join("; ");
        eprintln!("FAIL: {} motes failed outright: {show}", outcome.failures.len());
        return ExitCode::FAILURE;
    }

    let telemetry = TelemetryRegistry::new();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));

    let order = Arc::new(EmissionOrder::default());
    let (feed, source) = crossbeam::channel::bounded::<WireFrame>(settings.shed_backlog.max(64));
    let engine: std::thread::JoinHandle<Result<FleetReport, cs_core::PipelineError>> = {
        let config = config.clone();
        let telemetry = telemetry.clone();
        let order = Arc::clone(&order);
        let fleet = FleetConfig { workers: settings.workers, ..FleetConfig::default() };
        std::thread::spawn(move || {
            run_fleet_wire_stream::<f32, _>(
                &config,
                codebook,
                source,
                SolverPolicy::default(),
                &fleet,
                &telemetry,
                move |packet| order.observe(packet),
            )
        })
    };

    let metrics = MetricsServer::bind("127.0.0.1:0", telemetry.clone()).expect("metrics bind");
    let ingest_config = IngestConfig {
        max_sessions: settings.max_sessions,
        shed_backlog: settings.shed_backlog,
        retry_after: Duration::from_secs(0),
        handshake_deadline: Duration::from_secs(2),
        idle_timeout: Duration::from_secs(10),
        ..IngestConfig::default()
    };
    let server = IngestServer::bind("127.0.0.1:0", ingest_config, telemetry.clone(), feed)
        .expect("ingest bind");
    let upstream = server.local_addr();
    let proxy = settings
        .chaos
        .then(|| {
            TcpChaosProxy::bind("127.0.0.1:0", upstream, TcpChaosSpec::hostile(settings.seed))
                .expect("chaos proxy bind")
        });
    let target = proxy.as_ref().map_or(upstream, |p| p.local_addr());

    eprintln!(
        "mote_swarm: {} motes x {} frames ({} lanes) -> {}{} | {} workers, {} max sessions",
        settings.motes,
        settings.frames,
        settings.lanes,
        target,
        if settings.chaos { " (chaos proxy)" } else { "" },
        settings.workers,
        settings.max_sessions,
    );

    let outcome = run_swarm(target, &schedule, &settings);
    let swarm_wall = outcome.wall;

    let mut violations: Vec<String> = Vec::new();
    if !outcome.failures.is_empty() {
        let show = outcome.failures.iter().take(5).cloned().collect::<Vec<_>>().join("; ");
        violations.push(format!("{} motes failed outright: {show}", outcome.failures.len()));
    }

    // Drain: stop accepting, flush every session and the engine.
    let summary = server.drain();
    let report = match engine.join().expect("engine thread") {
        Ok(report) => report,
        Err(e) => {
            eprintln!("FAIL: engine error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let faults = &report.faults;

    // 1. Exact accounting, server side and engine side.
    if summary.frames != faults.frames {
        violations.push(format!(
            "ingest forwarded {} frames but the engine ingested {}",
            summary.frames, faults.frames
        ));
    }
    let buckets = faults.frame_rejects
        + faults.duplicates
        + faults.late
        + faults.decoded
        + faults.concealed_desync
        + faults.quarantined;
    if faults.frames != buckets {
        violations.push(format!(
            "fault accounting leaks: {} frames != {} bucketed \
             (rejects {} + dups {} + late {} + decoded {} + desync {} + quarantined {})",
            faults.frames,
            buckets,
            faults.frame_rejects,
            faults.duplicates,
            faults.late,
            faults.decoded,
            faults.concealed_desync,
            faults.quarantined
        ));
    }
    // Clean runs additionally deliver everything that was sent.
    let sent = outcome.sent;
    if !settings.chaos && outcome.failures.is_empty() {
        let expected = per_mote_frames * settings.motes as u64;
        if faults.decoded + faults.duplicates + faults.late != sent || faults.decoded < expected {
            violations.push(format!(
                "clean swarm lost frames: sent {sent}, decoded {} (+dups {} +late {}), expected {}",
                faults.decoded, faults.duplicates, faults.late, expected
            ));
        }
    }

    // 2. No double emission (resume dedup) and in-order delivery.
    let order_violations = order.violations.load(Ordering::Relaxed);
    if order_violations > 0 {
        violations.push(format!(
            "{order_violations} emissions were out of order or duplicated"
        ));
    }

    // 3. Telemetry balance: gauge at zero, one typed disconnect per session.
    let snap = telemetry.snapshot();
    for (state, live) in snap.ingest_sessions {
        if live != 0 {
            violations.push(format!("session gauge leaked: {live} stuck in {state:?}"));
        }
    }
    let disconnects: u64 = snap.ingest_disconnects.iter().map(|&(_, n)| n).sum();
    let accounted_sessions = snap.ingest_accepted + snap.ingest_shed;
    if disconnects != accounted_sessions {
        violations.push(format!(
            "{disconnects} disconnects recorded for {accounted_sessions} sessions"
        ));
    }

    // 4. /healthz recovers once the fleet has flushed.
    let health_deadline = Instant::now() + Duration::from_secs(10);
    let mut health = None;
    while Instant::now() < health_deadline {
        health = http_get(metrics.local_addr(), "/healthz");
        if matches!(health, Some((200, _))) {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    match &health {
        Some((200, _)) => {}
        Some((status, _)) => violations.push(format!("/healthz stuck at {status} after drain")),
        None => violations.push("/healthz unreachable after drain".to_string()),
    }

    // p99 end-to-end latency via the SLO engine's e2e histograms
    // (patients fold modulo MAX_PATIENTS; take the worst fold).
    let p99_ms = (0..MAX_PATIENTS)
        .map(|p| telemetry.e2e(p))
        .filter(|h| h.count() > 0)
        .map(|h| h.quantile(0.99))
        .max()
        .unwrap_or(0) as f64
        / 1e6;

    let throughput = faults.frames as f64 / swarm_wall.as_secs_f64().max(1e-9);
    println!(
        "swarm: {} motes, {} sessions ({} shed), {} reconnects, {} shed retries",
        settings.motes,
        summary.sessions,
        summary.sheds,
        outcome.reconnects,
        outcome.shed_retries,
    );
    println!(
        "ingest: {} frames / {} bytes in {:.2}s ({:.0} frames/s saturation)",
        faults.frames,
        summary.bytes,
        swarm_wall.as_secs_f64(),
        throughput,
    );
    println!(
        "decode: {} decoded, {} concealed, {} quarantined, {} rejected, {} dups, {} late; p99 e2e {:.1} ms",
        faults.decoded,
        faults.concealed(),
        faults.quarantined,
        faults.frame_rejects,
        faults.duplicates,
        faults.late,
        p99_ms,
    );
    if let Some(proxy) = &proxy {
        let stats = proxy.stats();
        println!(
            "chaos: {} conns, {} stalls, {} single-byte chunks, {} bit flips, {} truncated, {} aborts",
            stats.connections,
            stats.stalls,
            stats.single_byte_chunks,
            stats.bit_flips,
            stats.truncated_closes,
            stats.aborts,
        );
    }
    if settings.telemetry_dump {
        println!("{}", telemetry.prometheus());
    }

    if violations.is_empty() {
        println!("mote_swarm: all invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("FAIL: {v}");
        }
        ExitCode::FAILURE
    }
}
