//! Reproduces the **§V optimization result**: the low-level-optimized
//! decoder runs 2.43× faster at CR 50, which raises the real-time
//! iteration budget from 800 to 2000.
//!
//! Three decoder variants are timed on identical packets:
//!
//! 1. **dense + scalar kernels** — the unoptimized baseline (explicit
//!    `M×N` operator, branchy loops, no unrolling);
//! 2. **dense + unrolled kernels** — the paper's NEON-style optimization
//!    of the same dense code;
//! 3. **matrix-free** — the paper's contribution (1): `Φ·Ψᵀ` applied as
//!    sparse gather + filter bank, no dense matrix at all.
//!
//! ```text
//! cargo run --release -p cs-bench --bin table_speedup [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_recovery::{
    fista, lambda_max, DenseOperator, KernelMode, LinearOperator, ShrinkageConfig,
    SynthesisOperator,
};
use cs_platform::{analyze_solves, iteration_budget_ratio, CoordinatorSpec, SolveSample};
use cs_sensing::{measurements_for_cr, Sensing, SparseBinarySensing};

const PACKET: usize = 512;
const ITERATIONS: usize = 200; // fixed budget so times are comparable

fn main() {
    let settings = RunSettings::from_args();
    banner("table_speedup", "§V (2.43× optimized decoder, 800 → 2000 iterations)", &settings);
    let corpus = settings.corpus();

    let m = measurements_for_cr(PACKET, 50.0);
    let phi = SparseBinarySensing::new(m, PACKET, 12, 0xBE9C).expect("valid Φ");
    let wavelet = Wavelet::daubechies(4).expect("db4");
    let dwt: Dwt<f32> = Dwt::new(&wavelet, PACKET, 5).expect("plan");
    let matrix_free = SynthesisOperator::new(&phi, &dwt);
    let dense_scalar = DenseOperator::materialize(&matrix_free, KernelMode::Scalar);
    let dense_unrolled = DenseOperator::materialize(&matrix_free, KernelMode::Unrolled4);

    let packets: Vec<&[i16]> = corpus
        .records
        .iter()
        .flat_map(|r| r.samples.chunks_exact(PACKET))
        .take(24)
        .collect();

    let solve = |op: &dyn LinearOperator<f32>, kernel: KernelMode| -> Vec<SolveSample> {
        packets
            .iter()
            .map(|p| {
                let x: Vec<f32> = p.iter().map(|&v| v as f32).collect();
                let y: Vec<f32> = phi.apply(x.as_slice());
                let config = ShrinkageConfig {
                    lambda: 0.01 * lambda_max(&op, &y),
                    max_iterations: ITERATIONS,
                    tolerance: 0.0, // fixed budget
                    residual_tolerance: 0.0,
                    kernel,
                    record_objective: false,
                };
                let r = fista(&op, &y, &config, None);
                SolveSample {
                    iterations: r.iterations,
                    solve_time: r.elapsed,
                }
            })
            .collect()
    };

    let spec = CoordinatorSpec::iphone_3gs();
    let runs = [
        ("dense + scalar (baseline)", solve(&dense_scalar, KernelMode::Scalar)),
        ("dense + unrolled (optimized)", solve(&dense_unrolled, KernelMode::Unrolled4)),
        ("matrix-free ΦΨᵀ (contribution 1)", solve(&matrix_free, KernelMode::Unrolled4)),
    ];

    println!(
        "{:<34} {:>12} {:>12} {:>10}",
        "decoder variant", "ms/packet", "µs/iter", "iter budget"
    );
    let reports: Vec<_> = runs
        .iter()
        .map(|(name, samples)| {
            let report = analyze_solves(&spec, samples);
            let mean_ms = samples
                .iter()
                .map(|s| s.solve_time.as_secs_f64())
                .sum::<f64>()
                / samples.len() as f64
                * 1e3;
            println!(
                "{:<34} {:>12.3} {:>12.3} {:>10}",
                name,
                mean_ms,
                report.per_iteration.as_secs_f64() * 1e6,
                report.max_iterations_in_budget
            );
            report
        })
        .collect();

    let opt_speedup = reports[0].per_iteration.as_secs_f64() / reports[1].per_iteration.as_secs_f64();
    let mf_speedup = reports[0].per_iteration.as_secs_f64() / reports[2].per_iteration.as_secs_f64();
    println!();
    println!("kernel-optimization speedup (dense): {opt_speedup:.2}× (paper: 2.43× at CR 50)");
    println!("matrix-free speedup over baseline  : {mf_speedup:.2}×");
    println!(
        "iteration-budget ratio               : {:.2}× (paper: 2000/800 = 2.5×)",
        iteration_budget_ratio(&reports[1], &reports[0])
    );
}
