//! Ablation of the sparse-binary column weight `d` (DESIGN.md ✦).
//!
//! §IV-A2: "d = 12 was identified as the minimum value that [strikes] the
//! optimal trade-off between execution time (a 2-second vector is now
//! CS-sampled in 82 ms) and (signal) recovery/reconstruction error."
//! This binary sweeps `d` at CR 50 and prints both sides of the trade:
//! recovery SNR saturates around d ≈ 8–16 while the modeled encode time
//! grows linearly in `d` — so 12 sits at the knee.
//!
//! ```text
//! cargo run --release -p cs-bench --bin ablation_d [--full]
//! ```

use cs_bench::{banner, LinearSolver, RunSettings};
use cs_core::{uniform_codebook, Encoder, SystemConfig};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_metrics::Summary;
use cs_platform::{encode_cost, MoteSpec};

use cs_sensing::{measurements_for_cr, SparseBinarySensing};
use std::sync::Arc;

const PACKET: usize = 512;
const SEED: u64 = 0xAB1A_7104;

fn main() {
    let settings = RunSettings::from_args();
    banner("ablation_d", "§IV-A2 (d = 12 knee of the time/SNR trade-off)", &settings);
    let corpus = settings.corpus();
    let wavelet = Wavelet::daubechies(4).expect("db4");
    let dwt: Dwt<f64> = Dwt::new(&wavelet, PACKET, 5).expect("plan");
    let mote = MoteSpec::msp430f1611();
    let m = measurements_for_cr(PACKET, 50.0);

    println!(
        "{:>4} {:>12} {:>12} {:>16}",
        "d", "SNR (dB)", "PRD (%)", "CS encode (ms)"
    );
    let mut rows = Vec::new();
    for d in [2usize, 4, 6, 8, 12, 16, 24, 32] {
        let phi = SparseBinarySensing::new(m, PACKET, d, SEED).expect("valid Φ");
        let solver = LinearSolver::new(&phi, &dwt, 0.15);
        let mut snr = Summary::new();
        let mut prd = Summary::new();
        for record in &corpus.records {
            for packet in record.samples.chunks_exact(PACKET) {
                let out = solver.solve(packet);
                if out.snr_db.is_finite() {
                    snr.push(out.snr_db);
                    prd.push(out.prd);
                }
            }
        }
        // Modeled encode time for this d.
        let config = SystemConfig::builder()
            .sparse_ones_per_column(d)
            .seed(SEED)
            .build()
            .expect("valid config");
        let cb = Arc::new(uniform_codebook(512).expect("codebook"));
        let mut enc = Encoder::new(&config, cb).expect("encoder");
        let wire = enc
            .encode_packet(&corpus.records[0].samples[..PACKET])
            .expect("encode");
        let ms = encode_cost(&mote, &config, &wire).cs_cycles / mote.clock_hz * 1e3;
        println!(
            "{:>4} {:>12.2} {:>12.2} {:>16.1}",
            d,
            snr.mean(),
            prd.mean(),
            ms
        );
        rows.push((d, snr.mean(), ms));
    }

    // Knee check: SNR gain from 12 to 32 is small, cost grows ~2.7×.
    let snr12 = rows.iter().find(|r| r.0 == 12).expect("d=12 present").1;
    let snr32 = rows.iter().find(|r| r.0 == 32).expect("d=32 present").1;
    println!();
    println!(
        "# SNR(d=32) − SNR(d=12) = {:.2} dB for 2.7× the encode time — d = 12 is the knee",
        snr32 - snr12
    );
}
