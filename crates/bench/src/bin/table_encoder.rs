//! Reproduces the **§IV-A encoder measurements**: the 82 ms CS-sampling
//! time for a 2-second vector at d = 12, its scaling in `d`, the memory
//! footprint (paper: 6.5 kB RAM / 7.5 kB flash, 1.5 kB codebook), and —
//! as a sanity anchor — the measured host-side encode throughput of the
//! actual integer encoder.
//!
//! ```text
//! cargo run --release -p cs-bench --bin table_encoder [--full]
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{packetize, train_codebook, Encoder, SystemConfig};
use cs_platform::{encode_cost, encoder_footprint, MoteSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let settings = RunSettings::from_args();
    banner("table_encoder", "§IV-A (encode timing and memory footprint)", &settings);
    let corpus = settings.corpus();
    let mote = MoteSpec::msp430f1611();
    let packet_period = Duration::from_secs(2);

    println!("== Modeled MSP430 timing vs column weight d (N = 512, CR 50) ==");
    println!("{:>4} {:>14} {:>14} {:>12}", "d", "CS stage (ms)", "total (ms)", "CPU util %");
    for d in [2usize, 4, 6, 8, 12, 16, 24, 32] {
        let config = SystemConfig::builder()
            .sparse_ones_per_column(d)
            .build()
            .expect("valid config");
        let training = corpus
            .records
            .iter()
            .flat_map(|r| packetize(&r.samples, 512).take(2))
            .map(|p| p.to_vec());
        let codebook = Arc::new(train_codebook(&config, training).expect("training"));
        let mut encoder = Encoder::new(&config, codebook).expect("encoder");
        // Price a representative delta packet.
        let first = &corpus.records[0].samples[..512];
        let second = &corpus.records[0].samples[512..1024];
        let _ = encoder.encode_packet(first).expect("encode");
        let wire = encoder.encode_packet(second).expect("encode");
        let cost = encode_cost(&mote, &config, &wire);
        println!(
            "{:>4} {:>14.1} {:>14.1} {:>12.2}",
            d,
            cost.cs_cycles / mote.clock_hz * 1e3,
            cost.total_cycles() / mote.clock_hz * 1e3,
            cost.cpu_utilization(&mote, packet_period) * 100.0
        );
    }
    println!("# paper anchor: d = 12 CS-samples a 2-s vector in 82 ms");

    let config = SystemConfig::paper_default();
    let training = corpus
        .records
        .iter()
        .flat_map(|r| packetize(&r.samples, 512).take(3))
        .map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).expect("training"));

    println!();
    println!("== Encoder memory footprint (paper: 6.5 kB RAM / 7.5 kB flash) ==");
    println!("{}", encoder_footprint(&config, &codebook).to_table());

    // Host-side reality check: the integer encoder itself, measured.
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).expect("encoder");
    let mut packets = 0usize;
    let start = Instant::now();
    for record in &corpus.records {
        for packet in packetize(&record.samples, config.packet_len()) {
            let _ = encoder.encode_packet(packet).expect("encode");
            packets += 1;
        }
    }
    let elapsed = start.elapsed();
    println!("== Measured host encode throughput (sanity anchor) ==");
    println!(
        "{packets} packets in {:.3} ms → {:.1} µs/packet",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / packets.max(1) as f64
    );
}
