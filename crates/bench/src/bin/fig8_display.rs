//! Reproduces **Fig. 8** ("ECG on the iPhone") as closely as a terminal
//! allows: streams a record through the full system and renders the
//! original and the reconstructed waveform side by side as ASCII traces,
//! with the real-time statistics the paper's screenshot caption reports.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig8_display
//! ```

use cs_bench::{banner, RunSettings};
use cs_core::{
    packetize, train_codebook, Decoder, Encoder, SolverPolicy, SystemConfig,
};
use cs_metrics::prd;
use std::sync::Arc;

const ROWS: usize = 12;
const COLS: usize = 96;

fn main() {
    let settings = RunSettings::from_args();
    banner("fig8_display", "Fig. 8 (the coordinator's live ECG display)", &settings);
    let corpus = cs_bench::Corpus::prepare(1, 12.0);
    let samples = &corpus.records[0].samples;

    let config = SystemConfig::paper_default();
    let training = packetize(samples, 512).take(3).map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).expect("training"));
    let mut encoder = Encoder::new(&config, Arc::clone(&codebook)).expect("encoder");
    let mut decoder: Decoder<f32> =
        Decoder::new(&config, codebook, SolverPolicy::default()).expect("decoder");

    // Decode the stream; keep the 3rd packet (a delta) for display.
    let mut shown = None;
    let mut total_prd = 0.0;
    let mut packets = 0;
    for (i, packet) in packetize(samples, 512).enumerate() {
        let wire = encoder.encode_packet(packet).expect("encode");
        let out = decoder.decode_packet(&wire).expect("decode");
        let x: Vec<f64> = packet.iter().map(|&v| v as f64).collect();
        let xhat: Vec<f64> = out.samples.iter().map(|&v| v as f64).collect();
        total_prd += prd(&x, &xhat);
        packets += 1;
        if i == 2 {
            shown = Some((x, xhat, out.iterations, out.solve_time));
        }
    }
    let (x, xhat, iterations, solve_time) = shown.expect("at least three packets");

    println!("original (2-s packet, 512 samples @256 Hz):");
    println!("{}", render(&x));
    println!("reconstructed at CR 50 (FISTA, {iterations} iterations, {:.2} ms):",
        solve_time.as_secs_f64() * 1e3);
    println!("{}", render(&xhat));
    println!(
        "packet PRD {:.2} %   stream mean PRD {:.2} % over {packets} packets",
        prd(&x, &xhat),
        total_prd / packets as f64
    );
}

/// Renders a trace as an ROWS×COLS ASCII plot.
fn render(signal: &[f64]) -> String {
    let lo = signal.iter().cloned().fold(f64::MAX, f64::min);
    let hi = signal.iter().cloned().fold(f64::MIN, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut grid = vec![vec![b' '; COLS]; ROWS];
    // Indexed on purpose: each column writes a vertical span across rows.
    #[allow(clippy::needless_range_loop)]
    for col in 0..COLS {
        let start = col * signal.len() / COLS;
        let end = ((col + 1) * signal.len() / COLS).max(start + 1);
        let window = &signal[start..end.min(signal.len())];
        let vmin = window.iter().cloned().fold(f64::MAX, f64::min);
        let vmax = window.iter().cloned().fold(f64::MIN, f64::max);
        let rmin = (((vmin - lo) / span) * (ROWS - 1) as f64).round() as usize;
        let rmax = (((vmax - lo) / span) * (ROWS - 1) as f64).round() as usize;
        for r in rmin..=rmax {
            grid[ROWS - 1 - r][col] = if rmax > rmin { b'|' } else { b'-' };
        }
    }
    grid.into_iter()
        .map(|row| String::from_utf8(row).expect("ascii"))
        .collect::<Vec<_>>()
        .join("\n")
}
