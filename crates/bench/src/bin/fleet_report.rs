//! Fleet-scale decode report: every corpus record as a two-lead patient
//! stream, fanned over the worker pool.
//!
//! Extends the single-coordinator real-time analysis (Fig. 8 / §V) to a
//! monitoring service: throughput against the sequential single-stream
//! decoder, worker balance, backpressure, the shared spectral cache, and
//! the warm-start iteration saving (cold fleet vs warm fleet over the
//! same traffic).
//!
//! Every run decodes against a live [`TelemetryRegistry`]: per-stage
//! latency quantiles and per-worker packet counters come from the
//! registry the workers recorded into, not from post-hoc aggregates.
//! `--telemetry` additionally dumps the Prometheus scrape text and a
//! JSON-Lines snapshot.
//!
//! `--replay DIR` drives the wire-feed sections from a stored session
//! instead of synthesizing and mangling traffic: the archive is opened
//! with crash recovery, each patient's lanes are reassembled into
//! arrival order, and the supervised engine decodes on read. The
//! codebook is trained from the same `--records/--seconds` corpus, so
//! replay with the settings the session was recorded under.
//!
//! `--serve ADDR` (e.g. `--serve 127.0.0.1:9090`, or port `0` for an
//! ephemeral port) binds a live scrape endpoint on the same registry
//! *before* the runs start — `GET /metrics`, `/healthz` and `/tracez`
//! are pollable while the fleet decodes — and parks the process after
//! the report so collectors can keep scraping. Kill it to exit.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fleet_report \
//!     [--full] [--telemetry] [--replay DIR] [--serve ADDR]
//! ```

use cs_archive::Archive;
use cs_bench::{banner, RunSettings};
use cs_clinical::{ClinicalConfig, ClinicalEngine, ClinicalEvent};
use cs_core::{
    packetize, run_fleet_observed, run_fleet_wire, run_streaming, train_codebook, FleetConfig,
    FleetReport, FleetStream, MultiChannelEncoder, SolverPolicy, SystemConfig,
};
use cs_ecg_data::{resample_360_to_256, DatabaseConfig, Record, SyntheticDatabase};
use cs_metrics::{exact_percentile, worker_imbalance, FleetStats, StreamStats};
use cs_platform::{
    analyze_fleet, CoordinatorSpec, FaultSpec, GilbertElliottParams, LossyLink, SolveSample,
};
use cs_telemetry::{MetricsServer, TelemetryRegistry};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Mote-ready samples for one lead: resample to 256 Hz, quantize.
fn prepare(record: &Record, channel: usize) -> Vec<i16> {
    let at256 = resample_360_to_256(&record.signal_mv(channel));
    let adc = record.adc();
    at256.iter().map(|&v| adc.to_signed(adc.quantize(v))).collect()
}

/// Renders nanoseconds at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Per-run solver quality: the flat iteration sample (for exact
/// quantiles, which the log2 telemetry buckets are too coarse for) plus
/// the PRD accumulators against the prepared ground-truth leads.
#[derive(Default)]
struct RunQuality {
    iterations: Vec<f64>,
    err: f64,
    energy: f64,
}

impl RunQuality {
    /// Fleet-wide PRD in percent: `100·√(ΣΣ(x−x̂)² / ΣΣx²)` over every
    /// decoded window of every lead.
    fn prd_percent(&self) -> f64 {
        if self.energy == 0.0 {
            0.0
        } else {
            100.0 * (self.err / self.energy).sqrt()
        }
    }

    fn iterations_mean(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.iterations.iter().sum::<f64>() / self.iterations.len() as f64
        }
    }
}

fn run(
    streams: &[FleetStream<'_>],
    config: &SystemConfig,
    codebook: &Arc<cs_codec::Codebook>,
    policy: SolverPolicy<f32>,
    fleet: &FleetConfig,
    telemetry: &TelemetryRegistry,
) -> (FleetReport, Vec<StreamStats>, Vec<Vec<SolveSample>>, RunQuality) {
    let mut stats = vec![StreamStats::new(); streams.len()];
    let mut solves = vec![Vec::new(); streams.len()];
    let mut quality = RunQuality::default();
    let n = config.packet_len();
    let deadline = telemetry.slo_config().deadline;
    let report = run_fleet_observed::<f32, _>(
        config,
        Arc::clone(codebook),
        streams,
        policy,
        fleet,
        telemetry,
        |p| {
            stats[p.stream].record(
                p.packet.iterations,
                p.packet.solve_time.as_secs_f64(),
                p.packet.warm_started,
            );
            if let Some(e2e) = p.e2e {
                stats[p.stream].record_e2e(e2e.as_secs_f64(), e2e > deadline);
            }
            solves[p.stream].push(SolveSample {
                iterations: p.packet.iterations,
                solve_time: p.packet.solve_time,
            });
            quality.iterations.push(p.packet.iterations as f64);
            if !p.packet.concealed {
                let lead = streams[p.stream].leads[p.channel as usize];
                let start = p.packet.index as usize * n;
                if let Some(x) = lead.get(start..start + n) {
                    for (&a, &b) in x.iter().zip(&p.packet.samples) {
                        let (a, b) = (a as f64, b as f64);
                        quality.err += (a - b) * (a - b);
                        quality.energy += a * a;
                    }
                }
            }
        },
    )
    .expect("fleet run");
    (report, stats, solves, quality)
}

/// The fault-accounting panel shared by the live lossy-wire section and
/// `--replay` runs.
fn fault_panel(header: &str, wire_report: &FleetReport) {
    let faults = &wire_report.faults;
    let frame_pct = |part: u64| 100.0 * part as f64 / faults.frames.max(1) as f64;
    let emit_pct = |part: u64| 100.0 * part as f64 / faults.delivered().max(1) as f64;
    println!("== Fault tolerance ({header}) ==");
    println!("frames ingested         : {:>6}", faults.frames);
    println!(
        "rejected at ingest      : {:>6}  ({:.2} % of frames; CRC/framing)",
        faults.frame_rejects,
        frame_pct(faults.frame_rejects)
    );
    println!(
        "duplicates / late       : {:>6} / {}",
        faults.duplicates, faults.late
    );
    println!(
        "windows decoded         : {:>6}  ({:.2} % of emitted)",
        faults.decoded,
        emit_pct(faults.decoded)
    );
    println!(
        "windows concealed       : {:>6}  ({:.2} %; {} loss, {} desync)",
        faults.concealed(),
        emit_pct(faults.concealed()),
        faults.concealed_loss,
        faults.concealed_desync
    );
    println!(
        "windows quarantined     : {:>6}  (ring holds {} frames for postmortem)",
        faults.quarantined,
        wire_report.quarantine.len()
    );
    println!(
        "resyncs / restarts      : {:>6} / {}",
        faults.resyncs, faults.worker_restarts
    );
    println!("deadline-degraded       : {:>6}", faults.deadline_degraded);
}

/// The clinical alarm panel: beat census, per-kind alarm accounting,
/// detection accuracy vs the synthesizer's annotations, and the final
/// per-patient rhythm picture — all from the live registry the clinical
/// engine recorded into while the wire fleet decoded.
fn alarm_panel(registry: &TelemetryRegistry, engine: &ClinicalEngine, events: &[ClinicalEvent]) {
    use cs_telemetry::{AlarmKind, BeatClass};
    println!("== Clinical alarms (streaming analysis on decoded windows) ==");
    let census: Vec<String> = BeatClass::ALL
        .iter()
        .filter(|&&c| registry.beat_count(c) > 0)
        .map(|&c| format!("{} {}", registry.beat_count(c), c.name()))
        .collect();
    println!(
        "beats classified        : {:>6}  ({})",
        BeatClass::ALL.iter().map(|&c| registry.beat_count(c)).sum::<u64>(),
        census.join(", ")
    );
    println!(
        "{:<14} {:>7} {:>8} {:>7} {:>10}",
        "alarm", "raised", "cleared", "active", "transitions"
    );
    for kind in AlarmKind::ALL {
        let transitions = events
            .iter()
            .filter(|e| matches!(e, ClinicalEvent::Alarm { transition, .. } if transition.kind == kind))
            .count();
        println!(
            "{:<14} {:>7} {:>8} {:>7} {:>10}",
            kind.name(),
            registry.alarm_raised_count(kind),
            registry.alarm_cleared_count(kind),
            registry.alarm_active_count(kind),
            transitions
        );
    }
    println!(
        "suppressed evaluations  : {:>6}  (beats inside concealed windows)",
        registry.alarm_suppressed_total()
    );
    let snap = registry.snapshot();
    match (snap.qrs_sensitivity(), snap.qrs_ppv()) {
        (Some(sens), Some(ppv)) => println!(
            "QRS sens / PPV          : {:>6.1} % / {:.1} %  (±50 ms vs all annotations; beats lost to concealed windows count as misses)",
            sens * 100.0,
            ppv * 100.0
        ),
        _ => println!("QRS sens / PPV          :    n/a  (no annotated beats scored)"),
    }
    let rates: Vec<String> = (0..8)
        .map_while(|p| engine.heart_rate_bpm(p).map(|hr| format!("p{p}={hr:.0}")))
        .collect();
    if !rates.is_empty() {
        println!("final heart rate (bpm)  : {}", rates.join("  "));
    }
}

/// The per-stage latency quantile table from a live registry snapshot.
fn stage_table(registry: &TelemetryRegistry) {
    let snapshot = registry.snapshot();
    println!(
        "{:<20} {:>8} {:>12} {:>12} {:>12}",
        "stage", "count", "p50", "p95", "p99"
    );
    for (stage, hist) in snapshot.stages {
        if hist.count() == 0 {
            continue;
        }
        println!(
            "{:<20} {:>8} {:>12} {:>12} {:>12}",
            stage.name(),
            hist.count(),
            fmt_ns(hist.quantile(0.50)),
            fmt_ns(hist.quantile(0.95)),
            fmt_ns(hist.quantile(0.99))
        );
    }
}

/// The per-patient SLO panel from the live registry's burn-rate engine.
fn slo_panel(registry: &TelemetryRegistry) {
    let slo = registry.slo_snapshot();
    if slo.patients.is_empty() {
        return;
    }
    println!("== Per-patient SLO ==");
    println!(
        "deadline budget         : {:>8.3} s  ({} patients active)",
        slo.deadline_ns as f64 / 1e9,
        slo.patients.len()
    );
    println!(
        "{:<8} {:>9} {:>8} {:>8} {:>10} {:>10} {:>11}",
        "patient", "emits", "misses", "lanes", "fast burn", "slow burn", "health"
    );
    for p in &slo.patients {
        println!(
            "{:<8} {:>9} {:>8} {:>8} {:>10.2} {:>10.2} {:>11}",
            p.patient,
            p.emits,
            p.deadline_misses,
            p.lanes.len(),
            p.fast_burn,
            p.slow_burn,
            p.health.name()
        );
    }
}

/// `--serve ADDR`: binds the scrape endpoint on `registry` and announces
/// it. Bound *before* any decode runs so collectors can watch live.
fn bind_server(settings: &RunSettings, registry: &TelemetryRegistry) -> Option<MetricsServer> {
    let addr = settings.serve.as_deref()?;
    let server = MetricsServer::bind(addr, registry.clone()).expect("bind metrics server");
    println!(
        "serving http://{0}/metrics  http://{0}/healthz  http://{0}/tracez",
        server.local_addr()
    );
    // The smoke harness parses the announced port from a pipe: flush past
    // block buffering before the long decode phase starts.
    std::io::stdout().flush().ok();
    Some(server)
}

/// With `--serve`, the report is a long-running scrape target: park after
/// printing so collectors keep a live endpoint. Without it, fall through.
fn park_if_serving(server: Option<MetricsServer>) {
    if let Some(server) = server {
        println!(
            "report complete; still serving http://{}/metrics — kill to exit",
            server.local_addr()
        );
        std::io::stdout().flush().ok();
        loop {
            std::thread::park();
        }
    }
}

/// `--replay DIR`: the wire-feed report over an archived session.
fn replay_report(
    dir: &str,
    config: &SystemConfig,
    codebook: &Arc<cs_codec::Codebook>,
    settings: &RunSettings,
    registry: &TelemetryRegistry,
) {
    let registry = registry.clone();
    let (archive, recovery) =
        Archive::open_observed(dir, registry.clone()).expect("open archive");
    let patients = archive.patients();
    println!("== Replay source ({dir}) ==");
    println!("patients                : {:>6}", patients.len());
    println!("frame records           : {:>6}", archive.total_records());
    println!(
        "recovery                : {:>6} segments scanned, {} torn tails ({} bytes)",
        recovery.segments_scanned, recovery.torn_tails, recovery.torn_bytes
    );
    let traffic: Vec<Vec<Vec<u8>>> = patients
        .iter()
        .map(|&p| archive.replay_stream(p).expect("replay stream"))
        .collect();
    let mut stats = vec![StreamStats::new(); traffic.len()];
    let deadline = registry.slo_config().deadline;
    let wire_report = run_fleet_wire::<f32, _>(
        config,
        Arc::clone(codebook),
        &traffic,
        SolverPolicy::default(),
        &FleetConfig { warm_start: true, ..FleetConfig::default() },
        &registry,
        |p| {
            stats[p.stream].record(
                p.packet.iterations,
                p.packet.solve_time.as_secs_f64(),
                p.packet.warm_started,
            );
            if let Some(e2e) = p.e2e {
                stats[p.stream].record_e2e(e2e.as_secs_f64(), e2e > deadline);
            }
        },
    )
    .expect("replay fleet run");
    fault_panel("decode-on-read from archive", &wire_report);
    let fleet = FleetStats::from_streams(&stats);
    println!("== Replay solves ==");
    println!(
        "solve p50/p95/p99       : {:>8.2} / {:.2} / {:.2} ms  (mean {:.1} iterations)",
        fleet.solve_time_p50() * 1e3,
        fleet.solve_time_p95() * 1e3,
        fleet.solve_time_p99() * 1e3,
        fleet.iterations.mean()
    );
    println!(
        "e2e p50/p99             : {:>8.2} / {:.2} ms  ({} deadline misses)",
        fleet.e2e_p50() * 1e3,
        fleet.e2e_p99() * 1e3,
        fleet.deadline_misses
    );
    slo_panel(&registry);
    println!("== Telemetry (live registry) ==");
    stage_table(&registry);
    if settings.telemetry {
        println!("== Prometheus scrape ==");
        print!("{}", registry.prometheus());
        println!("== JSONL snapshot ==");
        println!("{}", registry.json_line());
    }
}

fn main() {
    let settings = RunSettings::from_args();
    banner("fleet_report", "fleet decode engine (multi-patient §IV-B1)", &settings);
    let config = SystemConfig::paper_default();
    let n = config.packet_len();

    // Both leads of every record: the database synthesizes true two-lead
    // records (same timing, lead-dependent wave amplitudes).
    let db = SyntheticDatabase::new(DatabaseConfig {
        num_records: settings.records,
        duration_s: settings.seconds,
        ..DatabaseConfig::default()
    });
    let mut truths: Vec<Vec<usize>> = Vec::new();
    let patients: Vec<(Vec<i16>, Vec<i16>)> = (0..db.len())
        .map(|i| {
            let record = db.record(i);
            let lead0 = prepare(&record, 0);
            // Annotation positions land at 360 Hz; rescale to the wire
            // rate so the clinical tap can score detections.
            truths.push(
                record
                    .annotations()
                    .iter()
                    .map(|b| b.sample * 256 / 360)
                    .filter(|&s| s < lead0.len())
                    .collect(),
            );
            (lead0, prepare(&record, 1))
        })
        .collect();

    let training = patients
        .iter()
        .flat_map(|(lead0, _)| packetize(lead0, n).take(3))
        .map(|p| p.to_vec());
    let codebook = Arc::new(train_codebook(&config, training).expect("training succeeds"));

    // One live registry for the whole report; with `--serve` it is
    // scrapeable from before the first decode until the process is
    // killed.
    let registry = TelemetryRegistry::new();
    let server = bind_server(&settings, &registry);

    if let Some(dir) = settings.replay.clone() {
        replay_report(&dir, &config, &codebook, &settings, &registry);
        park_if_serving(server);
        return;
    }

    let streams: Vec<FleetStream<'_>> = patients
        .iter()
        .map(|(lead0, lead1)| FleetStream {
            leads: vec![lead0, lead1],
        })
        .collect();

    // Sequential baseline: the paper's one-patient pipeline, one lead,
    // stream after stream.
    let started = Instant::now();
    let mut sequential_packets = 0usize;
    for (lead0, _) in &patients {
        let report = run_streaming::<f32, _>(
            &config,
            Arc::clone(&codebook),
            lead0,
            SolverPolicy::default(),
            |_| {},
        )
        .expect("streaming run");
        sequential_packets += report.packets_delivered;
    }
    let sequential_wall = started.elapsed();
    let sequential_rate = sequential_packets as f64 / sequential_wall.as_secs_f64();

    // The cold run decodes against the live registry; the stage table and
    // per-worker counts below come from it, not from the callbacks.
    let fleet_cfg = FleetConfig::default();
    let (cold_report, cold_stats, solves, cold_q) = run(
        &streams,
        &config,
        &codebook,
        SolverPolicy::default(),
        &fleet_cfg,
        &registry,
    );
    let warm_cfg = FleetConfig { warm_start: true, ..fleet_cfg };
    let (warm_report, warm_stats, _, warm_q) = run(
        &streams,
        &config,
        &codebook,
        SolverPolicy::default(),
        &warm_cfg,
        &TelemetryRegistry::disabled(),
    );
    // The prior-driven runs decode the same traffic warm-started, with
    // the support-weighted and block-sparse proximal steps respectively.
    let (_, weighted_stats, _, weighted_q) = run(
        &streams,
        &config,
        &codebook,
        SolverPolicy::support_prior(),
        &warm_cfg,
        &TelemetryRegistry::disabled(),
    );
    let (_, _block_stats, _, block_q) = run(
        &streams,
        &config,
        &codebook,
        SolverPolicy::block_prior(),
        &warm_cfg,
        &TelemetryRegistry::disabled(),
    );

    let mut cold = FleetStats::from_streams(&cold_stats);
    let warm = FleetStats::from_streams(&warm_stats);
    {
        let slo = registry.slo_snapshot();
        cold.set_health_counts(
            slo.count_in(cs_telemetry::HealthState::Healthy),
            slo.count_in(cs_telemetry::HealthState::Degraded),
            slo.count_in(cs_telemetry::HealthState::Stalled),
        );
    }
    let fleet_rate = cold_report.packets_decoded as f64 / cold_report.wall_time.as_secs_f64();

    println!("== Fleet topology ==");
    println!("streams                 : {:>6}  (× 2 leads)", streams.len());
    println!("workers                 : {:>6}", cold_report.workers);
    println!(
        "worker imbalance        : {:>6.2}  (busiest / ideal share)",
        worker_imbalance(&cold_report.worker_packets)
    );
    println!("backpressure stalls     : {:>6}", cold_report.backpressure_stalls);
    println!(
        "spectral cache          : {:>6} miss, {} hits (power iterations avoided)",
        cold_report.spectral_misses, cold_report.spectral_hits
    );

    println!("== Throughput ==");
    println!(
        "sequential (1 stream)   : {:>8.2} packets/s  ({} packets in {:.2?})",
        sequential_rate, sequential_packets, sequential_wall
    );
    println!(
        "fleet ({} workers)       : {:>8.2} packets/s  ({} packets in {:.2?})",
        cold_report.workers, fleet_rate, cold_report.packets_decoded, cold_report.wall_time
    );
    println!("speedup                 : {:>8.2} ×", fleet_rate / sequential_rate);
    println!(
        "e2e p50/p99 (cold)      : {:>8.2} / {:.2} ms  ({} deadline misses)",
        cold.e2e_p50() * 1e3,
        cold.e2e_p99() * 1e3,
        cold.deadline_misses
    );
    println!(
        "patient health          : {:>6} healthy, {} degraded, {} stalled",
        cold.healthy, cold.degraded, cold.stalled
    );

    println!("== Warm-start FISTA ==");
    println!(
        "cold solve p50/p95/p99  : {:>8.2} / {:.2} / {:.2} ms",
        cold.solve_time_p50() * 1e3,
        cold.solve_time_p95() * 1e3,
        cold.solve_time_p99() * 1e3
    );
    println!(
        "cold mean iterations    : {:>8.1}",
        cold.iterations.mean()
    );
    println!(
        "warm mean iterations    : {:>8.1}  ({} of {} packets warm-started)",
        warm.iterations.mean(),
        warm.warm_started,
        warm.packets()
    );
    println!(
        "iteration saving        : {:>8.1} %",
        warm.iteration_saving_vs(&cold) * 100.0
    );
    println!(
        "warm wall-clock         : {:>8.2?} (vs cold {:.2?})",
        warm_report.wall_time, cold_report.wall_time
    );

    // Prior-driven solve paths over the same traffic: per-mode iteration
    // quantiles at integer resolution (the telemetry histograms' log2
    // buckets would swallow a 20 % shift) and the fleet-wide PRD each
    // mode reconstructs at. The summary lines under the table are the
    // ones `scripts/bench_snapshot.sh` parses into BENCH_decode.json.
    let weighted_fleet = FleetStats::from_streams(&weighted_stats);
    println!("== Solver priors ==");
    println!(
        "{:<10} {:>8} {:>9} {:>8} {:>8} {:>8}",
        "mode", "packets", "mean it", "p50 it", "p95 it", "PRD %"
    );
    for (name, q) in [
        ("cold", &cold_q),
        ("warm", &warm_q),
        ("weighted", &weighted_q),
        ("block", &block_q),
    ] {
        println!(
            "{:<10} {:>8} {:>9.1} {:>8.0} {:>8.0} {:>8.2}",
            name,
            q.iterations.len(),
            q.iterations_mean(),
            exact_percentile(&q.iterations, 0.50),
            exact_percentile(&q.iterations, 0.95),
            q.prd_percent()
        );
    }
    println!(
        "weighted mean iterations : {:>7.1}  ({} of {} packets warm-started)",
        weighted_q.iterations_mean(),
        weighted_fleet.warm_started,
        weighted_fleet.packets()
    );
    println!(
        "block mean iterations   : {:>8.1}",
        block_q.iterations_mean()
    );
    println!(
        "weighted iteration saving: {:>7.1} %  (vs warm baseline)",
        weighted_fleet.iteration_saving_vs(&warm) * 100.0
    );
    println!("cold PRD                : {:>8.2} %", cold_q.prd_percent());
    println!("warm PRD                : {:>8.2} %", warm_q.prd_percent());
    println!("weighted PRD            : {:>8.2} %", weighted_q.prd_percent());
    println!("block PRD               : {:>8.2} %", block_q.prd_percent());

    // Robustness picture: the same patients serialized to wire frames and
    // pushed through a hostile link (burst bit errors at mean BER 1e-3,
    // 5 % drops, light reordering/duplication), then decoded by the
    // supervised wire-feed engine. Records into the same live registry,
    // so `--telemetry` shows `cs_fault_total` alongside the stage table.
    let spec = FaultSpec {
        drop: 0.05,
        duplicate: 0.01,
        reorder: 0.02,
        truncate: 0.01,
        gilbert_elliott: Some(GilbertElliottParams::for_mean_ber(1e-3)),
    };
    let traffic: Vec<Vec<Vec<u8>>> = patients
        .iter()
        .enumerate()
        .map(|(i, (lead0, lead1))| {
            let mut enc = MultiChannelEncoder::new(&config, Arc::clone(&codebook), 2)
                .expect("wire encoder");
            let mut link = LossyLink::new(spec, 0xC5EC + i as u64);
            let mut deliveries = Vec::new();
            let windows = lead0.len().min(lead1.len()) / n;
            for w in 0..windows {
                let leads = [&lead0[w * n..(w + 1) * n], &lead1[w * n..(w + 1) * n]];
                for packet in enc.encode_frame(&leads).expect("wire encode") {
                    link.offer(&packet.to_bytes(), &mut deliveries);
                }
            }
            link.flush(&mut deliveries);
            deliveries.into_iter().map(|d| d.bytes).collect()
        })
        .collect();
    // The clinical tap rides the wire feed: every emitted window — decoded
    // or concealed — streams through the per-patient analysis engine, so
    // the alarm panel below reflects exactly what a monitoring station
    // would have seen over this link.
    let mut clinical = ClinicalEngine::new(
        ClinicalConfig::at_256_hz(),
        patients.len(),
        2,
        registry.clone(),
    );
    for (stream, truth) in truths.iter().enumerate() {
        clinical.set_ground_truth(stream, truth.clone(), 13); // ±50 ms
    }
    let mut events = Vec::new();
    let wire_report = run_fleet_wire::<f32, _>(
        &config,
        Arc::clone(&codebook),
        &traffic,
        SolverPolicy::default(),
        &FleetConfig { warm_start: true, ..fleet_cfg },
        &registry,
        |p| clinical.on_packet(p, &mut events),
    )
    .expect("wire fleet run");
    clinical.finish(&mut events);
    fault_panel("lossy wire: burst BER 1e-3, 5 % drop", &wire_report);
    alarm_panel(&registry, &clinical, &events);
    slo_panel(&registry);

    let capacity = analyze_fleet(&CoordinatorSpec::iphone_3gs(), cold_report.workers, &solves);
    println!("== Pool capacity (iPhone-3GS budget model) ==");
    println!("mean solve per packet   : {:>8.2?}", capacity.mean_solve);
    println!("streams per worker      : {:>8}", capacity.streams_per_worker);
    println!(
        "pool capacity           : {:>8}  (serving {})",
        capacity.max_streams, capacity.streams
    );
    println!("per-worker CPU usage    : {:>8.2} %", capacity.cpu_usage_percent);
    println!(
        "real-time verdict       : {:>8}",
        if capacity.real_time { "yes" } else { "NO" }
    );

    let snapshot = registry.snapshot();
    println!("== Telemetry (live registry, cold run) ==");
    stage_table(&registry);
    let per_worker = registry.worker_packets(cold_report.workers);
    println!(
        "worker packets          : {}",
        per_worker
            .iter()
            .enumerate()
            .map(|(w, n)| format!("w{w}={n}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!(
        "solve traces            : {:>6} buffered, {} pushed, {} dropped",
        snapshot.journal_len, snapshot.journal_pushed, snapshot.journal_dropped
    );

    if settings.telemetry {
        println!("== Prometheus scrape ==");
        print!("{}", registry.prometheus());
        println!("== JSONL snapshot ==");
        println!("{}", registry.json_line());
    }
    park_if_serving(server);
}
