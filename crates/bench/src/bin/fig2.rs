//! Reproduces **Fig. 2**: average output SNR vs compression ratio for
//! sparse binary sensing (d = 12) against dense Gaussian sensing.
//!
//! The paper's claim: "no meaningful performance difference between the
//! two approaches" over CR 50–80 %, with SNR falling from ~20 dB toward
//! ~5 dB as CR rises.
//!
//! ```text
//! cargo run --release -p cs-bench --bin fig2 [--full] [--records N] [--seconds S]
//! ```

use cs_bench::{banner, LinearSolver, RunSettings};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_metrics::{Summary, SweepSeries};

use cs_sensing::{measurements_for_cr, DenseSensing, SparseBinarySensing};

const PACKET: usize = 512;
const LEVELS: usize = 5;
const D: usize = 12;
const SEED: u64 = 0x00EC_6F16;

fn main() {
    let settings = RunSettings::from_args();
    banner("fig2", "Fig. 2 (SNR vs CR, sparse binary vs Gaussian)", &settings);
    let corpus = settings.corpus();
    let wavelet = Wavelet::daubechies(4).expect("db4 exists");
    let dwt: Dwt<f64> = Dwt::new(&wavelet, PACKET, LEVELS).expect("valid plan");

    let mut sparse_series = SweepSeries::new(format!("sparse binary sensing (d = {D})"));
    let mut gauss_series = SweepSeries::new("Gaussian sensing");

    for cr in [50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0] {
        let m = measurements_for_cr(PACKET, cr);
        let sparse = SparseBinarySensing::new(m, PACKET, D, SEED).expect("valid Φ");
        let gauss: DenseSensing<f64> =
            DenseSensing::gaussian(m, PACKET, SEED).expect("valid Φ");
        let sparse_solver = LinearSolver::new(&sparse, &dwt, 0.15);
        let gauss_solver = LinearSolver::new(&gauss, &dwt, 0.15);

        let mut s_sum = Summary::new();
        let mut g_sum = Summary::new();
        for record in &corpus.records {
            for packet in record.samples.chunks_exact(PACKET) {
                let s = sparse_solver.solve(packet);
                let g = gauss_solver.solve(packet);
                if s.snr_db.is_finite() {
                    s_sum.push(s.snr_db);
                }
                if g.snr_db.is_finite() {
                    g_sum.push(g.snr_db);
                }
            }
        }
        sparse_series.push(cr, s_sum);
        gauss_series.push(cr, g_sum);
        eprintln!(
            "CR {cr:>4.0}%  sparse {:>6.2} dB   gaussian {:>6.2} dB",
            s_sum.mean(),
            g_sum.mean()
        );
    }

    println!("{}", sparse_series.to_table());
    println!("{}", gauss_series.to_table());

    // The paper's headline check, printed so runs are self-judging.
    let max_gap = sparse_series
        .points()
        .iter()
        .zip(gauss_series.points())
        .map(|(s, g)| (s.summary.mean() - g.summary.mean()).abs())
        .fold(0.0_f64, f64::max);
    println!("# max |sparse − gaussian| gap: {max_gap:.2} dB (paper: no meaningful difference)");
    let first = sparse_series.points().first().expect("nonempty").summary.mean();
    let last = sparse_series.points().last().expect("nonempty").summary.mean();
    println!("# sparse SNR falls {first:.1} dB → {last:.1} dB over CR 50 → 80 (paper: ~20 → ~5)");
}
