//! Telemetry overhead budget: the observed pipeline (live registry,
//! spans on every stage, solve traces journaled, and the end-to-end
//! trace path — capture stamp plus per-emission SLO accounting) must
//! cost < 2 % of throughput against the same pipeline with the
//! disabled registry.
//!
//! The two arms run interleaved (disabled, enabled, disabled, ...) so
//! slow drift on the host hits both equally, and the verdict compares
//! the **minimum** round of each arm — the same statistic
//! `BENCH_decode.json` pins, because on small shared hosts median and
//! mean absorb scheduler steal that dwarfs a 2 % effect. Exits
//! non-zero over budget.
//!
//! ```text
//! cargo bench -p cs-bench --bench telemetry_overhead
//! ```

use cs_core::{run_streaming_observed, uniform_codebook, SolverPolicy, SystemConfig};
use cs_telemetry::{TelemetryRegistry, TraceContext};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 512;
const FRAMES: usize = 8;
const ROUNDS: usize = 9;
const ITERS_PER_ROUND: usize = 2;
const BUDGET_PERCENT: f64 = 2.0;

fn ecg_like() -> Vec<i16> {
    (0..FRAMES * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

/// Runs the streaming pipeline `ITERS_PER_ROUND` times against the given
/// registry and returns the wall time in seconds.
fn round(
    config: &SystemConfig,
    codebook: &Arc<cs_codec::Codebook>,
    samples: &[i16],
    telemetry: &TelemetryRegistry,
) -> f64 {
    let started = Instant::now();
    for _ in 0..ITERS_PER_ROUND {
        run_streaming_observed::<f32, _>(
            config,
            Arc::clone(codebook),
            samples,
            SolverPolicy::default(),
            telemetry,
            // The fleet collector's per-emission work, mirrored here so
            // the budget covers the trace path: capture stamp (skipped
            // when disabled, like the producers) + SLO/e2e accounting.
            |p| {
                let captured = if telemetry.is_enabled() { telemetry.now_ns() } else { 0 };
                let _ = telemetry.record_emit(&TraceContext::new(0, 0, p.index, captured));
            },
        )
        .expect("streaming run");
    }
    started.elapsed().as_secs_f64()
}

fn fastest(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
    let samples = ecg_like();
    let off = TelemetryRegistry::disabled();
    let on = TelemetryRegistry::new();

    // Warm up caches and the allocator on both arms.
    round(&config, &codebook, &samples, &off);
    round(&config, &codebook, &samples, &on);

    let mut t_off = Vec::with_capacity(ROUNDS);
    let mut t_on = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        t_off.push(round(&config, &codebook, &samples, &off));
        t_on.push(round(&config, &codebook, &samples, &on));
    }

    let packets = (FRAMES * ITERS_PER_ROUND) as f64;
    let off_min = fastest(&t_off);
    let on_min = fastest(&t_on);
    let overhead = (on_min - off_min) / off_min * 100.0;
    let snapshot = on.snapshot();
    let observed: u64 = snapshot.stages.iter().map(|(_, h)| h.count()).sum();

    println!("# telemetry_overhead — observed pipeline vs disabled registry");
    println!(
        "disabled registry : {:>8.2} packets/s  (fastest of {ROUNDS} rounds)",
        packets / off_min
    );
    println!(
        "live registry     : {:>8.2} packets/s  ({observed} span records, {} solve traces, {} emissions)",
        packets / on_min,
        snapshot.journal_pushed,
        snapshot.slo.patients.iter().map(|p| p.emits).sum::<u64>()
    );
    println!("overhead          : {overhead:>8.2} %  (budget {BUDGET_PERCENT} %)");

    if overhead > BUDGET_PERCENT {
        eprintln!("FAIL: telemetry overhead {overhead:.2} % exceeds {BUDGET_PERCENT} % budget");
        std::process::exit(1);
    }
    println!("verdict           : within budget");
}
