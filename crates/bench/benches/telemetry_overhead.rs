//! Telemetry overhead budget: the observed pipeline (live registry,
//! spans on every stage, solve traces journaled) must cost < 2 % of
//! throughput against the same pipeline with the disabled registry.
//!
//! The two arms run interleaved (disabled, enabled, disabled, ...) so
//! slow drift on the host hits both equally, and the verdict compares
//! the median round of each arm. Exits non-zero over budget.
//!
//! ```text
//! cargo bench -p cs-bench --bench telemetry_overhead
//! ```

use cs_core::{run_streaming_observed, uniform_codebook, SolverPolicy, SystemConfig};
use cs_telemetry::TelemetryRegistry;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 512;
const FRAMES: usize = 4;
const ROUNDS: usize = 7;
const ITERS_PER_ROUND: usize = 2;
const BUDGET_PERCENT: f64 = 2.0;

fn ecg_like() -> Vec<i16> {
    (0..FRAMES * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

/// Runs the streaming pipeline `ITERS_PER_ROUND` times against the given
/// registry and returns the wall time in seconds.
fn round(
    config: &SystemConfig,
    codebook: &Arc<cs_codec::Codebook>,
    samples: &[i16],
    telemetry: &TelemetryRegistry,
) -> f64 {
    let started = Instant::now();
    for _ in 0..ITERS_PER_ROUND {
        run_streaming_observed::<f32, _>(
            config,
            Arc::clone(codebook),
            samples,
            SolverPolicy::default(),
            telemetry,
            |_| {},
        )
        .expect("streaming run");
    }
    started.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn main() {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
    let samples = ecg_like();
    let off = TelemetryRegistry::disabled();
    let on = TelemetryRegistry::new();

    // Warm up caches and the allocator on both arms.
    round(&config, &codebook, &samples, &off);
    round(&config, &codebook, &samples, &on);

    let mut t_off = Vec::with_capacity(ROUNDS);
    let mut t_on = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        t_off.push(round(&config, &codebook, &samples, &off));
        t_on.push(round(&config, &codebook, &samples, &on));
    }

    let packets = (FRAMES * ITERS_PER_ROUND) as f64;
    let off_med = median(t_off);
    let on_med = median(t_on);
    let overhead = (on_med - off_med) / off_med * 100.0;
    let snapshot = on.snapshot();
    let observed: u64 = snapshot.stages.iter().map(|(_, h)| h.count()).sum();

    println!("# telemetry_overhead — observed pipeline vs disabled registry");
    println!(
        "disabled registry : {:>8.2} packets/s  (median of {ROUNDS} rounds)",
        packets / off_med
    );
    println!(
        "live registry     : {:>8.2} packets/s  ({observed} span records, {} solve traces)",
        packets / on_med,
        snapshot.journal_pushed
    );
    println!("overhead          : {overhead:>8.2} %  (budget {BUDGET_PERCENT} %)");

    if overhead > BUDGET_PERCENT {
        eprintln!("FAIL: telemetry overhead {overhead:.2} % exceeds {BUDGET_PERCENT} % budget");
        std::process::exit(1);
    }
    println!("verdict           : within budget");
}
