//! Criterion bench behind the §V speedup table: scalar vs unrolled/
//! branch-free kernels on the FISTA inner-loop primitives, at the
//! decoder's actual working sizes (N = 512, M = 256, f32).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_recovery::{axpy, dot, momentum_combine, soft_threshold, KernelMode};

fn data(n: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..n).map(|i| ((i * 37 % 101) as f32) / 50.0 - 1.0).collect();
    let b: Vec<f32> = (0..n).map(|i| ((i * 61 % 103) as f32) / 50.0 - 1.0).collect();
    (a, b)
}

fn bench_kernels(c: &mut Criterion) {
    let n = 512;
    let (a, b) = data(n);
    let modes = [
        ("scalar", KernelMode::Scalar),
        ("unrolled4", KernelMode::Unrolled4),
    ];

    let mut group = c.benchmark_group("dot_512_f32");
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |bench, &mode| {
            bench.iter(|| dot(black_box(&a), black_box(&b), mode))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("axpy_512_f32");
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |bench, &mode| {
            let mut y = b.clone();
            bench.iter(|| axpy(black_box(0.37_f32), black_box(&a), &mut y, mode))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("soft_threshold_512_f32");
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |bench, &mode| {
            let mut out = vec![0.0_f32; n];
            bench.iter(|| soft_threshold(black_box(&a), black_box(0.1), &mut out, mode))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("momentum_combine_512_f32");
    for (name, mode) in modes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |bench, &mode| {
            let mut out = vec![0.0_f32; n];
            bench.iter(|| {
                momentum_combine(black_box(&a), black_box(&b), black_box(0.8), &mut out, mode)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
