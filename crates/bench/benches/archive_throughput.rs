//! Criterion bench for the durable packet archive: append rate and
//! replay rate in frames/second for realistic CS-ECG wire frames
//! (≈ 397-byte CR-50 packets), across fsync policies.
//!
//! The real-time floor is one frame per 2 s per lead, so even the
//! `Always` row has five orders of magnitude of headroom; the spread
//! between rows is the price of durability, measured not assumed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_archive::{Archive, ArchiveConfig, ArchiveWriter, FsyncPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const FRAMES: usize = 48;
const FRAME_BYTES: usize = 397; // 512×12-bit window at CR 50 % + framing

static RUN: AtomicU64 = AtomicU64::new(0);

fn tmp_root() -> PathBuf {
    std::env::temp_dir().join(format!(
        "cs-archive-bench-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ))
}

fn synthetic_frames() -> Vec<Vec<u8>> {
    (0..FRAMES)
        .map(|i| {
            (0..FRAME_BYTES)
                .map(|b| ((b as u64).wrapping_mul(31).wrapping_add(i as u64 * 7) & 0xFF) as u8)
                .collect()
        })
        .collect()
}

fn bench_archive(c: &mut Criterion) {
    let frames = synthetic_frames();
    let mut group = c.benchmark_group("archive_throughput");
    group.throughput(Throughput::Elements(FRAMES as u64));

    for (label, fsync) in [
        ("never", FsyncPolicy::Never),
        ("every8", FsyncPolicy::EveryN(8)),
        ("always", FsyncPolicy::Always),
    ] {
        group.bench_with_input(BenchmarkId::new("append", label), &fsync, |b, &fsync| {
            b.iter(|| {
                let root = tmp_root();
                let config = ArchiveConfig { fsync, ..ArchiveConfig::default() };
                let mut w = ArchiveWriter::create(&root, config).expect("create");
                for (seq, frame) in frames.iter().enumerate() {
                    w.append(0, 0, seq as u64, frame).expect("append");
                }
                w.finish().expect("seal");
                std::fs::remove_dir_all(&root).expect("cleanup");
            })
        });
    }

    // Replay: sealed archive (footer seek) vs unsealed (recovery scan).
    for (label, seal) in [("sealed", true), ("unsealed", false)] {
        let root = tmp_root();
        let config = ArchiveConfig { fsync: FsyncPolicy::Never, ..ArchiveConfig::default() };
        let mut w = ArchiveWriter::create(&root, config).expect("create");
        for (seq, frame) in frames.iter().enumerate() {
            w.append(0, 0, seq as u64, frame).expect("append");
        }
        if seal {
            w.finish().expect("seal");
        } else {
            drop(w);
        }
        group.bench_function(BenchmarkId::new("replay", label), |b| {
            b.iter(|| {
                let (archive, _) = Archive::open(&root).expect("open");
                let n = archive
                    .replay_range(0, 0, 0..u64::MAX)
                    .expect("replay")
                    .count();
                assert_eq!(n, FRAMES);
            })
        });
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
    group.finish();
}

criterion_group!(benches, bench_archive);
criterion_main!(benches);
