//! Criterion bench for the entropy stage: Huffman encode/decode
//! throughput at the system's working size (M = 256 symbols per packet,
//! 512-symbol alphabet, 16-bit length cap) plus codebook construction
//! (the offline package–merge step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cs_codec::{BitReader, BitWriter, Codebook};

/// Laplacian-ish counts concentrated around the alphabet center, like
/// real ECG measurement deltas.
fn ecg_like_counts() -> Vec<u64> {
    (0..512)
        .map(|i| {
            let dist = (i as i64 - 256).unsigned_abs();
            10_000 / (1 + dist * dist / 16)
        })
        .collect()
}

fn symbols(n: usize) -> Vec<u16> {
    let mut state = 0x1234_5678_u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Cluster near the center like real deltas.
            let spread = (state % 64) as i64 - 32;
            (256 + spread) as u16
        })
        .collect()
}

fn bench_huffman(c: &mut Criterion) {
    let counts = ecg_like_counts();
    let codebook = Codebook::from_counts(&counts, 512).expect("valid codebook");
    let syms = symbols(256);

    c.bench_function("huffman_encode_256_symbols", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            codebook.encode(black_box(&syms), &mut w).expect("encode");
            w.finish()
        })
    });

    let mut w = BitWriter::new();
    codebook.encode(&syms, &mut w).expect("encode");
    let bytes = w.finish();
    c.bench_function("huffman_decode_256_symbols", |b| {
        b.iter(|| {
            let mut r = BitReader::new(black_box(&bytes));
            codebook.decode(&mut r, 256).expect("decode")
        })
    });

    c.bench_function("package_merge_512_alphabet", |b| {
        b.iter(|| Codebook::from_counts(black_box(&counts), 512).expect("valid"))
    });
}

criterion_group!(benches, bench_huffman);
criterion_main!(benches);
