//! Criterion bench behind Fig. 7's time axis and the matrix-free design
//! decision: the cost of a fixed FISTA budget at CR 50, matrix-free vs
//! dense, f32 vs f64.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_recovery::{
    fista, fista_warm_batch_ws, fista_warm_ws, lambda_max, BatchWorkspace, DenseOperator,
    FistaWorkspace, KernelMode, ShrinkageConfig, SynthesisOperator,
};
use cs_sensing::{measurements_for_cr, Sensing, SparseBinarySensing};

const N: usize = 512;
const ITERS: usize = 50;

fn packet() -> Vec<f32> {
    (0..N)
        .map(|i| {
            let t = i as f32 / N as f32;
            800.0 * (-((t - 0.4) * 30.0).powi(2)).exp() + 50.0 * (t * 11.0).sin()
        })
        .collect()
}

fn bench_solver(c: &mut Criterion) {
    let m = measurements_for_cr(N, 50.0);
    let phi = SparseBinarySensing::new(m, N, 12, 3).expect("valid Φ");
    let wavelet = Wavelet::daubechies(4).expect("db4");
    let dwt32: Dwt<f32> = Dwt::new(&wavelet, N, 5).expect("plan");
    let dwt64: Dwt<f64> = Dwt::new(&wavelet, N, 5).expect("plan");

    let x32 = packet();
    let x64: Vec<f64> = x32.iter().map(|&v| v as f64).collect();
    let y32: Vec<f32> = phi.apply(x32.as_slice());
    let y64: Vec<f64> = phi.apply(x64.as_slice());

    let op32 = SynthesisOperator::new(&phi, &dwt32);
    let op64 = SynthesisOperator::new(&phi, &dwt64);
    let dense32 = DenseOperator::materialize(&op32, KernelMode::Unrolled4);

    let cfg32 = ShrinkageConfig {
        lambda: 0.01 * lambda_max(&op32, &y32),
        max_iterations: ITERS,
        tolerance: 0.0,
        residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
        record_objective: false,
    };
    let cfg64 = ShrinkageConfig {
        lambda: 0.01 * lambda_max(&op64, &y64),
        max_iterations: ITERS,
        tolerance: 0.0,
        residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
        record_objective: false,
    };

    let mut group = c.benchmark_group("fista_50_iterations_cr50");
    group.bench_function("matrix_free_f32", |b| {
        b.iter(|| fista(&op32, black_box(&y32), &cfg32, Some(60.0)))
    });
    group.bench_function("matrix_free_f64", |b| {
        b.iter(|| fista(&op64, black_box(&y64), &cfg64, Some(60.0)))
    });
    // Fully pooled path: one FistaWorkspace reused across every solve, the
    // retired solution recycled — the fleet decoder's steady state.
    let mut ws32 = FistaWorkspace::for_operator(&op32);
    group.bench_function("matrix_free_f32_ws", |b| {
        b.iter(|| {
            let r = fista_warm_ws(&op32, black_box(&y32), &cfg32, Some(60.0), None, &mut ws32);
            ws32.recycle_solution(r.solution);
            r.residual_norm
        })
    });
    let mut ws64 = FistaWorkspace::for_operator(&op64);
    group.bench_function("matrix_free_f64_ws", |b| {
        b.iter(|| {
            let r = fista_warm_ws(&op64, black_box(&y64), &cfg64, Some(60.0), None, &mut ws64);
            ws64.recycle_solution(r.solution);
            r.residual_norm
        })
    });
    group.bench_function("dense_f32", |b| {
        b.iter(|| fista(&dense32, black_box(&y32), &cfg32, Some(60.0)))
    });
    group.finish();
}

/// The MMV payoff in isolation: eight independent solves one after the
/// other vs the same eight fused into one K-wide batch. Both run the same
/// fixed iteration budget (tolerance 0), so the delta is purely the fused
/// operator walks — the CSR/CSC support structure streamed once per batch
/// iteration instead of once per lane iteration.
fn bench_batched(c: &mut Criterion) {
    const K: usize = 8;
    let m = measurements_for_cr(N, 50.0);
    let phi = SparseBinarySensing::new(m, N, 12, 3).expect("valid Φ");
    let wavelet = Wavelet::daubechies(4).expect("db4");
    let dwt: Dwt<f32> = Dwt::new(&wavelet, N, 5).expect("plan");
    let op = SynthesisOperator::new(&phi, &dwt);

    let ys: Vec<Vec<f32>> = (0..K)
        .map(|k| {
            let x: Vec<f32> = (0..N)
                .map(|i| {
                    let t = i as f32 / N as f32;
                    800.0 * (-((t - 0.4 + k as f32 * 0.01) * 30.0).powi(2)).exp()
                        + 50.0 * (t * 11.0).sin()
                })
                .collect();
            phi.apply(x.as_slice())
        })
        .collect();
    let cfgs: Vec<ShrinkageConfig<f32>> = ys
        .iter()
        .map(|y| ShrinkageConfig {
            lambda: 0.01 * lambda_max(&op, y),
            max_iterations: ITERS,
            tolerance: 0.0,
            residual_tolerance: 0.0,
            kernel: KernelMode::Unrolled4,
            record_objective: false,
        })
        .collect();

    let mut group = c.benchmark_group("batched_fista");
    let mut ws = FistaWorkspace::for_operator(&op);
    group.bench_function("sequential_8", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for (y, cfg) in ys.iter().zip(&cfgs) {
                let r = fista_warm_ws(&op, black_box(y), cfg, Some(60.0), None, &mut ws);
                acc += r.residual_norm;
                ws.recycle_solution(r.solution);
            }
            acc
        })
    });
    let mut bws = BatchWorkspace::for_operator(&op, K);
    group.bench_function("batch_8", |b| {
        use cs_recovery::LinearOperator;
        b.iter(|| {
            bws.begin(op.rows(), op.cols());
            for y in &ys {
                bws.stage_lane(black_box(y.as_slice()), None);
            }
            fista_warm_batch_ws(&op, &cfgs, None, Some(60.0), &mut bws);
            (0..K).map(|lane| bws.residual_norm(lane)).sum::<f32>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver, bench_batched);
criterion_main!(benches);
