//! Criterion bench for the fleet decode engine: packets/second for one
//! stream through the paper's single-coordinator pipeline vs 2/4/8
//! concurrent streams through the worker pool, plus the warm-start
//! variant. On a multi-core host the fleet figures scale with the worker
//! count; on one core they document the engine's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::{
    run_fleet, run_streaming, uniform_codebook, FleetConfig, FleetStream, SolverPolicy,
    SystemConfig,
};
use std::sync::Arc;

const N: usize = 512;
const FRAMES: usize = 2;

fn ecg_like(phase: f64) -> Vec<i16> {
    (0..FRAMES * N)
        .map(|i| {
            let t = (i % N) as f64 / N as f64;
            (700.0 * (-((t - 0.4 + phase) * 25.0).powi(2)).exp() + 50.0 * (t * 10.0).sin()) as i16
        })
        .collect()
}

fn bench_fleet(c: &mut Criterion) {
    let config = SystemConfig::paper_default();
    let codebook = Arc::new(uniform_codebook(config.alphabet()).expect("codebook"));
    let policy: SolverPolicy<f32> = SolverPolicy::default();

    let mut group = c.benchmark_group("fleet_throughput");

    group.throughput(Throughput::Elements(FRAMES as u64));
    let single = ecg_like(0.0);
    group.bench_function("single_stream", |b| {
        b.iter(|| {
            run_streaming::<f32, _>(&config, Arc::clone(&codebook), &single, policy, |_| {})
                .expect("streaming run")
        })
    });

    for &nstreams in &[2usize, 4, 8] {
        let leads: Vec<Vec<i16>> =
            (0..nstreams).map(|s| ecg_like(s as f64 * 0.01)).collect();
        let streams: Vec<FleetStream<'_>> =
            leads.iter().map(|l| FleetStream::single(l)).collect();
        group.throughput(Throughput::Elements((nstreams * FRAMES) as u64));
        for (label, warm, batch, solver) in [
            ("cold", false, 1, SolverPolicy::default()),
            ("warm", true, 1, SolverPolicy::default()),
            ("batch", true, nstreams, SolverPolicy::default()),
            ("weighted", true, 1, SolverPolicy::support_prior()),
        ] {
            let fleet =
                FleetConfig { warm_start: warm, batch, ..FleetConfig::default() };
            let policy = solver;
            group.bench_with_input(
                BenchmarkId::new(format!("fleet_{label}"), nstreams),
                &streams,
                |b, streams| {
                    b.iter(|| {
                        run_fleet::<f32, _>(
                            &config,
                            Arc::clone(&codebook),
                            streams,
                            policy,
                            &fleet,
                            |_| {},
                        )
                        .expect("fleet run")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
