//! Criterion bench behind §IV-A2's matrix comparison: the cost of one
//! measurement `y = Φx` under the three Φ implementations the paper
//! evaluated on the mote, plus the pure-integer mote path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cs_sensing::{DenseSensing, Sensing, SparseBinarySensing};

const N: usize = 512;
const M: usize = 256;
const D: usize = 12;

fn bench_sensing(c: &mut Criterion) {
    let sparse = SparseBinarySensing::new(M, N, D, 7).expect("valid Φ");
    let gaussian: DenseSensing<f64> = DenseSensing::gaussian(M, N, 7).expect("valid Φ");
    let quantized: DenseSensing<f64> =
        DenseSensing::quantized_gaussian(M, N, 7).expect("valid Φ");

    let x_f: Vec<f64> = (0..N).map(|i| ((i * 13 % 2047) as f64) - 1024.0).collect();
    let x_i: Vec<i16> = x_f.iter().map(|&v| v as i16).collect();

    let mut group = c.benchmark_group("sensing_apply_512");
    group.bench_function("sparse_binary_f64", |b| {
        let mut y = vec![0.0_f64; M];
        b.iter(|| sparse.apply_into(black_box(x_f.as_slice()), &mut y))
    });
    group.bench_function("sparse_binary_i32_mote_path", |b| {
        b.iter(|| sparse.apply_unscaled_i32(black_box(&x_i)))
    });
    group.bench_function("dense_gaussian_f64", |b| {
        let mut y = vec![0.0_f64; M];
        b.iter(|| gaussian.apply_into(black_box(x_f.as_slice()), &mut y))
    });
    group.bench_function("dense_quantized_gaussian_f64", |b| {
        let mut y = vec![0.0_f64; M];
        b.iter(|| quantized.apply_into(black_box(x_f.as_slice()), &mut y))
    });
    group.finish();

    let mut group = c.benchmark_group("sensing_adjoint_512");
    let y: Vec<f64> = (0..M).map(|i| (i as f64 * 0.3).sin()).collect();
    group.bench_function("sparse_binary_f64", |b| {
        let mut x = vec![0.0_f64; N];
        b.iter(|| sparse.adjoint_into(black_box(y.as_slice()), &mut x))
    });
    group.bench_function("dense_gaussian_f64", |b| {
        let mut x = vec![0.0_f64; N];
        b.iter(|| gaussian.adjoint_into(black_box(y.as_slice()), &mut x))
    });
    group.finish();
}

criterion_group!(benches, bench_sensing);
criterion_main!(benches);
