//! Criterion bench for the socket ingest transport path: record
//! reassembly + frame validation throughput in frames/second, across
//! read-split regimes — one byte at a time (worst-case TCP
//! fragmentation), a trickle, typical MTU-ish chunks, and fully
//! coalesced reads.
//!
//! The real-time floor is one frame per 2 s per lead; these rates bound
//! how many motes a single session thread could deframe. The `handoff`
//! row adds the one deliberate per-frame allocation (the owned
//! [`cs_core::WireFrame`] buffer handed to the decode queue) so the
//! transport-only and transport-plus-handoff costs stay separately
//! visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_core::{crc16, parse_frame, WireFrame, FRAME_MAGIC, FRAME_VERSION, HEADER_BYTES};
use cs_ingest::{encode_record, Deframer};

const FRAMES: usize = 64;
const PAYLOAD_BYTES: usize = 384; // ≈ CR-50 payload for a 512-sample window

fn make_frame(lane: u8, seq: u32) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + PAYLOAD_BYTES + 2);
    frame.push(FRAME_MAGIC);
    frame.push(FRAME_VERSION);
    frame.push(lane);
    frame.push(0x52);
    frame.extend_from_slice(&seq.to_le_bytes());
    let bits = (PAYLOAD_BYTES * 8) as u32;
    frame.extend_from_slice(&bits.to_le_bytes()[..3]);
    frame.extend((0..PAYLOAD_BYTES).map(|b| (b as u32).wrapping_mul(37).wrapping_add(seq) as u8));
    let crc = crc16(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

fn wire_stream() -> Vec<u8> {
    let mut wire = Vec::new();
    for seq in 0..FRAMES {
        encode_record(&make_frame((seq % 3) as u8, seq as u32), &mut wire);
    }
    wire
}

/// Push `wire` through a deframer in `split`-byte reads, validating
/// every record; returns the record count.
fn deframe_all(wire: &[u8], split: usize, deframer: &mut Deframer) -> usize {
    let mut records = 0usize;
    let mut offset = 0usize;
    while offset < wire.len() {
        let spare = deframer.spare();
        let n = split.min(spare.len()).min(wire.len() - offset);
        spare[..n].copy_from_slice(&wire[offset..offset + n]);
        deframer.commit(n);
        offset += n;
        while let Some(record) = deframer.next_frame() {
            assert!(parse_frame(record).is_ok());
            records += 1;
        }
    }
    records
}

fn bench_ingest(c: &mut Criterion) {
    let wire = wire_stream();
    let mut group = c.benchmark_group("ingest_throughput");
    group.throughput(Throughput::Elements(FRAMES as u64));

    for split in [1usize, 17, 1400, usize::MAX] {
        let label = if split == usize::MAX { "coalesced".to_owned() } else { format!("{split}B") };
        group.bench_with_input(BenchmarkId::new("deframe", label), &split, |b, &split| {
            let mut deframer = Deframer::new();
            b.iter(|| {
                let records = deframe_all(&wire, split, &mut deframer);
                assert_eq!(records, FRAMES);
            })
        });
    }

    // Transport plus the decode-queue handoff: the one owned-buffer
    // allocation per frame the zero-alloc pin permits.
    group.bench_function(BenchmarkId::new("handoff", "1400B"), |b| {
        let mut deframer = Deframer::new();
        b.iter(|| {
            let mut offset = 0usize;
            let mut handed = 0usize;
            while offset < wire.len() {
                let spare = deframer.spare();
                let n = 1400.min(spare.len()).min(wire.len() - offset);
                spare[..n].copy_from_slice(&wire[offset..offset + n]);
                deframer.commit(n);
                offset += n;
                while let Some(record) = deframer.next_frame() {
                    let frame = WireFrame { stream: 0, bytes: record.to_vec() };
                    std::hint::black_box(&frame);
                    handed += 1;
                }
            }
            assert_eq!(handed, FRAMES);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
