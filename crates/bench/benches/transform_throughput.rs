//! Criterion bench for the DSP substrate: the wavelet transform that
//! dominates each matrix-free FISTA iteration, and the 360→256 Hz
//! resampler that feeds the mote.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cs_dsp::wavelet::{Dwt, Wavelet};
use cs_ecg_data::Resampler;

fn bench_transforms(c: &mut Criterion) {
    let wavelet = Wavelet::daubechies(4).expect("db4");
    let dwt64: Dwt<f64> = Dwt::new(&wavelet, 512, 5).expect("plan");
    let dwt32: Dwt<f32> = Dwt::new(&wavelet, 512, 5).expect("plan");
    let x64: Vec<f64> = (0..512).map(|i| (i as f64 * 0.11).sin()).collect();
    let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();

    let mut group = c.benchmark_group("dwt_512_db4_5level");
    group.bench_function("analyze_f64", |b| {
        let mut out = vec![0.0_f64; 512];
        b.iter(|| dwt64.analyze_into(black_box(&x64), &mut out))
    });
    group.bench_function("synthesize_f64", |b| {
        let c64 = dwt64.analyze(&x64);
        let mut out = vec![0.0_f64; 512];
        b.iter(|| dwt64.synthesize_into(black_box(&c64), &mut out))
    });
    group.bench_function("analyze_f32", |b| {
        let mut out = vec![0.0_f32; 512];
        b.iter(|| dwt32.analyze_into(black_box(&x32), &mut out))
    });
    group.finish();

    let mut group = c.benchmark_group("resample_360_to_256");
    let rs = Resampler::new(256, 360);
    let one_second: Vec<f64> = (0..360).map(|i| (i as f64 * 0.2).sin()).collect();
    let ten_seconds: Vec<f64> = (0..3600).map(|i| (i as f64 * 0.2).sin()).collect();
    group.bench_function("1s_block", |b| b.iter(|| rs.resample(black_box(&one_second))));
    group.bench_function("10s_block", |b| b.iter(|| rs.resample(black_box(&ten_seconds))));
    group.finish();

    c.bench_function("wavelet_construction_db4", |b| {
        b.iter(|| Wavelet::daubechies(black_box(4)).expect("db4"))
    });
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
