//! Aggregation of per-record metrics into corpus-level results.
//!
//! Every figure in the paper reports quantities "averaged over all Data" —
//! i.e. over the 48 records of the MIT-BIH-style corpus. [`Summary`] and
//! [`SweepSeries`] are the small bookkeeping types the benchmark harness
//! uses to produce those averages.

/// Running summary statistics (count, mean, min/max, sample standard
/// deviation) built incrementally with Welford's algorithm.
///
/// # Examples
///
/// ```
/// use cs_metrics::Summary;
///
/// let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 6.0);
/// assert!((s.std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// Not derived: the derive would zero `min`/`max`, which corrupts the
// extrema of any summary that starts from `Default` instead of `new()`.
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.count > 0, "Summary::min on empty summary");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.count > 0, "Summary::max on empty summary");
        self.max
    }

    /// Merges another summary into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

/// Exact percentile of a sample by linear interpolation between closest
/// ranks (`q` in `[0, 1]`, clamped). Sorts a copy of the data, so it
/// belongs in report-time summaries, not hot paths — the telemetry
/// histograms stay log2-bucketed for the live exporters, but the
/// `fleet_report` solver panel wants iteration quantiles at integer
/// resolution, where a 2× bucket would swallow the effect being measured.
/// Returns 0 for an empty sample; non-finite observations are ignored.
///
/// # Examples
///
/// ```
/// use cs_metrics::exact_percentile;
///
/// let iters = [100.0, 200.0, 300.0, 400.0];
/// assert_eq!(exact_percentile(&iters, 0.0), 100.0);
/// assert_eq!(exact_percentile(&iters, 0.5), 250.0);
/// assert_eq!(exact_percentile(&iters, 1.0), 400.0);
/// ```
pub fn exact_percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// One point of a parameter sweep: an x-value (e.g. compression ratio) and
/// the summary of the metric measured there across the corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// The swept parameter value (CR in percent for most figures).
    pub x: f64,
    /// Corpus summary of the measured metric at `x`.
    pub summary: Summary,
}

/// A named series of sweep points — one curve of a figure.
///
/// # Examples
///
/// ```
/// use cs_metrics::{Summary, SweepSeries};
///
/// let mut series = SweepSeries::new("sparse sensing");
/// series.push(50.0, [20.1, 19.7].into_iter().collect::<Summary>());
/// series.push(75.0, [8.3, 8.9].into_iter().collect::<Summary>());
/// assert_eq!(series.points().len(), 2);
/// assert!(series.points()[0].summary.mean() > series.points()[1].summary.mean());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepSeries {
    name: String,
    points: Vec<SweepPoint>,
}

impl SweepSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sweep point.
    pub fn push(&mut self, x: f64, summary: Summary) {
        self.points.push(SweepPoint { x, summary });
    }

    /// The collected points in insertion order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Renders the series as fixed-width text rows (x, mean, std, min, max),
    /// the format the `fig*` binaries print.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.name));
        out.push_str("#      x        mean         std         min         max    n\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:8.2} {:11.4} {:11.4} {:11.4} {:11.4} {:4}\n",
                p.x,
                p.summary.mean(),
                p.summary.std_dev(),
                p.summary.min(),
                p.summary.max(),
                p.summary.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty summary")]
    fn empty_min_panics() {
        let _ = Summary::new().min();
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let s: Summary = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [42.0].into_iter().collect();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn table_renders_all_points() {
        let mut series = SweepSeries::new("curve");
        series.push(30.0, [1.0, 2.0].into_iter().collect());
        series.push(40.0, [3.0].into_iter().collect());
        let t = series.to_table();
        assert!(t.contains("# curve"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn exact_percentile_interpolates_between_ranks() {
        assert_eq!(exact_percentile(&[], 0.5), 0.0);
        assert_eq!(exact_percentile(&[7.0], 0.95), 7.0);
        let unsorted = [3.0, 1.0, 2.0];
        assert_eq!(exact_percentile(&unsorted, 0.5), 2.0);
        let hundred: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((exact_percentile(&hundred, 0.95) - 95.05).abs() < 1e-9);
        // Out-of-range q clamps; NaNs are ignored rather than poisoning
        // the sort.
        assert_eq!(exact_percentile(&hundred, 2.0), 100.0);
        assert_eq!(exact_percentile(&[f64::NAN, 5.0], 0.5), 5.0);
    }

    proptest! {
        #[test]
        fn prop_exact_percentile_is_monotone(
            values in proptest::collection::vec(-50.0_f64..50.0, 1..40),
            qa in 0.0_f64..1.0,
            qb in 0.0_f64..1.0,
        ) {
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            prop_assert!(exact_percentile(&values, lo) <= exact_percentile(&values, hi) + 1e-12);
        }

        #[test]
        fn prop_merge_equals_sequential(split in 1_usize..19) {
            let data: Vec<f64> = (0..20).map(|i| (i as f64 - 9.5) * 1.3).collect();
            let (a, b) = data.split_at(split);
            let mut sa: Summary = a.iter().copied().collect();
            let sb: Summary = b.iter().copied().collect();
            sa.merge(&sb);
            let whole: Summary = data.iter().copied().collect();
            prop_assert!((sa.mean() - whole.mean()).abs() < 1e-10);
            prop_assert!((sa.std_dev() - whole.std_dev()).abs() < 1e-10);
            prop_assert_eq!(sa.count(), whole.count());
            prop_assert_eq!(sa.min(), whole.min());
            prop_assert_eq!(sa.max(), whole.max());
        }

        #[test]
        fn prop_mean_within_bounds(values in proptest::collection::vec(-100.0_f64..100.0, 1..50)) {
            let s: Summary = values.iter().copied().collect();
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
