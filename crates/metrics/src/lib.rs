//! # cs-metrics — evaluation metrics for the CS-ECG system
//!
//! The DATE 2011 paper evaluates its compression scheme with exactly two
//! quantities (§III): the **compression ratio** (CR, Eq. 7) and the
//! **percentage root-mean-square difference** (PRD) with its associated
//! **SNR**. This crate implements those definitions verbatim, the clinical
//! quality bands Fig. 6 annotates, and the corpus-aggregation helpers the
//! figure-reproduction harness uses ("averaged over all Data").
//!
//! ## Example
//!
//! ```
//! use cs_metrics::{compression_ratio, output_snr, DiagnosticQuality, prd};
//!
//! let x = vec![1.0, 2.0, 3.0, 2.0, 1.0];
//! let recon = vec![1.01, 1.98, 3.02, 1.99, 1.01];
//!
//! let p = prd(&x, &recon);
//! assert_eq!(DiagnosticQuality::from_prd(p), DiagnosticQuality::VeryGood);
//! assert!(output_snr(&x, &recon) > 30.0);
//! assert_eq!(compression_ratio(8 * 512 * 12, 8 * 512 * 6), 50.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod aggregate;
mod fleet;
mod quality;

pub use aggregate::{exact_percentile, Summary, SweepPoint, SweepSeries};
pub use fleet::{worker_imbalance, FleetStats, StreamStats};
pub use quality::{
    compression_ratio, output_snr, prd, prd_from_snr, prd_masked, prd_mean_removed, snr_from_prd,
    try_prd, try_prd_masked, DiagnosticQuality,
};
