//! Per-stream and fleet-wide solver statistics.
//!
//! The fleet decode engine reports raw per-packet numbers (iterations,
//! solve time, warm-start usage). These types turn them into the
//! summaries the `fleet_report` harness prints: per-stream distributions
//! plus a fleet aggregate with worker-balance and warm-start-saving
//! figures.

use crate::aggregate::Summary;
use cs_telemetry::HistogramSnapshot;

const NS_PER_SEC: f64 = 1e9;

/// Solver statistics for one decoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StreamStats {
    /// Distribution of FISTA iteration counts across the stream's packets.
    pub iterations: Summary,
    /// Distribution of per-packet solve times, in seconds.
    pub solve_time: Summary,
    /// Log2 histogram of solve times in nanoseconds — what the quantile
    /// accessors read.
    pub solve_hist: HistogramSnapshot,
    /// Log2 histogram of end-to-end latencies (capture → in-order
    /// emission) in nanoseconds. Empty when the run carried no trace
    /// context (telemetry disabled).
    pub e2e_hist: HistogramSnapshot,
    /// Packets whose end-to-end latency exceeded the SLO deadline.
    pub deadline_misses: u64,
    /// Packets whose solve was seeded from the previous estimate.
    pub warm_started: u64,
}

impl StreamStats {
    /// An empty record.
    pub fn new() -> Self {
        StreamStats::default()
    }

    /// Adds one packet's observation.
    pub fn record(&mut self, iterations: usize, solve_time_secs: f64, warm_started: bool) {
        self.iterations.push(iterations as f64);
        self.solve_time.push(solve_time_secs);
        self.solve_hist
            .record_ns((solve_time_secs * NS_PER_SEC) as u64);
        self.warm_started += u64::from(warm_started);
    }

    /// Adds one packet's end-to-end observation (additive to [`record`]:
    /// e2e is only available on traced runs, so it rides separately).
    ///
    /// [`record`]: StreamStats::record
    pub fn record_e2e(&mut self, e2e_secs: f64, deadline_missed: bool) {
        self.e2e_hist.record_ns((e2e_secs * NS_PER_SEC) as u64);
        self.deadline_misses += u64::from(deadline_missed);
    }

    /// Packets observed.
    pub fn packets(&self) -> u64 {
        self.iterations.count()
    }

    /// Median end-to-end latency in seconds (log2-bucket resolution).
    pub fn e2e_p50(&self) -> f64 {
        self.e2e_hist.quantile(0.50) as f64 / NS_PER_SEC
    }

    /// 99th-percentile end-to-end latency in seconds.
    pub fn e2e_p99(&self) -> f64 {
        self.e2e_hist.quantile(0.99) as f64 / NS_PER_SEC
    }

    /// Median solve time in seconds (log2-bucket resolution).
    pub fn solve_time_p50(&self) -> f64 {
        self.solve_hist.quantile(0.50) as f64 / NS_PER_SEC
    }

    /// 95th-percentile solve time in seconds (log2-bucket resolution).
    pub fn solve_time_p95(&self) -> f64 {
        self.solve_hist.quantile(0.95) as f64 / NS_PER_SEC
    }

    /// 99th-percentile solve time in seconds (log2-bucket resolution).
    pub fn solve_time_p99(&self) -> f64 {
        self.solve_hist.quantile(0.99) as f64 / NS_PER_SEC
    }
}

/// Fleet-wide aggregate over all streams.
///
/// # Examples
///
/// ```
/// use cs_metrics::{FleetStats, StreamStats};
///
/// let mut a = StreamStats::new();
/// a.record(100, 0.010, false);
/// a.record(60, 0.006, true);
/// let mut b = StreamStats::new();
/// b.record(80, 0.008, false);
///
/// let fleet = FleetStats::from_streams(&[a, b]);
/// assert_eq!(fleet.packets(), 3);
/// assert_eq!(fleet.warm_started, 1);
/// assert!((fleet.iterations.mean() - 80.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FleetStats {
    /// Streams aggregated.
    pub streams: u64,
    /// Merged iteration distribution across every packet of every stream.
    pub iterations: Summary,
    /// Merged solve-time distribution, in seconds.
    pub solve_time: Summary,
    /// Merged log2 histogram of solve times in nanoseconds.
    pub solve_hist: HistogramSnapshot,
    /// Merged log2 histogram of end-to-end latencies in nanoseconds.
    pub e2e_hist: HistogramSnapshot,
    /// Deadline-missing packets across the fleet.
    pub deadline_misses: u64,
    /// Patients currently Healthy per the SLO engine. Zero until
    /// [`FleetStats::set_health_counts`] is fed from a telemetry SLO
    /// snapshot — stream merging alone cannot know burn-rate state.
    pub healthy: u64,
    /// Patients currently Degraded (burn rate over threshold in both the
    /// fast and slow windows).
    pub degraded: u64,
    /// Patients currently Stalled (no emission within the stall window).
    pub stalled: u64,
    /// Warm-started packets across the fleet.
    pub warm_started: u64,
}

impl FleetStats {
    /// Merges per-stream records into the fleet aggregate.
    pub fn from_streams(streams: &[StreamStats]) -> Self {
        let mut fleet = FleetStats {
            streams: streams.len() as u64,
            ..FleetStats::default()
        };
        for s in streams {
            fleet.iterations.merge(&s.iterations);
            fleet.solve_time.merge(&s.solve_time);
            fleet.solve_hist.merge(&s.solve_hist);
            fleet.e2e_hist.merge(&s.e2e_hist);
            fleet.deadline_misses += s.deadline_misses;
            fleet.warm_started += s.warm_started;
        }
        fleet
    }

    /// Records the per-patient health census from the SLO engine.
    pub fn set_health_counts(&mut self, healthy: u64, degraded: u64, stalled: u64) {
        self.healthy = healthy;
        self.degraded = degraded;
        self.stalled = stalled;
    }

    /// Total packets across the fleet.
    pub fn packets(&self) -> u64 {
        self.iterations.count()
    }

    /// Median end-to-end latency in seconds (log2-bucket resolution).
    pub fn e2e_p50(&self) -> f64 {
        self.e2e_hist.quantile(0.50) as f64 / NS_PER_SEC
    }

    /// 99th-percentile end-to-end latency in seconds.
    pub fn e2e_p99(&self) -> f64 {
        self.e2e_hist.quantile(0.99) as f64 / NS_PER_SEC
    }

    /// Median solve time in seconds (log2-bucket resolution).
    pub fn solve_time_p50(&self) -> f64 {
        self.solve_hist.quantile(0.50) as f64 / NS_PER_SEC
    }

    /// 95th-percentile solve time in seconds (log2-bucket resolution).
    pub fn solve_time_p95(&self) -> f64 {
        self.solve_hist.quantile(0.95) as f64 / NS_PER_SEC
    }

    /// 99th-percentile solve time in seconds (log2-bucket resolution).
    pub fn solve_time_p99(&self) -> f64 {
        self.solve_hist.quantile(0.99) as f64 / NS_PER_SEC
    }

    /// The relative iteration saving of this (warm-started) fleet against
    /// a cold baseline: `1 − mean_warm / mean_cold`, in [0, 1] when warm
    /// starts help. Returns 0 for an empty baseline.
    pub fn iteration_saving_vs(&self, cold: &FleetStats) -> f64 {
        if cold.packets() == 0 || cold.iterations.mean() == 0.0 {
            return 0.0;
        }
        1.0 - self.iterations.mean() / cold.iterations.mean()
    }
}

/// How evenly packets landed on the pool's workers: the ratio of the
/// busiest worker to the ideal per-worker share (1.0 = perfectly even).
/// Returns 0 for an empty pool or an idle fleet.
pub fn worker_imbalance(worker_packets: &[usize]) -> f64 {
    let total: usize = worker_packets.iter().sum();
    if worker_packets.is_empty() || total == 0 {
        return 0.0;
    }
    let busiest = *worker_packets.iter().max().expect("non-empty") as f64;
    let ideal = total as f64 / worker_packets.len() as f64;
    busiest / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_stats_accumulate() {
        let mut s = StreamStats::new();
        s.record(10, 0.001, true);
        s.record(30, 0.003, false);
        assert_eq!(s.packets(), 2);
        assert_eq!(s.warm_started, 1);
        assert_eq!(s.iterations.mean(), 20.0);
        assert!((s.solve_time.max() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn solve_time_quantiles_track_the_histogram() {
        let mut s = StreamStats::new();
        for _ in 0..95 {
            s.record(10, 0.001, false);
        }
        for _ in 0..5 {
            s.record(10, 0.100, false);
        }
        assert_eq!(s.solve_hist.count(), 100);
        // p50 sits in the 1 ms cohort, p99 in the 100 ms tail; log2
        // buckets admit up to 2x on each.
        assert!(s.solve_time_p50() < 0.003, "p50 {}", s.solve_time_p50());
        assert!(s.solve_time_p99() > 0.05, "p99 {}", s.solve_time_p99());
        assert!(s.solve_time_p50() <= s.solve_time_p95());
        assert!(s.solve_time_p95() <= s.solve_time_p99());
        // Fleet aggregation merges the histograms too.
        let fleet = FleetStats::from_streams(&[s, StreamStats::new()]);
        assert_eq!(fleet.solve_hist.count(), 100);
        assert!(fleet.solve_time_p99() >= fleet.solve_time_p50());
    }

    #[test]
    fn e2e_observations_ride_separately_from_solve_stats() {
        let mut s = StreamStats::new();
        s.record(10, 0.001, false);
        assert_eq!(s.e2e_hist.count(), 0, "untraced run leaves e2e empty");
        s.record_e2e(0.004, false);
        s.record_e2e(3.000, true);
        assert_eq!(s.e2e_hist.count(), 2);
        assert_eq!(s.deadline_misses, 1);
        assert!(s.e2e_p50() >= 0.004 && s.e2e_p99() >= 3.0);
        let mut fleet = FleetStats::from_streams(&[s, StreamStats::new()]);
        assert_eq!(fleet.e2e_hist.count(), 2);
        assert_eq!(fleet.deadline_misses, 1);
        fleet.set_health_counts(1, 1, 0);
        assert_eq!((fleet.healthy, fleet.degraded, fleet.stalled), (1, 1, 0));
    }

    #[test]
    fn fleet_merges_streams() {
        let mut a = StreamStats::new();
        let mut b = StreamStats::new();
        for i in 0..4 {
            a.record(100 + i, 0.01, false);
            b.record(50, 0.005, true);
        }
        let fleet = FleetStats::from_streams(&[a, b]);
        assert_eq!(fleet.streams, 2);
        assert_eq!(fleet.packets(), 8);
        assert_eq!(fleet.warm_started, 4);
        assert!(fleet.iterations.min() == 50.0 && fleet.iterations.max() == 103.0);
    }

    #[test]
    fn iteration_saving_is_relative() {
        let mut warm = StreamStats::new();
        let mut cold = StreamStats::new();
        warm.record(60, 0.006, true);
        cold.record(100, 0.010, false);
        let w = FleetStats::from_streams(&[warm]);
        let c = FleetStats::from_streams(&[cold]);
        assert!((w.iteration_saving_vs(&c) - 0.4).abs() < 1e-12);
        assert_eq!(w.iteration_saving_vs(&FleetStats::default()), 0.0);
    }

    #[test]
    fn imbalance_of_even_and_skewed_pools() {
        assert_eq!(worker_imbalance(&[]), 0.0);
        assert_eq!(worker_imbalance(&[0, 0]), 0.0);
        assert!((worker_imbalance(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        assert!((worker_imbalance(&[10, 0]) - 2.0).abs() < 1e-12);
    }
}
