//! Compression and diagnostic-quality metrics (paper §III).

/// Compression ratio in percent, as defined by the paper's Eq. (7):
/// `CR = (b_orig − b_comp) / b_orig × 100`.
///
/// # Panics
///
/// Panics if `bits_original` is zero.
///
/// # Examples
///
/// ```
/// // Halving the bit budget is CR = 50 %.
/// assert_eq!(cs_metrics::compression_ratio(1024, 512), 50.0);
/// ```
pub fn compression_ratio(bits_original: u64, bits_compressed: u64) -> f64 {
    assert!(bits_original > 0, "compression_ratio: original size is zero");
    (bits_original as f64 - bits_compressed as f64) / bits_original as f64 * 100.0
}

/// Percentage root-mean-square difference between the original signal `x`
/// and its reconstruction `x̃`:
/// `PRD = ‖x − x̃‖₂ / ‖x‖₂ × 100`.
///
/// # Panics
///
/// Panics if the slices differ in length or the original signal has zero
/// energy.
///
/// # Examples
///
/// ```
/// let x = [3.0, 4.0];
/// let exact = cs_metrics::prd(&x, &x);
/// assert_eq!(exact, 0.0);
/// let off = cs_metrics::prd(&x, &[3.0, 4.5]);
/// assert!((off - 10.0).abs() < 1e-12); // ‖(0,0.5)‖/‖(3,4)‖ = 0.1
/// ```
pub fn prd(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(
        original.len(),
        reconstructed.len(),
        "prd: length mismatch"
    );
    let num: f64 = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = original.iter().map(|a| a * a).sum();
    assert!(den > 0.0, "prd: original signal has zero energy");
    (num / den).sqrt() * 100.0
}

/// Non-panicking [`prd`]: returns `None` when the original signal has
/// zero energy (a flat-line lead, an all-zero calibration window) instead
/// of panicking, so one degenerate window can't kill a fleet report.
///
/// # Panics
///
/// Still panics on a length mismatch — that is a caller bug, not a data
/// condition.
///
/// # Examples
///
/// ```
/// let x = [3.0, 4.0];
/// assert_eq!(cs_metrics::try_prd(&x, &x), Some(0.0));
/// assert_eq!(cs_metrics::try_prd(&[0.0, 0.0], &[1.0, 1.0]), None);
/// ```
pub fn try_prd(original: &[f64], reconstructed: &[f64]) -> Option<f64> {
    assert_eq!(
        original.len(),
        reconstructed.len(),
        "try_prd: length mismatch"
    );
    let num: f64 = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = original.iter().map(|a| a * a).sum();
    (den > 0.0).then(|| (num / den).sqrt() * 100.0)
}

/// PRD over the non-masked samples only.
///
/// Loss concealment substitutes synthetic samples for windows the wire
/// ate; folding those into PRD would charge the *reconstruction* for the
/// *channel*. Callers mark concealed samples in `mask` (`true` =
/// excluded) and this computes PRD over the genuinely decoded remainder.
/// Returns `None` when the mask excludes everything or leaves no signal
/// energy — there is no reconstruction quality to speak of.
///
/// # Panics
///
/// Panics if the three slices differ in length.
///
/// # Examples
///
/// ```
/// let x = [3.0, 4.0, 100.0];
/// let y = [3.0, 4.5, 0.0]; // third sample concealed as zero
/// let masked = cs_metrics::prd_masked(&x, &y, &[false, false, true]).unwrap();
/// assert!((masked - 10.0).abs() < 1e-12); // identical to prd over the first two
/// assert_eq!(cs_metrics::prd_masked(&x, &y, &[true; 3]), None);
/// ```
pub fn prd_masked(original: &[f64], reconstructed: &[f64], mask: &[bool]) -> Option<f64> {
    assert_eq!(original.len(), reconstructed.len(), "prd_masked: length mismatch");
    assert_eq!(original.len(), mask.len(), "prd_masked: mask length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for ((&a, &b), &concealed) in original.iter().zip(reconstructed).zip(mask) {
        if concealed {
            continue;
        }
        num += (a - b) * (a - b);
        den += a * a;
    }
    (den > 0.0).then(|| (num / den).sqrt() * 100.0)
}

/// Alias of [`prd_masked`], named for symmetry with [`try_prd`]: the
/// masked variant has always returned `Option`, but reporting code that
/// pairs the two reads better calling `try_prd` / `try_prd_masked`.
pub fn try_prd_masked(original: &[f64], reconstructed: &[f64], mask: &[bool]) -> Option<f64> {
    prd_masked(original, reconstructed, mask)
}

/// Mean-removed PRD (often written PRD₁): measures error relative to the
/// *AC* energy of the signal, making records with large DC offsets (such as
/// raw ADC codes) comparable.
///
/// # Panics
///
/// Panics if lengths differ or the mean-removed original has zero energy.
pub fn prd_mean_removed(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(
        original.len(),
        reconstructed.len(),
        "prd_mean_removed: length mismatch"
    );
    assert!(!original.is_empty(), "prd_mean_removed: empty input");
    let mean = original.iter().sum::<f64>() / original.len() as f64;
    let num: f64 = original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let den: f64 = original.iter().map(|a| (a - mean) * (a - mean)).sum();
    assert!(den > 0.0, "prd_mean_removed: zero AC energy");
    (num / den).sqrt() * 100.0
}

/// Signal-to-noise ratio in dB from a PRD value, per the paper:
/// `SNR = −20·log₁₀(0.01·PRD)`.
///
/// Returns `f64::INFINITY` for a perfect reconstruction (`prd == 0`).
///
/// # Examples
///
/// ```
/// assert_eq!(cs_metrics::snr_from_prd(100.0), 0.0);
/// assert!((cs_metrics::snr_from_prd(10.0) - 20.0).abs() < 1e-12);
/// ```
pub fn snr_from_prd(prd: f64) -> f64 {
    if prd <= 0.0 {
        return f64::INFINITY;
    }
    -20.0 * (0.01 * prd).log10()
}

/// Output SNR in dB computed directly from signals (the quantity Fig. 2
/// plots against CR).
///
/// # Panics
///
/// Panics under the same conditions as [`prd`].
pub fn output_snr(original: &[f64], reconstructed: &[f64]) -> f64 {
    snr_from_prd(prd(original, reconstructed))
}

/// The PRD value corresponding to an SNR in dB (inverse of
/// [`snr_from_prd`]).
pub fn prd_from_snr(snr_db: f64) -> f64 {
    100.0 * 10f64.powf(-snr_db / 20.0)
}

/// Clinical quality bands for reconstructed ECG, following the commonly
/// used Zigel et al. classification that Fig. 6's "VG"/"G" markers refer
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DiagnosticQuality {
    /// PRD below 2 %: clinically indistinguishable from the original.
    VeryGood,
    /// PRD in `[2, 9)` %: good diagnostic quality.
    Good,
    /// PRD of 9 % or above: quality not guaranteed for diagnosis.
    NotRated,
}

impl DiagnosticQuality {
    /// Classifies a (non-mean-removed) PRD value.
    ///
    /// # Examples
    ///
    /// ```
    /// use cs_metrics::DiagnosticQuality;
    /// assert_eq!(DiagnosticQuality::from_prd(1.0), DiagnosticQuality::VeryGood);
    /// assert_eq!(DiagnosticQuality::from_prd(5.0), DiagnosticQuality::Good);
    /// assert_eq!(DiagnosticQuality::from_prd(20.0), DiagnosticQuality::NotRated);
    /// ```
    pub fn from_prd(prd: f64) -> Self {
        if prd < 2.0 {
            DiagnosticQuality::VeryGood
        } else if prd < 9.0 {
            DiagnosticQuality::Good
        } else {
            DiagnosticQuality::NotRated
        }
    }
}

impl std::fmt::Display for DiagnosticQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DiagnosticQuality::VeryGood => "very good",
            DiagnosticQuality::Good => "good",
            DiagnosticQuality::NotRated => "not rated",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_endpoints() {
        assert_eq!(compression_ratio(100, 100), 0.0);
        assert_eq!(compression_ratio(100, 0), 100.0);
        assert_eq!(compression_ratio(100, 25), 75.0);
        // Expansion yields negative CR, which callers may legitimately see
        // with incompressible input.
        assert_eq!(compression_ratio(100, 150), -50.0);
    }

    #[test]
    #[should_panic(expected = "original size is zero")]
    fn cr_zero_original_panics() {
        let _ = compression_ratio(0, 10);
    }

    #[test]
    fn prd_snr_round_trip() {
        for p in [0.5, 2.0, 9.0, 31.6, 100.0] {
            let s = snr_from_prd(p);
            assert!((prd_from_snr(s) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn snr_perfect_is_infinite() {
        assert!(snr_from_prd(0.0).is_infinite());
        let x = [1.0, -2.0, 3.0];
        assert!(output_snr(&x, &x).is_infinite());
    }

    #[test]
    fn prd_scales_with_error() {
        let x = vec![1.0; 100];
        let y: Vec<f64> = x.iter().map(|v| v + 0.1).collect();
        assert!((prd(&x, &y) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn prd_mean_removed_ignores_dc() {
        // Raw ADC codes with a big DC offset: plain PRD is flattered by the
        // offset, PRD1 is not.
        let x: Vec<f64> = (0..64).map(|i| 1000.0 + (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 0.05).collect();
        assert!(prd(&x, &y) < 0.01);
        assert!(prd_mean_removed(&x, &y) > 1.0);
    }

    #[test]
    fn quality_band_edges() {
        assert_eq!(DiagnosticQuality::from_prd(1.999), DiagnosticQuality::VeryGood);
        assert_eq!(DiagnosticQuality::from_prd(2.0), DiagnosticQuality::Good);
        assert_eq!(DiagnosticQuality::from_prd(8.999), DiagnosticQuality::Good);
        assert_eq!(DiagnosticQuality::from_prd(9.0), DiagnosticQuality::NotRated);
        assert_eq!(DiagnosticQuality::VeryGood.to_string(), "very good");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn prd_length_mismatch_panics() {
        let _ = prd(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero energy")]
    fn prd_zero_signal_panics() {
        let _ = prd(&[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    fn try_prd_matches_prd_on_valid_input() {
        let x = vec![1.0; 100];
        let y: Vec<f64> = x.iter().map(|v| v + 0.1).collect();
        assert_eq!(try_prd(&x, &y), Some(prd(&x, &y)));
    }

    #[test]
    fn try_prd_none_on_zero_energy() {
        assert_eq!(try_prd(&[0.0; 8], &[1.0; 8]), None);
        assert_eq!(try_prd(&[], &[]), None);
    }

    #[test]
    fn try_prd_masked_delegates() {
        let x = [3.0, 4.0, 100.0];
        let y = [3.0, 4.5, 0.0];
        let mask = [false, false, true];
        assert_eq!(try_prd_masked(&x, &y, &mask), prd_masked(&x, &y, &mask));
        assert_eq!(try_prd_masked(&x, &y, &[true; 3]), None);
    }
}
